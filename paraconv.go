// Package paraconv is the public API of the Para-CONV reproduction:
// task-level data allocation for convolutional connections in a
// processing-in-memory (PIM) architecture, after Wang, Zhang and Yang,
// "Exploiting Parallelism for Convolutional Connections in
// Processing-In-Memory Architecture", DAC 2017.
//
// The pipeline a typical caller runs:
//
//	g := paraconv.GoogLeNetGraph(...)        // or BuildGraph / Synthetic
//	cfg := paraconv.Neurocube(64)            // the PIM instance
//	plan, err := paraconv.Plan(g, cfg)       // Para-CONV: retime + DP-allocate
//	stats, err := paraconv.Simulate(plan, cfg, 1000)
//
// Plan packs the convolutions into a compact steady-state kernel,
// classifies every intermediate processing result (IPR) into the
// paper's six Figure-4 cases, solves the optimal cache-allocation
// dynamic program under the PE-array capacity, and derives the minimal
// legal retiming (prologue).  Baseline produces the SPARTA comparison
// plan, and the bench helpers regenerate every table and figure of the
// paper's evaluation.
package paraconv

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/cnn"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/obs/tracestat"
	"repro/internal/opt"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Re-exported core types.  The aliases make the internal packages'
// documented types available to external callers through one import.
type (
	// Graph is the weighted task DAG G=(V,E,P,R) of the paper's
	// application model: vertices are convolution/pooling operations,
	// edges are intermediate processing results.
	Graph = dag.Graph
	// Node is one convolution/pooling operation V_i(s_i, c_i, d_i).
	Node = dag.Node
	// Edge is one intermediate processing result I_{i,j}.
	Edge = dag.Edge
	// NodeID and EdgeID identify vertices and edges.
	NodeID = dag.NodeID
	EdgeID = dag.EdgeID
	// OpKind classifies a vertex (convolution, pooling, ...).
	OpKind = dag.OpKind

	// Config describes a PIM instance (PE count, cache, latencies).
	Config = pim.Config
	// Placement is a cache-or-eDRAM location for an IPR.
	Placement = pim.Placement

	// ExecutionPlan is a complete schedule + allocation + retiming.
	ExecutionPlan = sched.Plan
	// IterationSchedule is one kernel iteration's task placement.
	IterationSchedule = sched.IterationSchedule

	// SimStats aggregates the discrete-event simulator's measurements.
	SimStats = sim.Stats

	// Network is a CNN description at the layer level.
	Network = cnn.Network
	// Shape is a channels x height x width feature-map shape.
	Shape = cnn.Shape

	// Benchmark is one entry of the paper's 12-benchmark suite.
	Benchmark = bench.Benchmark
	// SynthParams parameterizes the synthetic task-graph generator.
	SynthParams = synth.Params
)

// Operation kinds.
const (
	OpConv = dag.OpConv
	OpPool = dag.OpPool
	OpFC   = dag.OpFC
)

// IPR placements.
const (
	InCache = pim.InCache
	InEDRAM = pim.InEDRAM
)

// Session scopes a batch of planning and simulation work under one
// context.Context and one content-keyed plan cache.  Prefer a Session
// over the package-level Plan/Baseline/Simulate helpers when you need
// cancellation (Ctrl-C, deadlines) or are re-planning the same graphs
// repeatedly: cache hits return the already-solved *ExecutionPlan.
// A Session is safe for concurrent use.
type Session = run.Session

// PlanCacheStats is a snapshot of a Session's plan-cache counters
// (hits, misses, evictions, current size and bound).
type PlanCacheStats = run.CacheStats

// NewSession returns a Session scoped to ctx with the default
// plan-cache bound.  A nil ctx means context.Background().
func NewSession(ctx context.Context) *Session { return run.New(ctx) }

// NewSessionWithCacheBound is NewSession with an explicit plan-cache
// capacity; bound <= 0 disables caching.
func NewSessionWithCacheBound(ctx context.Context, bound int) *Session {
	return run.NewWithCacheBound(ctx, bound)
}

// NewGraph returns an empty task graph with the given name.
func NewGraph(name string) *Graph { return dag.New(name) }

// ReadGraph parses a task graph in the line-oriented text format
// (see WriteGraph).
func ReadGraph(r io.Reader) (*Graph, error) { return dag.ReadText(r) }

// WriteGraph serializes a task graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return dag.WriteText(w, g) }

// WriteDOT emits the task graph in Graphviz DOT syntax.
func WriteDOT(w io.Writer, g *Graph) error { return dag.WriteDOT(w, g) }

// Neurocube returns the paper's Neurocube-derived PIM configuration
// for the given PE count (the evaluation sweeps 16, 32, 64).
func Neurocube(numPEs int) Config { return pim.Neurocube(numPEs) }

// PRIME, HMCGen2 and EdgeDevice return alternative PIM architecture
// presets (the paper's §5 future work: other emerging PIM
// architectures under one general model).
func PRIME(numPEs int) Config      { return pim.PRIME(numPEs) }
func HMCGen2(numPEs int) Config    { return pim.HMCGen2(numPEs) }
func EdgeDevice(numPEs int) Config { return pim.EdgeDevice(numPEs) }

// ArchPresets returns every built-in architecture at the given PE
// count, Neurocube first.
func ArchPresets(numPEs int) []Config { return pim.Presets(numPEs) }

// ArchCandidate is one architecture's evaluation in SelectArch's
// sweep.
type ArchCandidate = sched.Candidate

// SelectArch plans the application on every candidate architecture and
// returns the fastest, plus the full ranking (best first).
func SelectArch(g *Graph, candidates []Config, iterations int) (ArchCandidate, []ArchCandidate, error) {
	return sched.SelectConfig(g, candidates, iterations)
}

// Synthetic generates a random layered CNN-like task graph with
// exactly the requested vertex and edge counts.
func Synthetic(p SynthParams) (*Graph, error) { return synth.Generate(p) }

// GoogLeNet builds the full GoogLeNet layer model of Szegedy et
// al. [16], the paper's named benchmark source.
func GoogLeNet() (*Network, error) { return cnn.GoogLeNet() }

// LeNet5 builds the classic LeNet-5 character-recognition network.
func LeNet5() (*Network, error) { return cnn.LeNet5() }

// NetworkGraph lowers a finalized CNN to its task DAG under the given
// PIM latency model.
func NetworkGraph(n *Network, cfg Config) (*Graph, error) {
	return cnn.ToTaskGraph(n, cnn.LowerOptions{Arch: cfg})
}

// Plan runs the full Para-CONV pipeline (paper §3): compact objective
// schedule, Figure-4 classification of every IPR, optimal dynamic-
// programming cache allocation under the PE-array capacity, and the
// minimal legal retiming.  The kernel replicates across PE groups when
// the graph is too small to fill the array.
func Plan(g *Graph, cfg Config) (*ExecutionPlan, error) { return sched.ParaCONV(g, cfg) }

// PlanSingleKernel is Plan with the whole array devoted to one
// iteration per kernel — the paper's canonical configuration.
func PlanSingleKernel(g *Graph, cfg Config) (*ExecutionPlan, error) {
	return sched.ParaCONVSingle(g, cfg)
}

// ObjectiveSchedule compacts one iteration of the graph onto numPEs
// processing engines — the a-priori objective schedule of §3.3.3.
func ObjectiveSchedule(g *Graph, numPEs int) (IterationSchedule, error) {
	return sched.Objective(g, numPEs)
}

// PlanWithSchedule runs Para-CONV's allocation pipeline against a
// caller-supplied objective schedule: the schedule (hence the period
// p) is a property of the application, and the PIM configuration
// enters only through the PE-array cache capacity.  Sweeping the
// array at a fixed schedule isolates the capacity effect on R_max —
// the configuration behind the paper's Table 2 and Figure 6.
func PlanWithSchedule(g *Graph, iter IterationSchedule, cfg Config) (*ExecutionPlan, error) {
	return sched.ParaCONVGivenSchedule(g, iter, cfg)
}

// Baseline builds the SPARTA [6] comparison plan: sensor-characterized
// priority list scheduling with greedy cache allocation, no retiming,
// no software pipelining.
func Baseline(g *Graph, cfg Config) (*ExecutionPlan, error) { return sched.SPARTA(g, cfg) }

// Simulate executes `iterations` iterations of the plan on the PIM
// discrete-event simulator, verifying the schedule and measuring data
// movement, energy and utilization.
func Simulate(plan *ExecutionPlan, cfg Config, iterations int) (SimStats, error) {
	return sim.Run(plan, cfg, iterations)
}

// SimTrace is the event log of a traced simulation run.
type SimTrace = sim.Trace

// SimEvent is one timestamped simulation event.
type SimEvent = sim.Event

// SimulateTrace is Simulate with a full event log: every task
// instance, IPR transfer and iteration completion, plus resource-usage
// peaks.  Event volume grows with iterations x (|V|+|E|).
func SimulateTrace(plan *ExecutionPlan, cfg Config, iterations int) (SimStats, *SimTrace, error) {
	return sim.TraceRun(plan, cfg, iterations)
}

// AppNetwork builds the layer model of one of the paper's named
// benchmark applications (cat, car, ..., protein); see
// AppNetworkNames.
func AppNetwork(name string) (*Network, error) { return cnn.BenchmarkNetwork(name) }

// AppNetworkNames lists the available application models.
func AppNetworkNames() []string { return cnn.BenchmarkNetworkNames() }

// WriteGantt renders an ASCII Gantt chart of one kernel iteration.
func WriteGantt(w io.Writer, s *IterationSchedule) error { return sched.WriteGantt(w, s) }

// BenchmarkSuite returns the paper's 12 benchmarks (cat ... protein)
// with the exact vertex/edge counts of Table 1.
func BenchmarkSuite() []Benchmark { return bench.Suite }

// ClusterResult describes a linear-chain clustering transform.
type ClusterResult = opt.ClusterResult

// ClusterChains merges maximal producer-consumer chains (bounded by
// maxExec time units per cluster; 0 = unbounded), eliminating their
// intermediate results entirely — a pre-scheduling optimization that
// complements the cache allocation.
func ClusterChains(g *Graph, maxExec int) (*ClusterResult, error) {
	return opt.ClusterLinearChains(g, maxExec)
}

// AlexNet builds the classic AlexNet layer model.
func AlexNet() (*Network, error) { return cnn.AlexNet() }

// VGG16 builds the VGG-16 (configuration D) layer model.
func VGG16() (*Network, error) { return cnn.VGG16() }

// DynamicStats reports a self-timed dataflow execution (see
// SimulateDynamic).
type DynamicStats = sim.DynamicStats

// SimulateDynamic executes the application under self-timed dataflow
// dispatch (no static schedule, no retiming) with the given IPR
// placement and pipelining window — the throughput upper bound a
// dynamic runtime could reach with the same placement.
func SimulateDynamic(g *Graph, cfg Config, assignment []Placement, iterations, window int) (DynamicStats, error) {
	return sim.Dynamic(g, cfg, assignment, iterations, window)
}

// BaselineNaive builds the round-robin, cache-oblivious reference
// plan — the design-space floor below SPARTA.
func BaselineNaive(g *Graph, cfg Config) (*ExecutionPlan, error) { return sched.Naive(g, cfg) }

// QueueStats reports an arrival-driven execution (see SimulateQueue).
type QueueStats = sim.QueueStats

// SimulateQueue executes requests arriving every `interval` time
// units under self-timed dispatch and reports latency statistics
// (mean, p95, max) — the serving-latency view of the system.
func SimulateQueue(g *Graph, cfg Config, assignment []Placement, interval, iterations, window int) (QueueStats, error) {
	return sim.Queueing(g, cfg, assignment, interval, iterations, window)
}

// MetricsRegistry is the module's concurrency-safe metrics registry:
// counters, gauges and fixed-bucket histograms with Prometheus-text
// and JSON exporters.
type MetricsRegistry = obs.Registry

// Metrics returns the shared default registry every instrumented
// subsystem (plan cache, scheduler, simulators, benchmark runner)
// writes to.  Serve it with paraconv's or benchtab's -http flag, or
// export it directly via WritePrometheus / WriteJSON.
func Metrics() *MetricsRegistry { return obs.Default() }

// SetMetricsEnabled turns instrument writes on or off globally.
// Instrumentation is on by default; disabling reduces every record
// site to a single atomic load.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// TraceReport is the trace-derived analytics of one simulation run:
// per-PE utilization timelines and the idle-time breakdown into
// pipeline-fill prologue, waiting-on-transfer and no-ready-task.
type TraceReport = tracestat.Report

// AnalyzeTrace post-processes a traced simulation run (SimulateTrace)
// into a TraceReport.  plan and stats must come from the same run as
// the trace.
func AnalyzeTrace(tr *SimTrace, plan *ExecutionPlan, stats SimStats) (*TraceReport, error) {
	return tracestat.Analyze(tr, plan, stats)
}
