#!/usr/bin/env bash
# ci.sh — the full local gate, identical to what CI runs.
#
# Order is cheap-to-expensive: formatting and static analysis fail in
# seconds, the race detector and fuzz smoke run last.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== paraconv-vet"
go run ./cmd/paraconv-vet ./...

echo "== build"
go build ./...

echo "== test"
go test ./...

echo "== test -race"
go test -race ./...

echo "== fuzz smoke"
go test -run='^$' -fuzz='^FuzzDAGCodecRoundTrip$' -fuzztime=10s ./internal/dag/
go test -run='^$' -fuzz='^FuzzSynthGenerate$' -fuzztime=10s ./internal/synth/

echo "== benchtab parallel determinism smoke"
# A parallel benchtab run must be byte-identical to a serial one.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/benchtab" ./cmd/benchtab
"$tmpdir/benchtab" -exp table1 > "$tmpdir/serial.out"
"$tmpdir/benchtab" -exp table1 -parallel 4 > "$tmpdir/par4.out"
if ! cmp -s "$tmpdir/serial.out" "$tmpdir/par4.out"; then
    echo "benchtab -parallel 4 output differs from serial:" >&2
    diff "$tmpdir/serial.out" "$tmpdir/par4.out" >&2 || true
    exit 1
fi

echo "CI gate passed."
