#!/usr/bin/env bash
# ci.sh — the full local gate, identical to what CI runs.
#
# Order is cheap-to-expensive: formatting and static analysis fail in
# seconds, the race detector and fuzz smoke run last.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== paraconv-vet"
go run ./cmd/paraconv-vet ./...

echo "== paraconv-vet -json"
# The machine-readable output must be valid JSON with the expected
# schema version even on a clean tree (findings: []).
go run ./cmd/paraconv-vet -json ./... \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["paraconv_vet"]==1 and isinstance(r["findings"], list), r' \
    || { echo "paraconv-vet -json output is not a valid report" >&2; exit 1; }

echo "== paraconv-vet -escapes"
# The hot-path escape gate: //paraconv:hotpath functions must not have
# grown heap allocations beyond the committed .paraconv-escapes
# baseline (regenerate intentional changes with -escapes-update).
go run ./cmd/paraconv-vet -escapes ./...

echo "== build"
go build ./...

echo "== test"
go test ./...

echo "== test -race"
go test -race ./...

echo "== fuzz smoke"
go test -run='^$' -fuzz='^FuzzDAGCodecRoundTrip$' -fuzztime=10s ./internal/dag/
go test -run='^$' -fuzz='^FuzzBinaryCodecRoundTrip$' -fuzztime=10s ./internal/dag/
go test -run='^$' -fuzz='^FuzzSynthGenerate$' -fuzztime=10s ./internal/synth/
go test -run='^$' -fuzz='^FuzzKnapsackEquivalence$' -fuzztime=10s ./internal/core/

echo "== bench under race"
# One short pass of the hot-loop benchmarks with the race detector on:
# the pooled DP scratch and trace buffers must be race-free under
# concurrent reuse.
go test -race -run='^$' -bench='BenchmarkKnapsack' -benchtime=3x ./internal/core/
go test -race -run='^$' -bench='BenchmarkSimRun|BenchmarkTraceRun' -benchtime=3x ./internal/sim/

echo "== bench smoke"
# Short windows, no new baseline file, no gate: this validates the
# harness end to end (and prints the comparison against the committed
# BENCH_*.json chain) without letting CI noise fail the build.  Run
# scripts/bench.sh with full windows to extend the baseline chain.
scripts/bench.sh --short --compare-only --no-gate

echo "== benchtab parallel determinism smoke"
# A parallel benchtab run must be byte-identical to a serial one.
tmpdir=$(mktemp -d)
trap 'for p in "${http_pid:-}" "${pd_pid:-}" "${slo_pid:-}" "${wr_pid:-}" "${cl1_pid:-}" "${cl2_pid:-}" "${cl3_pid:-}"; do [[ -n "$p" ]] && kill "$p" 2>/dev/null || true; done; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/benchtab" ./cmd/benchtab
"$tmpdir/benchtab" -exp table1 > "$tmpdir/serial.out"
"$tmpdir/benchtab" -exp table1 -parallel 4 > "$tmpdir/par4.out"
if ! cmp -s "$tmpdir/serial.out" "$tmpdir/par4.out"; then
    echo "benchtab -parallel 4 output differs from serial:" >&2
    diff "$tmpdir/serial.out" "$tmpdir/par4.out" >&2 || true
    exit 1
fi

echo "== debug endpoint smoke"
# The -http debug server must come up on a free port and expose the
# core metric families after a run.  -http-hold keeps it alive until
# we have curled it; the port is read from the startup log line.
"$tmpdir/benchtab" -exp latency -http 127.0.0.1:0 -http-hold 60s \
    > "$tmpdir/http.out" 2> "$tmpdir/http.err" &
http_pid=$!
addr=""
for _ in $(seq 1 100); do
    if grep -q "holding debug server" "$tmpdir/http.err"; then
        addr=$(sed -n 's/.*debug server listening on \([0-9.:]*\).*/\1/p' "$tmpdir/http.err" | head -n1)
        break
    fi
    if ! kill -0 "$http_pid" 2>/dev/null; then
        echo "benchtab -http exited early:" >&2
        cat "$tmpdir/http.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "benchtab -http never reported its address:" >&2
    cat "$tmpdir/http.err" >&2
    exit 1
fi
curl -fsS "http://$addr/metrics" > "$tmpdir/metrics.txt"
for family in \
    paraconv_plancache_hits_total \
    paraconv_sched_dp_rows_total \
    paraconv_sim_runs_total \
    paraconv_runner_jobs_finished_total; do
    if ! grep -q "^$family" "$tmpdir/metrics.txt"; then
        echo "/metrics is missing family $family:" >&2
        head -n 40 "$tmpdir/metrics.txt" >&2
        exit 1
    fi
done
curl -fsS "http://$addr/metrics.json" | python3 -c 'import json,sys; json.load(sys.stdin)' \
    || { echo "/metrics.json is not valid JSON" >&2; exit 1; }
kill "$http_pid"
wait "$http_pid" 2>/dev/null || true
http_pid=""

echo "== paraconvd smoke"
# The planning daemon must come up on a free port, answer /v1/plan with
# a valid JSON plan, and drain cleanly on SIGTERM (exit 0).
go build -o "$tmpdir/paraconvd" ./cmd/paraconvd
"$tmpdir/paraconvd" -addr 127.0.0.1:0 2> "$tmpdir/pd.err" &
pd_pid=$!
pd_addr=""
for _ in $(seq 1 100); do
    if grep -q "listening on" "$tmpdir/pd.err"; then
        pd_addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmpdir/pd.err" | head -n1)
        break
    fi
    if ! kill -0 "$pd_pid" 2>/dev/null; then
        echo "paraconvd exited early:" >&2
        cat "$tmpdir/pd.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$pd_addr" ]]; then
    echo "paraconvd never reported its address:" >&2
    cat "$tmpdir/pd.err" >&2
    exit 1
fi
python3 - > "$tmpdir/plan_body.json" <<'PYEOF'
import json
graph = "graph smoke\n"
graph += "".join(f"node {i} conv {1 + i % 3} l{i}\n" for i in range(6))
graph += "edge 0 1 1 0 3\nedge 0 2 1 0 3\nedge 1 3 1 0 3\n"
graph += "edge 2 3 1 0 2\nedge 3 4 1 0 3\nedge 3 5 1 0 2\n"
print(json.dumps({"graph": graph, "pes": 8, "iterations": 50}))
PYEOF
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary "@$tmpdir/plan_body.json" \
    "http://$pd_addr/v1/plan" > "$tmpdir/plan_resp.json"
python3 - "$tmpdir/plan_resp.json" <<'PYEOF'
import json, sys
plan = json.load(open(sys.argv[1]))
assert plan["scheme"] == "para-conv", plan.get("scheme")
assert plan["period"] > 0 and plan["total_time"] > 0, plan
PYEOF
curl -fsS "http://$pd_addr/metrics" > "$tmpdir/pd_metrics.txt"
for family in \
    paraconv_server_requests_total \
    paraconv_server_queue_capacity \
    paraconv_plancache_misses_total; do
    if ! grep -q "^$family" "$tmpdir/pd_metrics.txt"; then
        echo "paraconvd /metrics is missing family $family:" >&2
        head -n 40 "$tmpdir/pd_metrics.txt" >&2
        exit 1
    fi
done
kill -TERM "$pd_pid"
if ! wait "$pd_pid"; then
    echo "paraconvd did not drain cleanly on SIGTERM:" >&2
    cat "$tmpdir/pd.err" >&2
    exit 1
fi
pd_pid=""
if ! grep -q "drained cleanly" "$tmpdir/pd.err"; then
    echo "paraconvd drain log line missing:" >&2
    cat "$tmpdir/pd.err" >&2
    exit 1
fi

echo "== trace + SLO smoke"
# A tracing daemon (-trace-sample 1) must hand every request a trace id,
# serve the full span tree for a cache-miss simulate request (all six
# pipeline stages), export it as a Chrome trace-event document, and
# hold the standard SLOs under a short paraconvload run gated by -slo.
"$tmpdir/paraconvd" -addr 127.0.0.1:0 -trace-sample 1 2> "$tmpdir/slo.err" &
slo_pid=$!
slo_addr=""
for _ in $(seq 1 100); do
    if grep -q "listening on" "$tmpdir/slo.err"; then
        slo_addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmpdir/slo.err" | head -n1)
        break
    fi
    if ! kill -0 "$slo_pid" 2>/dev/null; then
        echo "tracing paraconvd exited early:" >&2
        cat "$tmpdir/slo.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$slo_addr" ]]; then
    echo "tracing paraconvd never reported its address:" >&2
    cat "$tmpdir/slo.err" >&2
    exit 1
fi
# The FIRST simulate request is the trace fixture: a cache miss runs
# every stage (plan requests never run sim; cache hits skip the solver).
curl -fsS -D "$tmpdir/trace_hdrs.txt" -X POST -H 'Content-Type: application/json' \
    --data-binary "@$tmpdir/plan_body.json" \
    "http://$slo_addr/v1/simulate" > /dev/null
trace_id=$(tr -d '\r' < "$tmpdir/trace_hdrs.txt" | sed -n 's/^[Xx]-[Pp]araconv-[Tt]race: *//p' | head -n1)
if [[ ! "$trace_id" =~ ^[0-9a-f]{32}$ ]]; then
    echo "simulate response carried no X-Paraconv-Trace id (got '$trace_id'):" >&2
    cat "$tmpdir/trace_hdrs.txt" >&2
    exit 1
fi
curl -fsS "http://$slo_addr/debug/traces/$trace_id" > "$tmpdir/trace.json"
python3 - "$tmpdir/trace.json" <<'PYEOF'
import json, sys
detail = json.load(open(sys.argv[1]))
names = "\n".join(s["name"] for s in detail["spans"])
for stage in ("server", "cache", "singleflight", "retime", "knapsack", "sim"):
    assert stage in names, f"trace is missing a {stage} span:\n{names}"
assert len(detail["spans"]) >= 6, names
PYEOF
curl -fsS "http://$slo_addr/debug/traces/$trace_id/chrome" > "$tmpdir/trace_chrome.json"
python3 - "$tmpdir/trace_chrome.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert len(events) >= 6, events
assert all(e["ph"] == "X" and e["dur"] >= 1 for e in events), events
PYEOF
go build -o "$tmpdir/paraconvload" ./cmd/paraconvload
if ! "$tmpdir/paraconvload" -addr "$slo_addr" -workers 4 -duration 2s -slo \
    > "$tmpdir/slo_load.out"; then
    echo "paraconvload -slo reported an SLO breach:" >&2
    cat "$tmpdir/slo_load.out" >&2
    exit 1
fi
grep -q "slo: all objectives ok" "$tmpdir/slo_load.out" || {
    echo "paraconvload -slo did not print the all-ok verdict:" >&2
    cat "$tmpdir/slo_load.out" >&2
    exit 1
}
# /debug/slo answers 200 only while healthy (503 on breach), so -f is
# the whole gate.
curl -fsS "http://$slo_addr/debug/slo" | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["healthy"], r'
kill -TERM "$slo_pid"
wait "$slo_pid" || { echo "tracing paraconvd did not drain cleanly" >&2; exit 1; }
slo_pid=""

echo "== warm-restart smoke"
# The durable plan store must survive a restart: boot a daemon on a
# data dir, populate it with an async burst, drain, boot a fresh
# daemon on the SAME dir, replay the identical burst (same seed, same
# graph mix) and require zero solver work the second time around.
wr_dir="$tmpdir/wr-data"
start_wr_daemon() {
    local errlog=$1
    "$tmpdir/paraconvd" -addr 127.0.0.1:0 -data-dir "$wr_dir" \
        -slo-interval 200ms 2> "$errlog" &
    wr_pid=$!
    wr_addr=""
    for _ in $(seq 1 100); do
        if grep -q "listening on" "$errlog"; then
            wr_addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$errlog" | head -n1)
            break
        fi
        if ! kill -0 "$wr_pid" 2>/dev/null; then
            echo "warm-restart paraconvd exited early:" >&2
            cat "$errlog" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ -z "$wr_addr" ]]; then
        echo "warm-restart paraconvd never reported its address:" >&2
        cat "$errlog" >&2
        exit 1
    fi
}
# sum_solves <metrics-file>: total uncached solves across variants
# (family absent = 0).
sum_solves() {
    awk '/^paraconv_plan_solve_seconds_count/ { s += $2 } END { printf "%d\n", s }' "$1"
}

start_wr_daemon "$tmpdir/wr1.err"
"$tmpdir/paraconvload" -addr "$wr_addr" -workers 4 -duration 2s -async \
    > "$tmpdir/wr_load1.out"
grep -qE "\+ 0 lost$" "$tmpdir/wr_load1.out" || {
    echo "async burst lost jobs:" >&2
    cat "$tmpdir/wr_load1.out" >&2
    exit 1
}
curl -fsS "http://$wr_addr/metrics" > "$tmpdir/wr1_metrics.txt"
solves_a=$(sum_solves "$tmpdir/wr1_metrics.txt")
if [[ "$solves_a" -lt 1 ]]; then
    echo "first boot recorded no solves (got $solves_a); burst never reached the solver" >&2
    exit 1
fi
if ! ls "$wr_dir"/*.plan > /dev/null 2>&1; then
    echo "first boot wrote no plan files to $wr_dir" >&2
    ls -la "$wr_dir" >&2 || true
    exit 1
fi
kill -TERM "$wr_pid"
wait "$wr_pid" || { echo "warm-restart daemon (boot 1) did not drain cleanly" >&2; exit 1; }
wr_pid=""

start_wr_daemon "$tmpdir/wr2.err"
"$tmpdir/paraconvload" -addr "$wr_addr" -workers 4 -duration 2s -async \
    > "$tmpdir/wr_load2.out"
grep -qE "\+ 0 lost$" "$tmpdir/wr_load2.out" || {
    echo "post-restart async burst lost jobs:" >&2
    cat "$tmpdir/wr_load2.out" >&2
    exit 1
}
curl -fsS "http://$wr_addr/metrics" > "$tmpdir/wr2_metrics.txt"
solves_b=$(sum_solves "$tmpdir/wr2_metrics.txt")
if [[ "$solves_b" -ne 0 ]]; then
    echo "restarted daemon ran $solves_b solves; the durable store should have served them all" >&2
    grep "^paraconv_store_" "$tmpdir/wr2_metrics.txt" >&2 || true
    exit 1
fi
store_hits=$(awk '/^paraconv_store_hits_total/ { print $2; exit }' "$tmpdir/wr2_metrics.txt")
if [[ -z "$store_hits" || "$store_hits" -lt 1 ]]; then
    echo "restarted daemon recorded no store hits (got '$store_hits')" >&2
    grep "^paraconv_store_" "$tmpdir/wr2_metrics.txt" >&2 || true
    exit 1
fi
curl -fsS "http://$wr_addr/debug/slo" \
    | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["healthy"], r' \
    || { echo "warm-restarted daemon is burning SLO budget" >&2; exit 1; }
kill -TERM "$wr_pid"
wait "$wr_pid" || { echo "warm-restart daemon (boot 2) did not drain cleanly" >&2; exit 1; }
wr_pid=""

echo "== 3-node cluster smoke"
# A sharded fleet must act as one cache: identical plan requests at all
# three members may cost exactly ONE solve cluster-wide (the owner's),
# with the other two members peer-filling over the ring.  Then losing a
# member mid-burst must cost zero client-visible failures — every fill
# that can't reach its owner degrades to a local solve.
read -r cp1 cp2 cp3 < <(python3 - <<'PYEOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
PYEOF
)
peerlist="127.0.0.1:$cp1,127.0.0.1:$cp2,127.0.0.1:$cp3"
start_cl_daemon() {
    # start_cl_daemon <port> <errlog> <pidvar>: boot one member in THIS
    # shell (so the caller can wait on it) and store its pid in pidvar.
    local port=$1 errlog=$2 pidvar=$3
    "$tmpdir/paraconvd" -addr "127.0.0.1:$port" -peers "$peerlist" \
        2> "$errlog" &
    local pid=$!
    printf -v "$pidvar" '%s' "$pid"
    for _ in $(seq 1 100); do
        if grep -q "listening on" "$errlog"; then
            return
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster member :$port exited early:" >&2
            cat "$errlog" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "cluster member :$port never reported its address:" >&2
    cat "$errlog" >&2
    exit 1
}
start_cl_daemon "$cp1" "$tmpdir/cl1.err" cl1_pid
start_cl_daemon "$cp2" "$tmpdir/cl2.err" cl2_pid
start_cl_daemon "$cp3" "$tmpdir/cl3.err" cl3_pid
for port in "$cp1" "$cp2" "$cp3"; do
    curl -fsS "http://127.0.0.1:$port/readyz" > "$tmpdir/cl_ready.txt"
    grep -q "^cluster: 3/3 members live$" "$tmpdir/cl_ready.txt" || {
        echo "member :$port /readyz does not report the full ring:" >&2
        cat "$tmpdir/cl_ready.txt" >&2
        exit 1
    }
done
# The same plan request at every member, twice around: one member owns
# the fingerprint and solves, the others fill from it, repeats are
# local cache hits everywhere.
for _ in 1 2; do
    for port in "$cp1" "$cp2" "$cp3"; do
        curl -fsS -X POST -H 'Content-Type: application/json' \
            --data-binary "@$tmpdir/plan_body.json" \
            "http://127.0.0.1:$port/v1/plan" > /dev/null
    done
done
cl_solves=0
cl_fills=0
for i in 1 2 3; do
    port_var="cp$i"
    curl -fsS "http://127.0.0.1:${!port_var}/metrics" > "$tmpdir/cl$i.metrics"
    cl_solves=$((cl_solves + $(sum_solves "$tmpdir/cl$i.metrics")))
    cl_fills=$((cl_fills + $(awk '/^paraconv_cluster_peer_fills_total/ { s += $2 } END { printf "%d\n", s }' "$tmpdir/cl$i.metrics")))
done
if [[ "$cl_solves" -ne 1 ]]; then
    echo "6 identical requests across 3 members cost $cl_solves solves; the cluster cache should have held it to 1" >&2
    grep -h "^paraconv_plan_solve_seconds_count\|^paraconv_cluster_" "$tmpdir"/cl?.metrics >&2 || true
    exit 1
fi
if [[ "$cl_fills" -ne 2 ]]; then
    echo "expected exactly 2 peer fills (one per non-owner); got $cl_fills" >&2
    grep -h "^paraconv_cluster_" "$tmpdir"/cl?.metrics >&2 || true
    exit 1
fi
# Degradation: hard-kill member 3 one second into a burst against the
# survivors.  Their breakers open on the corpse and every request still
# answers 200 — no transport errors, no non-200 statuses.
"$tmpdir/paraconvload" -addr "127.0.0.1:$cp1" \
    -cluster "127.0.0.1:$cp1,127.0.0.1:$cp2" \
    -workers 4 -duration 4s -seed 42 > "$tmpdir/cl_kill.out" &
cl_load_pid=$!
sleep 1
kill -KILL "$cl3_pid" 2>/dev/null || true
wait "$cl3_pid" 2>/dev/null || true
cl3_pid=""
wait "$cl_load_pid" || {
    echo "cluster burst load generator failed:" >&2
    cat "$tmpdir/cl_kill.out" >&2
    exit 1
}
if grep -q "transport errors" "$tmpdir/cl_kill.out"; then
    echo "killing one member surfaced transport errors to clients:" >&2
    cat "$tmpdir/cl_kill.out" >&2
    exit 1
fi
if grep -E '^  status ' "$tmpdir/cl_kill.out" | grep -qv 'status 200'; then
    echo "killing one member surfaced non-200 responses:" >&2
    cat "$tmpdir/cl_kill.out" >&2
    exit 1
fi
kill -TERM "$cl1_pid" "$cl2_pid"
wait "$cl1_pid" || { echo "cluster member 1 did not drain cleanly" >&2; exit 1; }
wait "$cl2_pid" || { echo "cluster member 2 did not drain cleanly" >&2; exit 1; }
cl1_pid=""
cl2_pid=""

echo "CI gate passed."
