#!/usr/bin/env bash
# ci.sh — the full local gate, identical to what CI runs.
#
# Order is cheap-to-expensive: formatting and static analysis fail in
# seconds, the race detector and fuzz smoke run last.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== paraconv-vet"
go run ./cmd/paraconv-vet ./...

echo "== build"
go build ./...

echo "== test"
go test ./...

echo "== test -race"
go test -race ./...

echo "== fuzz smoke"
go test -run='^$' -fuzz='^FuzzDAGCodecRoundTrip$' -fuzztime=10s ./internal/dag/
go test -run='^$' -fuzz='^FuzzSynthGenerate$' -fuzztime=10s ./internal/synth/

echo "CI gate passed."
