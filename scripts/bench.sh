#!/usr/bin/env bash
# bench.sh — run the hot-path perf suite and maintain the committed
# BENCH_<n>.json baseline chain.
#
#   scripts/bench.sh                 run full windows, write BENCH_<n+1>.json,
#                                    compare to BENCH_<n>.json, fail on >10%
#                                    regression
#   scripts/bench.sh --short         short measurement windows (CI smoke)
#   scripts/bench.sh --no-gate       compare but never fail on regressions
#   scripts/bench.sh --compare-only  measure + compare without writing a new
#                                    baseline file
#
# The first run (no BENCH_*.json yet) records BENCH_0.json with the gate
# off — there is nothing to compare against.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
gate=1
compare_only=0
for arg in "$@"; do
  case "$arg" in
    --short|-s) short=1 ;;
    --no-gate|-n) gate=0 ;;
    --compare-only|-c) compare_only=1 ;;
    -h|--help)
      sed -n '2,15p' "$0"
      exit 0
      ;;
    *)
      echo "bench.sh: unknown option $arg (try --help)" >&2
      exit 2
      ;;
  esac
done

# Find the newest committed baseline: the highest N in BENCH_N.json.
latest=""
latest_n=-1
for f in BENCH_*.json; do
  [ -e "$f" ] || continue
  n="${f#BENCH_}"
  n="${n%.json}"
  case "$n" in
    *[!0-9]*) continue ;;
  esac
  if [ "$n" -gt "$latest_n" ]; then
    latest_n=$n
    latest=$f
  fi
done

args=()
[ "$short" -eq 1 ] && args+=(-bench-short)

out=""
if [ "$compare_only" -eq 1 ]; then
  out="$(mktemp -t bench.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
else
  out="BENCH_$((latest_n + 1)).json"
fi
args+=(-bench-out "$out")

if [ -n "$latest" ]; then
  args+=(-bench-compare "$latest")
  [ "$gate" -eq 1 ] && args+=(-bench-gate)
else
  echo "bench.sh: no BENCH_*.json baseline yet; recording the first one (gate off)"
fi

go run ./cmd/benchtab "${args[@]}"

if [ "$compare_only" -eq 0 ]; then
  echo "bench.sh: baseline chain now ends at $out"
fi
