package paraconv

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§4) under `go test -bench`.  Each experiment
// bench reports its headline quantity through b.ReportMetric, so a
// bench run doubles as a reproduction run:
//
//	go test -bench=Table1 -benchmem     # Table 1 (total execution time)
//	go test -bench=. -benchmem          # everything
//
// The Ablation benches quantify the design choices DESIGN.md calls
// out: the optimal DP against the greedy heuristic, and adaptive group
// replication against the single-kernel configuration.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/pim"
	"repro/internal/retime"
	"repro/internal/sched"
	"repro/internal/sim"
)

func benchGraph(b *testing.B, bm bench.Benchmark) *dag.Graph {
	b.Helper()
	g, err := bm.Graph()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable1 regenerates Table 1: SPARTA vs Para-CONV total
// execution time per benchmark per PE count.  Reported metrics:
// para_time and sparta_time (time units for 100 iterations) and
// imp_pct (Para-CONV's time as % of SPARTA's — the paper's IMP).
func BenchmarkTable1(b *testing.B) {
	for _, bm := range bench.Suite {
		g := benchGraph(b, bm)
		for _, pes := range bench.PECounts {
			b.Run(fmt.Sprintf("%s/pe%d", bm.Name, pes), func(b *testing.B) {
				cfg := pim.Neurocube(pes)
				var paraT, spartaT int
				for i := 0; i < b.N; i++ {
					pc, err := sched.ParaCONV(g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					sp, err := sched.SPARTA(g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					paraT = pc.TotalTime(bench.Iterations)
					spartaT = sp.TotalTime(bench.Iterations)
				}
				b.ReportMetric(float64(paraT), "para_time")
				b.ReportMetric(float64(spartaT), "sparta_time")
				b.ReportMetric(100*float64(paraT)/float64(spartaT), "imp_pct")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: Para-CONV's maximum retiming
// value per benchmark per PE count, at the a-priori objective
// schedule.  Reported metric: rmax.
func BenchmarkTable2(b *testing.B) {
	for _, bm := range bench.Suite {
		g := benchGraph(b, bm)
		base, err := sched.Objective(g, bench.PECounts[0])
		if err != nil {
			b.Fatal(err)
		}
		for _, pes := range bench.PECounts {
			b.Run(fmt.Sprintf("%s/pe%d", bm.Name, pes), func(b *testing.B) {
				cfg := pim.Neurocube(pes)
				var rmax int
				for i := 0; i < b.N; i++ {
					plan, err := sched.ParaCONVGivenSchedule(g, base, cfg)
					if err != nil {
						b.Fatal(err)
					}
					rmax = plan.RMax
				}
				b.ReportMetric(float64(rmax), "rmax")
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: per-iteration execution time
// normalized to the baseline on 64 PEs.  Reported metric: norm_time.
func BenchmarkFig5(b *testing.B) {
	for _, bm := range bench.Suite {
		g := benchGraph(b, bm)
		sp64, err := sched.SPARTA(g, pim.Neurocube(64))
		if err != nil {
			b.Fatal(err)
		}
		baseTime := sp64.IterationTime()
		for _, pes := range bench.PECounts {
			b.Run(fmt.Sprintf("%s/pe%d", bm.Name, pes), func(b *testing.B) {
				cfg := pim.Neurocube(pes)
				var norm float64
				for i := 0; i < b.N; i++ {
					pc, err := sched.ParaCONV(g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					norm = pc.IterationTime() / baseTime
				}
				b.ReportMetric(norm, "norm_time")
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: IPRs allocated to on-chip cache
// per benchmark per PE count.  Reported metric: cached_iprs.
func BenchmarkFig6(b *testing.B) {
	for _, bm := range bench.Suite {
		g := benchGraph(b, bm)
		base, err := sched.Objective(g, bench.PECounts[0])
		if err != nil {
			b.Fatal(err)
		}
		for _, pes := range bench.PECounts {
			b.Run(fmt.Sprintf("%s/pe%d", bm.Name, pes), func(b *testing.B) {
				cfg := pim.Neurocube(pes)
				var cached int
				for i := 0; i < b.N; i++ {
					plan, err := sched.ParaCONVGivenSchedule(g, base, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cached = plan.CachedIPRs
				}
				b.ReportMetric(float64(cached), "cached_iprs")
			})
		}
	}
}

// BenchmarkAblationDPvsGreedy quantifies the optimal dynamic program's
// profit advantage over the density-greedy heuristic on random item
// sets.  Reported metric: greedy_gap_pct (how much profit greedy
// leaves on the table).
func BenchmarkAblationDPvsGreedy(b *testing.B) {
	// An instance where density order misleads: the high-density unit
	// item blocks the pair that would fill the capacity exactly.
	// Greedy banks 5 (unit item + one pair), the DP finds 6.
	items := []core.Item{
		{Edge: 0, Size: 1, DeltaR: 2},
		{Edge: 1, Size: 2, DeltaR: 3},
		{Edge: 2, Size: 2, DeltaR: 3},
	}
	const capacity = 4
	var dpProfit, greedyProfit int
	for i := 0; i < b.N; i++ {
		_, dpProfit = core.Knapsack(items, capacity)
		_, greedyProfit = core.Greedy(items, capacity)
	}
	if dpProfit > 0 {
		b.ReportMetric(100*float64(dpProfit-greedyProfit)/float64(dpProfit), "greedy_gap_pct")
	}
}

// BenchmarkAblationGroups compares adaptive group replication against
// the single-kernel configuration on a small benchmark where the
// difference is structural.  Reported metric: single_over_adaptive.
func BenchmarkAblationGroups(b *testing.B) {
	bm, err := bench.ByName("flower")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(64)
	var adaptive, single int
	for i := 0; i < b.N; i++ {
		ap, err := sched.ParaCONV(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := sched.ParaCONVSingle(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		adaptive = ap.TotalTime(bench.Iterations)
		single = sp.TotalTime(bench.Iterations)
	}
	b.ReportMetric(float64(single)/float64(adaptive), "single_over_adaptive")
}

// BenchmarkAblationZeroDeltaFill measures how much eDRAM traffic the
// §3.3.3 zero-ΔR back-fill saves on the largest benchmark.  Reported
// metric: edram_bytes with and without the fill are compared via
// fill_savings_pct.
func BenchmarkAblationZeroDeltaFill(b *testing.B) {
	bm, err := bench.ByName("flower")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(64)
	var withFill, withoutFill int64
	for i := 0; i < b.N; i++ {
		plan, err := sched.ParaCONVSingle(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := sim.Run(plan, cfg, bench.Iterations)
		if err != nil {
			b.Fatal(err)
		}
		withFill = stats.EDRAMBytes
		// Strip the filler: rebuild traffic with only the DP
		// competitors cached (every zero-ΔR edge back to eDRAM).
		tm := plan.Iter.Timing()
		classes, err := retime.Classify(plan.Iter.Graph, tm)
		if err != nil {
			b.Fatal(err)
		}
		bare := plan
		noFill := retime.AllEDRAM(plan.Iter.Graph.NumEdges())
		load := 0
		for j := range classes {
			if classes[j].DeltaR() > 0 && plan.Iter.Assignment[j] == pim.InCache {
				noFill[j] = pim.InCache
				load += plan.Iter.Graph.Edge(dag.EdgeID(j)).Size
			}
		}
		bare.Iter.Assignment = noFill
		bare.CacheLoadUnits = load
		bareStats, err := sim.Run(bare, cfg, bench.Iterations)
		if err != nil {
			b.Fatal(err)
		}
		withoutFill = bareStats.EDRAMBytes
	}
	if withoutFill > 0 {
		b.ReportMetric(100*float64(withoutFill-withFill)/float64(withoutFill), "fill_savings_pct")
	}
}

// BenchmarkPlanning measures raw planning throughput (graphs per
// second) on the largest benchmark — the cost of running Para-CONV's
// whole pipeline.
func BenchmarkPlanning(b *testing.B) {
	for _, name := range []string{"cat", "string-matching", "protein"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		g := benchGraph(b, bm)
		cfg := pim.Neurocube(64)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.ParaCONV(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulation measures simulator throughput.
func BenchmarkSimulation(b *testing.B) {
	bm, err := bench.ByName("protein")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(64)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(plan, cfg, bench.Iterations); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPacking compares the objective-kernel packing
// policies (topological, LPT, level-synchronized) on a mid-size
// benchmark: period (throughput) versus R_max (prologue).  Reported
// metrics: <policy>_period and <policy>_rmax.
func BenchmarkAblationPacking(b *testing.B) {
	bm, err := bench.ByName("shortest-path")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(32)
	for _, policy := range []sched.PackPolicy{sched.PackTopo, sched.PackLPT, sched.PackLevel} {
		b.Run(policy.String(), func(b *testing.B) {
			var period, rmax int
			for i := 0; i < b.N; i++ {
				iter, err := sched.ObjectiveWithPolicy(g, cfg.NumPEs, policy)
				if err != nil {
					b.Fatal(err)
				}
				plan, err := sched.ParaCONVGivenSchedule(g, iter, cfg)
				if err != nil {
					b.Fatal(err)
				}
				period = plan.Iter.Period
				rmax = plan.RMax
			}
			b.ReportMetric(float64(period), "period")
			b.ReportMetric(float64(rmax), "rmax")
		})
	}
}

// BenchmarkScalability sweeps synthetic sizes past the paper's largest
// benchmark, reporting the Para/SPARTA ratio per size.
func BenchmarkScalability(b *testing.B) {
	for _, v := range []int{256, 1024, 2048} {
		b.Run(fmt.Sprintf("v%d", v), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Scalability(32, []int{v})
				if err != nil {
					b.Fatal(err)
				}
				ratio = rows[0].Ratio
			}
			b.ReportMetric(ratio, "para_over_sparta")
		})
	}
}

// BenchmarkAblationClustering measures how much linear-chain
// clustering (internal/opt) helps on top of Para-CONV: IPRs
// eliminated outright versus managed by the DP.  Reported metrics:
// edges_removed_pct and clustered_over_raw (total-time ratio).
func BenchmarkAblationClustering(b *testing.B) {
	bm, err := bench.ByName("string-matching")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(32)
	var removed float64
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := opt.ClusterLinearChains(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := sched.ParaCONV(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		clustered, err := sched.ParaCONV(res.Graph, cfg)
		if err != nil {
			b.Fatal(err)
		}
		removed = 100 * float64(res.Merged) / float64(g.NumEdges())
		ratio = float64(clustered.TotalTime(bench.Iterations)) / float64(raw.TotalTime(bench.Iterations))
	}
	b.ReportMetric(removed, "edges_removed_pct")
	b.ReportMetric(ratio, "clustered_over_raw")
}

// BenchmarkAblationStaticVsDynamic compares Para-CONV's static kernel
// throughput against the self-timed dataflow bound with the same IPR
// placement.  Reported metric: static_frac_of_dynamic.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	bm, err := bench.ByName("string-matching")
	if err != nil {
		b.Fatal(err)
	}
	g := benchGraph(b, bm)
	cfg := pim.Neurocube(16)
	var frac float64
	for i := 0; i < b.N; i++ {
		plan, err := sched.ParaCONV(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		staticTput := float64(plan.ConcurrentIterations) / float64(plan.Iter.Period)
		logical := retime.Assignment(plan.Iter.Assignment[:g.NumEdges()])
		dyn, err := sim.Dynamic(g, cfg, logical, 200, 64)
		if err != nil {
			b.Fatal(err)
		}
		frac = staticTput / dyn.Throughput
	}
	b.ReportMetric(frac, "static_frac_of_dynamic")
}
