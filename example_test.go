package paraconv_test

import (
	"fmt"

	paraconv "repro"
)

// ExamplePlan shows the minimal pipeline: build a graph, plan it on a
// Neurocube PIM and compare with the baseline.  Everything is seeded,
// so the output is stable.
func ExamplePlan() {
	g, err := paraconv.Synthetic(paraconv.SynthParams{
		Name: "example", Vertices: 20, Edges: 45, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	cfg := paraconv.Neurocube(16)
	plan, err := paraconv.Plan(g, cfg)
	if err != nil {
		panic(err)
	}
	base, err := paraconv.Baseline(g, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("para-conv wins:", plan.TotalTime(100) < base.TotalTime(100))
	// Output:
	// para-conv wins: true
}

// ExampleNewGraph builds the paper's Figure 2(b) graph by hand.
func ExampleNewGraph() {
	g := paraconv.NewGraph("fig2b")
	var ids [5]paraconv.NodeID
	for i := range ids {
		ids[i] = g.AddNode(paraconv.Node{
			Name: fmt.Sprintf("T%d", i+1), Kind: paraconv.OpConv, Exec: 1,
		})
	}
	for _, p := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}} {
		g.AddEdge(paraconv.Edge{
			From: ids[p[0]], To: ids[p[1]], Size: 1, CacheTime: 0, EDRAMTime: 1,
		})
	}
	st, err := g.ComputeStats()
	if err != nil {
		panic(err)
	}
	fmt.Println(st)
	// Output:
	// fig2b: |V|=5 |E|=6 depth=3 Σc=5 critpath=3
}

// ExampleGoogLeNet lowers the real GoogLeNet to a task graph.
func ExampleGoogLeNet() {
	net, err := paraconv.GoogLeNet()
	if err != nil {
		panic(err)
	}
	g, err := paraconv.NetworkGraph(net, paraconv.Neurocube(64))
	if err != nil {
		panic(err)
	}
	fmt.Printf("GoogLeNet: %d compute ops, %d intermediate results\n",
		g.NumNodes(), g.NumEdges())
	// Output:
	// GoogLeNet: 72 compute ops, 152 intermediate results
}

// ExampleSimulate runs a plan on the PIM simulator and reads the
// data-movement ledger.
func ExampleSimulate() {
	g, err := paraconv.Synthetic(paraconv.SynthParams{
		Name: "simdemo", Vertices: 12, Edges: 24, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	cfg := paraconv.Neurocube(8)
	plan, err := paraconv.PlanSingleKernel(g, cfg)
	if err != nil {
		panic(err)
	}
	stats, err := paraconv.Simulate(plan, cfg, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println("iterations completed:", stats.Iterations)
	fmt.Println("cycles match plan:", stats.Cycles == plan.TotalTime(100))
	// Output:
	// iterations completed: 100
	// cycles match plan: true
}

// ExampleClusterChains eliminates linear-chain IPRs before planning.
func ExampleClusterChains() {
	g := paraconv.NewGraph("pipeline")
	var prev paraconv.NodeID
	for i := 0; i < 4; i++ {
		id := g.AddNode(paraconv.Node{Kind: paraconv.OpConv, Exec: 1})
		if i > 0 {
			g.AddEdge(paraconv.Edge{From: prev, To: id, Size: 1, EDRAMTime: 2})
		}
		prev = id
	}
	res, err := paraconv.ClusterChains(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clusters: %d, IPRs eliminated: %d\n", res.Graph.NumNodes(), res.Merged)
	// Output:
	// clusters: 1, IPRs eliminated: 3
}
