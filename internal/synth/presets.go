package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// Topology presets for stress tests: extreme graph shapes that bound
// the scheduler's behaviour from both sides.  Chain maximizes depth
// (worst case for the baseline's critical path), Wide maximizes
// parallel width (best case for within-iteration parallelism), Grid
// sits between with regular 2D dependencies (systolic-style stencils).

// Chain returns a pure pipeline of n vertices.
func Chain(n int, seed int64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("synth: Chain(%d); want >= 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New(fmt.Sprintf("chain-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode(dag.Node{Name: fmt.Sprintf("c%d", i), Kind: dag.OpConv, Exec: 1 + rng.Intn(4)})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(dag.Edge{
			From: dag.NodeID(i), To: dag.NodeID(i + 1),
			Size: 1 + rng.Intn(2), CacheTime: 0, EDRAMTime: 2 + rng.Intn(3),
		})
	}
	return g, g.Validate()
}

// Wide returns a source -> n parallel workers -> sink fan.
func Wide(n int, seed int64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("synth: Wide(%d); want >= 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New(fmt.Sprintf("wide-%d", n))
	src := g.AddNode(dag.Node{Name: "src", Kind: dag.OpConv, Exec: 1})
	snk := dag.NodeID(-1)
	workers := make([]dag.NodeID, n)
	for i := 0; i < n; i++ {
		workers[i] = g.AddNode(dag.Node{Name: fmt.Sprintf("w%d", i), Kind: dag.OpConv, Exec: 1 + rng.Intn(4)})
	}
	snk = g.AddNode(dag.Node{Name: "snk", Kind: dag.OpConv, Exec: 1})
	for _, w := range workers {
		g.AddEdge(dag.Edge{From: src, To: w, Size: 1, CacheTime: 0, EDRAMTime: 2 + rng.Intn(3)})
		g.AddEdge(dag.Edge{From: w, To: snk, Size: 1, CacheTime: 0, EDRAMTime: 2 + rng.Intn(3)})
	}
	return g, g.Validate()
}

// Grid returns a rows x cols stencil: each cell depends on its left
// and upper neighbours — the dependency shape of systolic matrix
// pipelines.
func Grid(rows, cols int, seed int64) (*dag.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("synth: Grid(%d, %d); want >= 1 each", rows, cols)
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New(fmt.Sprintf("grid-%dx%d", rows, cols))
	id := func(r, c int) dag.NodeID { return dag.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(dag.Node{
				Name: fmt.Sprintf("g%d_%d", r, c),
				Kind: dag.OpConv,
				Exec: 1 + rng.Intn(3),
			})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(dag.Edge{From: id(r, c), To: id(r, c+1), Size: 1, EDRAMTime: 2})
			}
			if r+1 < rows {
				g.AddEdge(dag.Edge{From: id(r, c), To: id(r+1, c), Size: 1, EDRAMTime: 2})
			}
		}
	}
	return g, g.Validate()
}
