package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
)

// SPParams parameterizes SeriesParallel.
type SPParams struct {
	// Name labels the generated graph.
	Name string
	// Depth is the recursion depth; each level either splits into
	// parallel branches (inception-style) or chains blocks in series.
	// Depth 0 yields a single vertex.
	Depth int
	// MaxBranch bounds the fan-out of a parallel split (>= 2);
	// zero defaults to 4, GoogLeNet's inception fan-out.
	MaxBranch int
	// Seed makes generation deterministic.
	Seed int64
	// MinExec and MaxExec bound vertex execution times; defaults [1,4].
	MinExec, MaxExec int
}

func (p SPParams) withDefaults() SPParams {
	if p.MaxBranch == 0 {
		p.MaxBranch = 4
	}
	if p.MinExec == 0 {
		p.MinExec = 1
	}
	if p.MaxExec == 0 {
		p.MaxExec = 4
	}
	return p
}

// SeriesParallel generates a random series-parallel DAG, the topology
// family GoogLeNet's inception modules live in: alternating series
// composition (layer stacks) and parallel composition (branch-and-
// concat).  The result always has a single source and a single sink.
func SeriesParallel(p SPParams) (*dag.Graph, error) {
	p = p.withDefaults()
	if p.Depth < 0 {
		return nil, fmt.Errorf("synth: Depth = %d; want >= 0", p.Depth)
	}
	if p.MaxBranch < 2 {
		return nil, fmt.Errorf("synth: MaxBranch = %d; want >= 2", p.MaxBranch)
	}
	if p.MinExec < 1 || p.MaxExec < p.MinExec {
		return nil, fmt.Errorf("synth: exec bounds [%d,%d] invalid", p.MinExec, p.MaxExec)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := dag.New(p.Name)

	newVertex := func() dag.NodeID {
		return g.AddNode(dag.Node{
			Name: fmt.Sprintf("sp%d", g.NumNodes()),
			Kind: dag.OpConv,
			Exec: p.MinExec + rng.Intn(p.MaxExec-p.MinExec+1),
		})
	}
	connect := func(a, b dag.NodeID) {
		g.AddEdge(dag.Edge{
			From: a, To: b,
			Size:      1 + rng.Intn(2),
			CacheTime: 0,
			EDRAMTime: 1 + rng.Intn(2),
		})
	}

	// build returns the (source, sink) of a sub-DAG of the given depth.
	var build func(depth int) (dag.NodeID, dag.NodeID)
	build = func(depth int) (dag.NodeID, dag.NodeID) {
		if depth == 0 {
			v := newVertex()
			return v, v
		}
		if rng.Intn(2) == 0 {
			// Series: chain 2-3 blocks.
			blocks := 2 + rng.Intn(2)
			src, snk := build(depth - 1)
			for i := 1; i < blocks; i++ {
				s2, k2 := build(depth - 1)
				connect(snk, s2)
				snk = k2
			}
			return src, snk
		}
		// Parallel: fork into branches between a fresh split vertex
		// and a fresh join vertex.
		split, join := newVertex(), newVertex()
		branches := 2 + rng.Intn(p.MaxBranch-1)
		for i := 0; i < branches; i++ {
			s, k := build(depth - 1)
			connect(split, s)
			connect(k, join)
		}
		return split, join
	}

	build(p.Depth)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("synth: series-parallel graph invalid: %w", err)
	}
	return g, nil
}
