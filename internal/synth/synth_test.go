package synth

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestGenerateExactCounts(t *testing.T) {
	cases := []struct{ v, e int }{
		{9, 21}, {13, 28}, {21, 51}, {46, 121}, {102, 267}, {546, 1449},
	}
	for _, c := range cases {
		g, err := Generate(Params{Name: "g", Vertices: c.v, Edges: c.e, Seed: 42})
		if err != nil {
			t.Fatalf("Generate(%d,%d): %v", c.v, c.e, err)
		}
		if g.NumNodes() != c.v || g.NumEdges() != c.e {
			t.Errorf("Generate(%d,%d) produced |V|=%d |E|=%d", c.v, c.e, g.NumNodes(), g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Generate(%d,%d) invalid: %v", c.v, c.e, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "d", Vertices: 50, Edges: 130, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("sizes differ between identical seeds")
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(dag.EdgeID(i)), b.Edge(dag.EdgeID(i))
		if *ea != *eb {
			t.Fatalf("edge %d differs: %+v vs %+v", i, *ea, *eb)
		}
	}
	for i := range a.Nodes() {
		na, nb := a.Node(dag.NodeID(i)), b.Node(dag.NodeID(i))
		if *na != *nb {
			t.Fatalf("node %d differs: %+v vs %+v", i, *na, *nb)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(Params{Vertices: 60, Edges: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Vertices: 60, Edges: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Edges() {
		if a.Edge(dag.EdgeID(i)).From != b.Edge(dag.EdgeID(i)).From ||
			a.Edge(dag.EdgeID(i)).To != b.Edge(dag.EdgeID(i)).To {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical edge structure")
	}
}

func TestGenerateAllConnectedBeyondLayer0(t *testing.T) {
	g, err := Generate(Params{Vertices: 100, Edges: 260, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex outside level 0 must have a predecessor.
	for l := 1; l < len(levels); l++ {
		for _, v := range levels[l] {
			if g.InDegree(v) == 0 {
				t.Errorf("vertex %d at level %d has no predecessor", v, l)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want string
	}{
		{"zero vertices", Params{Vertices: 0, Edges: 0}, "Vertices"},
		{"too few edges", Params{Vertices: 50, Edges: 1, Seed: 1}, "infeasible"},
		{"too many edges", Params{Vertices: 5, Edges: 1000, Seed: 1, Layers: 2}, "infeasible"},
		{"layers exceed vertices", Params{Vertices: 3, Edges: 2, Layers: 10}, "Layers"},
		{"bad exec bounds", Params{Vertices: 5, Edges: 4, MinExec: 3, MaxExec: 2}, "exec bounds"},
		{"bad size bounds", Params{Vertices: 5, Edges: 4, MinSize: 3, MaxSize: 1}, "size bounds"},
		{"bad pool fraction", Params{Vertices: 5, Edges: 4, PoolFraction: 2}, "PoolFraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Generate(tc.p)
			if err == nil {
				t.Fatal("Generate returned nil error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestGenerateDenseBudgetUsesFallback(t *testing.T) {
	// Near-maximal edge budget forces the deterministic fallback scan.
	// 6 vertices, 2 layers (3+3 at best): ask for a budget close to
	// the max for whatever split the seed makes; probe feasibility by
	// starting high and backing off.
	for e := 9; e >= 5; e-- {
		g, err := Generate(Params{Vertices: 6, Edges: e, Seed: 11, Layers: 2})
		if err != nil {
			continue
		}
		if g.NumEdges() != e {
			t.Fatalf("want %d edges, got %d", e, g.NumEdges())
		}
		return
	}
	t.Fatal("no feasible dense budget found")
}

// Property: generated graphs are always acyclic with exact counts and
// valid weights, across seeds and sizes.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, vRaw, densRaw uint8) bool {
		v := int(vRaw%120) + 5
		// Edge budget between min feasible and a modest multiple; the
		// request can overshoot the layered maximum for tiny vertex
		// counts, so walk DOWN from the request toward the minimum and
		// give up (vacuous pass) if nothing in the range is feasible.
		for e := v - 1 + int(densRaw)%v; e >= 1; e-- {
			g, err := Generate(Params{Vertices: v, Edges: e, Seed: seed})
			if err != nil {
				if strings.Contains(err.Error(), "infeasible") {
					continue
				}
				return false
			}
			return g.IsAcyclic() && g.NumNodes() == v && g.Validate() == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesParallel(t *testing.T) {
	g, err := SeriesParallel(SPParams{Name: "sp", Depth: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("series-parallel invalid: %v", err)
	}
	if g.NumNodes() < 2 {
		t.Errorf("|V| = %d; suspiciously small for depth 4", g.NumNodes())
	}
}

func TestSeriesParallelDepthZero(t *testing.T) {
	g, err := SeriesParallel(SPParams{Depth: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("depth 0: |V|=%d |E|=%d, want 1/0", g.NumNodes(), g.NumEdges())
	}
}

func TestSeriesParallelErrors(t *testing.T) {
	if _, err := SeriesParallel(SPParams{Depth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := SeriesParallel(SPParams{Depth: 1, MaxBranch: 1}); err == nil {
		t.Error("MaxBranch 1 accepted")
	}
	if _, err := SeriesParallel(SPParams{Depth: 1, MinExec: 5, MaxExec: 2}); err == nil {
		t.Error("inverted exec bounds accepted")
	}
}

func TestSeriesParallelDeterministic(t *testing.T) {
	p := SPParams{Depth: 5, Seed: 123}
	a, _ := SeriesParallel(p)
	b, _ := SeriesParallel(p)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("series-parallel not deterministic")
	}
}

func TestChainPreset(t *testing.T) {
	g, err := Chain(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || g.NumEdges() != 19 {
		t.Errorf("|V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	}
	if w, err := g.MaxWidth(); err != nil || w != 1 {
		t.Errorf("chain width = %d (err %v)", w, err)
	}
	if _, err := Chain(0, 1); err == nil {
		t.Error("Chain(0) accepted")
	}
}

func TestWidePreset(t *testing.T) {
	g, err := Wide(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 18 || g.NumEdges() != 32 {
		t.Errorf("|V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	}
	if w, err := g.MaxWidth(); err != nil || w != 16 {
		t.Errorf("wide width = %d (err %v)", w, err)
	}
	if _, err := Wide(0, 1); err == nil {
		t.Error("Wide(0) accepted")
	}
}

func TestGridPreset(t *testing.T) {
	g, err := Grid(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 {
		t.Errorf("|V| = %d", g.NumNodes())
	}
	// Edges: right 4x4 + down 3x5 = 16 + 15 = 31.
	if g.NumEdges() != 31 {
		t.Errorf("|E| = %d, want 31", g.NumEdges())
	}
	// Depth = rows + cols - 1 levels.
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(levels); got != 8 {
		t.Errorf("grid depth = %d, want 8", got)
	}
	if _, err := Grid(0, 3, 1); err == nil {
		t.Error("Grid(0,3) accepted")
	}
}

func TestPresetsSchedulable(t *testing.T) {
	chain, _ := Chain(30, 5)
	wide, _ := Wide(30, 5)
	grid, _ := Grid(6, 6, 5)
	for _, g := range []*dag.Graph{chain, wide, grid} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}
