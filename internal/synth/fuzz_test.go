package synth_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/synth"
)

// FuzzSynthGenerate drives the generator with arbitrary parameter
// triples.  Whenever Generate accepts the parameters, its output must
// be a valid DAG (per the invariant layer) with exactly the requested
// vertex and edge counts; whenever it rejects them, it must do so with
// an error, never a panic.
func FuzzSynthGenerate(f *testing.F) {
	f.Add(10, 20, int64(1))
	f.Add(1, 0, int64(0))
	f.Add(30, 75, int64(42))
	f.Add(100, 260, int64(3))
	f.Add(2, 1, int64(-7))
	f.Fuzz(func(t *testing.T, vertices, edges int, seed int64) {
		// Keep the search space tractable: the generator's cost grows
		// with the counts, and huge values only test the validator.
		if vertices < 0 || vertices > 300 || edges < 0 || edges > 3000 {
			t.Skip()
		}
		g, err := synth.Generate(synth.Params{
			Name:     "fuzz",
			Vertices: vertices,
			Edges:    edges,
			Seed:     seed,
		})
		if err != nil {
			return // rejected parameters are fine; panics are not
		}
		if err := check.CheckDAG(g); err != nil {
			t.Fatalf("Generate(%d,%d,%d) produced invalid graph: %v", vertices, edges, seed, err)
		}
		if g.NumNodes() != vertices || g.NumEdges() != edges {
			t.Fatalf("Generate(%d,%d,%d) produced |V|=%d |E|=%d; want exact counts",
				vertices, edges, seed, g.NumNodes(), g.NumEdges())
		}
	})
}
