package wire

import (
	"errors"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/synth"
)

func peerFillGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "peerfill", Vertices: 24, Edges: 50, Seed: 11})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return g
}

func TestPeerFillRoundTrip(t *testing.T) {
	g := peerFillGraph(t)
	cfg := pim.Neurocube(32)
	frame := AppendPeerFill(nil, "para-conv", cfg, g)

	pf, got, err := DecodePeerFill(frame, dag.Limits{})
	if err != nil {
		t.Fatalf("DecodePeerFill: %v", err)
	}
	if pf.Variant != "para-conv" {
		t.Errorf("Variant = %q, want para-conv", pf.Variant)
	}
	if pf.Config != cfg {
		// pim.Config is a flat comparable struct, so equality here
		// proves every field survived — which is what keeps the owner's
		// config fingerprint byte-identical to the requester's.
		t.Errorf("Config = %+v, want %+v", pf.Config, cfg)
	}
	if !equalGraphBytes(g, got) {
		t.Error("graph did not round-trip")
	}
}

func equalGraphBytes(a, b *dag.Graph) bool {
	return string(dag.AppendBinary(nil, a)) == string(dag.AppendBinary(nil, b))
}

func TestPeerFillMissingGraph(t *testing.T) {
	frame := AppendPeerFill(nil, "para-conv", pim.Neurocube(8), nil)
	if _, _, err := DecodePeerFill(frame, dag.Limits{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("err = %v, want ErrNoGraph", err)
	}
}

func TestPeerFillGraphLimit(t *testing.T) {
	frame := AppendPeerFill(nil, "para-conv", pim.Neurocube(8), peerFillGraph(t))
	_, _, err := DecodePeerFill(frame, dag.Limits{MaxNodes: 3})
	var lim *dag.LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v, want *dag.LimitError", err)
	}
}

// TestPeerFillTruncation decodes every prefix of a valid frame; all
// must fail cleanly, none may panic.
func TestPeerFillTruncation(t *testing.T) {
	frame := AppendPeerFill(nil, "para-conv", pim.Neurocube(8), peerFillGraph(t))
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodePeerFill(frame[:n], dag.Limits{}); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded without error", n, len(frame))
		}
	}
}

func TestPeerFillWrongKind(t *testing.T) {
	p := testPlan(t)
	if _, _, err := DecodePeerFill(AppendPlan(nil, p), dag.Limits{}); err == nil {
		t.Fatal("stored-plan frame decoded as a peer fill")
	}
}
