//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on its own, so AllocsPerRun gates are
// skipped under -race.
const raceEnabled = true
