package wire

import (
	"repro/internal/dag"
	"repro/internal/pim"
)

// The peer-fill frame is the request body of the cluster's
// GET /v1/plans/{fp} fill protocol (internal/cluster): a non-owner
// node that misses its local tiers ships the complete planning problem
// — variant, architecture configuration, and the kernel graph as the
// trailing dag frame — to the fingerprint's owner, which answers with
// a stored-plan frame (AppendPlan).  Carrying the full problem, not
// just the fingerprint, is what lets the owner solve on behalf of the
// whole fleet when it has never seen the graph either: that is how N
// identical bursts across the cluster collapse to one solve.
//
// Every pim.Config field is carried explicitly so the owner's
// reconstructed config fingerprint is byte-identical to the
// requester's; the dag binary codec round-trips exactly, so the graph
// fingerprint matches too, and the owner can verify the URL's
// fingerprint against the body before doing any work.

// kindPeerFill is the frame kind byte of a cluster peer-fill request.
const kindPeerFill = 'F'

// PeerFill is one decoded fill request: the planner variant and the
// target architecture.  The graph travels as the trailing dag frame
// and is returned separately by DecodePeerFill.
type PeerFill struct {
	Variant string
	Config  pim.Config
}

// AppendPeerFill appends the binary encoding of a fill request to dst.
func AppendPeerFill(dst []byte, variant string, cfg pim.Config, g *dag.Graph) []byte {
	dst = appendHeader(dst, kindPeerFill)
	dst = appendString(dst, variant)
	dst = appendString(dst, cfg.Name)
	dst = appendInt(dst, cfg.NumPEs)
	dst = appendInt(dst, cfg.CacheUnitsPerPE)
	dst = appendInt(dst, cfg.CacheBytesPerUnit)
	dst = appendInt(dst, cfg.NumVaults)
	dst = appendInt(dst, cfg.RegFileEntries)
	dst = appendInt(dst, cfg.PFIFODepth)
	dst = appendInt(dst, cfg.IFIFODepth)
	dst = appendInt(dst, cfg.OFIFODepth)
	dst = appendInt(dst, cfg.CacheAccessCycles)
	dst = appendInt(dst, cfg.EDRAMAccessCycles)
	dst = appendInt(dst, cfg.HopCycles)
	dst = appendFloat(dst, cfg.CacheEnergyPJPerByte)
	dst = appendFloat(dst, cfg.EDRAMEnergyPJPerByte)
	dst = appendInt(dst, cfg.CyclesPerTimeUnit)
	if g != nil {
		dst = dag.AppendBinary(dst, g)
	}
	return dst
}

// DecodePeerFill parses a fill frame and decodes the trailing graph
// under lim.  A missing graph is ErrNoGraph; graph failures surface as
// *GraphError so servers map them like any other bad graph.
func DecodePeerFill(data []byte, lim dag.Limits) (*PeerFill, *dag.Graph, error) {
	d, err := newDecoder(data, kindPeerFill)
	if err != nil {
		return nil, nil, err
	}
	pf := &PeerFill{}
	if pf.Variant, err = d.str("variant"); err != nil {
		return nil, nil, err
	}
	if pf.Config.Name, err = d.str("config name"); err != nil {
		return nil, nil, err
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{
		{"num_pes", &pf.Config.NumPEs},
		{"cache_units_per_pe", &pf.Config.CacheUnitsPerPE},
		{"cache_bytes_per_unit", &pf.Config.CacheBytesPerUnit},
		{"num_vaults", &pf.Config.NumVaults},
		{"regfile_entries", &pf.Config.RegFileEntries},
		{"pfifo_depth", &pf.Config.PFIFODepth},
		{"ififo_depth", &pf.Config.IFIFODepth},
		{"ofifo_depth", &pf.Config.OFIFODepth},
		{"cache_access_cycles", &pf.Config.CacheAccessCycles},
		{"edram_access_cycles", &pf.Config.EDRAMAccessCycles},
		{"hop_cycles", &pf.Config.HopCycles},
	} {
		if *f.dst, err = d.integer(f.what); err != nil {
			return nil, nil, err
		}
	}
	if pf.Config.CacheEnergyPJPerByte, err = d.float("cache_energy_pj"); err != nil {
		return nil, nil, err
	}
	if pf.Config.EDRAMEnergyPJPerByte, err = d.float("edram_energy_pj"); err != nil {
		return nil, nil, err
	}
	if pf.Config.CyclesPerTimeUnit, err = d.integer("cycles_per_time_unit"); err != nil {
		return nil, nil, err
	}
	if d.off == len(d.data) {
		return nil, nil, ErrNoGraph
	}
	g, err := dag.DecodeBinary(d.data[d.off:], lim)
	if err != nil {
		return nil, nil, &GraphError{Err: err}
	}
	return pf, g, nil
}
