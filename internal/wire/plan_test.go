package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/synth"
)

// testPlan solves a small synthetic graph so the fixture exercises the
// real field population (retiming vectors, assignments, prologue).
func testPlan(t *testing.T) *sched.Plan {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "wireplan", Vertices: 40, Edges: 90, Seed: 7})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	p, err := sched.ParaCONV(g, pim.Neurocube(8))
	if err != nil {
		t.Fatalf("ParaCONV: %v", err)
	}
	return p
}

func graphBytes(t *testing.T, g *dag.Graph) []byte {
	t.Helper()
	if g == nil {
		return nil
	}
	return dag.AppendBinary(nil, g)
}

func plansEqual(t *testing.T, want, got *sched.Plan) {
	t.Helper()
	if want.Scheme != got.Scheme {
		t.Errorf("Scheme = %q, want %q", got.Scheme, want.Scheme)
	}
	if !bytes.Equal(graphBytes(t, want.Iter.Graph), graphBytes(t, got.Iter.Graph)) {
		t.Error("kernel graph did not round-trip")
	}
	if want.Iter.PEs != got.Iter.PEs || want.Iter.Period != got.Iter.Period {
		t.Errorf("Iter PEs/Period = %d/%d, want %d/%d", got.Iter.PEs, got.Iter.Period, want.Iter.PEs, want.Iter.Period)
	}
	if len(want.Iter.Tasks) != len(got.Iter.Tasks) {
		t.Fatalf("%d tasks, want %d", len(got.Iter.Tasks), len(want.Iter.Tasks))
	}
	for i := range want.Iter.Tasks {
		if want.Iter.Tasks[i] != got.Iter.Tasks[i] {
			t.Errorf("task %d = %+v, want %+v", i, got.Iter.Tasks[i], want.Iter.Tasks[i])
		}
	}
	if len(want.Iter.Assignment) != len(got.Iter.Assignment) {
		t.Fatalf("%d assignments, want %d", len(got.Iter.Assignment), len(want.Iter.Assignment))
	}
	for i := range want.Iter.Assignment {
		if want.Iter.Assignment[i] != got.Iter.Assignment[i] {
			t.Errorf("assignment %d = %v, want %v", i, got.Iter.Assignment[i], want.Iter.Assignment[i])
		}
	}
	if want.ConcurrentIterations != got.ConcurrentIterations || want.RMax != got.RMax ||
		want.CachedIPRs != got.CachedIPRs || want.CacheLoadUnits != got.CacheLoadUnits {
		t.Errorf("plan scalars = %d/%d/%d/%d, want %d/%d/%d/%d",
			got.ConcurrentIterations, got.RMax, got.CachedIPRs, got.CacheLoadUnits,
			want.ConcurrentIterations, want.RMax, want.CachedIPRs, want.CacheLoadUnits)
	}
	for _, r := range []struct {
		name       string
		want, got  []int
		wantScalar [2]int
		gotScalar  [2]int
	}{
		{"Retiming.R", want.Retiming.R, got.Retiming.R,
			[2]int{want.Retiming.RMax, want.Retiming.Period}, [2]int{got.Retiming.RMax, got.Retiming.Period}},
		{"Retiming.REdge", want.Retiming.REdge, got.Retiming.REdge, [2]int{}, [2]int{}},
		{"LogicalRetiming.R", want.LogicalRetiming.R, got.LogicalRetiming.R,
			[2]int{want.LogicalRetiming.RMax, want.LogicalRetiming.Period}, [2]int{got.LogicalRetiming.RMax, got.LogicalRetiming.Period}},
		{"LogicalRetiming.REdge", want.LogicalRetiming.REdge, got.LogicalRetiming.REdge, [2]int{}, [2]int{}},
	} {
		if len(r.want) != len(r.got) {
			t.Errorf("%s has %d entries, want %d", r.name, len(r.got), len(r.want))
			continue
		}
		for i := range r.want {
			if r.want[i] != r.got[i] {
				t.Errorf("%s[%d] = %d, want %d", r.name, i, r.got[i], r.want[i])
			}
		}
		if r.wantScalar != r.gotScalar {
			t.Errorf("%s rmax/period = %v, want %v", r.name, r.gotScalar, r.wantScalar)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	plan := testPlan(t)
	frame := AppendPlan(nil, plan)
	got, err := DecodePlan(frame, dag.Limits{})
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	plansEqual(t, plan, got)
	if err := got.Iter.Validate(); err != nil {
		t.Fatalf("decoded plan fails schedule validation: %v", err)
	}
	// Re-encoding the decoded plan must be byte-identical: the frame is
	// deterministic, so the store's content addressing is stable.
	again := AppendPlan(nil, got)
	if !bytes.Equal(frame, again) {
		t.Error("re-encoded frame differs from the original")
	}
}

func TestPlanDecodeTruncation(t *testing.T) {
	frame := AppendPlan(nil, testPlan(t))
	for i := 0; i < len(frame); i++ {
		if _, err := DecodePlan(frame[:i], dag.Limits{}); err == nil {
			t.Fatalf("DecodePlan accepted a frame truncated to %d/%d bytes", i, len(frame))
		}
	}
}

func TestPlanDecodeTrailingBytes(t *testing.T) {
	frame := AppendPlan(nil, testPlan(t))
	if _, err := DecodePlan(append(frame, 0), dag.Limits{}); err == nil {
		t.Fatal("DecodePlan accepted a frame with a trailing byte")
	}
}

func TestPlanDecodeBadPlacement(t *testing.T) {
	plan := testPlan(t)
	if len(plan.Iter.Assignment) == 0 {
		t.Skip("fixture plan has no assignments")
	}
	frame := AppendPlan(nil, plan)
	// Corrupt every byte position and require that at least one
	// corruption is rejected as a bad placement (the others fail as
	// truncation/overrun/trailing errors or decode to different valid
	// plans; none may panic).
	sawPlacementErr := false
	for i := 4; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xff
		_, err := DecodePlan(mut, dag.Limits{})
		if err != nil && strings.Contains(err.Error(), "placement byte") {
			sawPlacementErr = true
			break
		}
	}
	if !sawPlacementErr {
		t.Error("no single-byte corruption produced a placement-byte rejection")
	}
}

func TestPlanDecodeGraphLimits(t *testing.T) {
	frame := AppendPlan(nil, testPlan(t))
	_, err := DecodePlan(frame, dag.Limits{MaxNodes: 2})
	if err == nil {
		t.Fatal("DecodePlan ignored the graph node cap")
	}
	var lim *dag.LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("cap violation surfaced as %T (%v), want *dag.LimitError", err, err)
	}
}

// leanPlan builds a plan whose kernel replicates the problem graph
// across several concurrent iterations, so lean decoding exercises the
// Replicate rebuild, not just the aliasing fast path.
func leanPlan(t *testing.T) (*sched.Plan, *dag.Graph) {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "wirelean", Vertices: 6, Edges: 8, Seed: 11})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	p, err := sched.ParaCONV(g, pim.Neurocube(16))
	if err != nil {
		t.Fatalf("ParaCONV: %v", err)
	}
	return p, g
}

func TestLeanPlanRoundTrip(t *testing.T) {
	plan, g := leanPlan(t)
	if plan.ConcurrentIterations <= 1 {
		t.Fatalf("fixture has CI=%d; want a multi-group plan to exercise the kernel rebuild", plan.ConcurrentIterations)
	}
	frame := AppendLeanPlan(nil, plan)
	full := AppendPlan(nil, plan)
	if len(frame) >= len(full) {
		t.Errorf("lean frame is %d bytes, full frame %d — stripping the kernel saved nothing", len(frame), len(full))
	}
	if !LeanPlanFrame(frame) || LeanPlanFrame(full) {
		t.Error("LeanPlanFrame misclassifies the framings")
	}
	got, err := DecodeLeanPlan(frame, g)
	if err != nil {
		t.Fatalf("DecodeLeanPlan: %v", err)
	}
	plansEqual(t, plan, got)
	if err := got.Iter.Validate(); err != nil {
		t.Fatalf("lean-decoded plan fails schedule validation: %v", err)
	}
}

func TestLeanPlanAliasesSingleIterationKernel(t *testing.T) {
	g, err := synth.Generate(synth.Params{Name: "wireplan", Vertices: 40, Edges: 90, Seed: 7})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	plan, err := sched.ParaCONV(g, pim.Neurocube(4))
	if err != nil {
		t.Fatalf("ParaCONV: %v", err)
	}
	if plan.ConcurrentIterations != 1 {
		t.Fatalf("fixture has CI=%d; the aliasing path needs 1", plan.ConcurrentIterations)
	}
	got, err := DecodeLeanPlan(AppendLeanPlan(nil, plan), g)
	if err != nil {
		t.Fatalf("DecodeLeanPlan: %v", err)
	}
	if got.Iter.Graph != g {
		t.Error("single-iteration lean decode did not alias the problem graph")
	}
	plansEqual(t, plan, got)
}

func TestPlanFrameToLean(t *testing.T) {
	plan, g := leanPlan(t)
	spliced, err := PlanFrameToLean(AppendPlan(nil, plan))
	if err != nil {
		t.Fatalf("PlanFrameToLean: %v", err)
	}
	// The splice must be byte-identical to a direct lean encode, so an
	// owner serving from a store payload and one serving from its
	// memory tier hand out the same bytes.
	if !bytes.Equal(spliced, AppendLeanPlan(nil, plan)) {
		t.Error("spliced lean frame differs from a direct lean encode")
	}
	got, err := DecodeFillPlan(spliced, g, dag.Limits{})
	if err != nil {
		t.Fatalf("DecodeFillPlan(lean): %v", err)
	}
	plansEqual(t, plan, got)

	// DecodeFillPlan must also pass full frames through.
	got, err = DecodeFillPlan(AppendPlan(nil, plan), nil, dag.Limits{})
	if err != nil {
		t.Fatalf("DecodeFillPlan(full): %v", err)
	}
	plansEqual(t, plan, got)
}

func TestLeanPlanRejections(t *testing.T) {
	plan, g := leanPlan(t)

	other := *plan
	other.Scheme = "sparta"
	if _, err := PlanFrameToLean(AppendPlan(nil, plan)[:8]); err == nil {
		t.Error("PlanFrameToLean accepted a truncated frame")
	}
	if _, err := PlanFrameToLean(AppendPlan(nil, &other)); err == nil {
		t.Error("PlanFrameToLean accepted a non-para-conv scheme")
	}
	if _, err := DecodeLeanPlan(AppendLeanPlan(nil, &other), g); err == nil {
		t.Error("DecodeLeanPlan accepted a non-para-conv scheme")
	}
	if _, err := DecodeLeanPlan(AppendLeanPlan(nil, plan), nil); err == nil {
		t.Error("DecodeLeanPlan accepted a nil problem graph")
	}
	if _, err := DecodeLeanPlan(AppendPlan(nil, plan), g); err == nil {
		t.Error("DecodeLeanPlan accepted a stored-plan frame")
	}
}
