// Package wire defines the planning service's exchange types and the
// negotiated codecs that carry them.
//
// Every payload has two byte-level representations: JSON (the default,
// human-debuggable) and a length-prefixed binary frame (varint-encoded,
// deterministic, built for the zero-alloc serving path).  Clients pick
// the request codec with the Content-Type header and the response
// codec with Accept; `application/x-paraconv-bin` selects the binary
// frames, anything JSON-ish falls back to text, and unknown media
// types are rejected with 415.  Error bodies are always JSON,
// whichever codec the payloads use — a client that cannot parse the
// frame it asked for must still be able to read why.
package wire

// ContentTypeJSON and ContentTypeBinary are the media types the
// service negotiates between.  Requests with no Content-Type are
// treated as JSON.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-paraconv-bin"
)

// Request is the body shared by the three solve endpoints.  Every
// field except the graph is optional.
type Request struct {
	// Graph is the task graph in the dag text format.  Binary-framed
	// requests carry the graph as a trailing dag binary frame instead
	// and leave this field empty.
	Graph string `json:"graph"`
	// Arch names an architecture preset: neurocube (default), prime,
	// hmc2 or edge.  Selectarch ignores it in favour of Archs.
	Arch string `json:"arch"`
	// Archs is the candidate list for /v1/selectarch; empty means
	// every preset.
	Archs []string `json:"archs"`
	// PEs is the processing-engine count (default 16).
	PEs int `json:"pes"`
	// Iterations sizes the predicted totals and the simulation
	// horizon (default 100).
	Iterations int `json:"iterations"`
	// Variant picks the planner: para-conv (default),
	// para-conv-single, sparta or naive.
	Variant string `json:"variant"`
	// TimeoutMS caps this request's solve time; 0 uses the server's
	// default request timeout.
	TimeoutMS int `json:"timeout_ms"`
}

// PlanResponse is the /v1/plan result: the Para-CONV decision plus
// its predicted cost over the requested iteration count.
type PlanResponse struct {
	Scheme               string  `json:"scheme"`
	Arch                 string  `json:"arch"`
	PEs                  int     `json:"pes"`
	Period               int     `json:"period"`
	ConcurrentIterations int     `json:"concurrent_iterations"`
	RMax                 int     `json:"r_max"`
	PrologueTime         int     `json:"prologue_time"`
	CachedIPRs           int     `json:"cached_iprs"`
	CacheLoadUnits       int     `json:"cache_load_units"`
	Vertices             int     `json:"vertices"`
	Edges                int     `json:"edges"`
	Iterations           int     `json:"iterations"`
	TotalTime            int     `json:"total_time"`
	Throughput           float64 `json:"throughput"`
	VertexRetiming       []int   `json:"vertex_retiming,omitempty"`
	CachedEdges          []int   `json:"cached_edges,omitempty"`
}

// SimulateResponse is the /v1/simulate result: the closed-form
// simulator's statistics for the planned schedule.
type SimulateResponse struct {
	Scheme            string  `json:"scheme"`
	Arch              string  `json:"arch"`
	Iterations        int     `json:"iterations"`
	Cycles            int     `json:"cycles"`
	TasksExecuted     int     `json:"tasks_executed"`
	CacheReads        int     `json:"cache_reads"`
	EDRAMReads        int     `json:"edram_reads"`
	CacheBytes        int64   `json:"cache_bytes"`
	EDRAMBytes        int64   `json:"edram_bytes"`
	EnergyPJ          float64 `json:"energy_pj"`
	Utilization       float64 `json:"utilization"`
	OffChipFetchRatio float64 `json:"offchip_fetch_ratio"`
	PeakCacheLoad     int     `json:"peak_cache_load"`
}

// ArchResult is one /v1/selectarch ranking entry.
type ArchResult struct {
	Arch         string `json:"arch"`
	PEs          int    `json:"pes"`
	Period       int    `json:"period"`
	PrologueTime int    `json:"prologue_time"`
	TotalTime    int    `json:"total_time"`
}

// SelectArchResponse is the /v1/selectarch result: the best candidate
// and the full ranking, best first.
type SelectArchResponse struct {
	Best    ArchResult   `json:"best"`
	Ranking []ArchResult `json:"ranking"`
}

// ErrorResponse is the structured error body every non-2xx response
// carries.  It has no binary form: errors are always JSON.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is machine-checkable: bad_request, bad_graph,
	// graph_too_large, too_large, unsupported_media_type, unplannable,
	// timeout, canceled, shed or internal.
	Kind string `json:"kind"`
	// TraceID is the request's trace id when the server sampled a
	// trace for it — quote it when reporting a failure and the
	// operator can pull the exact request from /debug/traces.
	TraceID string `json:"trace_id,omitempty"`
}

// JobAccepted is the 202 body of POST /v1/jobs[/{op}]: the job was
// queued and can be polled at /v1/jobs/{id}.  QueueDepth is the async
// queue's depth right after this submission — load clients use it to
// observe queue pressure without a second request.
type JobAccepted struct {
	JobID      string `json:"job_id"`
	State      string `json:"state"`
	QueueDepth int    `json:"queue_depth"`
}

// JobStatus is the GET /v1/jobs/{id} body.  Result is present exactly
// when State is done (and is the same payload the synchronous endpoint
// would have returned); Error and Kind are present exactly when State
// is failed or cancelled, carrying the synchronous path's error
// taxonomy.  Jobs have no binary form: the async protocol is JSON.
type JobStatus struct {
	JobID string `json:"job_id"`
	Op    string `json:"op"`
	State string `json:"state"`
	// ElapsedMS is submit-to-now for live jobs, submit-to-terminal for
	// finished ones — the client's end-to-end latency including queue
	// wait.
	ElapsedMS float64 `json:"elapsed_ms"`
	Result    any     `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	Kind      string  `json:"kind,omitempty"`
}
