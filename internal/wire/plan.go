package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/retime"
	"repro/internal/sched"
)

// The stored-plan frame carries a complete *sched.Plan — everything a
// restarted daemon needs to serve a previously solved graph without
// re-running the solver.  It is the payload format of the durable plan
// store (internal/store): internal/run encodes plans through
// AppendPlan before writing them through, and decodes store hits with
// DecodePlan.  Unlike the response frames, the plan frame embeds the
// kernel graph as a length-prefixed dag frame mid-stream (more fields
// follow it), and it round-trips the full retiming results, not just
// the response summary.

// kindStoredPlan is the frame kind byte of a durable stored plan.
const kindStoredPlan = 'L'

// kindLeanPlan is the frame kind byte of a kernel-free plan: the same
// fields as a stored plan minus the embedded graph.  It exists for the
// cluster fill protocol, where the requester already holds the problem
// graph the plan was solved from — for the para-conv scheme the kernel
// is Replicate(graph, ConcurrentIterations) by construction (see
// internal/sched), so shipping it is pure redundancy.  Lean frames are
// a transport-only format: the durable store always keeps the
// self-contained stored-plan frame.
const kindLeanPlan = 'l'

// SchemeParaCONV is the plan scheme whose kernel graph is derivable
// from the problem graph (Iter.Graph == Replicate(g, CI) for every
// para-conv plan the solvers build), making it eligible for lean
// framing.
const SchemeParaCONV = "para-conv"

func appendPlacements(dst []byte, a retime.Assignment) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	for _, p := range a {
		dst = append(dst, byte(p))
	}
	return dst
}

func appendRetimeResult(dst []byte, r *retime.Result) []byte {
	dst = appendInts(dst, r.R)
	dst = appendInts(dst, r.REdge)
	dst = appendInt(dst, r.RMax)
	return appendInt(dst, r.Period)
}

// appendPlanBody appends every plan field after the kernel graph —
// the part stored-plan and lean frames share.
func appendPlanBody(dst []byte, p *sched.Plan) []byte {
	dst = appendInt(dst, p.Iter.PEs)
	dst = appendInt(dst, p.Iter.Period)
	dst = binary.AppendUvarint(dst, uint64(len(p.Iter.Tasks)))
	for i := range p.Iter.Tasks {
		t := &p.Iter.Tasks[i]
		dst = appendInt(dst, int(t.Node))
		dst = appendInt(dst, int(t.PE))
		dst = appendInt(dst, t.Start)
		dst = appendInt(dst, t.Finish)
	}
	dst = appendPlacements(dst, p.Iter.Assignment)
	dst = appendInt(dst, p.ConcurrentIterations)
	dst = appendInt(dst, p.RMax)
	dst = appendRetimeResult(dst, &p.Retiming)
	dst = appendRetimeResult(dst, &p.LogicalRetiming)
	dst = appendInt(dst, p.CachedIPRs)
	return appendInt(dst, p.CacheLoadUnits)
}

// AppendPlan appends the binary encoding of a complete plan to dst.
//
//paraconv:hotpath
func AppendPlan(dst []byte, p *sched.Plan) []byte {
	dst = appendHeader(dst, kindStoredPlan)
	dst = appendString(dst, p.Scheme)
	// The kernel graph is length-prefixed because plan fields follow
	// it; the dag decoder is handed exactly its slice.
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0) // fixed 4-byte length backpatched below
	dst = dag.AppendBinary(dst, p.Iter.Graph)
	binary.LittleEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	return appendPlanBody(dst, p)
}

// AppendLeanPlan appends the kernel-free encoding of p to dst.  Only
// para-conv plans are lean-framable (their kernel is derivable from
// the problem graph); callers gate on p.Scheme.
//
//paraconv:hotpath
func AppendLeanPlan(dst []byte, p *sched.Plan) []byte {
	dst = appendHeader(dst, kindLeanPlan)
	dst = appendString(dst, p.Scheme)
	return appendPlanBody(dst, p)
}

// LeanPlanFrame reports whether data is a lean (kernel-free) plan
// frame, so fill clients can pick the matching decoder without
// committing to a parse.
func LeanPlanFrame(data []byte) bool {
	return len(data) >= 4 && data[0] == 'P' && data[1] == 'C' && data[2] == kindLeanPlan
}

// PlanFrameToLean converts a stored-plan frame to its lean form by
// splicing the embedded kernel graph out — a byte copy, not a
// re-encode, so an owner can serve a lean fill straight from a durable
// store payload without decoding it.  Only para-conv frames convert;
// anything else (including malformed input) returns an error and the
// caller serves the original frame.
func PlanFrameToLean(frame []byte) ([]byte, error) {
	d, err := newDecoder(frame, kindStoredPlan)
	if err != nil {
		return nil, err
	}
	scheme, err := d.str("scheme")
	if err != nil {
		return nil, err
	}
	if scheme != SchemeParaCONV {
		return nil, fmt.Errorf("wire: scheme %q plans are not lean-framable", scheme)
	}
	if len(d.data)-d.off < 4 {
		return nil, d.truncated("graph length")
	}
	glen := int(binary.LittleEndian.Uint32(d.data[d.off:]))
	d.off += 4
	if glen > len(d.data)-d.off {
		return nil, fmt.Errorf("wire: graph length %d exceeds the %d input bytes remaining", glen, len(d.data)-d.off)
	}
	out := make([]byte, 0, len(frame)-glen-4)
	out = appendHeader(out, kindLeanPlan)
	out = appendString(out, scheme)
	return append(out, d.data[d.off+glen:]...), nil
}

func (d *decoder) placements(what string) (retime.Assignment, error) {
	n, err := d.length(what)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	a := make(retime.Assignment, n)
	for i := 0; i < n; i++ {
		b := d.data[d.off]
		d.off++
		if b != byte(pim.InCache) && b != byte(pim.InEDRAM) {
			return nil, fmt.Errorf("wire: %s entry %d has placement byte %d", what, i, b)
		}
		a[i] = pim.Placement(b)
	}
	return a, nil
}

func (d *decoder) retimeResult(what string, r *retime.Result) error {
	var err error
	if r.R, err = d.ints(what+" r", nil); err != nil {
		return err
	}
	if r.REdge, err = d.ints(what+" redge", nil); err != nil {
		return err
	}
	if r.RMax, err = d.integer(what + " rmax"); err != nil {
		return err
	}
	r.Period, err = d.integer(what + " period")
	return err
}

// DecodePlan parses a stored-plan frame into a fresh plan.  The
// embedded kernel graph is decoded under lim (zero = unlimited) and
// validated by the dag decoder; the schedule's structural soundness is
// the caller's check — internal/run validates a decoded plan before
// trusting a store hit.
func DecodePlan(data []byte, lim dag.Limits) (*sched.Plan, error) {
	d, err := newDecoder(data, kindStoredPlan)
	if err != nil {
		return nil, err
	}
	p := &sched.Plan{}
	if p.Scheme, err = d.str("scheme"); err != nil {
		return nil, err
	}
	if len(d.data)-d.off < 4 {
		return nil, d.truncated("graph length")
	}
	glen := int(binary.LittleEndian.Uint32(d.data[d.off:]))
	d.off += 4
	if glen > len(d.data)-d.off {
		return nil, fmt.Errorf("wire: graph length %d exceeds the %d input bytes remaining", glen, len(d.data)-d.off)
	}
	g, err := dag.DecodeBinary(d.data[d.off:d.off+glen], lim)
	if err != nil {
		return nil, &GraphError{Err: err}
	}
	d.off += glen
	p.Iter.Graph = g
	if err := d.planBody(p); err != nil {
		return nil, err
	}
	return p, nil
}

// planBody decodes every plan field after the kernel graph and seals
// the frame.
func (d *decoder) planBody(p *sched.Plan) error {
	var err error
	if p.Iter.PEs, err = d.integer("pes"); err != nil {
		return err
	}
	if p.Iter.Period, err = d.integer("period"); err != nil {
		return err
	}
	ntasks, err := d.length("tasks")
	if err != nil {
		return err
	}
	if ntasks > 0 {
		p.Iter.Tasks = make([]sched.Task, ntasks)
		for i := range p.Iter.Tasks {
			t := &p.Iter.Tasks[i]
			var v int
			if v, err = d.integer("task node"); err != nil {
				return err
			}
			t.Node = dag.NodeID(v)
			if v, err = d.integer("task pe"); err != nil {
				return err
			}
			t.PE = pim.PEID(v)
			if t.Start, err = d.integer("task start"); err != nil {
				return err
			}
			if t.Finish, err = d.integer("task finish"); err != nil {
				return err
			}
		}
	}
	if p.Iter.Assignment, err = d.placements("assignment"); err != nil {
		return err
	}
	if p.ConcurrentIterations, err = d.integer("concurrent_iterations"); err != nil {
		return err
	}
	if p.RMax, err = d.integer("r_max"); err != nil {
		return err
	}
	if err = d.retimeResult("retiming", &p.Retiming); err != nil {
		return err
	}
	if err = d.retimeResult("logical_retiming", &p.LogicalRetiming); err != nil {
		return err
	}
	if p.CachedIPRs, err = d.integer("cached_iprs"); err != nil {
		return err
	}
	if p.CacheLoadUnits, err = d.integer("cache_load_units"); err != nil {
		return err
	}
	return d.finish()
}

// DecodeLeanPlan parses a kernel-free plan frame against g, the
// problem graph the requester already holds, rebuilding the kernel the
// solver would have built: for one concurrent iteration the kernel IS
// the problem graph (aliased, exactly as sched.ParaCONVGivenSchedule
// plans alias their caller's graph), otherwise Replicate derives it.
// The decoded schedule still carries no proof it matches g — callers
// validate it, exactly like a store hit.
//
//paraconv:hotpath
func DecodeLeanPlan(data []byte, g *dag.Graph) (*sched.Plan, error) {
	d, err := newDecoder(data, kindLeanPlan)
	if err != nil {
		return nil, err
	}
	p := &sched.Plan{}
	if p.Scheme, err = d.str("scheme"); err != nil {
		return nil, err
	}
	if p.Scheme != SchemeParaCONV {
		return nil, fmt.Errorf("wire: lean frame carries scheme %q; only %s kernels are derivable", p.Scheme, SchemeParaCONV)
	}
	if g == nil {
		return nil, fmt.Errorf("wire: lean plan frame needs the problem graph to rebuild its kernel")
	}
	if err := d.planBody(p); err != nil {
		return nil, err
	}
	if p.ConcurrentIterations == 1 {
		p.Iter.Graph = g
	} else if p.Iter.Graph, err = dag.Replicate(g, p.ConcurrentIterations); err != nil {
		return nil, fmt.Errorf("wire: rebuilding lean plan kernel: %w", err)
	}
	return p, nil
}

// DecodeFillPlan decodes a fill payload of either framing: lean
// against the problem graph, or the self-contained stored-plan frame
// under lim.
func DecodeFillPlan(data []byte, g *dag.Graph, lim dag.Limits) (*sched.Plan, error) {
	if LeanPlanFrame(data) {
		return DecodeLeanPlan(data, g)
	}
	return DecodePlan(data, lim)
}
