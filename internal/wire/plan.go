package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/retime"
	"repro/internal/sched"
)

// The stored-plan frame carries a complete *sched.Plan — everything a
// restarted daemon needs to serve a previously solved graph without
// re-running the solver.  It is the payload format of the durable plan
// store (internal/store): internal/run encodes plans through
// AppendPlan before writing them through, and decodes store hits with
// DecodePlan.  Unlike the response frames, the plan frame embeds the
// kernel graph as a length-prefixed dag frame mid-stream (more fields
// follow it), and it round-trips the full retiming results, not just
// the response summary.

// kindStoredPlan is the frame kind byte of a durable stored plan.
const kindStoredPlan = 'L'

func appendPlacements(dst []byte, a retime.Assignment) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	for _, p := range a {
		dst = append(dst, byte(p))
	}
	return dst
}

func appendRetimeResult(dst []byte, r *retime.Result) []byte {
	dst = appendInts(dst, r.R)
	dst = appendInts(dst, r.REdge)
	dst = appendInt(dst, r.RMax)
	return appendInt(dst, r.Period)
}

// AppendPlan appends the binary encoding of a complete plan to dst.
//
//paraconv:hotpath
func AppendPlan(dst []byte, p *sched.Plan) []byte {
	dst = appendHeader(dst, kindStoredPlan)
	dst = appendString(dst, p.Scheme)
	// The kernel graph is length-prefixed because plan fields follow
	// it; the dag decoder is handed exactly its slice.
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0) // fixed 4-byte length backpatched below
	dst = dag.AppendBinary(dst, p.Iter.Graph)
	binary.LittleEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	dst = appendInt(dst, p.Iter.PEs)
	dst = appendInt(dst, p.Iter.Period)
	dst = binary.AppendUvarint(dst, uint64(len(p.Iter.Tasks)))
	for i := range p.Iter.Tasks {
		t := &p.Iter.Tasks[i]
		dst = appendInt(dst, int(t.Node))
		dst = appendInt(dst, int(t.PE))
		dst = appendInt(dst, t.Start)
		dst = appendInt(dst, t.Finish)
	}
	dst = appendPlacements(dst, p.Iter.Assignment)
	dst = appendInt(dst, p.ConcurrentIterations)
	dst = appendInt(dst, p.RMax)
	dst = appendRetimeResult(dst, &p.Retiming)
	dst = appendRetimeResult(dst, &p.LogicalRetiming)
	dst = appendInt(dst, p.CachedIPRs)
	return appendInt(dst, p.CacheLoadUnits)
}

func (d *decoder) placements(what string) (retime.Assignment, error) {
	n, err := d.length(what)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	a := make(retime.Assignment, n)
	for i := 0; i < n; i++ {
		b := d.data[d.off]
		d.off++
		if b != byte(pim.InCache) && b != byte(pim.InEDRAM) {
			return nil, fmt.Errorf("wire: %s entry %d has placement byte %d", what, i, b)
		}
		a[i] = pim.Placement(b)
	}
	return a, nil
}

func (d *decoder) retimeResult(what string, r *retime.Result) error {
	var err error
	if r.R, err = d.ints(what+" r", nil); err != nil {
		return err
	}
	if r.REdge, err = d.ints(what+" redge", nil); err != nil {
		return err
	}
	if r.RMax, err = d.integer(what + " rmax"); err != nil {
		return err
	}
	r.Period, err = d.integer(what + " period")
	return err
}

// DecodePlan parses a stored-plan frame into a fresh plan.  The
// embedded kernel graph is decoded under lim (zero = unlimited) and
// validated by the dag decoder; the schedule's structural soundness is
// the caller's check — internal/run validates a decoded plan before
// trusting a store hit.
func DecodePlan(data []byte, lim dag.Limits) (*sched.Plan, error) {
	d, err := newDecoder(data, kindStoredPlan)
	if err != nil {
		return nil, err
	}
	p := &sched.Plan{}
	if p.Scheme, err = d.str("scheme"); err != nil {
		return nil, err
	}
	if len(d.data)-d.off < 4 {
		return nil, d.truncated("graph length")
	}
	glen := int(binary.LittleEndian.Uint32(d.data[d.off:]))
	d.off += 4
	if glen > len(d.data)-d.off {
		return nil, fmt.Errorf("wire: graph length %d exceeds the %d input bytes remaining", glen, len(d.data)-d.off)
	}
	g, err := dag.DecodeBinary(d.data[d.off:d.off+glen], lim)
	if err != nil {
		return nil, &GraphError{Err: err}
	}
	d.off += glen
	p.Iter.Graph = g
	if p.Iter.PEs, err = d.integer("pes"); err != nil {
		return nil, err
	}
	if p.Iter.Period, err = d.integer("period"); err != nil {
		return nil, err
	}
	ntasks, err := d.length("tasks")
	if err != nil {
		return nil, err
	}
	if ntasks > 0 {
		p.Iter.Tasks = make([]sched.Task, ntasks)
		for i := range p.Iter.Tasks {
			t := &p.Iter.Tasks[i]
			var v int
			if v, err = d.integer("task node"); err != nil {
				return nil, err
			}
			t.Node = dag.NodeID(v)
			if v, err = d.integer("task pe"); err != nil {
				return nil, err
			}
			t.PE = pim.PEID(v)
			if t.Start, err = d.integer("task start"); err != nil {
				return nil, err
			}
			if t.Finish, err = d.integer("task finish"); err != nil {
				return nil, err
			}
		}
	}
	if p.Iter.Assignment, err = d.placements("assignment"); err != nil {
		return nil, err
	}
	if p.ConcurrentIterations, err = d.integer("concurrent_iterations"); err != nil {
		return nil, err
	}
	if p.RMax, err = d.integer("r_max"); err != nil {
		return nil, err
	}
	if err = d.retimeResult("retiming", &p.Retiming); err != nil {
		return nil, err
	}
	if err = d.retimeResult("logical_retiming", &p.LogicalRetiming); err != nil {
		return nil, err
	}
	if p.CachedIPRs, err = d.integer("cached_iprs"); err != nil {
		return nil, err
	}
	if p.CacheLoadUnits, err = d.integer("cache_load_units"); err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return p, nil
}
