package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/dag"
)

// The binary frames share one envelope: two magic bytes 'P' 'C', a
// kind byte naming the payload, and a version byte.  Fields follow in
// fixed order — varint for signed integers, uvarint for counts and
// string lengths, 8 little-endian bytes for float64 values — so every
// encoding is byte-for-byte deterministic.  A request's graph travels
// as a trailing dag binary frame (see dag.AppendBinary): it is the
// last field, so it needs no length prefix and the dag decoder's own
// trailing-byte check seals the envelope.

// Version is the frame version the codec writes and the only one it
// accepts.
const Version = 1

// Frame kind bytes, one per payload type.
const (
	kindRequest    = 'Q'
	kindPlan       = 'P'
	kindSimulate   = 'S'
	kindSelectArch = 'A'
)

// ErrNoGraph reports a binary request whose trailing graph frame is
// absent; it maps to the same client error as an empty "graph" field
// in a JSON request.
var ErrNoGraph = errors.New("wire: request has no graph")

// GraphError wraps a failure decoding the request's embedded graph
// frame, so servers can distinguish "your graph is bad" (bad_graph,
// like a text-path parse failure) from a malformed request envelope
// (bad_request).  errors.As unwraps through it, so the dag package's
// *LimitError remains reachable.
type GraphError struct{ Err error }

func (e *GraphError) Error() string { return "wire: request graph: " + e.Err.Error() }
func (e *GraphError) Unwrap() error { return e.Err }

func appendHeader(dst []byte, kind byte) []byte {
	return append(dst, 'P', 'C', kind, Version)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendInts(dst []byte, vs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendInt(dst, v)
	}
	return dst
}

// AppendRequest appends the binary encoding of req to dst.  The graph
// g is embedded as the trailing dag frame; nil g encodes a graphless
// request (which DecodeRequest rejects with ErrNoGraph).  The
// Request.Graph text field is not carried — binary requests transport
// their graph in binary form only.
//
//paraconv:hotpath
func AppendRequest(dst []byte, req *Request, g *dag.Graph) []byte {
	dst = appendHeader(dst, kindRequest)
	dst = appendString(dst, req.Arch)
	dst = binary.AppendUvarint(dst, uint64(len(req.Archs)))
	for _, a := range req.Archs {
		dst = appendString(dst, a)
	}
	dst = appendInt(dst, req.PEs)
	dst = appendInt(dst, req.Iterations)
	dst = appendString(dst, req.Variant)
	dst = appendInt(dst, req.TimeoutMS)
	if g != nil {
		dst = dag.AppendBinary(dst, g)
	}
	return dst
}

// DecodeRequest parses a binary request frame into req (fully
// overwritten; its Archs capacity is reused) and decodes the trailing
// graph under lim.  All strings are copied out of data.  Graph size
// violations surface as the dag package's *LimitError so servers map
// them exactly like the text path.
//
//paraconv:hotpath
func DecodeRequest(data []byte, req *Request, lim dag.Limits) (*dag.Graph, error) {
	d, err := newDecoder(data, kindRequest)
	if err != nil {
		return nil, err
	}
	*req = Request{Archs: req.Archs[:0]}
	if req.Arch, err = d.str("arch"); err != nil {
		return nil, err
	}
	n, err := d.length("archs")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		a, err := d.str("archs entry")
		if err != nil {
			return nil, err
		}
		req.Archs = append(req.Archs, a)
	}
	if req.PEs, err = d.integer("pes"); err != nil {
		return nil, err
	}
	if req.Iterations, err = d.integer("iterations"); err != nil {
		return nil, err
	}
	if req.Variant, err = d.str("variant"); err != nil {
		return nil, err
	}
	if req.TimeoutMS, err = d.integer("timeout_ms"); err != nil {
		return nil, err
	}
	if d.off == len(d.data) {
		return nil, ErrNoGraph
	}
	g, err := dag.DecodeBinary(d.data[d.off:], lim)
	if err != nil {
		return nil, &GraphError{Err: err}
	}
	return g, nil
}

// AppendPlanResponse appends the binary encoding of r to dst.
//
//paraconv:hotpath
func AppendPlanResponse(dst []byte, r *PlanResponse) []byte {
	dst = appendHeader(dst, kindPlan)
	dst = appendString(dst, r.Scheme)
	dst = appendString(dst, r.Arch)
	dst = appendInt(dst, r.PEs)
	dst = appendInt(dst, r.Period)
	dst = appendInt(dst, r.ConcurrentIterations)
	dst = appendInt(dst, r.RMax)
	dst = appendInt(dst, r.PrologueTime)
	dst = appendInt(dst, r.CachedIPRs)
	dst = appendInt(dst, r.CacheLoadUnits)
	dst = appendInt(dst, r.Vertices)
	dst = appendInt(dst, r.Edges)
	dst = appendInt(dst, r.Iterations)
	dst = appendInt(dst, r.TotalTime)
	dst = appendFloat(dst, r.Throughput)
	dst = appendInts(dst, r.VertexRetiming)
	return appendInts(dst, r.CachedEdges)
}

// DecodePlanResponse parses a binary plan frame into r, reusing the
// capacity of its slices.
func DecodePlanResponse(data []byte, r *PlanResponse) error {
	d, err := newDecoder(data, kindPlan)
	if err != nil {
		return err
	}
	*r = PlanResponse{VertexRetiming: r.VertexRetiming[:0], CachedEdges: r.CachedEdges[:0]}
	if r.Scheme, err = d.str("scheme"); err != nil {
		return err
	}
	if r.Arch, err = d.str("arch"); err != nil {
		return err
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{
		{"pes", &r.PEs}, {"period", &r.Period},
		{"concurrent_iterations", &r.ConcurrentIterations}, {"r_max", &r.RMax},
		{"prologue_time", &r.PrologueTime}, {"cached_iprs", &r.CachedIPRs},
		{"cache_load_units", &r.CacheLoadUnits}, {"vertices", &r.Vertices},
		{"edges", &r.Edges}, {"iterations", &r.Iterations}, {"total_time", &r.TotalTime},
	} {
		if *f.dst, err = d.integer(f.what); err != nil {
			return err
		}
	}
	if r.Throughput, err = d.float("throughput"); err != nil {
		return err
	}
	if r.VertexRetiming, err = d.ints("vertex_retiming", r.VertexRetiming); err != nil {
		return err
	}
	if r.CachedEdges, err = d.ints("cached_edges", r.CachedEdges); err != nil {
		return err
	}
	return d.finish()
}

// AppendSimulateResponse appends the binary encoding of r to dst.
//
//paraconv:hotpath
func AppendSimulateResponse(dst []byte, r *SimulateResponse) []byte {
	dst = appendHeader(dst, kindSimulate)
	dst = appendString(dst, r.Scheme)
	dst = appendString(dst, r.Arch)
	dst = appendInt(dst, r.Iterations)
	dst = appendInt(dst, r.Cycles)
	dst = appendInt(dst, r.TasksExecuted)
	dst = appendInt(dst, r.CacheReads)
	dst = appendInt(dst, r.EDRAMReads)
	dst = binary.AppendVarint(dst, r.CacheBytes)
	dst = binary.AppendVarint(dst, r.EDRAMBytes)
	dst = appendFloat(dst, r.EnergyPJ)
	dst = appendFloat(dst, r.Utilization)
	dst = appendFloat(dst, r.OffChipFetchRatio)
	return appendInt(dst, r.PeakCacheLoad)
}

// DecodeSimulateResponse parses a binary simulate frame into r.
func DecodeSimulateResponse(data []byte, r *SimulateResponse) error {
	d, err := newDecoder(data, kindSimulate)
	if err != nil {
		return err
	}
	*r = SimulateResponse{}
	if r.Scheme, err = d.str("scheme"); err != nil {
		return err
	}
	if r.Arch, err = d.str("arch"); err != nil {
		return err
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{
		{"iterations", &r.Iterations}, {"cycles", &r.Cycles},
		{"tasks_executed", &r.TasksExecuted}, {"cache_reads", &r.CacheReads},
		{"edram_reads", &r.EDRAMReads},
	} {
		if *f.dst, err = d.integer(f.what); err != nil {
			return err
		}
	}
	if r.CacheBytes, err = d.varint("cache_bytes"); err != nil {
		return err
	}
	if r.EDRAMBytes, err = d.varint("edram_bytes"); err != nil {
		return err
	}
	if r.EnergyPJ, err = d.float("energy_pj"); err != nil {
		return err
	}
	if r.Utilization, err = d.float("utilization"); err != nil {
		return err
	}
	if r.OffChipFetchRatio, err = d.float("offchip_fetch_ratio"); err != nil {
		return err
	}
	if r.PeakCacheLoad, err = d.integer("peak_cache_load"); err != nil {
		return err
	}
	return d.finish()
}

func appendArchResult(dst []byte, r *ArchResult) []byte {
	dst = appendString(dst, r.Arch)
	dst = appendInt(dst, r.PEs)
	dst = appendInt(dst, r.Period)
	dst = appendInt(dst, r.PrologueTime)
	return appendInt(dst, r.TotalTime)
}

func (d *decoder) archResult(r *ArchResult) error {
	var err error
	if r.Arch, err = d.str("arch"); err != nil {
		return err
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{
		{"pes", &r.PEs}, {"period", &r.Period},
		{"prologue_time", &r.PrologueTime}, {"total_time", &r.TotalTime},
	} {
		if *f.dst, err = d.integer(f.what); err != nil {
			return err
		}
	}
	return nil
}

// AppendSelectArchResponse appends the binary encoding of r to dst.
//
//paraconv:hotpath
func AppendSelectArchResponse(dst []byte, r *SelectArchResponse) []byte {
	dst = appendHeader(dst, kindSelectArch)
	dst = appendArchResult(dst, &r.Best)
	dst = binary.AppendUvarint(dst, uint64(len(r.Ranking)))
	for i := range r.Ranking {
		dst = appendArchResult(dst, &r.Ranking[i])
	}
	return dst
}

// DecodeSelectArchResponse parses a binary selectarch frame into r,
// reusing its Ranking capacity.
func DecodeSelectArchResponse(data []byte, r *SelectArchResponse) error {
	d, err := newDecoder(data, kindSelectArch)
	if err != nil {
		return err
	}
	*r = SelectArchResponse{Ranking: r.Ranking[:0]}
	if err := d.archResult(&r.Best); err != nil {
		return err
	}
	n, err := d.length("ranking")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var entry ArchResult
		if err := d.archResult(&entry); err != nil {
			return err
		}
		r.Ranking = append(r.Ranking, entry)
	}
	return d.finish()
}

// decoder is a bounds-checked cursor over one wire frame.
type decoder struct {
	data []byte
	off  int
}

func newDecoder(data []byte, kind byte) (*decoder, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: %d-byte input shorter than the 4-byte header", len(data))
	}
	if data[0] != 'P' || data[1] != 'C' {
		return nil, fmt.Errorf("wire: bad magic % x", data[:2])
	}
	if data[2] != kind {
		return nil, fmt.Errorf("wire: frame kind %q, want %q", data[2], kind)
	}
	if data[3] != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (want %d)", data[3], Version)
	}
	return &decoder{data: data, off: 4}, nil
}

func (d *decoder) truncated(what string) error {
	return fmt.Errorf("wire: truncated at offset %d reading %s", d.off, what)
}

func (d *decoder) finish() error {
	if d.off != len(d.data) {
		return fmt.Errorf("wire: %d trailing bytes after the frame", len(d.data)-d.off)
	}
	return nil
}

func (d *decoder) varint(what string) (int64, error) {
	// One- and two-byte fast paths: plan frames are dominated by small
	// integers (task times bounded by the period, retiming values near
	// zero), and binary.Varint's general loop costs more than the
	// decode itself at the frame decoder's call rates.
	if d.off+1 < len(d.data) {
		if b := d.data[d.off]; b < 0x80 {
			d.off++
			return int64(b>>1) ^ -int64(b&1), nil
		} else if b1 := d.data[d.off+1]; b1 < 0x80 {
			u := uint64(b&0x7f) | uint64(b1)<<7
			d.off += 2
			return int64(u>>1) ^ -int64(u&1), nil
		}
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.truncated(what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) integer(what string) (int, error) {
	v, err := d.varint(what)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt || v < math.MinInt {
		return 0, fmt.Errorf("wire: %s %d out of range", what, v)
	}
	return int(v), nil
}

// length reads a uvarint count, bounded against the bytes remaining so
// a lying prefix cannot reserve unbacked memory.
func (d *decoder) length(what string) (int, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.truncated(what)
	}
	d.off += n
	if v > uint64(len(d.data)-d.off) {
		return 0, fmt.Errorf("wire: %s length %d exceeds the %d input bytes remaining", what, v, len(d.data)-d.off)
	}
	return int(v), nil
}

func (d *decoder) str(what string) (string, error) {
	l, err := d.length(what)
	if err != nil {
		return "", err
	}
	s := string(d.data[d.off : d.off+l])
	d.off += l
	return s, nil
}

func (d *decoder) float(what string) (float64, error) {
	if len(d.data)-d.off < 8 {
		return 0, d.truncated(what)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return f, nil
}

func (d *decoder) ints(what string, dst []int) ([]int, error) {
	n, err := d.length(what)
	if err != nil {
		return dst, err
	}
	// length bounded n against the remaining bytes, so pre-sizing
	// cannot reserve unbacked memory — and saves the append path's
	// grow-and-copy churn on the frame decoder's array fields.
	if cap(dst)-len(dst) < n {
		grown := make([]int, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		v, err := d.integer(what)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}
