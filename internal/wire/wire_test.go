package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
)

func testGraph(t testing.TB) *dag.Graph {
	t.Helper()
	g := dag.New("wire-test")
	g.AddNode(dag.Node{Name: "a", Kind: dag.OpConv, Exec: 3})
	g.AddNode(dag.Node{Name: "b", Kind: dag.OpPool, Exec: 2})
	g.AddEdge(dag.Edge{From: 0, To: 1, Size: 2, CacheTime: 1, EDRAMTime: 2})
	return g
}

func TestRequestRoundTrip(t *testing.T) {
	g := testGraph(t)
	req := Request{
		Arch:       "neurocube",
		Archs:      []string{"prime", "edge"},
		PEs:        64,
		Iterations: 1000,
		Variant:    "para-conv",
		TimeoutMS:  250,
	}
	data := AppendRequest(nil, &req, g)
	var got Request
	gotG, err := DecodeRequest(data, &got, dag.Limits{})
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("request round trip:\n got %+v\nwant %+v", got, req)
	}
	if gotG.NumNodes() != g.NumNodes() || gotG.NumEdges() != g.NumEdges() || gotG.Name() != g.Name() {
		t.Errorf("graph round trip: |V|=%d |E|=%d name=%q", gotG.NumNodes(), gotG.NumEdges(), gotG.Name())
	}
}

func TestRequestRoundTripZeroValues(t *testing.T) {
	g := testGraph(t)
	data := AppendRequest(nil, &Request{}, g)
	var got Request
	if _, err := DecodeRequest(data, &got, dag.Limits{}); err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	want := Request{Archs: []string{}}
	got.Archs = got.Archs[:len(got.Archs)] // normalize nil-vs-empty for the compare
	if got.Arch != want.Arch || len(got.Archs) != 0 || got.PEs != 0 || got.Iterations != 0 ||
		got.Variant != "" || got.TimeoutMS != 0 {
		t.Errorf("zero-value request round trip: %+v", got)
	}
}

func TestRequestNoGraph(t *testing.T) {
	data := AppendRequest(nil, &Request{Arch: "edge"}, nil)
	var got Request
	if _, err := DecodeRequest(data, &got, dag.Limits{}); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("err = %v, want ErrNoGraph", err)
	}
}

func TestRequestGraphLimits(t *testing.T) {
	data := AppendRequest(nil, &Request{}, testGraph(t))
	var got Request
	_, err := DecodeRequest(data, &got, dag.Limits{MaxNodes: 1})
	var lim *dag.LimitError
	if !errors.As(err, &lim) {
		t.Fatalf("err = %v (%T), want *dag.LimitError", err, err)
	}
	if lim.Kind != "nodes" || lim.Max != 1 {
		t.Errorf("LimitError = %+v", *lim)
	}
}

func TestPlanResponseRoundTrip(t *testing.T) {
	r := PlanResponse{
		Scheme: "para-conv", Arch: "neurocube", PEs: 32, Period: 17,
		ConcurrentIterations: 4, RMax: 2, PrologueTime: 34, CachedIPRs: 9,
		CacheLoadUnits: 40, Vertices: 200, Edges: 520, Iterations: 100,
		TotalTime: 1234, Throughput: 0.0625,
		VertexRetiming: []int{0, 1, 2, 1, 0},
		CachedEdges:    []int{3, 7, 11},
	}
	data := AppendPlanResponse(nil, &r)
	var got PlanResponse
	if err := DecodePlanResponse(data, &got); err != nil {
		t.Fatalf("DecodePlanResponse: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("plan round trip:\n got %+v\nwant %+v", got, r)
	}
	if !bytes.Equal(data, AppendPlanResponse(nil, &got)) {
		t.Error("re-encoding the decoded plan changed the frame")
	}
}

func TestPlanResponseEmptySlicesRoundTrip(t *testing.T) {
	r := PlanResponse{Scheme: "naive", Arch: "edge"}
	var got PlanResponse
	if err := DecodePlanResponse(AppendPlanResponse(nil, &r), &got); err != nil {
		t.Fatalf("DecodePlanResponse: %v", err)
	}
	if got.Scheme != "naive" || got.Arch != "edge" || len(got.VertexRetiming) != 0 || len(got.CachedEdges) != 0 {
		t.Errorf("round trip: %+v", got)
	}
}

func TestSimulateResponseRoundTrip(t *testing.T) {
	r := SimulateResponse{
		Scheme: "sparta", Arch: "hmc2", Iterations: 100, Cycles: 9999,
		TasksExecuted: 700, CacheReads: 55, EDRAMReads: 12,
		CacheBytes: 1 << 40, EDRAMBytes: -3, EnergyPJ: 123.5,
		Utilization: 0.75, OffChipFetchRatio: 0.125, PeakCacheLoad: 31,
	}
	var got SimulateResponse
	if err := DecodeSimulateResponse(AppendSimulateResponse(nil, &r), &got); err != nil {
		t.Fatalf("DecodeSimulateResponse: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("simulate round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestSelectArchResponseRoundTrip(t *testing.T) {
	r := SelectArchResponse{
		Best: ArchResult{Arch: "neurocube", PEs: 64, Period: 9, PrologueTime: 18, TotalTime: 900},
		Ranking: []ArchResult{
			{Arch: "neurocube", PEs: 64, Period: 9, PrologueTime: 18, TotalTime: 900},
			{Arch: "edge", PEs: 64, Period: 21, PrologueTime: 42, TotalTime: 2100},
		},
	}
	var got SelectArchResponse
	if err := DecodeSelectArchResponse(AppendSelectArchResponse(nil, &r), &got); err != nil {
		t.Fatalf("DecodeSelectArchResponse: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("selectarch round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestDecodeErrors(t *testing.T) {
	plan := AppendPlanResponse(nil, &PlanResponse{Scheme: "x", Arch: "y"})
	tests := []struct {
		name string
		run  func() error
		want string
	}{
		{"short input", func() error { return DecodePlanResponse([]byte{'P'}, &PlanResponse{}) }, "shorter than"},
		{"bad magic", func() error { return DecodePlanResponse([]byte{'X', 'C', 'P', 1}, &PlanResponse{}) }, "bad magic"},
		{"wrong kind", func() error { return DecodeSimulateResponse(plan, &SimulateResponse{}) }, "frame kind"},
		{"future version", func() error {
			b := append([]byte(nil), plan...)
			b[3] = 9
			return DecodePlanResponse(b, &PlanResponse{})
		}, "unsupported version"},
		{"truncated", func() error { return DecodePlanResponse(plan[:len(plan)-2], &PlanResponse{}) }, "truncated"},
		{"trailing bytes", func() error { return DecodePlanResponse(append(append([]byte(nil), plan...), 0), &PlanResponse{}) }, "trailing"},
		{"lying string length", func() error {
			return DecodePlanResponse([]byte{'P', 'C', 'P', 1, 0xff, 0x01}, &PlanResponse{})
		}, "exceeds"},
		{"request wrong kind", func() error {
			var req Request
			_, err := DecodeRequest(plan, &req, dag.Limits{})
			return err
		}, "frame kind"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("decode returned nil error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeNeverPanics walks truncations of every frame type through
// its decoder: each must return an error or a value, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	frames := [][]byte{
		AppendRequest(nil, &Request{Arch: "a", Archs: []string{"b"}, PEs: 4}, testGraph(t)),
		AppendPlanResponse(nil, &PlanResponse{Scheme: "s", VertexRetiming: []int{1, 2}}),
		AppendSimulateResponse(nil, &SimulateResponse{Scheme: "s"}),
		AppendSelectArchResponse(nil, &SelectArchResponse{Ranking: []ArchResult{{Arch: "a"}}}),
	}
	for fi, frame := range frames {
		for i := 0; i <= len(frame); i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("frame %d truncated to %d bytes panicked: %v", fi, i, r)
					}
				}()
				in := frame[:i]
				var req Request
				_, _ = DecodeRequest(in, &req, dag.Limits{})
				_ = DecodePlanResponse(in, &PlanResponse{})
				_ = DecodeSimulateResponse(in, &SimulateResponse{})
				_ = DecodeSelectArchResponse(in, &SelectArchResponse{})
			}()
		}
	}
}

// TestAppendZeroAlloc pins the encoders' allocation contract: with
// pre-sized destinations every Append* call touches the heap zero
// times.
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	g := testGraph(t)
	req := Request{Arch: "neurocube", PEs: 16, Iterations: 100}
	plan := PlanResponse{Scheme: "para-conv", VertexRetiming: []int{1, 2, 3}, CachedEdges: []int{0}}
	sim := SimulateResponse{Scheme: "para-conv", EnergyPJ: 1.5}
	sel := SelectArchResponse{Best: ArchResult{Arch: "edge"}, Ranking: []ArchResult{{Arch: "edge"}}}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRequest(buf[:0], &req, g)
		buf = AppendPlanResponse(buf[:0], &plan)
		buf = AppendSimulateResponse(buf[:0], &sim)
		buf = AppendSelectArchResponse(buf[:0], &sel)
	})
	if allocs > 0 {
		t.Errorf("Append* allocate %.1f times per run, want 0", allocs)
	}
}

// TestDecodeRequestAllocBudget bounds the request decoder: the request
// strings, the graph and its storage — nothing proportional to the
// frame beyond them.
func TestDecodeRequestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	g := dag.New("budget")
	for i := 0; i < 120; i++ {
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1 + i%5})
	}
	for i := 0; i+1 < 120; i++ {
		g.AddEdge(dag.Edge{From: dag.NodeID(i), To: dag.NodeID(i + 1), Size: 1, EDRAMTime: 1})
	}
	data := AppendRequest(nil, &Request{Arch: "neurocube", Variant: "para-conv", PEs: 32, Iterations: 50}, g)
	var req Request
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecodeRequest(data, &req, dag.Limits{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 24 {
		t.Errorf("DecodeRequest allocates %.1f times per call, want <= 24", allocs)
	}
}
