package retime

import (
	"fmt"

	"repro/internal/dag"
)

// Instance identifies one execution of a vertex: the vertex and the
// application iteration it serves.
type Instance struct {
	Node dag.NodeID
	Iter int
}

// ExecutionTable is the unfolding of a retimed schedule over kernel
// rounds: Rounds[k] lists the vertex instances that execute in round
// k.  Rounds 0..RMax-1 are the prologue (partially filled); from round
// RMax on, every vertex executes exactly once per round (the steady
// state), and round k completes application iteration k-RMax.
type ExecutionTable struct {
	RMax   int
	Rounds [][]Instance
}

// Unfold expands a retiming result over the given number of steady-
// state iterations: vertex v serving iteration ℓ executes in round
// ℓ + RMax - R(v).  Instances beyond the last requested iteration are
// omitted, so late rounds drain symmetrically to the prologue's fill.
func Unfold(g *dag.Graph, res Result, iterations int) (*ExecutionTable, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("retime: Unfold(%d iterations); want >= 1", iterations)
	}
	if err := CheckLegal(g, res); err != nil {
		return nil, err
	}
	table := &ExecutionTable{
		RMax:   res.RMax,
		Rounds: make([][]Instance, res.RMax+iterations),
	}
	for v := 0; v < g.NumNodes(); v++ {
		for iter := 0; iter < iterations; iter++ {
			k := iter + res.RMax - res.R[v]
			table.Rounds[k] = append(table.Rounds[k], Instance{Node: dag.NodeID(v), Iter: iter})
		}
	}
	return table, nil
}

// PrologueRounds returns the prologue portion of the table.
func (t *ExecutionTable) PrologueRounds() [][]Instance { return t.Rounds[:t.RMax] }

// SteadyRounds returns the post-prologue portion.
func (t *ExecutionTable) SteadyRounds() [][]Instance { return t.Rounds[t.RMax:] }

// InstanceCount returns the total number of vertex executions in the
// table.
func (t *ExecutionTable) InstanceCount() int {
	n := 0
	for _, r := range t.Rounds {
		n += len(r)
	}
	return n
}

// Verify checks the structural invariants of the unfolding against
// the graph and result it was built from:
//
//   - every (vertex, iteration) pair with iteration < iterations
//     appears exactly once;
//   - within the horizon, a producer instance's round precedes (or
//     equals, for same-round cache forwarding) its consumer instance's
//     round, with the gap matching R(i) - R(j);
//   - steady rounds (those whose instances are unaffected by fill or
//     drain) hold exactly |V| instances.
func (t *ExecutionTable) Verify(g *dag.Graph, res Result, iterations int) error {
	seen := make(map[Instance]int)
	for k, round := range t.Rounds {
		for _, inst := range round {
			if _, dup := seen[inst]; dup {
				return fmt.Errorf("retime: instance %+v appears twice", inst)
			}
			seen[inst] = k
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for iter := 0; iter < iterations; iter++ {
			if _, ok := seen[Instance{Node: dag.NodeID(v), Iter: iter}]; !ok {
				return fmt.Errorf("retime: vertex %d iteration %d never executes", v, iter)
			}
		}
	}
	for i := range g.Edges() {
		e := g.Edge(dag.EdgeID(i))
		for iter := 0; iter < iterations; iter++ {
			kp, okP := seen[Instance{Node: e.From, Iter: iter}]
			kc, okC := seen[Instance{Node: e.To, Iter: iter}]
			if !okP || !okC {
				continue
			}
			if gap := kc - kp; gap != res.R[e.From]-res.R[e.To] {
				return fmt.Errorf("retime: edge %d->%d iteration %d: round gap %d != R(i)-R(j) %d",
					e.From, e.To, iter, gap, res.R[e.From]-res.R[e.To])
			}
		}
	}
	// Fully steady rounds: k in [RMax, RMax+iterations-RMax) when the
	// drain hasn't started, i.e. k such that every vertex has a live
	// iteration index: RMax <= k < iterations (needs iterations >
	// RMax to exist at all).
	for k := res.RMax; k < iterations; k++ {
		if len(t.Rounds[k]) != g.NumNodes() {
			return fmt.Errorf("retime: steady round %d holds %d instances; want %d", k, len(t.Rounds[k]), g.NumNodes())
		}
	}
	return nil
}

// Retimed returns a copy of the graph annotated with the retiming:
// each vertex's Start is shifted by -R(v) iterations worth of period
// (recorded in the Start field as a negative offset multiple of the
// period for inspection), and the per-edge inter-iteration distance
// (the rrv) is what the REdge slice records.  The structural graph is
// unchanged — retiming moves computations across iterations, never
// rewires dependencies.
func Retimed(g *dag.Graph, res Result) (*dag.Graph, error) {
	if err := CheckLegal(g, res); err != nil {
		return nil, err
	}
	out := g.Clone()
	for v := 0; v < out.NumNodes(); v++ {
		out.Node(dag.NodeID(v)).Start -= res.R[v] * res.Period
	}
	return out, nil
}
