// Package retime implements the retiming analysis of Para-CONV
// (paper §3.2).
//
// Retiming (Definition 3.1) maps each vertex T_i of the task DAG to a
// count R(i) of iterations re-allocated into the prologue; a retiming
// is legal when R(i) >= R(i,j) >= R(j) holds across every edge.  After
// retiming, an intra-iteration dependency becomes an inter-iteration
// one: consumer T_j in steady-state iteration ℓ reads the output that
// producer T_i computed back in iteration ℓ - (R(i)-R(j)).  The
// difference rrv = R(i) - R(j) is the *relative retiming value* of the
// edge, and Theorem 3.1 bounds it by 2 whenever execution and transfer
// times fit within one period.
//
// For a fixed objective schedule (starts/finishes within one period p)
// the minimal rrv of an edge depends on where its intermediate
// processing result is placed: the slow eDRAM transfer may force the
// producer one or two extra iterations ahead, while the fast cache
// would not.  Enumerating (rrv_cache, rrv_edram) with
// 0 <= rrv_cache <= rrv_edram <= 2 yields exactly the six cases of
// Figure 4; the profit ΔR = rrv_edram - rrv_cache of promoting the IPR
// to cache is what the dynamic program in internal/core maximizes.
package retime

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/dag"
	"repro/internal/pim"
)

// Timing is the objective schedule context the analysis runs against:
// modulo-p start and finish times of every vertex (indexed by
// dag.NodeID) and the iteration period p.
type Timing struct {
	Start  []int
	Finish []int
	Period int
}

// Validate checks the timing is usable for a graph with n vertices.
func (t Timing) Validate(n int) error {
	if t.Period < 1 {
		return fmt.Errorf("retime: period %d; want >= 1", t.Period)
	}
	if len(t.Start) != n || len(t.Finish) != n {
		return fmt.Errorf("retime: timing covers %d/%d vertices; want %d", len(t.Start), len(t.Finish), n)
	}
	for v := 0; v < n; v++ {
		if t.Start[v] < 0 || t.Finish[v] < t.Start[v] || t.Finish[v] > t.Period {
			return fmt.Errorf("retime: vertex %d has start %d finish %d outside [0, %d]", v, t.Start[v], t.Finish[v], t.Period)
		}
	}
	return nil
}

// MinRelative returns the minimal relative retiming value that makes
// an edge schedulable under the paper's transfer discipline: the IPR
// transfer I_{i,j} is itself a periodic task that must fit inside one
// iteration window (the Theorem 3.1 proof places it at
// s_i + c_i <= s_{i,j} and s_{i,j} + c_{i,j} <= s_j within whole
// periods — transfers do not straddle period boundaries, matching a
// periodic TSV/vault reservation schedule).  Hence:
//
//   - rrv 0: the transfer fits between producer finish and consumer
//     start inside the same iteration: finish + transfer <= start;
//   - rrv 1: it fits in the producer iteration's tail after finish, or
//     in the consumer iteration's head before start:
//     transfer <= max(period - finish, start);
//   - rrv 2: it gets a dedicated intermediate iteration, which always
//     suffices when transfer <= period (Theorem 3.1's precondition).
//
// Feasibility is monotone in rrv, so the six (cache, eDRAM) pairs with
// 0 <= rrv_cache <= rrv_edram <= 2 are exactly Figure 4's cases.
// The caller must guarantee transfer <= period (Classify enforces it).
func MinRelative(finish, transfer, start, period int) int {
	if finish+transfer <= start {
		return 0
	}
	if transfer <= period-finish || transfer <= start {
		return 1
	}
	return 2
}

// Case identifies one of the paper's six Figure-4 classes by the pair
// (rrv with cache placement, rrv with eDRAM placement).
type Case int

// The six cases of Figure 4, ordered as in the paper:
// (0,0) (0,1) (0,2) (1,1) (1,2) (2,2).
const (
	Case1 Case = iota + 1 // cache 0, eDRAM 0 — placement irrelevant
	Case2                 // cache 0, eDRAM 1
	Case3                 // cache 0, eDRAM 2
	Case4                 // cache 1, eDRAM 1 — placement irrelevant
	Case5                 // cache 1, eDRAM 2
	Case6                 // cache 2, eDRAM 2 — placement irrelevant
)

// String implements fmt.Stringer.
func (c Case) String() string {
	if c >= Case1 && c <= Case6 {
		return fmt.Sprintf("case%d", int(c))
	}
	return fmt.Sprintf("case(%d)", int(c))
}

// caseOf maps the (cache, eDRAM) rrv pair to its Figure-4 case.  It
// runs once per edge per classification, so it is a plain switch (the
// obvious 6-entry map would be rebuilt — and heap-allocated — on
// every call).
func caseOf(rc, re int) (Case, error) {
	switch rc {
	case 0:
		switch re {
		case 0:
			return Case1, nil
		case 1:
			return Case2, nil
		case 2:
			return Case3, nil
		}
	case 1:
		switch re {
		case 1:
			return Case4, nil
		case 2:
			return Case5, nil
		}
	case 2:
		if re == 2 {
			return Case6, nil
		}
	}
	return 0, fmt.Errorf("retime: rrv pair (cache=%d, edram=%d) outside the six Figure-4 cases", rc, re)
}

// EdgeClass is the classification of one IPR edge against a timing.
type EdgeClass struct {
	Edge   dag.EdgeID
	RCache int  // minimal rrv with the IPR in on-chip cache
	REDRAM int  // minimal rrv with the IPR in eDRAM
	Class  Case // the Figure-4 case
}

// DeltaR is the retiming-value reduction obtained by promoting this
// IPR from eDRAM to cache — the ΔR(m) of the paper's recurrence.
func (c EdgeClass) DeltaR() int { return c.REDRAM - c.RCache }

// Rel returns the minimal rrv for the given placement.
func (c EdgeClass) Rel(p pim.Placement) int {
	if p == pim.InCache {
		return c.RCache
	}
	return c.REDRAM
}

// Classify computes, for every edge, its minimal relative retiming
// value under both placements and the resulting Figure-4 case.  It
// returns an error if any edge violates the Theorem 3.1 precondition
// (its transfer time exceeds the period, which would need rrv > 2) or
// if the timing itself is inconsistent.
func Classify(g *dag.Graph, tm Timing) ([]EdgeClass, error) {
	return ClassifyInto(nil, g, tm)
}

// ClassifyInto is Classify writing into dst[:0], so a caller that
// plans repeatedly (the scheduler's pooled solve scratch) can reuse
// one classification buffer across solves.  It allocates only when
// dst lacks capacity.
//
//paraconv:hotpath
func ClassifyInto(dst []EdgeClass, g *dag.Graph, tm Timing) ([]EdgeClass, error) {
	if err := tm.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	if cap(dst) < g.NumEdges() {
		dst = make([]EdgeClass, g.NumEdges())
	}
	classes := dst[:g.NumEdges()]
	for i := range g.Edges() {
		e := g.Edge(dag.EdgeID(i))
		if e.EDRAMTime > tm.Period {
			return nil, fmt.Errorf("retime: edge %d (%d->%d) eDRAM transfer %d exceeds period %d; Theorem 3.1 bound would break",
				e.ID, e.From, e.To, e.EDRAMTime, tm.Period)
		}
		rc := MinRelative(tm.Finish[e.From], e.CacheTime, tm.Start[e.To], tm.Period)
		re := MinRelative(tm.Finish[e.From], e.EDRAMTime, tm.Start[e.To], tm.Period)
		cls, err := caseOf(rc, re)
		if err != nil {
			return nil, fmt.Errorf("retime: edge %d (%d->%d): %w", e.ID, e.From, e.To, err)
		}
		classes[i] = EdgeClass{Edge: e.ID, RCache: rc, REDRAM: re, Class: cls}
	}
	return classes, nil
}

// AggregateCopies merges the per-edge classifications of `copies`
// disjoint replicas of a graph (as produced by dag.Replicate, whose
// copy k maps logical edge i to edge id k*logicalEdges+i) into one
// classification per logical edge.  An intermediate processing result
// I_{i,j} is one logical datum whose cache slot is reused every
// iteration, so all replicas must share one placement; the merged
// class takes the worst (largest) relative retiming value over the
// replicas for each placement, which is safe because feasibility is
// monotone in rrv.
func AggregateCopies(classes []EdgeClass, logicalEdges, copies int) ([]EdgeClass, error) {
	if copies < 1 || logicalEdges < 0 {
		return nil, fmt.Errorf("retime: AggregateCopies(%d edges, %d copies)", logicalEdges, copies)
	}
	if len(classes) != logicalEdges*copies {
		return nil, fmt.Errorf("retime: %d classes for %d logical edges x %d copies", len(classes), logicalEdges, copies)
	}
	out := make([]EdgeClass, logicalEdges)
	for i := 0; i < logicalEdges; i++ {
		rc, re := 0, 0
		for k := 0; k < copies; k++ {
			c := &classes[k*logicalEdges+i]
			if c.RCache > rc {
				rc = c.RCache
			}
			if c.REDRAM > re {
				re = c.REDRAM
			}
		}
		cls, err := caseOf(rc, re)
		if err != nil {
			return nil, fmt.Errorf("retime: logical edge %d: %w", i, err)
		}
		out[i] = EdgeClass{Edge: dag.EdgeID(i), RCache: rc, REDRAM: re, Class: cls}
	}
	return out, nil
}

// ExpandAssignment replicates a logical-edge assignment to `copies`
// replicas (the inverse of AggregateCopies for placements).
func ExpandAssignment(a Assignment, copies int) Assignment {
	out := make(Assignment, 0, len(a)*copies)
	for k := 0; k < copies; k++ {
		out = append(out, a...)
	}
	return out
}

// CaseHistogram counts how many edges fall into each of the six
// Figure-4 cases — the classification mix that decides how much
// leverage the cache allocation has (cases 2, 3 and 5 are the
// profitable ones).
func CaseHistogram(classes []EdgeClass) map[Case]int {
	h := make(map[Case]int, 6)
	for i := range classes {
		h[classes[i].Class]++
	}
	return h
}

// Assignment records the chosen placement of every IPR, indexed by
// dag.EdgeID.
type Assignment []pim.Placement

// AllEDRAM returns the assignment that places every IPR in eDRAM —
// the no-cache baseline.
func AllEDRAM(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = pim.InEDRAM
	}
	return a
}

// AllCache returns the assignment that places every IPR in on-chip
// cache — the infinite-cache bound.
func AllCache(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = pim.InCache
	}
	return a
}

// CacheLoad returns the total cache footprint (sum of Size over edges
// placed in cache) of the assignment.
func CacheLoad(g *dag.Graph, a Assignment) int {
	load := 0
	for i := range g.Edges() {
		if a[i] == pim.InCache {
			load += g.Edge(dag.EdgeID(i)).Size
		}
	}
	return load
}

// Result is the outcome of a retiming analysis under one assignment.
type Result struct {
	// R is the per-vertex retiming value (Definition 3.1), minimal
	// for the edge requirements.
	R []int
	// REdge is the chosen per-edge relative retiming value.
	REdge []int
	// RMax is max over R, so prologue time = RMax * period.
	RMax int
	// Period echoes the analysis period.
	Period int
}

// Prologue returns the prologue time R_max x p (§3.2).
func (r Result) Prologue() int { return r.RMax * r.Period }

// Apply computes the minimal legal vertex retiming for the given
// placement assignment under iteration period p: every edge requires
// R(producer) - R(consumer) >= rrv(placement), and we minimize every
// R (hence R_max) by a longest-path pass in reverse topological
// order, with sinks pinned at 0.
func Apply(g *dag.Graph, classes []EdgeClass, a Assignment, period int) (Result, error) {
	var res Result
	if err := ApplyInto(&res, g, classes, a, period, nil); err != nil {
		return Result{}, err
	}
	return res, nil
}

// ApplyInto is Apply writing into res, reusing the capacity of its R
// and REdge slices — the caller-buffer form for pooled solve paths.
// A non-nil order must be a topological order of g (as returned by
// TopoSort), letting a caller that already holds one skip the
// re-sort; nil recomputes it.
//
//paraconv:hotpath
func ApplyInto(res *Result, g *dag.Graph, classes []EdgeClass, a Assignment, period int, order []dag.NodeID) error {
	if period < 1 {
		return fmt.Errorf("retime: period %d; want >= 1", period)
	}
	if len(classes) != g.NumEdges() || len(a) != g.NumEdges() {
		return fmt.Errorf("retime: classes/assignment cover %d/%d edges; want %d", len(classes), len(a), g.NumEdges())
	}
	if order == nil {
		var err error
		order, err = g.TopoSort()
		if err != nil {
			return err
		}
	} else if len(order) != g.NumNodes() {
		return fmt.Errorf("retime: supplied order covers %d vertices; want %d", len(order), g.NumNodes())
	}
	if cap(res.REdge) < g.NumEdges() {
		res.REdge = make([]int, g.NumEdges())
	}
	rEdge := res.REdge[:g.NumEdges()]
	for i := range classes {
		rEdge[i] = classes[i].Rel(a[i])
	}
	if cap(res.R) < g.NumNodes() {
		res.R = make([]int, g.NumNodes())
	}
	r := res.R[:g.NumNodes()]
	clear(r)
	for idx := len(order) - 1; idx >= 0; idx-- {
		v := order[idx]
		for _, eid := range g.Out(v) {
			e := g.Edge(eid)
			if need := r[e.To] + rEdge[eid]; need > r[v] {
				r[v] = need
			}
		}
	}
	rmax := 0
	for _, x := range r {
		if x > rmax {
			rmax = x
		}
	}
	if check.Enabled() {
		if err := check.CheckRetiming(g, r, rEdge); err != nil {
			return fmt.Errorf("retime: %w", err)
		}
	}
	res.R, res.REdge, res.RMax, res.Period = r, rEdge, rmax, period
	return nil
}

// AnalyzeAssignment is the one-call variant: classify every edge
// against tm and compute the retiming result for assignment a.
func AnalyzeAssignment(g *dag.Graph, tm Timing, a Assignment) (Result, []EdgeClass, error) {
	classes, err := Classify(g, tm)
	if err != nil {
		return Result{}, nil, err
	}
	res, err := Apply(g, classes, a, tm.Period)
	if err != nil {
		return Result{}, nil, err
	}
	return res, classes, nil
}

// CheckLegal verifies Definition 3.1's legality for the result:
// R(i) - R(j) must be at least the required relative retiming of every
// edge, and all retimings non-negative.  It returns a descriptive
// error for the first violation.
func CheckLegal(g *dag.Graph, res Result) error {
	if len(res.R) != g.NumNodes() || len(res.REdge) != g.NumEdges() {
		return fmt.Errorf("retime: result covers %d vertices, %d edges; want %d, %d",
			len(res.R), len(res.REdge), g.NumNodes(), g.NumEdges())
	}
	for v, r := range res.R {
		if r < 0 {
			return fmt.Errorf("retime: vertex %d has negative retiming %d", v, r)
		}
	}
	for i := range g.Edges() {
		e := g.Edge(dag.EdgeID(i))
		if res.R[e.From]-res.R[e.To] < res.REdge[i] {
			return fmt.Errorf("retime: edge %d (%d->%d): R(i)-R(j) = %d < required rrv %d",
				e.ID, e.From, e.To, res.R[e.From]-res.R[e.To], res.REdge[i])
		}
	}
	return nil
}
