package retime

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/pim"
)

// chain builds 0->1->2 with Exec 1 and the given edge times.
func chain(cacheT, edramT int) *dag.Graph {
	g := dag.New("chain")
	for i := 0; i < 3; i++ {
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
	}
	g.AddEdge(dag.Edge{From: 0, To: 1, Size: 1, CacheTime: cacheT, EDRAMTime: edramT})
	g.AddEdge(dag.Edge{From: 1, To: 2, Size: 1, CacheTime: cacheT, EDRAMTime: edramT})
	return g
}

// compactTiming packs all three chain vertices at time [0,1) with
// period p — the fully-compacted objective schedule where every
// dependency must hop iterations.
func compactTiming(n, p int) Timing {
	tm := Timing{Start: make([]int, n), Finish: make([]int, n), Period: p}
	for i := 0; i < n; i++ {
		tm.Finish[i] = 1
	}
	return tm
}

func TestMinRelative(t *testing.T) {
	cases := []struct {
		finish, transfer, start, period, want int
	}{
		{1, 0, 2, 3, 0}, // producer finishes before consumer starts
		{1, 0, 1, 3, 0}, // exactly on time
		{1, 1, 1, 3, 1}, // overshoots start; fits in producer tail
		{3, 0, 0, 3, 1}, // finish at period end, consumer at 0
		{3, 3, 0, 3, 2}, // worst legal case: two hops (Theorem 3.1)
		{2, 1, 1, 4, 1}, // fits in producer tail of length 2
		{1, 3, 0, 3, 2}, // transfer too big for tail or head: dedicated iteration
		{0, 0, 5, 9, 0}, // plenty of slack
		{2, 2, 3, 4, 1}, // fits in consumer head (start 3 >= 2)
	}
	for _, c := range cases {
		got := MinRelative(c.finish, c.transfer, c.start, c.period)
		if got != c.want {
			t.Errorf("MinRelative(f=%d,t=%d,s=%d,p=%d) = %d, want %d",
				c.finish, c.transfer, c.start, c.period, got, c.want)
		}
	}
}

func TestTheorem31Bound(t *testing.T) {
	// For any finish <= p, transfer <= p, start >= 0 the minimal rrv
	// never exceeds 2 — the upper bound of Theorem 3.1.
	f := func(fRaw, tRaw, sRaw, pRaw uint8) bool {
		p := int(pRaw%20) + 1
		finish := int(fRaw) % (p + 1)
		transfer := int(tRaw) % (p + 1)
		start := int(sRaw) % p
		r := MinRelative(finish, transfer, start, p)
		return r >= 0 && r <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyCases(t *testing.T) {
	// One edge, vertices at controlled positions; sweep placements of
	// start/finish/transfer to hit all six cases.
	build := func(cacheT, edramT, finish0, start1, period int) (*dag.Graph, Timing) {
		g := dag.New("c")
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
		g.AddEdge(dag.Edge{From: 0, To: 1, Size: 1, CacheTime: cacheT, EDRAMTime: edramT})
		tm := Timing{
			Start:  []int{finish0 - 1, start1},
			Finish: []int{finish0, start1 + 1},
			Period: period,
		}
		return g, tm
	}
	cases := []struct {
		name                    string
		cacheT, edramT          int
		finish0, start1, period int
		want                    Case
		wantDelta               int
	}{
		{"case1 slack", 0, 1, 1, 3, 4, Case1, 0},
		{"case2", 0, 2, 1, 2, 4, Case2, 1},
		{"case3", 0, 4, 1, 1, 4, Case3, 2},
		{"case4", 1, 2, 2, 1, 4, Case4, 0},
		{"case5", 0, 4, 4, 3, 4, Case5, 1},
		{"case6", 4, 4, 4, 3, 4, Case6, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, tm := build(c.cacheT, c.edramT, c.finish0, c.start1, c.period)
			classes, err := Classify(g, tm)
			if err != nil {
				t.Fatalf("Classify: %v", err)
			}
			if classes[0].Class != c.want {
				t.Errorf("class = %v (rc=%d re=%d), want %v",
					classes[0].Class, classes[0].RCache, classes[0].REDRAM, c.want)
			}
			if classes[0].DeltaR() != c.wantDelta {
				t.Errorf("ΔR = %d, want %d", classes[0].DeltaR(), c.wantDelta)
			}
		})
	}
}

func TestClassifyRejectsOversizedTransfer(t *testing.T) {
	g := chain(0, 9)
	tm := compactTiming(3, 2) // period 2 < eDRAM transfer 9
	if _, err := Classify(g, tm); err == nil || !strings.Contains(err.Error(), "Theorem 3.1") {
		t.Fatalf("Classify err = %v, want Theorem 3.1 violation", err)
	}
}

func TestTimingValidate(t *testing.T) {
	if err := (Timing{Period: 0}).Validate(0); err == nil {
		t.Error("zero period accepted")
	}
	if err := (Timing{Start: []int{0}, Finish: []int{1}, Period: 2}).Validate(2); err == nil {
		t.Error("short timing accepted")
	}
	if err := (Timing{Start: []int{3}, Finish: []int{1}, Period: 4}).Validate(1); err == nil {
		t.Error("finish < start accepted")
	}
	if err := (Timing{Start: []int{0}, Finish: []int{9}, Period: 4}).Validate(1); err == nil {
		t.Error("finish beyond period accepted")
	}
}

func TestApplyChainAllEDRAM(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 1)
	res, classes, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	// Both edges: finish 1, start 0 mod period 1, transfer 1 ->
	// rrv = ceil((1+1-0)/1) = 2.  Chain of two such edges: R = 4,2,0.
	for i, c := range classes {
		if c.REDRAM != 2 {
			t.Errorf("edge %d REDRAM = %d, want 2", i, c.REDRAM)
		}
	}
	if res.RMax != 4 {
		t.Errorf("RMax = %d, want 4 (two stacked rrv-2 hops)", res.RMax)
	}
	wantR := []int{4, 2, 0}
	for i, w := range wantR {
		if res.R[i] != w {
			t.Errorf("R[%d] = %d, want %d", i, res.R[i], w)
		}
	}
	if err := CheckLegal(g, res); err != nil {
		t.Errorf("CheckLegal: %v", err)
	}
	if res.Prologue() != 4*tm.Period {
		t.Errorf("Prologue = %d, want %d", res.Prologue(), 4*tm.Period)
	}
}

func TestApplyCacheReducesRMax(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 1)
	resE, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	resC, _, err := AnalyzeAssignment(g, tm, AllCache(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if resC.RMax >= resE.RMax {
		t.Errorf("cache RMax %d >= eDRAM RMax %d; caching should reduce retiming", resC.RMax, resE.RMax)
	}
	if err := CheckLegal(g, resC); err != nil {
		t.Errorf("CheckLegal cache: %v", err)
	}
}

func TestApplyDiamond(t *testing.T) {
	// Diamond 0->{1,2}->3, compact schedule: everyone in slot [0,1),
	// period 1, all eDRAM with transfer 1 -> every edge rrv = 2,
	// so R = {4, 2, 2, 0}.
	g := dag.New("d")
	for i := 0; i < 4; i++ {
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
	}
	for _, p := range [][2]dag.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		g.AddEdge(dag.Edge{From: p[0], To: p[1], Size: 1, CacheTime: 0, EDRAMTime: 1})
	}
	tm := compactTiming(4, 1)
	res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 2, 2, 0}
	for i, w := range want {
		if res.R[i] != w {
			t.Errorf("R[%d] = %d, want %d", i, res.R[i], w)
		}
	}
}

func TestApplySizeMismatch(t *testing.T) {
	g := chain(0, 1)
	if _, err := Apply(g, nil, nil, 1); err == nil {
		t.Error("Apply with empty classes accepted")
	}
	classes := []EdgeClass{{}, {}}
	if _, err := Apply(g, classes, Assignment{pim.InCache}, 1); err == nil {
		t.Error("Apply with short assignment accepted")
	}
	if _, err := Apply(g, classes, AllCache(2), 0); err == nil {
		t.Error("Apply with zero period accepted")
	}
}

func TestCheckLegalDetectsViolation(t *testing.T) {
	g := chain(0, 1)
	res := Result{
		R:      []int{0, 0, 0},
		REdge:  []int{1, 0},
		RMax:   0,
		Period: 1,
	}
	if err := CheckLegal(g, res); err == nil || !strings.Contains(err.Error(), "rrv") {
		t.Errorf("CheckLegal = %v, want rrv violation", err)
	}
	res2 := Result{R: []int{-1, 0, 0}, REdge: []int{0, 0}}
	if err := CheckLegal(g, res2); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("CheckLegal = %v, want negative retiming", err)
	}
	if err := CheckLegal(g, Result{}); err == nil {
		t.Error("CheckLegal on empty result accepted")
	}
}

func TestCacheLoadAndAssignments(t *testing.T) {
	g := chain(0, 1)
	g.Edge(0).Size = 3
	g.Edge(1).Size = 5
	if got := CacheLoad(g, AllCache(2)); got != 8 {
		t.Errorf("CacheLoad all-cache = %d, want 8", got)
	}
	if got := CacheLoad(g, AllEDRAM(2)); got != 0 {
		t.Errorf("CacheLoad all-eDRAM = %d, want 0", got)
	}
	if got := CacheLoad(g, Assignment{pim.InCache, pim.InEDRAM}); got != 3 {
		t.Errorf("CacheLoad mixed = %d, want 3", got)
	}
}

func TestCaseString(t *testing.T) {
	if Case3.String() != "case3" {
		t.Errorf("Case3.String() = %q", Case3.String())
	}
	if got := Case(0).String(); !strings.Contains(got, "0") {
		t.Errorf("invalid case string = %q", got)
	}
}

// Property: for random timings, Apply always yields a legal retiming
// whose RMax equals the true maximum, and promoting everything to
// cache never increases RMax.
func TestApplyLegalAndMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, tm := randomTimedGraph(seed)
		resE, classes, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
		if err != nil {
			return false
		}
		if CheckLegal(g, resE) != nil {
			return false
		}
		resC, err := Apply(g, classes, AllCache(g.NumEdges()), tm.Period)
		if err != nil || CheckLegal(g, resC) != nil {
			return false
		}
		if resC.RMax > resE.RMax {
			return false
		}
		max := 0
		for _, r := range resE.R {
			if r > max {
				max = r
			}
		}
		return max == resE.RMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomTimedGraph builds a small random DAG plus a consistent compact
// timing for property tests.
func randomTimedGraph(seed int64) (*dag.Graph, Timing) {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	n := 3 + next(10)
	period := 2 + next(4)
	g := dag.New("rt")
	tm := Timing{Period: period}
	for i := 0; i < n; i++ {
		exec := 1 + next(period-1)
		start := next(period - exec + 1)
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: exec})
		tm.Start = append(tm.Start, start)
		tm.Finish = append(tm.Finish, start+exec)
	}
	edges := next(2 * n)
	seen := map[[2]int]bool{}
	for k := 0; k < edges; k++ {
		a := next(n - 1)
		b := a + 1 + next(n-a-1)
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		ct := next(2)
		g.AddEdge(dag.Edge{
			From: dag.NodeID(a), To: dag.NodeID(b), Size: 1 + next(2),
			CacheTime: ct, EDRAMTime: minInt(ct+1+next(3), period),
		})
	}
	return g, tm
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
