package retime

import (
	"strings"
	"testing"

	"repro/internal/pim"
)

func TestAggregateCopies(t *testing.T) {
	// Two logical edges, two copies; worst case per placement.
	classes := []EdgeClass{
		{Edge: 0, RCache: 0, REDRAM: 1, Class: Case2}, // copy 0, edge 0
		{Edge: 1, RCache: 1, REDRAM: 1, Class: Case4}, // copy 0, edge 1
		{Edge: 2, RCache: 0, REDRAM: 2, Class: Case3}, // copy 1, edge 0
		{Edge: 3, RCache: 0, REDRAM: 1, Class: Case2}, // copy 1, edge 1
	}
	agg, err := AggregateCopies(classes, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 2 {
		t.Fatalf("%d aggregated classes", len(agg))
	}
	if agg[0].RCache != 0 || agg[0].REDRAM != 2 || agg[0].Class != Case3 {
		t.Errorf("edge 0 aggregate = %+v, want (0,2,case3)", agg[0])
	}
	if agg[1].RCache != 1 || agg[1].REDRAM != 1 || agg[1].Class != Case4 {
		t.Errorf("edge 1 aggregate = %+v, want (1,1,case4)", agg[1])
	}
}

func TestAggregateCopiesSingleCopy(t *testing.T) {
	classes := []EdgeClass{{Edge: 0, RCache: 1, REDRAM: 2, Class: Case5}}
	agg, err := AggregateCopies(classes, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg[0] != classes[0] {
		t.Errorf("single-copy aggregate changed the class: %+v", agg[0])
	}
}

func TestAggregateCopiesErrors(t *testing.T) {
	if _, err := AggregateCopies(nil, 2, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := AggregateCopies([]EdgeClass{{}}, 1, 0); err == nil {
		t.Error("zero copies accepted")
	}
	if _, err := AggregateCopies([]EdgeClass{{}}, -1, 1); err == nil {
		t.Error("negative edge count accepted")
	}
}

func TestExpandAssignment(t *testing.T) {
	a := Assignment{pim.InCache, pim.InEDRAM}
	x := ExpandAssignment(a, 3)
	if len(x) != 6 {
		t.Fatalf("expanded length %d", len(x))
	}
	for k := 0; k < 3; k++ {
		if x[2*k] != pim.InCache || x[2*k+1] != pim.InEDRAM {
			t.Errorf("copy %d mangled: %v", k, x[2*k:2*k+2])
		}
	}
	// Mutating the expansion must not touch the original.
	x[0] = pim.InEDRAM
	if a[0] != pim.InCache {
		t.Error("ExpandAssignment aliases its input")
	}
}

func TestCaseHistogram(t *testing.T) {
	classes := []EdgeClass{
		{Class: Case1}, {Class: Case2}, {Class: Case2},
		{Class: Case4}, {Class: Case5}, {Class: Case5}, {Class: Case5},
	}
	h := CaseHistogram(classes)
	want := map[Case]int{Case1: 1, Case2: 2, Case4: 1, Case5: 3}
	for c, n := range want {
		if h[c] != n {
			t.Errorf("case %v count = %d, want %d", c, h[c], n)
		}
	}
	if h[Case3] != 0 || h[Case6] != 0 {
		t.Error("phantom counts for unused cases")
	}
	if len(CaseHistogram(nil)) != 0 {
		t.Error("empty histogram not empty")
	}
}

func TestAnalyzeAssignmentErrorPaths(t *testing.T) {
	g := chain(0, 1)
	badTm := Timing{Start: []int{0}, Finish: []int{1}, Period: 1}
	if _, _, err := AnalyzeAssignment(g, badTm, AllEDRAM(2)); err == nil {
		t.Error("short timing accepted")
	}
	tm := compactTiming(3, 1)
	if _, _, err := AnalyzeAssignment(g, tm, AllEDRAM(1)); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Errorf("short assignment: %v", err)
	}
}
