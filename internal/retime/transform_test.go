package retime

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestUnfoldChain(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 1)
	res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	// R = [4, 2, 0].
	const iterations = 6
	table, err := Unfold(g, res, iterations)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rounds) != res.RMax+iterations {
		t.Fatalf("rounds = %d, want %d", len(table.Rounds), res.RMax+iterations)
	}
	// Round 0 holds only the most-retimed vertex (vertex 0, R=4).
	r0 := table.Rounds[0]
	if len(r0) != 1 || r0[0].Node != 0 || r0[0].Iter != 0 {
		t.Errorf("round 0 = %v, want [{0 0}]", r0)
	}
	// Round 2 holds vertex 0 (iter 2) and vertex 1 (iter 0).
	r2 := table.Rounds[2]
	if len(r2) != 2 {
		t.Errorf("round 2 = %v", r2)
	}
	if err := table.Verify(g, res, iterations); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := table.InstanceCount(); got != 3*iterations {
		t.Errorf("instance count = %d, want %d", got, 3*iterations)
	}
	if len(table.PrologueRounds()) != 4 {
		t.Errorf("prologue rounds = %d, want 4", len(table.PrologueRounds()))
	}
	if len(table.SteadyRounds()) != iterations {
		t.Errorf("steady rounds = %d, want %d", len(table.SteadyRounds()), iterations)
	}
}

func TestUnfoldRejectsBadInput(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 1)
	res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unfold(g, res, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := res
	bad.R = []int{0, 0, 0} // violates edge requirements
	if _, err := Unfold(g, bad, 3); err == nil {
		t.Error("illegal retiming accepted")
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 1)
	res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	table, err := Unfold(g, res, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Move an instance to the wrong round.
	moved := table.Rounds[2][0]
	table.Rounds[2] = table.Rounds[2][1:]
	table.Rounds[3] = append(table.Rounds[3], moved)
	if err := table.Verify(g, res, 5); err == nil {
		t.Error("tampered table verified cleanly")
	}

	// Duplicate an instance.
	table2, _ := Unfold(g, res, 5)
	table2.Rounds[1] = append(table2.Rounds[1], table2.Rounds[1][0])
	if err := table2.Verify(g, res, 5); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate not caught: %v", err)
	}
}

func TestRetimedShiftsStarts(t *testing.T) {
	g := chain(0, 1)
	tm := compactTiming(3, 2)
	res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Retimed(g, res)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		want := g.Node(dag.NodeID(v)).Start - res.R[v]*res.Period
		if got := rg.Node(dag.NodeID(v)).Start; got != want {
			t.Errorf("vertex %d start = %d, want %d", v, got, want)
		}
	}
	// Structure unchanged.
	if rg.NumEdges() != g.NumEdges() || rg.NumNodes() != g.NumNodes() {
		t.Error("Retimed changed graph structure")
	}
	// Original untouched.
	if g.Node(0).Start != 0 {
		t.Error("Retimed mutated the input graph")
	}
}

func TestRetimedRejectsIllegal(t *testing.T) {
	g := chain(0, 1)
	bad := Result{R: []int{0, 0, 0}, REdge: []int{2, 2}, Period: 1}
	if _, err := Retimed(g, bad); err == nil {
		t.Error("illegal retiming accepted")
	}
}

// Property: Unfold + Verify succeed for every legal retiming produced
// by the analysis on random graphs.
func TestUnfoldVerifyProperty(t *testing.T) {
	f := func(seed int64, itersRaw uint8) bool {
		g, tm := randomTimedGraph(seed)
		res, _, err := AnalyzeAssignment(g, tm, AllEDRAM(g.NumEdges()))
		if err != nil {
			return false
		}
		iterations := int(itersRaw%10) + 1
		table, err := Unfold(g, res, iterations)
		if err != nil {
			return false
		}
		return table.Verify(g, res, iterations) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
