// Package slo turns service-level objectives into code: each Objective
// names a bad-event and a total-event series over the obs registry,
// an error budget (the tolerated bad/total ratio), and a set of
// burn-rate windows.  An Evaluator samples registry snapshots on a
// fixed cadence and, on demand, reports each objective's burn rate —
// the observed bad ratio divided by the budget — over every window
// (the SRE multi-window formulation: a fast window catches cliffs, a
// slow window catches smolder, and an alert needs both).
//
// The engine consumes obs.Snapshot deltas rather than live
// instruments, so the same math serves the daemon's /debug/slo
// endpoint, the load generator's -slo gate, and unit tests feeding a
// private registry.
package slo

import (
	"time"

	"repro/internal/obs"
)

// Selector names one event stream inside a snapshot: a counter family
// or a histogram, narrowed by a label subset and — for histograms —
// optionally restricted to samples above a bucket bound.
type Selector struct {
	// Metric is the instrument name (e.g. "paraconv_server_requests_total").
	Metric string `json:"metric"`
	// Labels must all match; series are summed over any labels not
	// listed here, so {"endpoint":"plan"} aggregates across status
	// classes.  nil matches every series of the family.
	Labels map[string]string `json:"labels,omitempty"`
	// Above, for histogram metrics, counts only samples strictly above
	// this bucket bound (the bad-event reading of a latency objective).
	// Zero counts every sample.
	Above float64 `json:"above,omitempty"`
}

// matches reports whether the selector's label subset is satisfied.
func (s Selector) matches(labels map[string]string) bool {
	for k, want := range s.Labels {
		if labels[k] != want {
			return false
		}
	}
	return true
}

// value sums the selector's event count over one snapshot.
func (s Selector) value(snap *obs.Snapshot) float64 {
	total := 0.0
	for _, c := range snap.Counters {
		if c.Name == s.Metric && s.matches(c.Labels) {
			total += float64(c.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Name != s.Metric || !s.matches(h.Labels) {
			continue
		}
		if s.Above > 0 {
			total += float64(h.CountAbove(s.Above))
		} else {
			total += float64(h.Count)
		}
	}
	return total
}

// sumSelectors sums a selector set over one snapshot.
func sumSelectors(sels []Selector, snap *obs.Snapshot) float64 {
	total := 0.0
	for _, s := range sels {
		total += s.value(snap)
	}
	return total
}

// Window is one burn-rate evaluation horizon.
type Window struct {
	// Name labels the window in reports ("fast", "slow").
	Name string `json:"name"`
	// Duration is the lookback horizon.  With less history than this
	// the window clamps to what the sample ring holds.
	Duration time.Duration `json:"duration_ns"`
	// MaxBurn is the burn-rate threshold: burning means consuming the
	// error budget more than MaxBurn times faster than the objective
	// tolerates over a full compliance period.
	MaxBurn float64 `json:"max_burn"`
}

// Objective is one SLO: a tolerated bad/total ratio over named event
// streams, watched across burn-rate windows.
type Objective struct {
	// Name is the objective's stable slug ("plan_latency_p99_5ms").
	Name string `json:"name"`
	// Description says what the objective promises, for humans.
	Description string `json:"description"`
	// Bad and Total define the ratio; both are summed selector sets.
	Bad   []Selector `json:"bad"`
	Total []Selector `json:"total"`
	// Budget is the tolerated bad/total ratio (0.01 = 99% objective).
	Budget float64 `json:"budget"`
	// Windows are the burn-rate horizons.  An objective is breached
	// when every window that has data is burning (the multi-window AND:
	// fast alone is noise, slow alone is stale).
	Windows []Window `json:"windows"`
}

// WindowStatus is one window's evaluation inside a report.
type WindowStatus struct {
	Name string `json:"name"`
	// Requested and Actual are the configured horizon and the history
	// actually available (short runs clamp to the oldest sample).
	Requested time.Duration `json:"requested_ns"`
	Actual    time.Duration `json:"actual_ns"`
	Bad       float64       `json:"bad"`
	Total     float64       `json:"total"`
	// Ratio is bad/total (0 with no traffic); Burn is Ratio/Budget.
	Ratio   float64 `json:"ratio"`
	Burn    float64 `json:"burn"`
	MaxBurn float64 `json:"max_burn"`
	// Burning means Burn exceeds MaxBurn; HasData means the window saw
	// any total events.
	Burning bool `json:"burning"`
	HasData bool `json:"has_data"`
}

// ObjectiveStatus is one objective's evaluation inside a report.
type ObjectiveStatus struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	Budget      float64        `json:"budget"`
	Windows     []WindowStatus `json:"windows"`
	// Breached means every window with data is burning.
	Breached bool `json:"breached"`
}

// Report is one point-in-time evaluation of every objective.
type Report struct {
	At         time.Time         `json:"at"`
	Objectives []ObjectiveStatus `json:"objectives"`
	// Healthy means no objective is breached.
	Healthy bool `json:"healthy"`
}

// evaluate scores one objective given the newest snapshot and a
// lookup for the snapshot at a window's start.
func (o Objective) evaluate(now sample, at func(time.Duration) (sample, bool)) ObjectiveStatus {
	st := ObjectiveStatus{
		Name:        o.Name,
		Description: o.Description,
		Budget:      o.Budget,
		Windows:     make([]WindowStatus, len(o.Windows)),
	}
	burningWithData := 0
	withData := 0
	for i, w := range o.Windows {
		ws := WindowStatus{Name: w.Name, Requested: w.Duration, MaxBurn: w.MaxBurn}
		if past, ok := at(w.Duration); ok {
			ws.Actual = now.at.Sub(past.at)
			// Deltas clamp at zero so a registry Reset mid-window reads
			// as no traffic rather than negative traffic.
			ws.Bad = max(0, sumSelectors(o.Bad, &now.snap)-sumSelectors(o.Bad, &past.snap))
			ws.Total = max(0, sumSelectors(o.Total, &now.snap)-sumSelectors(o.Total, &past.snap))
		}
		if ws.Total > 0 {
			ws.HasData = true
			ws.Ratio = ws.Bad / ws.Total
			if o.Budget > 0 {
				ws.Burn = ws.Ratio / o.Budget
			}
			ws.Burning = ws.Burn > ws.MaxBurn
			withData++
			if ws.Burning {
				burningWithData++
			}
		}
		st.Windows[i] = ws
	}
	st.Breached = withData > 0 && burningWithData == withData
	return st
}
