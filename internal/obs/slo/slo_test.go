package slo

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// testObjective watches bad_total against req_total with a 1% budget.
func testObjective(windows ...Window) Objective {
	return Objective{
		Name:        "test_ratio",
		Description: "99% of test requests good",
		Bad:         []Selector{{Metric: "test_bad_total"}},
		Total:       []Selector{{Metric: "test_req_total"}},
		Budget:      0.01,
		Windows:     windows,
	}
}

func TestBurnRateFromCounterDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("test_bad_total", "bad events")
	total := reg.Counter("test_req_total", "all events")

	e := NewEvaluator(reg, []Objective{testObjective(
		Window{Name: "tight", Duration: time.Minute, MaxBurn: 2},
		Window{Name: "loose", Duration: time.Minute, MaxBurn: 10},
	)}, time.Hour)

	total.Add(1000)
	bad.Add(50) // ratio 0.05 over a 0.01 budget: burn 5

	rep := e.Report()
	if len(rep.Objectives) != 1 {
		t.Fatalf("report has %d objectives, want 1", len(rep.Objectives))
	}
	st := rep.Objectives[0]
	for _, ws := range st.Windows {
		if !ws.HasData || ws.Bad != 50 || ws.Total != 1000 {
			t.Fatalf("window %q: bad/total = %v/%v (has_data %v), want 50/1000", ws.Name, ws.Bad, ws.Total, ws.HasData)
		}
		if ws.Ratio != 0.05 || ws.Burn != 5 {
			t.Fatalf("window %q: ratio/burn = %v/%v, want 0.05/5", ws.Name, ws.Ratio, ws.Burn)
		}
		if ws.Actual <= 0 || ws.Actual > ws.Requested {
			t.Errorf("window %q: actual %v outside (0, %v]", ws.Name, ws.Actual, ws.Requested)
		}
	}
	if st.Windows[0].Burning != true || st.Windows[1].Burning != false {
		t.Fatalf("burning = %v/%v, want true/false (thresholds 2 and 10)", st.Windows[0].Burning, st.Windows[1].Burning)
	}
	// Multi-window AND: only one window burning is not a breach.
	if st.Breached || !rep.Healthy {
		t.Fatal("objective breached with only the tight window burning")
	}

	bad.Add(150) // ratio 0.2: burn 20, above both thresholds
	rep = e.Report()
	if !rep.Objectives[0].Breached || rep.Healthy {
		t.Fatal("objective not breached with both windows burning")
	}
}

func TestNoTrafficIsHealthy(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test_bad_total", "bad events")
	reg.Counter("test_req_total", "all events")
	e := NewEvaluator(reg, []Objective{testObjective(
		Window{Name: "fast", Duration: time.Minute, MaxBurn: 1},
	)}, time.Hour)
	rep := e.Report()
	st := rep.Objectives[0]
	if st.Windows[0].HasData || st.Breached || !rep.Healthy {
		t.Fatalf("idle service reported unhealthy: %+v", st)
	}
}

func TestResetClampsDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("test_bad_total", "bad events")
	total := reg.Counter("test_req_total", "all events")
	total.Add(100)
	bad.Add(100)
	e := NewEvaluator(reg, []Objective{testObjective(
		Window{Name: "fast", Duration: time.Minute, MaxBurn: 1},
	)}, time.Hour)
	reg.Reset() // counters drop below the baseline sample
	rep := e.Report()
	ws := rep.Objectives[0].Windows[0]
	if ws.Bad != 0 || ws.Total != 0 || ws.HasData {
		t.Fatalf("post-Reset window = %+v, want clamped-to-zero deltas", ws)
	}
	if !rep.Healthy {
		t.Fatal("post-Reset report unhealthy")
	}
}

func TestHistogramSelectorCountsAboveBound(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency", obs.DurationBuckets)
	obj := Objective{
		Name:   "latency_5ms",
		Bad:    []Selector{{Metric: "test_latency_seconds", Above: 0.005}},
		Total:  []Selector{{Metric: "test_latency_seconds"}},
		Budget: 0.01,
		Windows: []Window{
			{Name: "fast", Duration: time.Minute, MaxBurn: 1},
		},
	}
	e := NewEvaluator(reg, []Objective{obj}, time.Hour)
	for i := 0; i < 98; i++ {
		h.Observe(0.001) // fast
	}
	h.Observe(0.020) // slow
	h.Observe(0.050) // slow
	rep := e.Report()
	ws := rep.Objectives[0].Windows[0]
	if ws.Bad != 2 || ws.Total != 100 {
		t.Fatalf("bad/total = %v/%v, want 2/100", ws.Bad, ws.Total)
	}
	if ws.Burn != 2 || !ws.Burning {
		t.Fatalf("burn = %v (burning %v), want 2 burning", ws.Burn, ws.Burning)
	}
}

func TestLabelSubsetAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		reg.Counter("test_requests_total", "requests",
			obs.Label{Key: "endpoint", Value: "plan"}, obs.Label{Key: "code", Value: class}).Add(10)
	}
	snap := reg.Snapshot()
	all := Selector{Metric: "test_requests_total"}
	if got := all.value(&snap); got != 30 {
		t.Fatalf("unrestricted selector = %v, want 30", got)
	}
	errs := Selector{Metric: "test_requests_total", Labels: map[string]string{"code": "5xx"}}
	if got := errs.value(&snap); got != 10 {
		t.Fatalf("code=5xx selector = %v, want 10", got)
	}
	none := Selector{Metric: "test_requests_total", Labels: map[string]string{"code": "503"}}
	if got := none.value(&snap); got != 0 {
		t.Fatalf("unmatched selector = %v, want 0", got)
	}
}

func TestStandardObjectivesWellFormed(t *testing.T) {
	objs := Standard()
	if len(objs) != 3 {
		t.Fatalf("Standard() has %d objectives, want 3", len(objs))
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if o.Name == "" || seen[o.Name] {
			t.Errorf("objective name %q empty or duplicated", o.Name)
		}
		seen[o.Name] = true
		if o.Budget <= 0 || o.Budget >= 1 {
			t.Errorf("%s: budget %v outside (0,1)", o.Name, o.Budget)
		}
		if len(o.Bad) == 0 || len(o.Total) == 0 || len(o.Windows) < 2 {
			t.Errorf("%s: needs bad, total and >= 2 windows", o.Name)
		}
	}
	// The latency objective's bound must be a real DurationBuckets
	// bound, or CountAbove silently shifts the objective.
	found := false
	for _, b := range obs.DurationBuckets {
		if b == 0.005 {
			found = true
		}
	}
	if !found {
		t.Error("0.005 is not a DurationBuckets bound; plan_latency_5ms is miscounted")
	}
}

// TestEvaluatorConcurrentSampleReport is the SLO half of the
// snapshot-while-observe race gate: instrument writers, the sampling
// loop, and report readers all run together under -race.
func TestEvaluatorConcurrentSampleReport(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("test_bad_total", "bad events")
	total := reg.Counter("test_req_total", "all events")
	h := reg.Histogram("test_latency_seconds", "latency", obs.DurationBuckets)
	obj := testObjective(Window{Name: "fast", Duration: time.Second, MaxBurn: 100})
	e := NewEvaluator(reg, []Objective{obj}, time.Millisecond)

	stop := make(chan struct{})
	var loopWG sync.WaitGroup
	loopWG.Add(1)
	go func() {
		defer loopWG.Done()
		e.Run(stop)
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				total.Inc()
				if i%100 == 0 {
					bad.Inc()
				}
				h.Observe(0.001)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rep := e.Report()
				if len(rep.Objectives) != 1 {
					t.Errorf("report lost its objective: %+v", rep)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	loopWG.Wait()
}
