package slo

import "time"

// Standard returns the daemon's objective set — the SLOs paraconvd
// promises and scripts/ci.sh gates on:
//
//   - plan latency: at most 1% of /v1/plan requests slower than 5ms
//     end-to-end (0.005 is a DurationBuckets bound, so the bad-event
//     count is exact);
//   - shed rate: fewer than 1% of requests rejected 429 by admission
//     control;
//   - error rate: fewer than 0.1% of requests answered 5xx.
//
// Each objective watches a fast window (cliffs: a deploy that tanks
// latency shows up within a minute) and a slow window (smolder: a few
// bad seconds must not page).  Burn thresholds follow the SRE
// multiwindow convention, scaled down to windows that fit a daemon
// run rather than a 30-day compliance period.
func Standard() []Objective {
	windows := []Window{
		{Name: "fast", Duration: time.Minute, MaxBurn: 14.4},
		{Name: "slow", Duration: 5 * time.Minute, MaxBurn: 6},
	}
	return []Objective{
		{
			Name:        "plan_latency_5ms",
			Description: "99% of /v1/plan requests complete within 5ms end-to-end",
			Bad: []Selector{{
				Metric: "paraconv_server_request_seconds",
				Labels: map[string]string{"endpoint": "plan"},
				Above:  0.005,
			}},
			Total: []Selector{{
				Metric: "paraconv_server_request_seconds",
				Labels: map[string]string{"endpoint": "plan"},
			}},
			Budget:  0.01,
			Windows: windows,
		},
		{
			Name:        "shed_rate_1pct",
			Description: "99% of requests admitted (not shed 429 by the admission queue)",
			Bad:         []Selector{{Metric: "paraconv_server_shed_total"}},
			Total:       []Selector{{Metric: "paraconv_server_requests_total"}},
			Budget:      0.01,
			Windows:     windows,
		},
		{
			Name:        "error_rate_0_1pct",
			Description: "99.9% of requests answered without a 5xx",
			Bad: []Selector{{
				Metric: "paraconv_server_requests_total",
				Labels: map[string]string{"code": "5xx"},
			}},
			Total:   []Selector{{Metric: "paraconv_server_requests_total"}},
			Budget:  0.001,
			Windows: windows,
		},
	}
}
