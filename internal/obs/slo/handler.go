package slo

import (
	"encoding/json"
	"net/http"
)

// Handler serves GET /debug/slo: the evaluator's current Report as
// indented JSON.  Like the other debug endpoints it is read-only and
// belongs on a loopback listener.
func Handler(e *Evaluator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := e.Report()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !rep.Healthy {
			// Breached objectives surface in the status code too, so a
			// curl-level gate needs no JSON parsing.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}
