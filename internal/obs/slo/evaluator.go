package slo

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// sample is one timestamped registry snapshot in the evaluator's ring.
type sample struct {
	at   time.Time
	snap obs.Snapshot
}

// Evaluator periodically snapshots a registry and scores objectives
// against the history.  It is safe for concurrent use: the sampling
// loop, the /debug/slo handler, and tests may all call into it at
// once.
type Evaluator struct {
	reg        *obs.Registry
	objectives []Objective
	interval   time.Duration

	mu      sync.Mutex
	samples []sample // oldest first; bounded by maxSamples
	maxSam  int
}

// DefaultInterval is the evaluator's default sampling cadence.
const DefaultInterval = 5 * time.Second

// NewEvaluator builds an evaluator over reg with the given objectives.
// interval <= 0 selects DefaultInterval.  The sample ring is sized to
// cover the longest objective window at the chosen cadence.
func NewEvaluator(reg *obs.Registry, objectives []Objective, interval time.Duration) *Evaluator {
	if interval <= 0 {
		interval = DefaultInterval
	}
	longest := time.Duration(0)
	for _, o := range objectives {
		for _, w := range o.Windows {
			if w.Duration > longest {
				longest = w.Duration
			}
		}
	}
	maxSam := int(longest/interval) + 2
	if maxSam < 2 {
		maxSam = 2
	}
	e := &Evaluator{reg: reg, objectives: objectives, interval: interval, maxSam: maxSam}
	e.Sample() // seed the history so the first report has a baseline
	return e
}

// Interval returns the sampling cadence.
func (e *Evaluator) Interval() time.Duration { return e.interval }

// Objectives returns the objective set (shared; callers must not
// mutate).
func (e *Evaluator) Objectives() []Objective { return e.objectives }

// Sample appends a snapshot of the registry to the history, evicting
// the oldest sample beyond the ring bound.
func (e *Evaluator) Sample() {
	s := sample{at: time.Now(), snap: e.reg.Snapshot()}
	e.mu.Lock()
	e.samples = append(e.samples, s)
	if len(e.samples) > e.maxSam {
		e.samples = append(e.samples[:0], e.samples[len(e.samples)-e.maxSam:]...)
	}
	e.mu.Unlock()
}

// Run samples on the evaluator's cadence until stop closes.  The
// daemon owns the goroutine; tests drive Sample directly.
func (e *Evaluator) Run(stop <-chan struct{}) {
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Sample()
		}
	}
}

// Report evaluates every objective against a fresh snapshot taken now.
// Taking the "now" point on demand (rather than waiting for the next
// tick) makes short-lived runs — the CI smoke, the load gate — see
// their own traffic immediately.
func (e *Evaluator) Report() Report {
	now := sample{at: time.Now(), snap: e.reg.Snapshot()}
	e.mu.Lock()
	history := append([]sample(nil), e.samples...)
	e.mu.Unlock()

	// at returns the sample closest to (now - d) without being newer,
	// falling back to the oldest sample for windows longer than the
	// history (the clamp Report's ActualWindow exposes).
	at := func(d time.Duration) (sample, bool) {
		if len(history) == 0 {
			return sample{}, false
		}
		cutoff := now.at.Add(-d)
		best := history[0]
		for _, s := range history {
			if s.at.After(cutoff) {
				break
			}
			best = s
		}
		return best, true
	}

	rep := Report{At: now.at, Objectives: make([]ObjectiveStatus, len(e.objectives)), Healthy: true}
	for i, o := range e.objectives {
		st := o.evaluate(now, at)
		rep.Objectives[i] = st
		if st.Breached {
			rep.Healthy = false
		}
	}
	return rep
}
