package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The module's structured logger.  Default: human-readable text on
// stderr at Warn, so instrumented library paths stay silent unless a
// CLI raises the level (-loglevel debug) or something goes wrong.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: slog.LevelWarn,
	})))
}

// Log returns the module's shared structured logger.  Instrumented
// packages log through it (cache activity and plan latencies at Debug,
// job failures at Warn) instead of owning package-level loggers.
func Log() *slog.Logger { return defaultLogger.Load() }

// SetLogger replaces the shared logger; nil is ignored.
func SetLogger(l *slog.Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// SetupLogging builds a logger writing to w at the given level — text
// by default, JSON when jsonFormat is set — installs it as the shared
// logger and returns it.  CLIs call this from their -loglevel flag.
func SetupLogging(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	SetLogger(l)
	return l
}

// ParseLevel maps a -loglevel flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}
