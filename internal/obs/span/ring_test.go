package span

import (
	"context"
	"sync"
	"testing"
)

func TestRingAddEvictsOldest(t *testing.T) {
	r := NewRing(ringStripes) // one slot per stripe
	var traces []*Trace
	for i := 0; i < 4*ringStripes; i++ {
		tr := New()
		// Pin the stripe assignment: random ids land unevenly, and with
		// one slot per stripe an unlucky draw leaves a stripe empty —
		// this test is about eviction order, not hash spread.
		tr.id.Lo = uint64(i)
		tr.Finish()
		r.Add(tr)
		traces = append(traces, tr)
	}
	if n := r.Len(); n != ringStripes {
		t.Fatalf("ring holds %d traces, want %d", n, ringStripes)
	}
	// Every resident trace must be one of the admitted ones, and the
	// very first admission must have been evicted from its stripe.
	resident := make(map[ID]bool)
	for _, tr := range r.Snapshot() {
		resident[tr.ID()] = true
	}
	if resident[traces[0].ID()] {
		t.Error("oldest admission still resident after 4x overwrite")
	}
	if !resident[traces[len(traces)-1].ID()] {
		t.Error("newest admission missing from ring")
	}
}

func TestRingSnapshotNewestFirst(t *testing.T) {
	r := NewRing(64)
	var last *Trace
	for i := 0; i < 16; i++ {
		last = New()
		last.Finish()
		r.Add(last)
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d traces, want 16", len(snap))
	}
	if snap[0] != last {
		t.Error("snapshot[0] is not the newest admission")
	}
}

func TestRingGet(t *testing.T) {
	r := NewRing(8)
	tr := New()
	tr.Finish()
	r.Add(tr)
	if got := r.Get(tr.ID().String()); got != tr {
		t.Fatalf("Get(%q) = %v, want the admitted trace", tr.ID(), got)
	}
	if got := r.Get("00000000000000000000000000000000"); got != nil {
		t.Fatalf("Get(absent id) = %v, want nil", got)
	}
	r.Add(nil) // must not panic or admit
	if n := r.Len(); n != 1 {
		t.Fatalf("ring holds %d traces after nil Add, want 1", n)
	}
}

// TestRingConcurrentSnapshotWhileAdd is the snapshot-while-observe race
// gate: writers admit finished traces and append late spans while
// readers snapshot, list, and export concurrently.  Run under -race.
func TestRingConcurrentSnapshotWhileAdd(t *testing.T) {
	withTracing(t)
	r := NewRing(32)
	const writers, readers, perWriter = 4, 4, 200

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				tr := New()
				ctx := NewContext(context.Background(), tr)
				root := Start(ctx, "server.plan")
				child := Start(ctx, "run.cache")
				child.End()
				r.Add(tr) // admit before the trace is finished...
				root.End()
				tr.Finish() // ...so readers race with late spans
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot() {
					spans := tr.Export()
					for _, sp := range spans {
						if sp.Parent >= len(spans) {
							t.Errorf("span parent %d out of range %d", sp.Parent, len(spans))
							return
						}
					}
					_ = summarize(tr)
					_ = tr.ID().String()
				}
				r.Len()
			}
		}()
	}
	// Readers keep racing until every writer is done, then drain.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if n := r.Len(); n != 32 {
		t.Fatalf("ring holds %d traces after churn, want full capacity 32", n)
	}
}
