package span

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// chromeDoc mirrors the exported document with pointer fields so the
// test can tell "absent" from "zero" — the same structural-validation
// idiom internal/trace's golden test uses.
type chromeDoc struct {
	TraceEvents     []chromeDocEvent `json:"traceEvents"`
	DisplayTimeUnit *string          `json:"displayTimeUnit"`
}

type chromeDocEvent struct {
	Name *string        `json:"name"`
	Cat  *string        `json:"cat"`
	Ph   *string        `json:"ph"`
	Ts   *int           `json:"ts"`
	Dur  *int           `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestWriteChromeRoundTrip(t *testing.T) {
	withTracing(t)
	tr := New()
	ctx := NewContext(context.Background(), tr)
	names := []string{"server.plan", "run.cache", "sched.retime", "sched.knapsack"}
	root := Start(ctx, names[0])
	for _, n := range names[1:] {
		sp := Start(ctx, n)
		time.Sleep(100 * time.Microsecond) // give spans visible width
		sp.End()
	}
	open := Start(ctx, "server.encode") // left open deliberately
	_ = open
	root.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("exported document does not decode: %v", err)
	}
	if doc.DisplayTimeUnit == nil || *doc.DisplayTimeUnit != "ms" {
		t.Error("displayTimeUnit missing or not \"ms\"")
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("document holds %d events, want 5", len(doc.TraceEvents))
	}
	id := tr.ID().String()
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || ev.Cat == nil || ev.Ph == nil || ev.Ts == nil ||
			ev.Dur == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d is missing required fields: %+v", i, ev)
		}
		if *ev.Ph != "X" || *ev.Cat != "span" {
			t.Errorf("event %d: ph/cat = %q/%q, want X/span", i, *ev.Ph, *ev.Cat)
		}
		if *ev.Dur < 1 {
			t.Errorf("event %d: dur = %d, want >= 1 (open spans get a sliver)", i, *ev.Dur)
		}
		if got, _ := ev.Args["trace"].(string); got != id {
			t.Errorf("event %d: args.trace = %q, want %q", i, got, id)
		}
	}
	if got := *doc.TraceEvents[0].Name; got != "server.plan" {
		t.Errorf("first event is %q, want the root span", got)
	}
	// Parent attribution survives the export: every non-root event's
	// args.parent indexes an earlier event.
	for i, ev := range doc.TraceEvents {
		parent, ok := ev.Args["parent"].(float64)
		if !ok {
			t.Fatalf("event %d: args.parent missing", i)
		}
		if int(parent) >= i {
			t.Errorf("event %d: parent %d does not precede it", i, int(parent))
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	withTracing(t)
	ring := NewRing(8)
	tr := New()
	ctx := NewContext(context.Background(), tr)
	sp := Start(ctx, "server.simulate")
	inner := Start(ctx, "sim.run")
	inner.End()
	sp.End()
	tr.Finish()
	ring.Add(tr)

	h := Handler(ring)
	get := func(path string) (int, []byte) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.Bytes()
	}

	code, body := get("/debug/traces")
	if code != 200 {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	var list []TraceSummary
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("listing does not decode: %v", err)
	}
	if len(list) != 1 || list[0].ID != tr.ID().String() || list[0].Root != "server.simulate" {
		t.Fatalf("listing = %+v, want one trace rooted at server.simulate", list)
	}
	if len(list[0].Names) != 2 || list[0].Names[1] != "sim.run" {
		t.Fatalf("listing names = %v, want [server.simulate sim.run]", list[0].Names)
	}

	code, body = get("/debug/traces/" + tr.ID().String())
	if code != 200 {
		t.Fatalf("GET trace detail: status %d", code)
	}
	var det TraceDetail
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatalf("detail does not decode: %v", err)
	}
	if len(det.Spans) != 2 || det.Spans[1].Parent != 0 {
		t.Fatalf("detail spans = %+v, want child parented to root", det.Spans)
	}

	code, body = get("/debug/traces/" + tr.ID().String() + "/chrome")
	if code != 200 {
		t.Fatalf("GET chrome export: status %d", code)
	}
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.TraceEvents) != 2 {
		t.Fatalf("chrome export invalid (err %v, %d events)", err, len(doc.TraceEvents))
	}

	if code, _ := get("/debug/traces/ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Fatalf("absent trace: status %d, want 404", code)
	}
	if code, _ := get("/debug/traces/" + tr.ID().String() + "/bogus"); code != 400 {
		t.Fatalf("unknown format: status %d, want 400", code)
	}
}
