package span

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// TraceSummary is one trace in the /debug/traces listing.
type TraceSummary struct {
	ID string `json:"id"`
	// Root is the first span's name (the request's endpoint).
	Root      string    `json:"root"`
	Started   time.Time `json:"started"`
	Duration  int64     `json:"duration_ns"`
	SpanCount int       `json:"spans"`
	// Names lists every span name in record order, so a consumer can
	// pick a trace covering the stages it cares about without a second
	// request.
	Names []string `json:"names"`
}

// TraceDetail is one full trace in JSON form.
type TraceDetail struct {
	ID       string    `json:"id"`
	Started  time.Time `json:"started"`
	Duration int64     `json:"duration_ns"`
	Spans    []Record  `json:"spans"`
}

func summarize(tr *Trace) TraceSummary {
	spans := tr.Export()
	s := TraceSummary{
		ID:        tr.ID().String(),
		Started:   tr.Started(),
		Duration:  int64(tr.Duration()),
		SpanCount: len(spans),
		Names:     make([]string, len(spans)),
	}
	if len(spans) > 0 {
		s.Root = spans[0].Name
	}
	for i := range spans {
		s.Names[i] = spans[i].Name
	}
	return s
}

func detail(tr *Trace) TraceDetail {
	return TraceDetail{
		ID:       tr.ID().String(),
		Started:  tr.Started(),
		Duration: int64(tr.Duration()),
		Spans:    tr.Export(),
	}
}

// Handler serves the ring's traces:
//
//	GET /debug/traces              JSON listing, newest first
//	GET /debug/traces/{id}         one trace's spans as JSON
//	GET /debug/traces/{id}/chrome  the same trace as a Chrome
//	                               trace-event document
//
// The handler is read-only and unauthenticated; like the obs debug
// endpoints it belongs on a loopback listener.
func Handler(ring *Ring) http.Handler {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/traces"), "/")
		if rest == "" {
			traces := ring.Snapshot()
			out := make([]TraceSummary, len(traces))
			for i, tr := range traces {
				out[i] = summarize(tr)
			}
			writeJSON(w, out)
			return
		}
		id, format, _ := strings.Cut(rest, "/")
		tr := ring.Get(id)
		if tr == nil {
			http.Error(w, `{"error":"no such trace","kind":"not_found"}`, http.StatusNotFound)
			return
		}
		switch format {
		case "":
			writeJSON(w, detail(tr))
		case "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			tr.WriteChrome(w)
		default:
			http.Error(w, `{"error":"unknown trace format","kind":"bad_request"}`, http.StatusBadRequest)
		}
	})
}
