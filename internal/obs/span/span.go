// Package span is the request-scoped tracing layer: a context-carried
// Trace whose cheap Start/End spans attribute a single request's
// latency to the pipeline stages it crossed — decode, fingerprint,
// cache lookup, singleflight, retiming, knapsack allocation,
// simulation — instead of folding everything into one aggregate
// histogram the way internal/obs does.
//
// The design is shaped by the serving hot path:
//
//   - Tracing is gated by one global atomic (SetEnabled).  When off,
//     Start performs a single atomic load and returns the zero Span,
//     whose End is a no-op: zero allocations, no clock read, no
//     context lookup — the disabled path sits inside the serving
//     layer's AllocsPerRun gates.
//   - A Span is a value (trace pointer + index), so starting and
//     ending spans never allocates; only the Trace itself and its
//     grow-on-demand record slice touch the heap, once per sampled
//     request.
//   - Span times are offsets from the trace's start on the monotonic
//     clock (time.Since), immune to wall-clock steps.
//   - A Trace is internally locked: the serving handler and the pool
//     worker that outlives a 504 may both append spans, and the debug
//     endpoints may export a trace that late spans are still landing
//     in.
//
// Completed traces are published to a fixed-size lock-striped Ring
// (ring.go) and served at /debug/traces (handler.go) as JSON and as
// Chrome trace-event documents (chrome.go) that open in the same
// viewer as the simulator's PE timelines.
package span

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global tracing gate: the one check every Start makes
// before touching the context.  Off is the default; the serving layer
// turns it on when a sampling rate is configured.
var enabled atomic.Bool

// Enabled reports whether tracing is globally on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns the tracing layer on or off globally.  When off,
// Start is a single atomic load returning a no-op Span.
func SetEnabled(on bool) { enabled.Store(on) }

// maxSpans bounds one trace's record count so a pathological request
// (a planner looping over thousands of stages) cannot grow a trace
// without limit; spans past the cap are counted in Dropped.
const maxSpans = 1024

// ID is a 128-bit trace identifier.
type ID struct {
	Hi, Lo uint64
}

// String renders the id as 32 lowercase hex digits.
func (id ID) String() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], id.Hi)
	binary.BigEndian.PutUint64(b[8:], id.Lo)
	return hex.EncodeToString(b[:])
}

// idState seeds the id generator once from the OS entropy pool; ids
// are then drawn by mixing an atomic counter (splitmix64), so minting
// an id is two atomic ops and never allocates or syscalls.
var idState struct {
	seed uint64
	ctr  atomic.Uint64
}

func init() {
	var b [16]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.seed = binary.LittleEndian.Uint64(b[:8])
		idState.ctr.Store(binary.LittleEndian.Uint64(b[8:]))
	} else {
		// Entropy failure: fall back to the clock.  Ids lose global
		// uniqueness but stay unique within the process, which is all
		// the ring and the debug endpoints need.
		idState.seed = uint64(time.Now().UnixNano())
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newID mints a process-unique 128-bit id.
func newID() ID {
	c := idState.ctr.Add(1)
	return ID{Hi: splitmix64(idState.seed + c), Lo: splitmix64(c ^ 0xa5a5a5a5a5a5a5a5)}
}

// Record is one completed (or still-open) span inside a trace.  Times
// are monotonic offsets from the trace's start.
type Record struct {
	// Name identifies the stage ("server.plan", "sched.knapsack", ...).
	Name string `json:"name"`
	// Parent is the index of the enclosing span, -1 for a root.
	Parent int `json:"parent"`
	// Start and End are nanoseconds since the trace began; End is 0
	// for a span still open when the trace was exported.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Trace is one request's span log.  It is safe for concurrent use;
// the zero value is not usable — call New.
type Trace struct {
	id    ID
	wall  time.Time // wall-clock start, for display only
	began time.Time // carries the monotonic reading every span offsets from

	mu       sync.Mutex
	spans    []Record
	open     []int // stack of open span indices (for parent attribution)
	dropped  int
	duration time.Duration // set by Finish; 0 while in flight
}

// New starts a trace with a fresh id, clocked from now.
func New() *Trace {
	now := time.Now()
	return &Trace{id: newID(), wall: now, began: now}
}

// ID returns the trace's identifier.
func (t *Trace) ID() ID { return t.id }

// Started returns the trace's wall-clock start time.
func (t *Trace) Started() time.Time { return t.wall }

// Finish stamps the trace's total duration (idempotent: the first
// call wins) and returns it.
func (t *Trace) Finish() time.Duration {
	d := time.Since(t.began)
	t.mu.Lock()
	if t.duration == 0 {
		t.duration = d
	}
	d = t.duration
	t.mu.Unlock()
	return d
}

// Duration returns the finished trace's total duration (0 while the
// request is still in flight).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.duration
}

// start opens a span named name under the innermost open span.
func (t *Trace) start(name string) Span {
	offset := time.Since(t.began)
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return Span{}
	}
	idx := len(t.spans)
	parent := -1
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1]
	}
	t.spans = append(t.spans, Record{Name: name, Parent: parent, Start: offset})
	t.open = append(t.open, idx)
	t.mu.Unlock()
	return Span{tr: t, idx: int32(idx)}
}

// end closes the span at idx and pops it from the open stack (wherever
// it sits: spans ended out of order do not corrupt the stack).
func (t *Trace) end(idx int32) {
	offset := time.Since(t.began)
	t.mu.Lock()
	if int(idx) < len(t.spans) && t.spans[idx].End == 0 {
		t.spans[idx].End = offset
	}
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == int(idx) {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// Export returns a consistent copy of the span records (late spans may
// still be appended by a worker that outlived its request's deadline;
// the copy is what the debug endpoints serialize).
func (t *Trace) Export() []Record {
	t.mu.Lock()
	out := append([]Record(nil), t.spans...)
	t.mu.Unlock()
	return out
}

// Len returns the current span count.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one in-flight stage measurement.  The zero Span (returned
// when tracing is off, the context carries no trace, or the trace is
// full) is a valid no-op: End does nothing.
type Span struct {
	tr  *Trace
	idx int32
}

// End closes the span.  Calling End twice, or on the zero Span, is
// harmless.
func (s Span) End() {
	if s.tr != nil {
		s.tr.end(s.idx)
	}
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// IDFromContext returns the hex id of the trace carried by ctx, or ""
// — the form log lines and error bodies embed.
func IDFromContext(ctx context.Context) string {
	if tr := FromContext(ctx); tr != nil {
		return tr.id.String()
	}
	return ""
}

// Start opens a span named name on the trace carried by ctx.  When
// tracing is globally off or ctx carries no trace, it returns the
// zero Span without reading the clock or touching the context value —
// the zero-alloc no-op path the serving gates measure.
func Start(ctx context.Context, name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	if tr == nil {
		return Span{}
	}
	return tr.start(name)
}

// Sampler decides which requests get a trace: 1-in-N up front, plus
// every request that turns out slower than the slow threshold (the
// caller traces the request either way and asks Admit at the end, so
// a slow outlier is never lost to the modulus).
type Sampler struct {
	// Every is the 1-in-N sampling rate; <= 0 disables tracing.
	Every int
	// Slow admits any request at least this slow regardless of the
	// counter; 0 disables the slow lane.
	Slow time.Duration

	ctr atomic.Uint64
}

// Tracing reports whether the sampler traces at all.
func (s *Sampler) Tracing() bool { return s != nil && s.Every > 0 }

// Sampled draws the up-front 1-in-N decision for one request.
func (s *Sampler) Sampled() bool {
	if !s.Tracing() {
		return false
	}
	return s.ctr.Add(1)%uint64(s.Every) == 0
}

// Admit decides whether a finished trace belongs in the ring: it was
// sampled up front, or it crossed the slow threshold.
func (s *Sampler) Admit(sampled bool, d time.Duration) bool {
	if !s.Tracing() {
		return false
	}
	return sampled || (s.Slow > 0 && d >= s.Slow)
}
