package span

import (
	"sync"
	"sync/atomic"
)

// ringStripes is the ring's lock-stripe count: admissions hash by
// trace id across independent mutexes so concurrent request
// completions do not serialize on one lock.
const ringStripes = 8

// Ring is a fixed-size lock-striped buffer of completed traces: the
// storage behind /debug/traces.  Admission overwrites the stripe's
// oldest entry; the ring never grows and never blocks a request.
type Ring struct {
	seq     atomic.Uint64 // global admission counter, for newest-first ordering
	stripes [ringStripes]ringStripe
}

type ringStripe struct {
	mu   sync.Mutex
	buf  []ringEntry // fixed capacity; zero slots not yet filled
	next int         // next slot to overwrite
}

// ringEntry pairs a trace with its global admission sequence (1-based;
// 0 marks an empty slot).
type ringEntry struct {
	tr  *Trace
	seq uint64
}

// NewRing returns a ring holding at most capacity completed traces
// (rounded up to the stripe count; minimum one per stripe).
func NewRing(capacity int) *Ring {
	per := (capacity + ringStripes - 1) / ringStripes
	if per < 1 {
		per = 1
	}
	r := &Ring{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]ringEntry, per)
	}
	return r
}

// Add admits a completed trace, evicting the stripe's oldest entry
// when full.
func (r *Ring) Add(tr *Trace) {
	if tr == nil {
		return
	}
	seq := r.seq.Add(1)
	s := &r.stripes[tr.id.Lo%ringStripes]
	s.mu.Lock()
	s.buf[s.next] = ringEntry{tr: tr, seq: seq}
	s.next = (s.next + 1) % len(s.buf)
	s.mu.Unlock()
}

// Snapshot returns the resident traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	var entries []ringEntry
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, e := range s.buf {
			if e.tr != nil {
				entries = append(entries, e)
			}
		}
		s.mu.Unlock()
	}
	// Newest first: higher global admission sequence wins.  Insertion
	// sort keeps this dependency-free; rings are small (debug-sized).
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].seq < entries[j].seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	out := make([]*Trace, len(entries))
	for i, e := range entries {
		out[i] = e.tr
	}
	return out
}

// Get returns the resident trace with the given hex id, or nil.
func (r *Ring) Get(id string) *Trace {
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, e := range s.buf {
			if e.tr != nil && e.tr.id.String() == id {
				s.mu.Unlock()
				return e.tr
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Len returns the resident trace count.
func (r *Ring) Len() int {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, e := range s.buf {
			if e.tr != nil {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
