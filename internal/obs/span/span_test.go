package span

import (
	"context"
	"testing"
	"time"
)

// withTracing turns the global gate on for one test and restores the
// default (off) afterwards.
func withTracing(t *testing.T) {
	t.Helper()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
}

func TestStartEndNesting(t *testing.T) {
	withTracing(t)
	tr := New()
	ctx := NewContext(context.Background(), tr)

	root := Start(ctx, "server.plan")
	child := Start(ctx, "run.cache")
	grand := Start(ctx, "sched.knapsack")
	grand.End()
	child.End()
	sib := Start(ctx, "server.encode")
	sib.End()
	root.End()
	tr.Finish()

	spans := tr.Export()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	wantParents := map[string]int{
		"server.plan":    -1,
		"run.cache":      0,
		"sched.knapsack": 1,
		"server.encode":  0,
	}
	for i, sp := range spans {
		if want, ok := wantParents[sp.Name]; !ok || sp.Parent != want {
			t.Errorf("span %d %q: parent = %d, want %d", i, sp.Name, sp.Parent, want)
		}
		if sp.End < sp.Start {
			t.Errorf("span %q ends (%d) before it starts (%d)", sp.Name, sp.End, sp.Start)
		}
	}
	if tr.Duration() <= 0 {
		t.Errorf("finished trace duration = %v, want > 0", tr.Duration())
	}
}

func TestStartWithoutTraceOrGateIsNoop(t *testing.T) {
	// Gate off, trace present: no-op.
	tr := New()
	ctx := NewContext(context.Background(), tr)
	sp := Start(ctx, "ignored")
	sp.End()
	if n := tr.Len(); n != 0 {
		t.Fatalf("gate off recorded %d spans, want 0", n)
	}

	// Gate on, no trace in context: no-op (and End on the zero Span is
	// harmless).
	withTracing(t)
	sp = Start(context.Background(), "ignored")
	sp.End()
	sp.End()
}

func TestDisabledStartAllocsZero(t *testing.T) {
	// The serving path calls Start unconditionally; when tracing is off
	// it must not allocate.  This is the AllocsPerRun gate the bench
	// chain's plan_req row (tracing disabled) leans on.
	SetEnabled(false)
	ctx := NewContext(context.Background(), New())
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(ctx, "server.plan")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled Start/End allocates %.1f objects/op, want 0", allocs)
	}

	// Enabled but traceless contexts are the other no-op lane (every
	// non-server caller, e.g. benchtab, runs here when a daemon has
	// tracing on).
	SetEnabled(true)
	defer SetEnabled(false)
	bg := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(bg, "server.plan")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("traceless Start/End allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanCapDrops(t *testing.T) {
	withTracing(t)
	tr := New()
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		sp := Start(ctx, "s")
		sp.End()
	}
	if n := tr.Len(); n != maxSpans {
		t.Fatalf("trace holds %d spans, want cap %d", n, maxSpans)
	}
	tr.mu.Lock()
	dropped := tr.dropped
	tr.mu.Unlock()
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
}

func TestIDString(t *testing.T) {
	id := ID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	if got, want := id.String(), "0123456789abcdeffedcba9876543210"; got != want {
		t.Fatalf("ID.String() = %q, want %q", got, want)
	}
	a, b := newID(), newID()
	if a == b {
		t.Fatal("consecutive ids collide")
	}
}

func TestIDFromContext(t *testing.T) {
	if got := IDFromContext(context.Background()); got != "" {
		t.Fatalf("IDFromContext(no trace) = %q, want empty", got)
	}
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if got := IDFromContext(ctx); got != tr.ID().String() {
		t.Fatalf("IDFromContext = %q, want %q", got, tr.ID().String())
	}
}

func TestSamplerEveryAndSlowLane(t *testing.T) {
	s := &Sampler{Every: 4, Slow: 10 * time.Millisecond}
	sampled := 0
	for i := 0; i < 100; i++ {
		if s.Sampled() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampler admitted %d of 100, want 25", sampled)
	}
	if !s.Admit(true, 0) {
		t.Error("sampled trace rejected")
	}
	if s.Admit(false, 5*time.Millisecond) {
		t.Error("fast unsampled trace admitted")
	}
	if !s.Admit(false, 20*time.Millisecond) {
		t.Error("slow unsampled trace rejected (slow lane broken)")
	}

	off := &Sampler{}
	if off.Tracing() || off.Sampled() || off.Admit(true, time.Hour) {
		t.Error("zero sampler must never trace")
	}
	var nilSampler *Sampler
	if nilSampler.Tracing() {
		t.Error("nil sampler reports tracing")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := New()
	d1 := tr.Finish()
	time.Sleep(time.Millisecond)
	d2 := tr.Finish()
	if d1 != d2 {
		t.Fatalf("second Finish changed the duration: %v -> %v", d1, d2)
	}
}
