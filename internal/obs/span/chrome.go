package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent mirrors internal/trace's Chrome trace-event schema — a
// "complete" (X) duration event on a (pid, tid) track — so a served
// request and a simulated PE timeline open in the same viewer.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int            `json:"ts"`  // microseconds since the trace began
	Dur  int            `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace as a Chrome trace-event JSON document.
// Every span lands on one (pid 1, tid 1) track; the viewer nests the
// complete events by time containment, which matches the parent
// indices by construction (a child starts after and ends before its
// parent).  Spans still open at export time get a 1µs sliver so they
// stay visible.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Export()
	events := make([]chromeEvent, 0, len(spans))
	for i, sp := range spans {
		ts := int(sp.Start.Microseconds())
		dur := int((sp.End - sp.Start).Microseconds())
		if sp.End == 0 || dur < 1 {
			dur = 1 // zero-width and still-open spans vanish in the viewer
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: "span", Ph: "X",
			Ts: ts, Dur: dur,
			PID: 1, TID: 1,
			Args: map[string]any{"trace": t.id.String(), "index": i, "parent": sp.Parent},
		})
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("span: encoding chrome trace: %w", err)
	}
	return bw.Flush()
}
