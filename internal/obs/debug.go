package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the debug mux over a registry:
//
//	/             tiny index page linking the endpoints
//	/metrics      Prometheus text exposition format
//	/metrics.json JSON snapshot of every instrument
//	/debug/pprof/ the standard net/http/pprof profiles
//
// The handler is read-only and unauthenticated — serve it on loopback
// (StartDebugServer defaults to that) unless the deployment fronts it
// with its own access control.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>paraconv debug</h1><ul>`+
			`<li><a href="/metrics">/metrics</a> (Prometheus text)</li>`+
			`<li><a href="/metrics.json">/metrics.json</a> (JSON snapshot)</li>`+
			`<li><a href="/debug/pprof/">/debug/pprof/</a></li>`+
			`</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			Log().Warn("metrics export failed", "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			Log().Warn("metrics JSON export failed", "err", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DefaultHandler returns Handler over the shared Default registry —
// the mountable form of the debug endpoints for daemons (paraconvd)
// that serve /metrics, /metrics.json and /debug/pprof/ from their own
// listener instead of running a second debug port.  The standalone
// StartDebugServer path keeps working independently.
func DefaultHandler() http.Handler { return Handler(Default()) }

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr and serves Handler(r) until Close.
// An addr without a host (":9090") binds loopback, not the wildcard
// interface — the endpoints are unauthenticated, so exposing them
// beyond the machine must be an explicit choice (e.g. "0.0.0.0:9090").
// Port 0 picks a free port; Addr reports the bound address.
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	if addr == "" {
		return nil, errors.New("obs: empty debug server address")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen: %w", err)
	}
	srv := &http.Server{
		Handler:           Handler(r),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			Log().Warn("debug server stopped", "err", err)
		}
	}()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (host:port, with the real
// port when the request asked for :0).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close immediately shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }
