package obs

// This file declares every standard instrument of the module, all on
// the shared Default registry.  Centralizing creation here (instead of
// scattering registrations through the instrumented packages) keeps
// the metric namespace reviewable in one screen and lets the obsreg
// vet pass ban ad-hoc metric creation everywhere else.  Because the
// instruments exist from package init, both exporters always emit the
// full family set — a scrape taken before any work ran shows the
// names at zero rather than omitting them.

var defaultRegistry = NewRegistry()

// Default returns the module-wide shared registry.
func Default() *Registry { return defaultRegistry }

// Plan cache (internal/run): the content-keyed LRU behind Session.
var (
	PlanCacheHits      = Default().Counter("paraconv_plancache_hits_total", "plan-cache lookups served from the cache")
	PlanCacheMisses    = Default().Counter("paraconv_plancache_misses_total", "plan-cache lookups that required a fresh solve")
	PlanCacheEvictions = Default().Counter("paraconv_plancache_evictions_total", "plan-cache entries evicted by the LRU bound")
	PlanCacheDedupHits = Default().Counter("paraconv_plancache_dedup_hits_total", "concurrent cache misses that rode another caller's in-flight solve (singleflight)")
	PlanCacheEntries   = Default().Gauge("paraconv_plancache_entries", "current plan-cache entry count (most recently updated session)")
	PlanCacheCapacity  = Default().Gauge("paraconv_plancache_capacity", "plan-cache entry bound (most recently updated session; 0 = caching disabled)")
)

// Planning service (internal/server): admission control and request
// accounting for the paraconvd daemon.
var (
	ServerQueueDepth    = Default().Gauge("paraconv_server_queue_depth", "admission-queue entries waiting for a worker")
	ServerQueueCapacity = Default().Gauge("paraconv_server_queue_capacity", "admission-queue capacity (requests beyond it are shed with 429)")
	ServerInflight      = Default().Gauge("paraconv_server_inflight", "requests currently executing on a pool worker")
	ServerShed          = Default().Counter("paraconv_server_shed_total", "requests rejected with 429 because the admission queue was full")
)

// Scheduler (internal/sched, internal/core).
var (
	SchedDPRows          = Default().Counter("paraconv_sched_dp_rows_total", "knapsack dynamic-program item rows evaluated")
	SchedRetimedVertices = Default().Counter("paraconv_sched_retimed_vertices_total", "vertices moved to an earlier kernel round by retiming (R(v) > 0)")
)

// Simulator (internal/sim).
var (
	SimRuns            = Default().Counter("paraconv_sim_runs_total", "simulation runs completed (closed-form and event-level share these counters)")
	SimPEBusyTime      = Default().Counter("paraconv_sim_pe_busy_time_units_total", "PE-time units spent executing tasks, summed over runs")
	SimPEIdleTime      = Default().Counter("paraconv_sim_pe_idle_time_units_total", "PE-time units spent idle (fill, drain, no ready task), summed over runs")
	SimProloguePeriods = Default().Counter("paraconv_sim_prologue_periods_total", "prologue (pipeline-fill) kernel periods executed, summed over runs")
)

// Experiment runner (internal/bench).
var (
	RunnerJobsStarted  = Default().Counter("paraconv_runner_jobs_started_total", "experiment-cell jobs dispatched to the worker pool")
	RunnerJobsFinished = Default().Counter("paraconv_runner_jobs_finished_total", "experiment-cell jobs completed without error")
	RunnerJobsFailed   = Default().Counter("paraconv_runner_jobs_failed_total", "experiment-cell jobs that returned an error")
	RunnerQueueWait    = Default().Timer("paraconv_runner_queue_wait_seconds", "time a parallel job waited for a free worker")
)

// Durable plan store (internal/store): the on-disk second cache tier
// behind the in-memory plan cache.
var (
	StoreHits        = Default().Counter("paraconv_store_hits_total", "store reads that returned a durable entry")
	StoreMisses      = Default().Counter("paraconv_store_misses_total", "store reads that found no durable entry")
	StoreWrites      = Default().Counter("paraconv_store_writes_total", "entries durably written through to the data dir")
	StoreWriteErrors = Default().Counter("paraconv_store_write_errors_total", "write-through attempts that failed (store stays best-effort)")
	StoreCorrupt     = Default().Counter("paraconv_store_corrupt_total", "entries quarantined because the frame failed its magic/CRC/length checks")
	StoreEvictions   = Default().Counter("paraconv_store_evictions_total", "entries evicted by the capacity-bounded LRU sweep")
	StoreEntries     = Default().Gauge("paraconv_store_entries", "durable entries currently resident in the data dir")
	StoreBytes       = Default().Gauge("paraconv_store_bytes", "bytes of durable entries currently resident in the data dir")
)

// Async job engine (internal/jobs): the queue the /v1/jobs endpoints
// drain through a bounded worker pool.
var (
	JobsSubmitted  = Default().Counter("paraconv_jobs_submitted_total", "jobs accepted into the async queue")
	JobsRejected   = Default().Counter("paraconv_jobs_rejected_total", "job submissions rejected because the queue was full or the engine closed")
	JobsCancelled  = Default().Counter("paraconv_jobs_cancelled_total", "jobs cancelled by the client before completion")
	JobsExpired    = Default().Counter("paraconv_jobs_expired_total", "terminal jobs swept after their retention TTL")
	JobsQueueDepth = Default().Gauge("paraconv_jobs_queue_depth", "jobs waiting in the async queue for a worker")
	JobsRunning    = Default().Gauge("paraconv_jobs_running", "jobs currently executing on an async worker")
	JobsRetained   = Default().Gauge("paraconv_jobs_retained", "jobs currently retained (queued, running, or awaiting TTL sweep)")
	JobsQueueWait  = Default().Timer("paraconv_jobs_queue_wait_seconds", "time a job waited in the queue before a worker picked it up")
)

// Sharded planning cluster (internal/cluster, wired through
// internal/run's peer tier and internal/server's /v1/plans endpoint).
var (
	ClusterRingMembers      = Default().Gauge("paraconv_cluster_ring_members", "configured cluster member count (including this node)")
	ClusterRingLive         = Default().Gauge("paraconv_cluster_ring_live", "members currently in the hash ring (self plus peers with a closed breaker)")
	ClusterBreakerOpen      = Default().Gauge("paraconv_cluster_breaker_open", "peers currently flipped out of the ring by the consecutive-failure breaker")
	ClusterPeerFills        = Default().Counter("paraconv_cluster_peer_fills_total", "plan-cache misses served by fetching the owner's plan over /v1/plans")
	ClusterPeerFillFailures = Default().Counter("paraconv_cluster_peer_fill_failures_total", "peer fill attempts that failed (timeout, transport error, or non-200)")
	ClusterFallbackSolves   = Default().Counter("paraconv_cluster_fallback_solves_total", "local solves run because a peer fill failed or returned an unusable frame (degraded mode)")
	ClusterForwards         = Default().Counter("paraconv_cluster_forwards_total", "peer fill requests this node served for other nodes at /v1/plans")
	ClusterProbeFailures    = Default().Counter("paraconv_cluster_probe_failures_total", "health probes of peers that failed")
)

// Request tracing (internal/obs/span, wired in internal/server).
var (
	TraceSampled = Default().Counter("paraconv_trace_sampled_total", "request traces admitted to the ring by the 1-in-N sampler")
	TraceSlow    = Default().Counter("paraconv_trace_slow_total", "request traces admitted to the ring by the slow-request lane alone")
)

// ServerRequests returns the request counter for one service endpoint
// ("plan", "simulate", "selectarch") and status class ("2xx", "4xx",
// "429", "499", "504", "5xx") — both label sets are small and fixed.
func ServerRequests(endpoint, class string) *Counter {
	return Default().Counter("paraconv_server_requests_total",
		"planning-service requests by endpoint and response status class",
		Label{Key: "endpoint", Value: endpoint}, Label{Key: "code", Value: class})
}

// ServerRequestTimer returns the end-to-end request latency timer for
// one service endpoint (admission wait plus solve plus encode).
func ServerRequestTimer(endpoint string) *Timer {
	return Default().Timer("paraconv_server_request_seconds",
		"wall-clock latency of one planning-service request",
		Label{Key: "endpoint", Value: endpoint})
}

// JobsFinished returns the terminal-state counter for one async job
// outcome ("done", "failed", "cancelled") — a small fixed label set.
func JobsFinished(state string) *Counter {
	return Default().Counter("paraconv_jobs_finished_total",
		"async jobs reaching a terminal state, by outcome", Label{Key: "state", Value: state})
}

// JobTimer returns the submit-to-terminal latency timer for one async
// job operation ("plan", "simulate", "selectarch").
func JobTimer(op string) *Timer {
	return Default().Timer("paraconv_jobs_total_seconds",
		"wall-clock latency from job submission to its terminal state", Label{Key: "op", Value: op})
}

// PlanSolveTimer returns the plan-latency phase timer for one planner
// variant ("para-conv", "sparta", ...).  The histogram's count doubles
// as a per-variant plans-solved counter.
func PlanSolveTimer(variant string) *Timer {
	return Default().Timer("paraconv_plan_solve_seconds",
		"wall-clock latency of one uncached plan solve", Label{Key: "variant", Value: variant})
}

// MakespanHistogram returns the schedule-makespan distribution for one
// scheme ("para-conv", "sparta", "naive"), in schedule time units.
func MakespanHistogram(scheme string) *Histogram {
	return Default().Histogram("paraconv_sched_makespan_time_units",
		"kernel-iteration makespan (schedule period) in time units", TimeUnitBuckets,
		Label{Key: "scheme", Value: scheme})
}

// TransferReads returns the IPR-fetch counter for one placement
// ("cache" or "edram").
func TransferReads(place string) *Counter {
	return Default().Counter("paraconv_sim_transfers_total",
		"IPR fetches by serving placement", Label{Key: "place", Value: place})
}

// TransferBytes returns the IPR-traffic byte counter for one placement
// ("cache" or "edram").
func TransferBytes(place string) *Counter {
	return Default().Counter("paraconv_sim_transfer_bytes_total",
		"IPR traffic volume by serving placement", Label{Key: "place", Value: place})
}
