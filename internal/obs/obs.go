// Package obs is the module's observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms and
// phase timers), a structured-logging setup built on log/slog, and an
// opt-in debug HTTP server exposing the registry in Prometheus text
// format and as a JSON snapshot alongside net/http/pprof.
//
// Every instrument the module records lives in one shared registry
// (Default), and the standard instruments are declared centrally in
// this package (see metrics.go) — the obsreg vet pass keeps ad-hoc
// metric creation (expvar, private registries) out of the rest of the
// tree.  Instrument writes are one atomic load (the global enable
// gate) plus one atomic add, so the hot layers can record
// unconditionally; SetEnabled(false) turns every write into the load
// alone, which is the "instrumented-off" path the overhead benchmarks
// compare against.
//
// Metric naming follows the Prometheus convention:
//
//	paraconv_<subsystem>_<metric>[_<unit>][_total]
//
// with subsystems plancache, plan, sched, sim and runner, and the
// small fixed label sets (variant, scheme, place) declared where the
// instrument is created.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global instrument gate.  Checked on every write; the
// exporters always read whatever has been recorded.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether instrument writes are currently recorded.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns instrument writes on or off globally.  Disabling is
// the reference "uninstrumented" path for overhead measurements; the
// registry and exporters keep working either way.
func SetEnabled(on bool) { enabled.Store(on) }

// Label is one metric dimension.  Labels are fixed at instrument
// creation — there is no dynamic label cardinality.
type Label struct {
	Key   string
	Value string
}

// Kind discriminates the instrument types of a registry.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas are ignored
// (counters are monotone by definition).
func (c *Counter) Add(delta int64) {
	if delta <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Fixed bucket layouts.  Keeping the layouts centralized means every
// latency histogram is comparable to every other and dashboards never
// chase per-metric bucket drift.
var (
	// DurationBuckets covers 100µs to 10s — wall-clock phases
	// (plan solves, queue waits) measured in seconds.
	DurationBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// TimeUnitBuckets covers schedule-time quantities (makespans,
	// periods, prologue lengths) in the simulator's abstract units.
	TimeUnitBuckets = []float64{
		1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
	}
)

// Histogram is a fixed-bucket distribution metric.  Observations are
// mutex-guarded: the module observes per solved plan or per job, never
// per simulated cycle, so contention is negligible.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1; last slot is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramState is a point-in-time copy of a histogram's contents.
// BucketCounts[i] is the (non-cumulative) count of samples <=
// Bounds[i]; the final extra slot counts samples above every bound.
type HistogramState struct {
	Bounds       []float64
	BucketCounts []uint64
	Sum          float64
	Count        uint64
}

// State returns a consistent snapshot of the histogram.
func (h *Histogram) State() HistogramState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramState{
		Bounds:       append([]float64(nil), h.bounds...),
		BucketCounts: append([]uint64(nil), h.counts...),
		Sum:          h.sum,
		Count:        h.count,
	}
}

// Timer records elapsed wall-clock phases into a seconds histogram.
type Timer struct {
	h *Histogram
}

// Observe records one elapsed duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Start begins a phase and returns the function that ends it.  When
// instrumentation is disabled the returned stop is a no-op and the
// clock is never read.
func (t *Timer) Start() func() {
	if !enabled.Load() {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Histogram exposes the timer's underlying distribution.
func (t *Timer) Histogram() *Histogram { return t.h }

// instrument is one registered metric: identity plus exactly one of
// the value holders, discriminated by kind.
type instrument struct {
	name     string
	help     string
	kind     Kind
	labels   []Label // sorted by key
	labelKey string  // canonical `k="v",...` rendering ("" if unlabeled)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a concurrency-safe collection of instruments.  Creation
// methods are idempotent: asking for an existing (name, labels, kind)
// triple returns the already-registered instrument, so instruments can
// be looked up on demand without double registration.  A (name,
// labels) collision with a different kind returns a detached
// instrument that records but never exports — misuse cannot corrupt
// the export formats.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	list  []*instrument
}

// NewRegistry returns an empty registry.  Most code should use the
// shared Default registry; private registries are for tests (the
// obsreg vet pass enforces this).
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// canonLabels sorts a copy of the labels by key and renders the
// canonical `k="v",...` form used for identity and export.
func canonLabels(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return ls, b.String()
}

// lookup returns the instrument for (name, labels, kind), creating and
// registering it on first use.  A kind conflict yields a detached
// instrument (registered under no key, exported never).
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64, labels []Label) *instrument {
	ls, labelKey := canonLabels(labels)
	key := name + "\x00" + labelKey
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok && in.kind == kind {
		return in
	}
	in := &instrument{name: name, help: help, kind: kind, labels: ls, labelKey: labelKey}
	switch kind {
	case KindCounter:
		in.counter = &Counter{}
	case KindGauge:
		in.gauge = &Gauge{}
	case KindHistogram:
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		in.hist = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}
	if existing, ok := r.byKey[key]; ok && existing.kind != kind {
		return in // detached: identity already claimed by another kind
	}
	r.byKey[key] = in
	r.list = append(r.list, in)
	return in
}

// Counter returns the registered counter with the given identity,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, KindCounter, nil, labels).counter
}

// Gauge returns the registered gauge with the given identity, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, KindGauge, nil, labels).gauge
}

// Histogram returns the registered histogram with the given identity,
// creating it (with the given fixed bucket bounds) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, KindHistogram, bounds, labels).hist
}

// Timer returns a phase timer over a seconds histogram with the
// standard DurationBuckets layout.
func (r *Registry) Timer(name, help string, labels ...Label) *Timer {
	return &Timer{h: r.Histogram(name, help, DurationBuckets, labels...)}
}

// Unregister removes the instrument with the given identity from the
// registry, reporting whether it was present.  Existing handles to the
// instrument keep recording but no longer export — the hook tests use
// to retire scratch instruments from a shared registry.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	_, labelKey := canonLabels(labels)
	key := name + "\x00" + labelKey
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.byKey[key]
	if !ok {
		return false
	}
	delete(r.byKey, key)
	for i, other := range r.list {
		if other == in {
			r.list = append(r.list[:i], r.list[i+1:]...)
			break
		}
	}
	return true
}

// Reset zeroes every registered instrument's recorded values, keeping
// the registrations (names, helps, bucket layouts) intact.  Tests use
// it to isolate assertions against the shared Default registry; the
// SLO evaluator clamps deltas at zero so a mid-window Reset reads as
// no traffic, never as negative traffic.
func (r *Registry) Reset() {
	r.mu.Lock()
	list := append([]*instrument(nil), r.list...)
	r.mu.Unlock()
	for _, in := range list {
		switch in.kind {
		case KindCounter:
			in.counter.v.Store(0)
		case KindGauge:
			in.gauge.v.Store(0)
		case KindHistogram:
			h := in.hist
			h.mu.Lock()
			for i := range h.counts {
				h.counts[i] = 0
			}
			h.sum = 0
			h.count = 0
			h.mu.Unlock()
		}
	}
}

// instruments returns a stable copy of the registered instruments,
// sorted by name then label key — the export order of both formats.
func (r *Registry) instruments() []*instrument {
	r.mu.Lock()
	out := append([]*instrument(nil), r.list...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelKey < out[j].labelKey
	})
	return out
}
