package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestUnregisterRemovesFromExports(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_scratch_total", "scratch")
	r.Counter("test_keep_total", "kept")
	c.Add(3)

	if !r.Unregister("test_scratch_total") {
		t.Fatal("Unregister of a present instrument returned false")
	}
	if r.Unregister("test_scratch_total") {
		t.Fatal("second Unregister returned true")
	}
	if r.Unregister("test_never_registered") {
		t.Fatal("Unregister of an absent instrument returned true")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "test_scratch_total") {
		t.Error("unregistered instrument still exported")
	}
	if !strings.Contains(buf.String(), "test_keep_total") {
		t.Error("surviving instrument missing from export")
	}
	// The detached handle keeps recording without panicking.
	c.Add(1)
	if c.Value() != 4 {
		t.Errorf("detached counter = %d, want 4", c.Value())
	}

	// Labeled identity: the label set is part of the key.
	lab := Label{Key: "endpoint", Value: "plan"}
	r.Counter("test_labeled_total", "labeled", lab)
	if r.Unregister("test_labeled_total") {
		t.Error("Unregister without labels removed a labeled instrument")
	}
	if !r.Unregister("test_labeled_total", lab) {
		t.Error("Unregister with matching labels failed")
	}
}

func TestResetZeroesValuesKeepsRegistrations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h_seconds", "h", DurationBuckets)
	c.Add(5)
	g.Set(-2)
	h.Observe(0.3)
	h.Observe(0.7)

	r.Reset()

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("Reset dropped registrations: %+v", snap)
	}
	if snap.Counters[0].Value != 0 || snap.Gauges[0].Value != 0 {
		t.Errorf("scalars not zeroed: %d / %d", snap.Counters[0].Value, snap.Gauges[0].Value)
	}
	hs := snap.Histograms[0]
	if hs.Count != 0 || hs.Sum != 0 {
		t.Errorf("histogram not zeroed: count %d sum %v", hs.Count, hs.Sum)
	}
	for _, b := range hs.Buckets {
		if b.Count != 0 {
			t.Errorf("bucket le=%v not zeroed: %d", b.UpperBound, b.Count)
		}
	}
	if len(hs.Buckets) != len(DurationBuckets) {
		t.Errorf("bucket layout lost: %d bounds, want %d", len(hs.Buckets), len(DurationBuckets))
	}
	// The instruments still record after Reset.
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("counter after Reset = %d, want 1", c.Value())
	}
}

func TestHistogramSnapshotCountHelpers(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "lat", DurationBuckets)
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 8; i++ {
		h.Observe(0.004) // lands in the 0.005 bucket
	}
	h.Observe(0.02)
	h.Observe(100) // above every bound
	hs := r.Snapshot().Histograms[0]

	if got := hs.CountAtOrBelow(0.005); got != 98 {
		t.Errorf("CountAtOrBelow(0.005) = %d, want 98", got)
	}
	if got := hs.CountAbove(0.005); got != 2 {
		t.Errorf("CountAbove(0.005) = %d, want 2", got)
	}
	// A bound above every finite bucket counts everything below +Inf.
	if got := hs.CountAbove(10); got != 1 {
		t.Errorf("CountAbove(10) = %d, want 1 (the overflow sample)", got)
	}
	// A non-bound falls back to the next lower bound (conservative).
	if got := hs.CountAbove(0.006); got != 2 {
		t.Errorf("CountAbove(0.006) = %d, want 2", got)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", []float64{1, 2, 4})
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all samples in the (1,2] bucket
	}
	hs := r.Snapshot().Histograms[0]
	if got := hs.Quantile(0.5); got <= 1 || got > 2 {
		t.Errorf("Quantile(0.5) = %v, want inside (1,2]", got)
	}
	// Median rank 50 of 100 interpolates halfway through the bucket.
	if got := hs.Quantile(0.5); math.Abs(got-1.5) > 0.01 {
		t.Errorf("Quantile(0.5) = %v, want ~1.5", got)
	}
	h.Observe(1000) // beyond the last bound
	hs = r.Snapshot().Histograms[0]
	if got := hs.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) with overflow = %v, want last bound 4", got)
	}
}

func TestHistogramSumRoundTrips(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_sum_seconds", "sum", DurationBuckets)
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1.25)

	// State carries the sum...
	if st := h.State(); math.Abs(st.Sum-2.0) > 1e-9 {
		t.Errorf("State().Sum = %v, want 2.0", st.Sum)
	}
	// ...the Prometheus export emits it...
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_sum_seconds_sum 2\n") {
		t.Errorf("prometheus export missing _sum line:\n%s", buf.String())
	}
	// ...and the JSON snapshot round-trips it.
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Histograms) != 1 || math.Abs(snap.Histograms[0].Sum-2.0) > 1e-9 {
		t.Fatalf("JSON round-trip Sum = %+v, want 2.0", snap.Histograms)
	}
	if snap.Histograms[0].Count != 3 {
		t.Errorf("JSON round-trip Count = %d, want 3", snap.Histograms[0].Count)
	}
}
