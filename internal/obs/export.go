package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value for the Prometheus text
// format (backslash, double quote, newline).
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP string (backslash, newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// series renders `name{labels}` or `name{labels,extra}` for one line.
func series(name, labelKey, extra string) string {
	switch {
	case labelKey == "" && extra == "":
		return name
	case labelKey == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labelKey + "}"
	default:
		return name + "{" + labelKey + "," + extra + "}"
	}
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` / `# TYPE` header per family,
// then one line per series, with histogram families expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, in := range r.instruments() {
		if in.name != prevFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", in.name, escapeHelp(in.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", in.name, in.kind)
			prevFamily = in.name
		}
		switch in.kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s %d\n", series(in.name, in.labelKey, ""), in.counter.Value())
		case KindGauge:
			fmt.Fprintf(bw, "%s %d\n", series(in.name, in.labelKey, ""), in.gauge.Value())
		case KindHistogram:
			st := in.hist.State()
			cum := uint64(0)
			for i, bound := range st.Bounds {
				cum += st.BucketCounts[i]
				fmt.Fprintf(bw, "%s %d\n",
					series(in.name+"_bucket", in.labelKey, `le="`+formatFloat(bound)+`"`), cum)
			}
			fmt.Fprintf(bw, "%s %d\n", series(in.name+"_bucket", in.labelKey, `le="+Inf"`), st.Count)
			fmt.Fprintf(bw, "%s %s\n", series(in.name+"_sum", in.labelKey, ""), formatFloat(st.Sum))
			fmt.Fprintf(bw, "%s %d\n", series(in.name+"_count", in.labelKey, ""), st.Count)
		}
	}
	return bw.Flush()
}

// ScalarSnapshot is one counter or gauge in a Snapshot.
type ScalarSnapshot struct {
	Name   string            `json:"name"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// BucketSnapshot is one finite histogram bucket: the cumulative count
// of samples at or below the upper bound.  Samples above every bound
// are Count minus the last bucket's cumulative count (the +Inf bucket
// is implicit, keeping the JSON free of non-finite numbers).
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is one histogram in a Snapshot.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// CountAtOrBelow returns the number of samples at or below bound.
// bound should be one of the histogram's bucket bounds; otherwise the
// count is taken at the largest bucket bound not exceeding it (the
// conservative reading: anything between two bounds is assumed above).
func (h HistogramSnapshot) CountAtOrBelow(bound float64) uint64 {
	var at uint64
	for _, b := range h.Buckets {
		if b.UpperBound > bound {
			break
		}
		at = b.Count // buckets are cumulative
	}
	return at
}

// CountAbove returns the number of samples strictly above the largest
// bucket bound not exceeding bound — the "bad events" reading an SLO
// like "p99 below 5ms" needs when 0.005 is a bucket bound.
func (h HistogramSnapshot) CountAbove(bound float64) uint64 {
	return h.Count - h.CountAtOrBelow(bound)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly inside the winning bucket.  Samples
// beyond the last finite bound report that bound (the layout's ceiling
// is the best available answer).  Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	prevBound, prevCum := 0.0, uint64(0)
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			span := float64(b.Count - prevCum)
			if span == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prevCum)) / span
			return prevBound + frac*(b.UpperBound-prevBound)
		}
		prevBound, prevCum = b.UpperBound, b.Count
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Snapshot is a point-in-time copy of a registry, shaped for
// encoding/json round-trips (no channels, no non-finite floats).
type Snapshot struct {
	Counters   []ScalarSnapshot    `json:"counters"`
	Gauges     []ScalarSnapshot    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every registered instrument.  Instruments appear
// sorted by name then label set, matching the Prometheus export order.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []ScalarSnapshot{},
		Gauges:     []ScalarSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	for _, in := range r.instruments() {
		switch in.kind {
		case KindCounter:
			snap.Counters = append(snap.Counters, ScalarSnapshot{
				Name: in.name, Help: in.help, Labels: labelMap(in.labels), Value: in.counter.Value(),
			})
		case KindGauge:
			snap.Gauges = append(snap.Gauges, ScalarSnapshot{
				Name: in.name, Help: in.help, Labels: labelMap(in.labels), Value: in.gauge.Value(),
			})
		case KindHistogram:
			st := in.hist.State()
			hs := HistogramSnapshot{
				Name: in.name, Help: in.help, Labels: labelMap(in.labels),
				Buckets: make([]BucketSnapshot, len(st.Bounds)),
				Sum:     st.Sum, Count: st.Count,
			}
			cum := uint64(0)
			for i, bound := range st.Bounds {
				cum += st.BucketCounts[i]
				hs.Buckets[i] = BucketSnapshot{UpperBound: bound, Count: cum}
			}
			snap.Histograms = append(snap.Histograms, hs)
		}
	}
	return snap
}

// WriteJSON writes the registry's Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
