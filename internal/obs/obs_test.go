package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Label{Key: "k", Value: "v"})
	b := r.Counter("dup_total", "h", Label{Key: "k", Value: "v"})
	if a != b {
		t.Error("same (name, labels, kind) returned distinct counters")
	}
	other := r.Counter("dup_total", "h", Label{Key: "k", Value: "w"})
	if a == other {
		t.Error("distinct label values returned the same counter")
	}
}

func TestRegistryKindConflictDetaches(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("clash", "as counter")
	g := r.Gauge("clash", "as gauge") // conflicting kind: detached
	c.Inc()
	g.Set(99)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "clash 1") {
		t.Errorf("registered counter missing from export:\n%s", out)
	}
	if strings.Contains(out, "99") {
		t.Errorf("detached conflicting gauge leaked into export:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	st := h.State()
	// <=1: 0.5 and 1; (1,5]: 3; (5,10]: 7; >10: 100.
	want := []uint64{2, 1, 1, 1}
	if !reflect.DeepEqual(st.BucketCounts, want) {
		t.Errorf("bucket counts = %v, want %v", st.BucketCounts, want)
	}
	if st.Count != 5 || st.Sum != 111.5 {
		t.Errorf("count/sum = %d/%v, want 5/111.5", st.Count, st.Sum)
	}
}

func TestTimerObserves(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase_seconds", "h")
	tm.Observe(3 * time.Millisecond)
	stop := tm.Start()
	stop()
	if got := tm.Histogram().State().Count; got != 2 {
		t.Errorf("timer count = %d, want 2", got)
	}
}

func TestSetEnabledGatesWrites(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("gated_total", "h")
	h := r.Histogram("gated", "h", TimeUnitBuckets)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	SetEnabled(true)
	if c.Value() != 0 || h.State().Count != 0 {
		t.Error("writes recorded while instrumentation disabled")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Error("write not recorded after re-enabling")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs", Label{Key: "state", Value: "ok"}).Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	h := r.Histogram("wait_units", "wait", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total jobs",
		"# TYPE jobs_total counter",
		`jobs_total{state="ok"} 3`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE wait_units histogram",
		`wait_units_bucket{le="1"} 1`,
		`wait_units_bucket{le="10"} 1`,
		`wait_units_bucket{le="+Inf"} 2`,
		"wait_units_sum 20.5",
		"wait_units_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("export missing escaped series %q:\n%s", want, buf.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "counter help", Label{Key: "k", Value: "v"}).Add(9)
	r.Gauge("g", "gauge help").Set(-4)
	h := r.Histogram("h_units", "hist help", []float64{1, 2})
	h.Observe(1.5)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot did not round-trip:\n got %+v\nwant %+v", back, snap)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 9 || back.Counters[0].Labels["k"] != "v" {
		t.Errorf("counter snapshot wrong: %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Errorf("histogram snapshot wrong: %+v", back.Histograms)
	}
}

func TestDefaultRegistryFamiliesPresent(t *testing.T) {
	var buf bytes.Buffer
	if err := Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"paraconv_plancache_hits_total",
		"paraconv_plancache_misses_total",
		"paraconv_plancache_evictions_total",
		"paraconv_plancache_entries",
		"paraconv_plancache_capacity",
		"paraconv_sched_dp_rows_total",
		"paraconv_sched_retimed_vertices_total",
		"paraconv_sim_runs_total",
		"paraconv_sim_pe_busy_time_units_total",
		"paraconv_sim_pe_idle_time_units_total",
		"paraconv_sim_prologue_periods_total",
		"paraconv_runner_jobs_started_total",
		"paraconv_runner_jobs_finished_total",
		"paraconv_runner_jobs_failed_total",
		"paraconv_runner_queue_wait_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("default registry missing family %s", family)
		}
	}
}

// TestConcurrentAccess hammers instruments and both exporters from
// many goroutines; run under -race this is the registry's thread-safety
// certificate.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "h", Label{Key: "w", Value: fmt.Sprint(w % 2)}).Inc()
				r.Gauge("conc_gauge", "h").Set(int64(i))
				r.Histogram("conc_units", "h", TimeUnitBuckets).Observe(float64(i))
				if i%100 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
					if err := r.WriteJSON(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := r.Counter("conc_total", "h", Label{Key: "w", Value: "0"}).Value() +
		r.Counter("conc_total", "h", Label{Key: "w", Value: "1"}).Value()
	if total != 8*500 {
		t.Errorf("concurrent increments lost: %d, want %d", total, 8*500)
	}
	if got := r.Histogram("conc_units", "h", TimeUnitBuckets).State().Count; got != 8*500 {
		t.Errorf("concurrent observations lost: %d, want %d", got, 8*500)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "Warn": "WARN", "ERROR": "ERROR",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Add(11)
	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "served_total 11") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Errorf("/metrics.json is not a Snapshot: %v", err)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Error("index page does not link /metrics")
	}
}

func TestDebugServerLoopbackDefault(t *testing.T) {
	srv, err := StartDebugServer(":0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Errorf("hostless addr bound %s, want loopback", srv.Addr())
	}
}

// BenchmarkCounterEnabled / Disabled bound the per-write cost of the
// enable gate — the difference is what instrumented-off saves.
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	defer SetEnabled(true)
	SetEnabled(false)
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
