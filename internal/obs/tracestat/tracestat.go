// Package tracestat derives observability analytics from a simulation
// event log (sim.Trace): per-PE utilization timelines and a breakdown
// of idle time into pipeline-fill prologue, waiting-on-transfer and
// no-ready-task — the quantities the paper's utilization argument
// (§2.3, §4) is made of, reconstructed from events rather than closed
// forms so the two accountings cross-check each other.
package tracestat

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/sched"
	"repro/internal/sim"
)

// State classifies one segment of a PE's timeline.
type State uint8

const (
	// Busy: the PE is executing a task instance.
	Busy State = iota
	// Prologue: idle during the pipeline-fill rounds (the first
	// RMax kernel periods of a retimed plan) — the iteration streams
	// feeding this PE have not all started yet.
	Prologue
	// WaitTransfer: idle outside the prologue while at least one IPR
	// transfer is in flight somewhere — the pipeline is stalled on
	// data movement, not on work supply.
	WaitTransfer
	// NoReady: idle with no transfer in flight — the schedule simply
	// has no task for this PE at this time (load imbalance, drain).
	NoReady State = 3
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Busy:
		return "busy"
	case Prologue:
		return "prologue"
	case WaitTransfer:
		return "wait-transfer"
	case NoReady:
		return "no-ready-task"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Segment is one maximal run of a single state on a PE's timeline.
type Segment struct {
	Start int // inclusive, in schedule time units
	End   int // exclusive
	State State
}

// Lane is one PE's full timeline plus its per-state totals.
type Lane struct {
	PE int
	// Segments tile [0, Cycles) exactly, in time order.
	Segments []Segment
	// Per-state totals, in time units; they sum to Cycles.
	Busy         int
	Prologue     int
	WaitTransfer int
	NoReady      int
}

// Utilization is the lane's busy fraction of the run.
func (l *Lane) Utilization(cycles int) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(l.Busy) / float64(cycles)
}

// Report is the trace-derived analytics of one simulation run.
type Report struct {
	// Cycles is the run length; every lane tiles [0, Cycles).
	Cycles int
	// PrologueEnd is the absolute time the pipeline fill completes
	// (RMax x period for retimed plans, 0 otherwise).
	PrologueEnd int
	// Lanes holds one timeline per PE, indexed by PE id.
	Lanes []Lane
	// Aggregate per-state totals over all lanes, in PE-time units.
	Busy         int
	Prologue     int
	WaitTransfer int
	NoReady      int
}

// Utilization is the aggregate busy fraction — it equals
// sim.Stats.Utilization for the same run.
func (r *Report) Utilization() float64 {
	total := r.Cycles * len(r.Lanes)
	if total == 0 {
		return 0
	}
	return float64(r.Busy) / float64(total)
}

// interval is a half-open [start, end) span.
type interval struct{ start, end int }

// mergeIntervals sorts and unions overlapping/adjacent intervals.
func mergeIntervals(in []interval) []interval {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].start != in[j].start {
			return in[i].start < in[j].start
		}
		return in[i].end < in[j].end
	})
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Analyze post-processes a trace into the per-PE utilization timelines
// and the idle-time breakdown.  plan must be the plan the trace was
// generated from (its retiming locates the prologue) and stats the
// matching run statistics (its Cycles and NumPEs frame the timelines).
func Analyze(tr *sim.Trace, plan *sched.Plan, stats sim.Stats) (*Report, error) {
	if tr == nil {
		return nil, fmt.Errorf("tracestat: nil trace")
	}
	if plan == nil {
		return nil, fmt.Errorf("tracestat: nil plan")
	}
	if stats.Cycles < 0 || stats.NumPEs < 1 {
		return nil, fmt.Errorf("tracestat: stats frame %d cycles x %d PEs; want >= 0 x >= 1", stats.Cycles, stats.NumPEs)
	}

	rep := &Report{Cycles: stats.Cycles, Lanes: make([]Lane, stats.NumPEs)}
	if plan.Scheme == "para-conv" {
		rep.PrologueEnd = plan.RMax * plan.Iter.Period
	}

	// Busy intervals per PE and the union of in-flight transfers,
	// paired from the event stream by (id, iteration).
	busy := make([][]interval, stats.NumPEs)
	var transfers []interval
	type taskKey struct {
		node int
		iter int
	}
	type xferKey struct {
		edge int
		iter int
	}
	// Two passes: the trace sorts ends before starts at equal
	// timestamps, so a zero-duration transfer's end precedes its
	// start in event order.  Collect every start first, then pair.
	taskStart := make(map[taskKey]sim.Event)
	xferStart := make(map[xferKey]sim.Event)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case sim.EvTaskStart:
			taskStart[taskKey{int(ev.Node), ev.Iter}] = ev
		case sim.EvTransferStart:
			xferStart[xferKey{int(ev.Edge), ev.Iter}] = ev
		}
	}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case sim.EvTaskEnd:
			s, ok := taskStart[taskKey{int(ev.Node), ev.Iter}]
			if !ok {
				return nil, fmt.Errorf("tracestat: task end for node %d iteration %d without start", ev.Node, ev.Iter)
			}
			if int(ev.PE) >= stats.NumPEs {
				return nil, fmt.Errorf("tracestat: event on PE %d; stats say %d PEs", ev.PE, stats.NumPEs)
			}
			if ev.Time > s.Time {
				busy[ev.PE] = append(busy[ev.PE], interval{s.Time, ev.Time})
			}
		case sim.EvTransferEnd:
			s, ok := xferStart[xferKey{int(ev.Edge), ev.Iter}]
			if !ok {
				return nil, fmt.Errorf("tracestat: transfer end for edge %d iteration %d without start", ev.Edge, ev.Iter)
			}
			if ev.Time > s.Time {
				transfers = append(transfers, interval{s.Time, ev.Time})
			}
		}
	}
	moving := mergeIntervals(transfers)

	for pe := range rep.Lanes {
		lane := &rep.Lanes[pe]
		lane.PE = pe
		peBusy := mergeIntervals(busy[pe]) // already disjoint for a legal schedule; merge sorts
		cursor := 0
		for _, b := range append(peBusy, interval{rep.Cycles, rep.Cycles}) {
			if b.start > cursor {
				classifyIdle(lane, cursor, min(b.start, rep.Cycles), rep.PrologueEnd, moving)
			}
			if b.end > b.start && b.start < rep.Cycles {
				end := min(b.end, rep.Cycles)
				lane.Segments = append(lane.Segments, Segment{Start: b.start, End: end, State: Busy})
				lane.Busy += end - b.start
			}
			if b.end > cursor {
				cursor = b.end
			}
		}
		rep.Busy += lane.Busy
		rep.Prologue += lane.Prologue
		rep.WaitTransfer += lane.WaitTransfer
		rep.NoReady += lane.NoReady
	}
	return rep, nil
}

// classifyIdle splits the idle span [start, end) of a lane at the
// prologue boundary and against the in-flight transfer union, and
// appends the resulting segments.
func classifyIdle(lane *Lane, start, end, prologueEnd int, moving []interval) {
	if start >= end {
		return
	}
	if start < prologueEnd {
		cut := min(end, prologueEnd)
		lane.Segments = append(lane.Segments, Segment{Start: start, End: cut, State: Prologue})
		lane.Prologue += cut - start
		start = cut
		if start >= end {
			return
		}
	}
	// Walk the transfer union across [start, end).
	cursor := start
	for _, mv := range moving {
		if mv.end <= cursor {
			continue
		}
		if mv.start >= end {
			break
		}
		if mv.start > cursor {
			lane.Segments = append(lane.Segments, Segment{Start: cursor, End: mv.start, State: NoReady})
			lane.NoReady += mv.start - cursor
			cursor = mv.start
		}
		stop := min(mv.end, end)
		lane.Segments = append(lane.Segments, Segment{Start: cursor, End: stop, State: WaitTransfer})
		lane.WaitTransfer += stop - cursor
		cursor = stop
		if cursor >= end {
			return
		}
	}
	if cursor < end {
		lane.Segments = append(lane.Segments, Segment{Start: cursor, End: end, State: NoReady})
		lane.NoReady += end - cursor
	}
}

// WriteText renders the report as an aligned table: one row per PE
// with its utilization and idle breakdown, then the aggregate line.
func (r *Report) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PE\tbusy\tutil%\tprologue\twait-xfer\tno-ready")
	for i := range r.Lanes {
		l := &r.Lanes[i]
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%d\t%d\t%d\n",
			l.PE, l.Busy, 100*l.Utilization(r.Cycles), l.Prologue, l.WaitTransfer, l.NoReady)
	}
	fmt.Fprintf(tw, "all\t%d\t%.1f\t%d\t%d\t%d\n",
		r.Busy, 100*r.Utilization(), r.Prologue, r.WaitTransfer, r.NoReady)
	return tw.Flush()
}
