package tracestat

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
)

func synthGraph(t *testing.T, v, e int, seed int64) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Vertices: v, Edges: e, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkReport asserts the structural invariants every report must
// satisfy against its source run: lanes tile [0, Cycles) exactly, the
// per-state totals partition each lane, busy time matches the
// simulator's per-PE accounting, and the aggregate utilization equals
// the closed-form one.
func checkReport(t *testing.T, rep *Report, stats sim.Stats) {
	t.Helper()
	if len(rep.Lanes) != stats.NumPEs {
		t.Fatalf("report has %d lanes, want %d", len(rep.Lanes), stats.NumPEs)
	}
	for i := range rep.Lanes {
		lane := &rep.Lanes[i]
		cursor := 0
		totals := map[State]int{}
		for _, seg := range lane.Segments {
			if seg.Start != cursor {
				t.Fatalf("PE %d: segment starts at %d, cursor %d (gap or overlap)", i, seg.Start, cursor)
			}
			if seg.End <= seg.Start {
				t.Fatalf("PE %d: empty or inverted segment %+v", i, seg)
			}
			totals[seg.State] += seg.End - seg.Start
			cursor = seg.End
		}
		if cursor != rep.Cycles {
			t.Errorf("PE %d: timeline ends at %d, want %d", i, cursor, rep.Cycles)
		}
		if totals[Busy] != lane.Busy || totals[Prologue] != lane.Prologue ||
			totals[WaitTransfer] != lane.WaitTransfer || totals[NoReady] != lane.NoReady {
			t.Errorf("PE %d: segment totals %v disagree with lane counters %+v", i, totals, lane)
		}
		if lane.Busy != stats.PEBusy[i] {
			t.Errorf("PE %d: lane busy %d != Stats.PEBusy %d", i, lane.Busy, stats.PEBusy[i])
		}
	}
	if rep.Busy != stats.BusyPE {
		t.Errorf("aggregate busy %d != BusyPE %d", rep.Busy, stats.BusyPE)
	}
	if got, want := rep.Utilization(), stats.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("report utilization %v != stats utilization %v", got, want)
	}
}

func TestAnalyzeParaCONV(t *testing.T) {
	g := synthGraph(t, 40, 90, 5)
	cfg := pim.Neurocube(8)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := sim.TraceRun(plan, cfg, 24)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, plan, stats)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, stats)
	if want := plan.RMax * plan.Iter.Period; rep.PrologueEnd != want {
		t.Errorf("PrologueEnd = %d, want %d", rep.PrologueEnd, want)
	}
	if plan.RMax > 0 && rep.Prologue == 0 {
		t.Error("retimed plan reported no prologue idle time")
	}
}

func TestAnalyzeSPARTA(t *testing.T) {
	g := synthGraph(t, 30, 60, 9)
	cfg := pim.Neurocube(8)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := sim.TraceRun(plan, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, plan, stats)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, stats)
	if rep.PrologueEnd != 0 || rep.Prologue != 0 {
		t.Errorf("sequential plan reported prologue idle (%d units before %d)", rep.Prologue, rep.PrologueEnd)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, &sched.Plan{}, sim.Stats{NumPEs: 1}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Analyze(&sim.Trace{}, nil, sim.Stats{NumPEs: 1}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Analyze(&sim.Trace{}, &sched.Plan{}, sim.Stats{}); err == nil {
		t.Error("zero-PE stats accepted")
	}
}

func TestWriteText(t *testing.T) {
	g := synthGraph(t, 20, 40, 3)
	cfg := pim.Neurocube(4)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := sim.TraceRun(plan, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, plan, stats)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "no-ready") || !strings.Contains(out, "all") {
		t.Errorf("report text missing expected columns:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != cfg.NumPEs+2 {
		t.Errorf("report has %d lines, want %d (header + lanes + aggregate)", got, cfg.NumPEs+2)
	}
}
