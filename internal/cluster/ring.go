// Package cluster is the sharded planning fleet's membership and
// routing layer: a static member list hashed onto a consistent ring,
// a pooled raw-TCP fill client, and a per-peer consecutive-failure
// breaker with health probes flipping peers in and out of the ring.
//
// Ownership is pure arithmetic — every node (and every routing client)
// computes the same owner for a plan fingerprint from the same member
// list, with no coordination traffic.  The fill protocol layered on
// top (GET /v1/plans/{fp}, see internal/server) extends the plan
// cache's singleflight one tier outward: a non-owner's cache miss
// fetches the owner's plan before ever solving locally, so each
// distinct planning problem solves exactly once fleet-wide.
// Degradation is strictly monotone: any peer failure falls back to a
// local solve, so the cluster is never slower-correct than a single
// node, only faster.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member: enough points
// that a three-node ring splits load within a few percent of even,
// while keeping the ring rebuild (sort of members*vnodes points)
// trivially cheap.
const DefaultVNodes = 64

// point is one virtual node: a member's i-th hash position.
type point struct {
	hash   uint64
	member string
}

// Ring maps plan fingerprints to owning members by consistent
// hashing.  Construction is deterministic: the same member set and
// vnode count produce the same ring on every node of the fleet (and
// in every routing client), whatever order the members were listed
// in.  A Ring is safe for concurrent Owner calls; SetLive mutates and
// needs external synchronization (Cluster holds one under a lock —
// read-only users like the load generator never call it).
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	live    map[string]bool
	points  []point // live members' points, sorted by hash
}

// NewRing builds a ring over members (whitespace-trimmed,
// deduplicated, order irrelevant) with the given virtual-node count
// (<= 0 means DefaultVNodes).  All members start live.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, live: make(map[string]bool, len(members))}
	for _, m := range members {
		m = strings.TrimSpace(m)
		if m == "" || r.live[m] {
			continue
		}
		r.live[m] = true
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.rebuild()
	return r
}

// rebuild recomputes the point list from the live set.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for _, m := range r.members {
		if !r.live[m] {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: hashPoint(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A 64-bit collision across members would otherwise make the
		// owner depend on sort order; break it by name.
		return a.member < b.member
	})
}

func hashPoint(member string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(i)))
	return mix(h.Sum64())
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix(h.Sum64())
}

// mix is a 64-bit avalanche finalizer (MurmurHash3's fmix64).  FNV-1a
// alone is unusable for ring positions: on short inputs like
// "host:port#3" its high bits barely move, so every member's points
// land in one narrow arc and one node owns most of the keyspace.  The
// finalizer spreads each point over the full 64-bit circle while
// staying exactly as deterministic as the raw hash.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the live member owning key (the first point clockwise
// from the key's hash), or "" when no member is live.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// SetLive flips one member's ring membership and reports whether the
// state changed (unknown members never change).
func (r *Ring) SetLive(member string, live bool) bool {
	cur, known := r.live[member]
	if !known || cur == live {
		return false
	}
	r.live[member] = live
	r.rebuild()
	return true
}

// Members returns the configured member list (sorted; liveness
// ignored).  The slice is shared — callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Live returns the live and total member counts.
func (r *Ring) Live() (live, total int) {
	for _, m := range r.members {
		if r.live[m] {
			live++
		}
	}
	return live, len(r.members)
}
