package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strconv"
	"time"
)

// The fill path talks raw HTTP/1.1 over pooled persistent TCP
// connections, mirroring the bench harness's lean client: net/http's
// client spends ~200µs per request on connection-pool and header
// machinery, which is more than the owner spends serving a cached
// fill.  Requests are pre-serialized byte slices written verbatim;
// responses are parsed just enough to recover the status code and a
// Content-Length-delimited body.  Anything irregular — no
// Content-Length, a parse failure, a dead conn — closes the
// connection and surfaces as a fill failure, which the caller turns
// into a local solve.

// peerConn is one pooled connection to a peer.
type peerConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialPeer(addr string, timeout time.Duration) (*peerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &peerConn{conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}, nil
}

func (pc *peerConn) close() { pc.conn.Close() }

// roundTrip writes one pre-serialized request and reads the full
// response.  The deadline bounds the whole exchange; an earlier ctx
// cancellation yanks the connection's deadline into the past so a
// cancelled leader unblocks immediately instead of waiting out the
// fill timeout.
func (pc *peerConn) roundTrip(ctx context.Context, deadline time.Time, raw []byte) (status int, body []byte, err error) {
	if err := pc.conn.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if ctx.Done() != nil {
		// AfterFunc instead of a watcher goroutine: the warm fill path
		// runs one roundTrip per cache miss fleet-wide, and a goroutine
		// spawn per exchange costs more than the exchange's syscalls.
		// If the callback has already fired when stop returns, the conn's
		// deadline is in the past — the read fails and the conn is
		// closed, never pooled, so a stale yank cannot leak into the
		// next exchange.
		stop := context.AfterFunc(ctx, func() { pc.conn.SetDeadline(time.Unix(1, 0)) })
		defer stop()
	}
	if _, err := pc.conn.Write(raw); err != nil {
		return 0, nil, fmt.Errorf("writing request: %w", err)
	}
	line, err := pc.br.ReadSlice('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("reading status line: %w", err)
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.")) {
		return 0, nil, fmt.Errorf("bad status line %q", bytes.TrimSpace(line))
	}
	status, err = strconv.Atoi(string(bytes.TrimSpace(line[9:12])))
	if err != nil {
		return 0, nil, fmt.Errorf("bad status in line %q", bytes.TrimSpace(line))
	}
	length := -1
	for {
		line, err := pc.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, fmt.Errorf("reading header: %w", err)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			break
		}
		if name, val, ok := bytes.Cut(line, []byte{':'}); ok &&
			bytes.EqualFold(bytes.TrimSpace(name), []byte("Content-Length")) {
			length, err = strconv.Atoi(string(bytes.TrimSpace(val)))
			if err != nil {
				return 0, nil, fmt.Errorf("bad Content-Length %q", bytes.TrimSpace(val))
			}
		}
	}
	if length < 0 {
		// Chunked or close-delimited bodies never come from paraconvd's
		// buffered writers; refusing them keeps the conn state machine
		// trivial.
		return 0, nil, fmt.Errorf("response has no Content-Length")
	}
	body = make([]byte, length)
	if _, err := readFull(pc.br, body); err != nil {
		return 0, nil, fmt.Errorf("reading %d-byte body: %w", length, err)
	}
	return status, body, nil
}

func readFull(br *bufio.Reader, dst []byte) (int, error) {
	n := 0
	for n < len(dst) {
		m, err := br.Read(dst[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// fillRequest pre-serializes the GET /v1/plans/{fp} exchange.  The
// fill body (a wire peer-fill frame) may be empty for a lookup-only
// probe of the owner's tiers.  X-Paraconv-Rebuild tells the owner the
// sender holds the problem graph, so it may answer with a kernel-free
// lean frame instead of re-shipping a graph the requester already has.
func fillRequest(addr, fp, contentType string, fill []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(fill) + 256)
	fmt.Fprintf(&b, "GET /v1/plans/%s HTTP/1.1\r\nHost: %s\r\nContent-Type: %s\r\nAccept: %s\r\nX-Paraconv-Rebuild: 1\r\nContent-Length: %d\r\n\r\n",
		fp, addr, contentType, contentType, len(fill))
	b.Write(fill)
	return b.Bytes()
}

// probeRequest pre-serializes the health probe exchange.
func probeRequest(addr string) []byte {
	return []byte(fmt.Sprintf("GET /healthz HTTP/1.1\r\nHost: %s\r\n\r\n", addr))
}
