package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes one node's view of the cluster.
type Config struct {
	// Self is this node's own entry in Peers (its advertised
	// host:port).  Requests whose fingerprint Self owns are never
	// forwarded.
	Self string
	// Peers is the full static member list, including Self.  Every
	// node (and every routing client) must be configured with the
	// same list for the ring to agree fleet-wide; order and
	// duplicates are irrelevant.
	Peers []string
	// VNodes is the virtual-node count per member (default
	// DefaultVNodes).
	VNodes int
	// FillTimeout bounds one fill exchange against a peer (default
	// 2s); the requester's own context can only shorten it.
	FillTimeout time.Duration
	// ProbeInterval is the health-probe cadence per peer (default
	// 1s).
	ProbeInterval time.Duration
	// FailureThreshold is how many consecutive failures (fills or
	// probes) open a peer's breaker and flip it out of the ring
	// (default 3).  A later successful probe closes the breaker.
	FailureThreshold int
	// MaxIdleConns bounds the pooled connections kept per peer
	// (default 4).
	MaxIdleConns int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 2 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 4
	}
	return c
}

// peer is one remote member: its connection pool and breaker state.
type peer struct {
	addr string

	mu       sync.Mutex
	idle     []*peerConn
	failures int // consecutive; reset on any success
	open     bool
}

func (p *peer) getConn() *peerConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return pc
	}
	return nil
}

func (p *peer) putConn(pc *peerConn, cap int) {
	p.mu.Lock()
	if len(p.idle) < cap {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.close()
}

func (p *peer) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, pc := range idle {
		pc.close()
	}
}

// Cluster is one node's runtime view of the fleet: the ring, a
// connection pool and breaker per peer, and a probe loop flipping
// peers in and out of the ring.  It implements internal/run's
// PeerFiller, so a Session with a Cluster attached extends its miss
// path one tier outward before solving.
type Cluster struct {
	cfg   Config
	peers map[string]*peer

	mu   sync.RWMutex // guards ring liveness
	ring *Ring

	stop    chan struct{}
	wg      sync.WaitGroup
	stopped sync.Once
}

// New validates cfg, builds the ring, and starts the probe loop.
// Close must be called to stop it.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self id")
	}
	ring := NewRing(cfg.Peers, cfg.VNodes)
	members := ring.Members()
	self := false
	for _, m := range members {
		if m == cfg.Self {
			self = true
			break
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, members)
	}
	c := &Cluster{
		cfg:   cfg,
		peers: make(map[string]*peer, len(members)-1),
		ring:  ring,
		stop:  make(chan struct{}),
	}
	for _, m := range members {
		if m != cfg.Self {
			c.peers[m] = &peer{addr: m}
		}
	}
	obs.ClusterRingMembers.Set(int64(len(members)))
	obs.ClusterRingLive.Set(int64(len(members)))
	obs.ClusterBreakerOpen.Set(0)
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the probe loop and closes every pooled connection.
func (c *Cluster) Close() {
	c.stopped.Do(func() { close(c.stop) })
	c.wg.Wait()
	for _, p := range c.peers {
		p.closeAll()
	}
}

// Self returns this node's member id.
func (c *Cluster) Self() string { return c.cfg.Self }

// Owner returns the live member owning fp.
func (c *Cluster) Owner(fp string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Owner(fp)
}

// Owns reports whether this node owns fp (in which case it solves
// locally instead of filling).
func (c *Cluster) Owns(fp string) bool { return c.Owner(fp) == c.cfg.Self }

// Health returns the live and configured member counts (self counts
// as live).
func (c *Cluster) Health() (live, total int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Live()
}

// Fill implements run.PeerFiller: fetch the encoded plan for fp from
// its owner.  The warm exchange ships nothing but the fingerprint —
// the owner answers out of its tiers, usually with a kernel-free lean
// frame — and only an owner-side miss (404) triggers a second
// exchange carrying fill's full planning problem (the wire peer-fill
// frame) so the owner can solve on the requester's behalf.  Deferring
// the problem upload keeps the steady-state fill off the graph
// encoder entirely.  (nil, false) means "no peer could serve this" —
// the caller solves locally; the per-peer breaker has already
// recorded the failure.
func (c *Cluster) Fill(ctx context.Context, fp string, fill func() []byte) ([]byte, bool) {
	owner := c.Owner(fp)
	if owner == "" || owner == c.cfg.Self {
		return nil, false
	}
	p, ok := c.peers[owner]
	if !ok {
		return nil, false
	}
	status, body, err := c.exchange(ctx, p, fillRequest(p.addr, fp, wire.ContentTypeBinary, nil))
	if err != nil {
		obs.ClusterPeerFillFailures.Inc()
		c.recordResult(p, false)
		obs.Log().Warn("peer fill failed", "peer", p.addr, "fp", fp, "err", err)
		return nil, false
	}
	if status == http.StatusNotFound && fill != nil {
		// Owner missed every tier: re-ask with the problem attached.
		status, body, err = c.exchange(ctx, p, fillRequest(p.addr, fp, wire.ContentTypeBinary, fill()))
		if err != nil {
			obs.ClusterPeerFillFailures.Inc()
			c.recordResult(p, false)
			obs.Log().Warn("peer fill failed", "peer", p.addr, "fp", fp, "err", err)
			return nil, false
		}
	}
	// Any HTTP response proves the peer alive; only the exchange's
	// success feeds the breaker, 5xx excepted (a peer answering 500s
	// is as useless as a dead one).
	c.recordResult(p, status < 500)
	if status != http.StatusOK {
		obs.ClusterPeerFillFailures.Inc()
		obs.Log().Warn("peer fill rejected", "peer", p.addr, "fp", fp, "status", status)
		return nil, false
	}
	obs.ClusterPeerFills.Inc()
	return body, true
}

// exchange runs one pooled round trip against p.  A stale pooled
// connection (closed by a peer restart) gets one retry on a fresh
// dial; a freshly dialed failure is final.
func (c *Cluster) exchange(ctx context.Context, p *peer, raw []byte) (int, []byte, error) {
	deadline := time.Now().Add(c.cfg.FillTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	pooled := true
	pc := p.getConn()
	if pc == nil {
		pooled = false
		var err error
		if pc, err = dialPeer(p.addr, time.Until(deadline)); err != nil {
			return 0, nil, err
		}
	}
	status, body, err := pc.roundTrip(ctx, deadline, raw)
	if err != nil {
		pc.close()
		if !pooled || ctx.Err() != nil {
			return 0, nil, err
		}
		if pc, err = dialPeer(p.addr, time.Until(deadline)); err != nil {
			return 0, nil, err
		}
		if status, body, err = pc.roundTrip(ctx, deadline, raw); err != nil {
			pc.close()
			return 0, nil, err
		}
	}
	p.putConn(pc, c.cfg.MaxIdleConns)
	return status, body, nil
}

// recordResult feeds one exchange outcome into p's breaker, flipping
// ring membership when the state changes.
func (c *Cluster) recordResult(p *peer, ok bool) {
	p.mu.Lock()
	var flip, live bool
	if ok {
		p.failures = 0
		if p.open {
			p.open = false
			flip, live = true, true
		}
	} else {
		p.failures++
		if p.failures >= c.cfg.FailureThreshold && !p.open {
			p.open = true
			flip, live = true, false
		}
	}
	p.mu.Unlock()
	if !flip {
		return
	}
	c.mu.Lock()
	c.ring.SetLive(p.addr, live)
	nlive, total := c.ring.Live()
	c.mu.Unlock()
	obs.ClusterRingLive.Set(int64(nlive))
	obs.ClusterBreakerOpen.Set(int64(total - nlive))
	if live {
		obs.Log().Info("peer breaker closed; back in the ring", "peer", p.addr)
	} else {
		obs.Log().Warn("peer breaker open; out of the ring", "peer", p.addr,
			"consecutive_failures", c.cfg.FailureThreshold)
	}
}

// probeLoop health-checks every peer each interval.  Probes share the
// breaker with fills: consecutive probe failures flip a quiet peer
// out of the ring before any request pays the discovery cost, and the
// first successful probe of a recovered peer flips it back in.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			for _, p := range c.peers {
				c.probe(p)
			}
		}
	}
}

func (c *Cluster) probe(p *peer) {
	status, _, err := c.exchange(context.Background(), p, probeRequest(p.addr))
	ok := err == nil && status == http.StatusOK
	if !ok {
		obs.ClusterProbeFailures.Inc()
	}
	c.recordResult(p, ok)
}
