package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// ownedBy finds a key the given member owns on c's ring.
func ownedBy(t *testing.T, c *Cluster, member string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%064x", i)
		if c.Owner(k) == member {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 100k probes", member)
	return ""
}

func newTestCluster(t *testing.T, self string, peers []string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = self
	cfg.Peers = peers
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterFillRoundTrip(t *testing.T) {
	// The owner misses on the first (bodiless) probe and serves the
	// second exchange, which carries the problem — the full two-step
	// fill protocol, including the rebuild advertisement.
	body := []byte("encoded-plan-frame")
	var reqs []string
	var gotPath, gotRebuild string
	filled := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotRebuild = r.Header.Get("X-Paraconv-Rebuild")
		buf := make([]byte, r.ContentLength)
		r.Body.Read(buf)
		reqs = append(reqs, string(buf))
		if len(buf) == 0 && !filled {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		filled = true
		w.Write(body)
	}))
	defer srv.Close()
	peer := srv.Listener.Addr().String()

	c := newTestCluster(t, "self:1", []string{"self:1", peer}, Config{ProbeInterval: time.Hour})
	fp := ownedBy(t, c, peer)
	var built int
	payload, ok := c.Fill(context.Background(), fp, func() []byte {
		built++
		return []byte("fill-frame")
	})
	if !ok {
		t.Fatal("Fill against a healthy peer failed")
	}
	if string(payload) != string(body) {
		t.Fatalf("payload = %q, want %q", payload, body)
	}
	if gotPath != "/v1/plans/"+fp {
		t.Fatalf("peer saw path %q, want /v1/plans/%s", gotPath, fp)
	}
	if gotRebuild == "" {
		t.Error("fill request did not advertise X-Paraconv-Rebuild")
	}
	if len(reqs) != 2 || reqs[0] != "" || reqs[1] != "fill-frame" {
		t.Fatalf("peer saw bodies %q, want a bodiless probe then the fill frame", reqs)
	}
	if built != 1 {
		t.Fatalf("fill frame built %d times, want 1 (only on the owner's miss)", built)
	}

	// A warm second fill reuses the pooled connection and — the peer
	// now answering the probe — never builds the problem frame.
	if _, ok := c.Fill(context.Background(), fp, func() []byte {
		t.Error("warm fill built the problem frame")
		return nil
	}); !ok {
		t.Fatal("pooled second fill failed")
	}
	if len(reqs) != 3 {
		t.Fatalf("peer saw %d requests, want 3 (probe, fill, warm probe)", len(reqs))
	}
}

func TestClusterFillSelfOwnedAndNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	peer := srv.Listener.Addr().String()
	c := newTestCluster(t, "self:1", []string{"self:1", peer}, Config{ProbeInterval: time.Hour})

	if _, ok := c.Fill(context.Background(), ownedBy(t, c, "self:1"), nil); ok {
		t.Fatal("Fill for a self-owned fingerprint claimed success")
	}
	if _, ok := c.Fill(context.Background(), ownedBy(t, c, peer), nil); ok {
		t.Fatal("Fill returning 404 claimed success")
	}
	// A 404 still proves the peer alive: the breaker must stay closed.
	if live, total := c.Health(); live != 2 || total != 2 {
		t.Fatalf("Health() = %d/%d after 404, want 2/2", live, total)
	}
}

// TestClusterBreaker: consecutive failures flip the peer out of the
// ring (its keys fall back to self), and a successful probe of the
// recovered peer flips it back in.
func TestClusterBreaker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peer := ln.Addr().String()
	ln.Close() // connection refused from here on

	c := newTestCluster(t, "self:1", []string{"self:1", peer}, Config{
		ProbeInterval:    20 * time.Millisecond,
		FillTimeout:      200 * time.Millisecond,
		FailureThreshold: 3,
	})
	fp := ownedBy(t, c, peer)
	for i := 0; i < 3; i++ {
		if _, ok := c.Fill(context.Background(), fp, nil); ok {
			t.Fatal("Fill against a dead peer claimed success")
		}
	}
	if live, _ := c.Health(); live != 1 {
		t.Fatalf("live = %d after %d consecutive failures, want 1", live, 3)
	}
	if owner := c.Owner(fp); owner != "self:1" {
		t.Fatalf("dead peer's key owned by %q, want self:1", owner)
	}
	// Fill now short-circuits: self owns everything.
	if _, ok := c.Fill(context.Background(), fp, nil); ok {
		t.Fatal("Fill succeeded with the only peer out of the ring")
	}

	// Revive the peer on the same address; the probe loop must close
	// the breaker.
	ln2, err := net.Listen("tcp", peer)
	if err != nil {
		t.Skipf("could not rebind %s to revive the peer: %v", peer, err)
	}
	defer ln2.Close()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})}
	go srv.Serve(ln2)
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if live, _ := c.Health(); live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the peer recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if owner := c.Owner(fp); owner != peer {
		t.Fatalf("revived peer's key owned by %q, want %s", owner, peer)
	}
}

// TestClusterFillContextCancel: a cancelled requester must unblock the
// fill immediately, well before the fill timeout.
func TestClusterFillContextCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)
	peer := srv.Listener.Addr().String()

	c := newTestCluster(t, "self:1", []string{"self:1", peer}, Config{
		ProbeInterval: time.Hour,
		FillTimeout:   30 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, ok := c.Fill(ctx, ownedBy(t, c, peer), nil)
	if ok {
		t.Fatal("Fill claimed success after its context died")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancelled fill took %s to unblock; the ctx watcher should have cut it", waited)
	}
}

func TestClusterNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("New accepted an empty self")
	}
	if _, err := New(Config{Self: "b:2", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("New accepted a self outside the member list")
	}
}
