package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i)
	}
	return keys
}

// TestRingDeterministic: member order, duplicates and whitespace must
// not change ownership — every node builds the ring from its own copy
// of the flag string.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	b := NewRing([]string{" n3:3", "n1:1", "n2:2", "n2:2", ""}, 0)
	for _, k := range ringKeys(1000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("Owner(%s) = %q vs %q across member orderings", k, ao, bo)
		}
	}
}

// TestRingDistribution: with the default vnode count a three-node ring
// must split a large keyspace within a reasonable band of even.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	counts := make(map[string]int)
	keys := ringKeys(30000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for m, n := range counts {
		share := float64(n) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys; want a roughly even split", m, 100*share)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("%d members own keys, want 3: %v", len(counts), counts)
	}
}

// TestRingSetLive: flipping a member out must only move that member's
// keys (consistent hashing's whole point), and flipping it back must
// restore the original mapping exactly.
func TestRingSetLive(t *testing.T) {
	r := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	keys := ringKeys(5000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	if !r.SetLive("n2:2", false) {
		t.Fatal("SetLive(n2:2, false) reported no change")
	}
	if r.SetLive("n2:2", false) {
		t.Fatal("second SetLive(n2:2, false) reported a change")
	}
	if r.SetLive("unknown:9", false) {
		t.Fatal("SetLive of an unknown member reported a change")
	}
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == "n2:2" {
			t.Fatalf("dead member still owns %s", k)
		}
		if before[k] != "n2:2" && owner != before[k] {
			t.Fatalf("key %s moved from %s to %s when an unrelated member died", k, before[k], owner)
		}
	}
	if live, total := r.Live(); live != 2 || total != 3 {
		t.Fatalf("Live() = %d/%d, want 2/3", live, total)
	}

	r.SetLive("n2:2", true)
	for _, k := range keys {
		if owner := r.Owner(k); owner != before[k] {
			t.Fatalf("key %s owned by %s after revival, want %s", k, owner, before[k])
		}
	}
}

func TestRingNoLiveMembers(t *testing.T) {
	r := NewRing([]string{"n1:1"}, 0)
	r.SetLive("n1:1", false)
	if o := r.Owner("k"); o != "" {
		t.Fatalf("Owner on an empty ring = %q, want \"\"", o)
	}
}
