package sim

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/retime"
)

func TestQueueingOverloadDivergence(t *testing.T) {
	g := synthGraph(t, 40, 100, 53)
	cfg := pim.Neurocube(8)
	a := retime.AllEDRAM(g.NumEdges())
	// Service capacity: Σc/P per iteration.
	service := (g.TotalExec() + cfg.NumPEs - 1) / cfg.NumPEs

	// Slow arrivals (4x the service time): latency settles.
	relaxed, err := Queueing(g, cfg, a, 4*service, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Overload (arrivals faster than service): latency diverges.
	overload, err := Queueing(g, cfg, a, service/4+1, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	if overload.MeanLatency <= relaxed.MeanLatency {
		t.Errorf("overload mean latency %.1f <= relaxed %.1f",
			overload.MeanLatency, relaxed.MeanLatency)
	}
	if overload.MaxLatency <= relaxed.MaxLatency {
		t.Errorf("overload max %d <= relaxed %d", overload.MaxLatency, relaxed.MaxLatency)
	}
	if relaxed.P95Latency > relaxed.MaxLatency || relaxed.MeanLatency > float64(relaxed.MaxLatency) {
		t.Error("latency summary inconsistent")
	}
}

func TestQueueingBatchEqualsDynamic(t *testing.T) {
	// Interval 0 = all requests at time zero: makespan must match the
	// batch executor's.
	g := synthGraph(t, 30, 70, 59)
	cfg := pim.Neurocube(8)
	a := retime.AllCache(g.NumEdges())
	q, err := Queueing(g, cfg, a, 0, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Dynamic(g, cfg, a, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Makespan != d.Makespan {
		t.Errorf("queueing makespan %d != dynamic %d", q.Makespan, d.Makespan)
	}
}

func TestQueueingErrors(t *testing.T) {
	g := synthGraph(t, 10, 20, 1)
	cfg := pim.Neurocube(4)
	a := retime.AllEDRAM(g.NumEdges())
	if _, err := Queueing(g, cfg, a, -1, 10, 4); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := Queueing(g, cfg, a, 5, 0, 4); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Queueing(g, cfg, a[:2], 5, 10, 4); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestQueueingLatencyFloor(t *testing.T) {
	// With generous arrivals, every request's latency is at least the
	// graph's critical path (nothing can finish faster).
	g := synthGraph(t, 25, 60, 61)
	cfg := pim.Neurocube(16)
	a := retime.AllCache(g.NumEdges())
	cp, _, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Queueing(g, cfg, a, 10*cp, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.MeanLatency < float64(cp) {
		t.Errorf("mean latency %.1f below critical path %d", q.MeanLatency, cp)
	}
}
