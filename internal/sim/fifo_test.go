package sim

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/sched"
)

func TestFIFOOccupancyParaCONV(t *testing.T) {
	g := synthGraph(t, 50, 120, 23)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := TraceRun(plan, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := FIFOOccupancy(plan, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.PerPEIn) != plan.Iter.PEs || len(prof.PerPEOut) != plan.Iter.PEs {
		t.Fatalf("per-PE slices sized %d/%d", len(prof.PerPEIn), len(prof.PerPEOut))
	}
	for pe, v := range prof.PerPEIn {
		if v < 0 || v > prof.PeakIn {
			t.Errorf("PE %d iFIFO peak %d inconsistent with global %d", pe, v, prof.PeakIn)
		}
	}
	for pe, v := range prof.PerPEOut {
		if v < 0 || v > prof.PeakOut {
			t.Errorf("PE %d oFIFO peak %d inconsistent with global %d", pe, v, prof.PeakOut)
		}
	}
	// The Neurocube FIFO depths should comfortably hold the profile —
	// the schedule was built for this architecture.
	if !prof.WithinDepths(cfg) {
		t.Errorf("profile (in %d, out %d) exceeds configured depths (%d, %d)",
			prof.PeakIn, prof.PeakOut, cfg.IFIFODepth, cfg.OFIFODepth)
	}
}

func TestFIFOOccupancySPARTA(t *testing.T) {
	g := synthGraph(t, 40, 100, 29)
	cfg := pim.Neurocube(8)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := TraceRun(plan, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := FIFOOccupancy(plan, tr)
	if err != nil {
		t.Fatal(err)
	}
	if prof.PeakIn < 0 || prof.PeakOut < 0 {
		t.Error("negative peaks")
	}
}

func TestFIFOOccupancyErrors(t *testing.T) {
	if _, err := FIFOOccupancy(nil, &Trace{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := FIFOOccupancy(&sched.Plan{}, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestFIFOWithinDepths(t *testing.T) {
	cfg := pim.Neurocube(4)
	ok := FIFOProfile{PeakIn: cfg.IFIFODepth, PeakOut: cfg.OFIFODepth}
	if !ok.WithinDepths(cfg) {
		t.Error("at-capacity profile rejected")
	}
	over := FIFOProfile{PeakIn: cfg.IFIFODepth + 1}
	if over.WithinDepths(cfg) {
		t.Error("over-capacity profile accepted")
	}
}
