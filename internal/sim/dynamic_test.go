package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/pim"
	"repro/internal/retime"
	"repro/internal/sched"
	"repro/internal/synth"
)

func TestDynamicBasics(t *testing.T) {
	g := synthGraph(t, 40, 100, 31)
	cfg := pim.Neurocube(16)
	stats, err := Dynamic(g, cfg, retime.AllEDRAM(g.NumEdges()), 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 50 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
	if stats.Makespan <= 0 {
		t.Fatalf("makespan = %d", stats.Makespan)
	}
	// Work conservation: busy time equals iterations x Σc.
	if want := 50 * g.TotalExec(); stats.BusyPE != want {
		t.Errorf("busy = %d, want %d", stats.BusyPE, want)
	}
	if u := stats.Utilization(16); u <= 0 || u > 1 {
		t.Errorf("utilization = %g", u)
	}
	if stats.MaxInFlight < 1 || stats.MaxInFlight > 8 {
		t.Errorf("in-flight peak = %d, window 8", stats.MaxInFlight)
	}
}

func TestDynamicRateBound(t *testing.T) {
	// Throughput can never exceed the resource bound P/Σc.
	g := synthGraph(t, 60, 150, 37)
	cfg := pim.Neurocube(16)
	stats, err := Dynamic(g, cfg, retime.AllCache(g.NumEdges()), 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(cfg.NumPEs) / float64(g.TotalExec())
	if stats.Throughput > bound+1e-9 {
		t.Errorf("throughput %.4f exceeds resource bound %.4f", stats.Throughput, bound)
	}
}

func TestDynamicWindowLimitsPipelining(t *testing.T) {
	g := synthGraph(t, 30, 70, 41)
	cfg := pim.Neurocube(16)
	narrow, err := Dynamic(g, cfg, retime.AllEDRAM(g.NumEdges()), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Dynamic(g, cfg, retime.AllEDRAM(g.NumEdges()), 60, 16)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.MaxInFlight != 1 {
		t.Errorf("window 1 peaked at %d in flight", narrow.MaxInFlight)
	}
	if wide.Throughput < narrow.Throughput {
		t.Errorf("wider window slower: %.4f < %.4f", wide.Throughput, narrow.Throughput)
	}
}

func TestDynamicCachePlacementHelps(t *testing.T) {
	g := synthGraph(t, 50, 130, 43)
	cfg := pim.Neurocube(8)
	slow, err := Dynamic(g, cfg, retime.AllEDRAM(g.NumEdges()), 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Dynamic(g, cfg, retime.AllCache(g.NumEdges()), 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan > slow.Makespan {
		t.Errorf("all-cache makespan %d > all-eDRAM %d", fast.Makespan, slow.Makespan)
	}
}

func TestDynamicErrors(t *testing.T) {
	g := synthGraph(t, 10, 20, 1)
	cfg := pim.Neurocube(4)
	a := retime.AllEDRAM(g.NumEdges())
	if _, err := Dynamic(g, cfg, a[:1], 10, 4); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Dynamic(g, cfg, a, 0, 4); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := Dynamic(g, cfg, a, 10, 0); err == nil {
		t.Error("zero window accepted")
	}
	bad := cfg
	bad.NumPEs = 0
	if _, err := Dynamic(g, bad, a, 10, 4); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDynamicDeterministic(t *testing.T) {
	g := synthGraph(t, 45, 110, 47)
	cfg := pim.Neurocube(8)
	a := retime.AllEDRAM(g.NumEdges())
	s1, err := Dynamic(g, cfg, a, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Dynamic(g, cfg, a, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("nondeterministic: %+v vs %+v", s1, s2)
	}
}

// TestStaticKernelNearDynamicBound compares Para-CONV's static
// steady-state throughput against the dynamic dataflow bound with the
// same placement: the static kernel should reach a large fraction of
// it (that is the point of retiming).
func TestStaticKernelNearDynamicBound(t *testing.T) {
	g := synthGraph(t, 102, 267, 1102)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	staticTput := float64(plan.ConcurrentIterations) / float64(plan.Iter.Period)

	// Dynamic with the same logical placement (plan's assignment is
	// on the replicated kernel; its first |E| entries are the logical
	// placement).
	logical := retime.Assignment(plan.Iter.Assignment[:g.NumEdges()])
	dyn, err := Dynamic(g, cfg, logical, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	if staticTput > dyn.Throughput*1.10 {
		t.Errorf("static throughput %.4f exceeds dynamic bound %.4f by >10%%", staticTput, dyn.Throughput)
	}
	if staticTput < 0.5*dyn.Throughput {
		t.Errorf("static kernel reaches only %.0f%% of the dynamic bound (%.4f vs %.4f)",
			100*staticTput/dyn.Throughput, staticTput, dyn.Throughput)
	}
}

// Property: the dynamic executor always completes, conserves work, and
// respects the window bound.
func TestDynamicProperty(t *testing.T) {
	f := func(seed int64, peRaw, winRaw uint8) bool {
		v := 5 + int(seed&0x1F)
		g, err := synth.Generate(synth.Params{Vertices: v, Edges: v + int(seed>>7&0x0F)%v, Seed: seed})
		if err != nil {
			return true
		}
		cfg := pim.Neurocube(int(peRaw%16) + 1)
		window := int(winRaw%8) + 1
		stats, err := Dynamic(g, cfg, retime.AllEDRAM(g.NumEdges()), 13, window)
		if err != nil {
			return false
		}
		return stats.BusyPE == 13*g.TotalExec() && stats.MaxInFlight <= window
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
