package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/synth"
)

func synthGraph(t *testing.T, v, e int, seed int64) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "s", Vertices: v, Edges: e, Seed: seed})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return g
}

func TestRunParaCONV(t *testing.T) {
	g := synthGraph(t, 60, 150, 3)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(plan, cfg, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Iterations < 100 {
		t.Errorf("iterations = %d, want >= 100", stats.Iterations)
	}
	if stats.Cycles != plan.TotalTime(100) {
		t.Errorf("cycles = %d, plan.TotalTime = %d", stats.Cycles, plan.TotalTime(100))
	}
	if u := stats.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %g", u)
	}
	if stats.CacheReads+stats.EDRAMReads == 0 {
		t.Error("no IPR traffic recorded")
	}
	if stats.EnergyPJ <= 0 {
		t.Error("no energy recorded")
	}
	if stats.PeakCacheLoad > cfg.TotalCacheUnits() {
		t.Errorf("peak cache load %d exceeds capacity %d", stats.PeakCacheLoad, cfg.TotalCacheUnits())
	}
}

func TestRunSPARTA(t *testing.T) {
	g := synthGraph(t, 60, 150, 3)
	cfg := pim.Neurocube(16)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(plan, cfg, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", stats.Iterations)
	}
	if stats.Cycles != 50*plan.Iter.Period {
		t.Errorf("cycles = %d, want %d", stats.Cycles, 50*plan.Iter.Period)
	}
	if stats.TasksExecuted != 50*g.NumNodes() {
		t.Errorf("tasks = %d, want %d", stats.TasksExecuted, 50*g.NumNodes())
	}
}

func TestParaCONVMovesLessDataOffChip(t *testing.T) {
	// The paper's motivation: Para-CONV minimizes off-PE fetching.
	// Compare the single-kernel configuration against SPARTA so both
	// schemes devote the full PE-array cache to one iteration.
	g := synthGraph(t, 102, 267, 7)
	cfg := pim.Neurocube(32)
	pc, err := sched.ParaCONVSingle(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcStats, err := Run(pc, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	spStats, err := Run(sp, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pcStats.OffChipFetchRatio() > spStats.OffChipFetchRatio() {
		t.Errorf("Para-CONV off-chip ratio %.3f > SPARTA %.3f",
			pcStats.OffChipFetchRatio(), spStats.OffChipFetchRatio())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := synthGraph(t, 20, 45, 1)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, cfg, 10); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Run(plan, cfg, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := cfg
	bad.NumPEs = 0
	if _, err := Run(plan, bad, 10); err == nil {
		t.Error("invalid config accepted")
	}
	unknown := *plan
	unknown.Scheme = "wat"
	if _, err := Run(&unknown, cfg, 10); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunDetectsOversubscribedCache(t *testing.T) {
	g := synthGraph(t, 20, 45, 1)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan.CacheLoadUnits = cfg.TotalCacheUnits() + 1
	if _, err := Run(plan, cfg, 10); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("err = %v, want capacity violation", err)
	}
}

func TestRunDetectsDependencyViolation(t *testing.T) {
	g := synthGraph(t, 20, 45, 1)
	cfg := pim.Neurocube(16)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: move a dependent task to time 0.
	var victim int
	for i := range plan.Iter.Tasks {
		if plan.Iter.Tasks[i].Start > 0 && g.InDegree(dag.NodeID(i)) > 0 {
			victim = i
			break
		}
	}
	d := plan.Iter.Tasks[victim].Finish - plan.Iter.Tasks[victim].Start
	plan.Iter.Tasks[victim].Start = 0
	plan.Iter.Tasks[victim].Finish = d
	if _, err := Run(plan, cfg, 10); err == nil {
		t.Error("dependency violation not detected")
	}
}

func TestRunDetectsIllegalRetimingGap(t *testing.T) {
	g := synthGraph(t, 20, 45, 1)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONVSingle(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the retiming: clear every vertex retiming so eDRAM
	// edges with positive rrv become unschedulable.
	for i := range plan.Retiming.R {
		plan.Retiming.R[i] = 0
	}
	if _, err := Run(plan, cfg, 10); err == nil {
		t.Error("illegal retiming not detected")
	}
}

func TestEnergyAsymmetry(t *testing.T) {
	// All-cache vs all-eDRAM plans of the same graph must differ in
	// energy by the configured factor.
	g := synthGraph(t, 30, 70, 2)
	cfg := pim.Neurocube(64) // plenty of cache
	plan, err := sched.ParaCONVSingle(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(plan, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spStats, err := Run(sp, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Whoever fetches more from eDRAM pays more energy per byte.
	if stats.EDRAMBytes < spStats.EDRAMBytes && stats.EnergyPJ > spStats.EnergyPJ {
		t.Errorf("energy inversion: para eDRAM=%dB energy=%.0f vs sparta eDRAM=%dB energy=%.0f",
			stats.EDRAMBytes, stats.EnergyPJ, spStats.EDRAMBytes, spStats.EnergyPJ)
	}
}

// Property: for random graphs and configurations, Para-CONV plans
// simulate cleanly and the simulator's cycle count matches the plan's
// arithmetic.
func TestSimAgreesWithPlanProperty(t *testing.T) {
	f := func(seed int64, vRaw, peRaw uint8) bool {
		v := int(vRaw%50) + 5
		e := v + int(seed&0x1F)%v
		g, err := synth.Generate(synth.Params{Vertices: v, Edges: e, Seed: seed})
		if err != nil {
			return true // infeasible edge budget
		}
		pes := []int{4, 8, 16, 32}[int(peRaw)%4]
		cfg := pim.Neurocube(pes)
		plan, err := sched.ParaCONV(g, cfg)
		if err != nil {
			return false
		}
		stats, err := Run(plan, cfg, 37)
		if err != nil {
			return false
		}
		return stats.Cycles == plan.TotalTime(37) && stats.Utilization() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOffChipFetchRatioEdgeCases(t *testing.T) {
	var s Stats
	if s.OffChipFetchRatio() != 0 {
		t.Error("empty stats should have zero ratio")
	}
	s.EDRAMReads = 3
	s.CacheReads = 1
	if got := s.OffChipFetchRatio(); got != 0.75 {
		t.Errorf("ratio = %g, want 0.75", got)
	}
	if (Stats{}).Utilization() != 0 {
		t.Error("empty stats should have zero utilization")
	}
}
