package sim

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/sched"
)

// TestTraceEventBufferExactPrealloc pins the plan-derived sizing of
// the trace event log: both generators must compute the event count
// exactly from the plan (tasks, edges, rounds) and allocate the log
// once, so a full run never regrows the buffer.  A drift between the
// formula and the emission loops shows up here as cap != len.
func TestTraceEventBufferExactPrealloc(t *testing.T) {
	g := synthGraph(t, 40, 90, 11)
	cfg := pim.Neurocube(8)

	pc, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*sched.Plan{"para-conv": pc, "sparta": sp} {
		t.Run(name, func(t *testing.T) {
			for _, iters := range []int{1, 7, 24} {
				_, tr, err := TraceRun(plan, cfg, iters)
				if err != nil {
					t.Fatal(err)
				}
				if len(tr.Events) == 0 {
					t.Fatalf("iters=%d: empty trace", iters)
				}
				if cap(tr.Events) != len(tr.Events) {
					t.Errorf("iters=%d: event log len %d but cap %d; plan-derived bound is not exact",
						iters, len(tr.Events), cap(tr.Events))
				}
				if len(tr.PEBusy) != plan.Iter.PEs {
					t.Errorf("iters=%d: PEBusy length %d, want preallocated %d", iters, len(tr.PEBusy), plan.Iter.PEs)
				}
			}
		})
	}
}
