package sim

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/sched"
)

// TestPerPEBusySumsToBusyPE checks the satellite invariant: the new
// Stats.PEBusy vector partitions BusyPE exactly, for both the retimed
// Para-CONV scheme and a sequential baseline, and agrees with the
// event-derived Trace.PEBusy profile entry by entry.
func TestPerPEBusySumsToBusyPE(t *testing.T) {
	g := synthGraph(t, 40, 90, 11)
	cfg := pim.Neurocube(8)

	plans := map[string]*sched.Plan{}
	pc, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans["para-conv"] = pc
	sp, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans["sparta"] = sp

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			stats, tr, err := TraceRun(plan, cfg, 24)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats.PEBusy) != cfg.NumPEs {
				t.Fatalf("len(PEBusy) = %d, want %d", len(stats.PEBusy), cfg.NumPEs)
			}
			sum := 0
			for _, b := range stats.PEBusy {
				sum += b
			}
			if sum != stats.BusyPE {
				t.Errorf("sum(PEBusy) = %d, want BusyPE = %d", sum, stats.BusyPE)
			}
			// The closed-form vector must match the event-derived
			// profile: equal where the trace has entries, zero beyond
			// (Trace.PEBusy stops at the highest PE that ran a task).
			for pe, want := range tr.PEBusy {
				if stats.PEBusy[pe] != want {
					t.Errorf("PE %d: Stats.PEBusy = %d, Trace.PEBusy = %d", pe, stats.PEBusy[pe], want)
				}
			}
			for pe := len(tr.PEBusy); pe < len(stats.PEBusy); pe++ {
				if stats.PEBusy[pe] != 0 {
					t.Errorf("PE %d: Stats.PEBusy = %d, but the trace never ran it", pe, stats.PEBusy[pe])
				}
			}
		})
	}
}
