package sim

import (
	"fmt"

	"repro/internal/pim"
	"repro/internal/sched"
)

// FIFOProfile reports the occupancy the iFIFO/oFIFO buffers would see
// under a traced run: while an IPR transfer is in flight it holds one
// entry in the producer PE's oFIFO and one in the consumer PE's iFIFO
// (cached IPRs park in the data cache, not the FIFOs, and their
// forwards are instantaneous).  The configured depths (pim.Config)
// bound what the hardware can buffer; occupancy beyond them means the
// schedule would stall on back-pressure in silicon.
type FIFOProfile struct {
	// PeakIn and PeakOut are the maximum simultaneous entries
	// observed in any PE's input/output FIFO.
	PeakIn  int
	PeakOut int
	// PerPEIn and PerPEOut give the per-PE peaks.
	PerPEIn  []int
	PerPEOut []int
}

// WithinDepths reports whether the observed peaks fit the configured
// buffer depths.
func (f FIFOProfile) WithinDepths(cfg pim.Config) bool {
	return f.PeakIn <= cfg.IFIFODepth && f.PeakOut <= cfg.OFIFODepth
}

// FIFOOccupancy derives the FIFO occupancy profile of a traced plan.
// It needs the plan (for the task placement) and the trace produced by
// TraceRun for the same plan and horizon.
func FIFOOccupancy(plan *sched.Plan, tr *Trace) (FIFOProfile, error) {
	if plan == nil || tr == nil {
		return FIFOProfile{}, fmt.Errorf("sim: FIFOOccupancy needs a plan and a trace")
	}
	g := plan.Iter.Graph
	numPEs := plan.Iter.PEs

	// Build per-PE occupancy deltas on a sparse timeline: each
	// in-flight transfer (start to start+duration) holds one entry at
	// both endpoints' FIFOs.  Instantaneous cached forwards never
	// touch the FIFOs.
	type delta struct {
		t, d int
	}
	inDeltas := make([][]delta, numPEs)
	outDeltas := make([][]delta, numPEs)

	for _, ev := range tr.Events {
		if ev.Kind != EvTransferStart {
			continue
		}
		e := g.Edge(ev.Edge)
		prodPE := plan.Iter.Tasks[e.From].PE
		consPE := plan.Iter.Tasks[e.To].PE
		dur := e.CacheTime
		if ev.Place == pim.InEDRAM {
			dur = e.EDRAMTime
		}
		if dur == 0 {
			continue
		}
		outDeltas[prodPE] = append(outDeltas[prodPE], delta{ev.Time, +1}, delta{ev.Time + dur, -1})
		inDeltas[consPE] = append(inDeltas[consPE], delta{ev.Time, +1}, delta{ev.Time + dur, -1})
	}

	prof := FIFOProfile{
		PerPEIn:  make([]int, numPEs),
		PerPEOut: make([]int, numPEs),
	}
	peak := func(ds []delta) int {
		// Counting sort by time would need bounds; timeline is small,
		// so sort via simple insertion over a map of time->net delta.
		net := make(map[int]int)
		times := make([]int, 0, len(ds))
		for _, d := range ds {
			if _, seen := net[d.t]; !seen {
				times = append(times, d.t)
			}
			net[d.t] += d.d
		}
		// Insertion sort (timelines per PE are short).
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		occ, max := 0, 0
		for _, t := range times {
			occ += net[t]
			if occ > max {
				max = occ
			}
		}
		return max
	}
	for pe := 0; pe < numPEs; pe++ {
		prof.PerPEIn[pe] = peak(inDeltas[pe])
		prof.PerPEOut[pe] = peak(outDeltas[pe])
		if prof.PerPEIn[pe] > prof.PeakIn {
			prof.PeakIn = prof.PerPEIn[pe]
		}
		if prof.PerPEOut[pe] > prof.PeakOut {
			prof.PeakOut = prof.PerPEOut[pe]
		}
	}
	return prof, nil
}
