package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/retime"
)

// QueueStats reports an arrival-driven execution: inference requests
// arrive every `interval` time units and queue until the window
// admits them; the latency of a request is completion minus arrival.
type QueueStats struct {
	Iterations int
	Interval   int
	// MeanLatency, P95Latency and MaxLatency summarize request
	// latencies in time units.
	MeanLatency float64
	P95Latency  int
	MaxLatency  int
	// Makespan is the completion time of the last request.
	Makespan int
}

// Queueing executes `iterations` requests arriving every `interval`
// time units under self-timed dataflow dispatch with the given IPR
// placement and pipelining window, and reports latency statistics.
// An interval below the sustainable service time makes latencies grow
// linearly (the queue diverges); above it, latency settles at the
// pipeline traversal time — the knee locates the system's capacity.
func Queueing(g *dag.Graph, cfg pim.Config, assignment retime.Assignment, interval, iterations, window int) (QueueStats, error) {
	if err := cfg.Validate(); err != nil {
		return QueueStats{}, fmt.Errorf("sim: queueing: %w", err)
	}
	if err := g.Validate(); err != nil {
		return QueueStats{}, fmt.Errorf("sim: queueing: %w", err)
	}
	if g.NumNodes() == 0 {
		return QueueStats{}, fmt.Errorf("sim: queueing: empty graph")
	}
	if len(assignment) != g.NumEdges() {
		return QueueStats{}, fmt.Errorf("sim: queueing: assignment covers %d/%d edges", len(assignment), g.NumEdges())
	}
	if interval < 0 || iterations < 1 || window < 1 {
		return QueueStats{}, fmt.Errorf("sim: queueing: interval %d, iterations %d, window %d", interval, iterations, window)
	}

	n := g.NumNodes()
	transfer := func(eid dag.EdgeID) int {
		e := g.Edge(eid)
		if assignment[eid] == pim.InCache {
			return e.CacheTime
		}
		return e.EDRAMTime
	}

	slots := make([]iterSlot, window)
	started, completed := 0, 0
	latencies := make([]int, iterations)

	var events dynHeap
	var readyQ []dynEvent
	peFree := make([]int, cfg.NumPEs)
	makespan := 0

	admit := func(now int) {
		for started < iterations && started-completed < window && started*interval <= now {
			slot := &slots[started%window]
			if slot.used && slot.done < n {
				break
			}
			*slot = iterSlot{iter: started, pending: make([]int, n), used: true}
			for v := 0; v < n; v++ {
				slot.pending[v] = g.InDegree(dag.NodeID(v))
				if slot.pending[v] == 0 {
					readyQ = append(readyQ, dynEvent{time: now, node: dag.NodeID(v), iter: started})
				}
			}
			started++
		}
		// Wake up for the next arrival even if nothing else happens.
		if started < iterations {
			next := started * interval
			if next > now {
				heap.Push(&events, dynEvent{time: next, kind: 2, iter: started})
			}
		}
	}
	dispatch := func(now int) {
		i := 0
		for i < len(readyQ) {
			pe := -1
			for p := 0; p < cfg.NumPEs; p++ {
				if peFree[p] <= now {
					pe = p
					break
				}
			}
			if pe < 0 {
				break
			}
			ev := readyQ[i]
			exec := g.Node(ev.node).Exec
			peFree[pe] = now + exec
			heap.Push(&events, dynEvent{time: now + exec, kind: 0, node: ev.node, iter: ev.iter})
			readyQ = append(readyQ[:i], readyQ[i+1:]...)
		}
	}

	admit(0)
	dispatch(0)
	for completed < iterations {
		if events.Len() == 0 {
			return QueueStats{}, fmt.Errorf("sim: queueing stalled at %d/%d", completed, iterations)
		}
		ev := heap.Pop(&events).(dynEvent)
		now := ev.time
		switch ev.kind {
		case 0: // task finished
			slot := &slots[ev.iter%window]
			slot.done++
			if slot.done == n {
				completed++
				latencies[ev.iter] = now - ev.iter*interval
				if now > makespan {
					makespan = now
				}
			}
			for _, eid := range g.Out(ev.node) {
				heap.Push(&events, dynEvent{time: now + transfer(eid), kind: 1, edge: eid, iter: ev.iter})
			}
		case 1: // transfer arrived
			e := g.Edge(ev.edge)
			slot := &slots[ev.iter%window]
			if slot.used && slot.iter == ev.iter && slot.done < n {
				slot.pending[e.To]--
				if slot.pending[e.To] == 0 {
					readyQ = append(readyQ, dynEvent{time: now, node: e.To, iter: ev.iter})
				}
			}
		case 2: // arrival tick — admission handled below
		}
		admit(now)
		dispatch(now)
	}

	sorted := append([]int(nil), latencies...)
	sort.Ints(sorted)
	sum := 0
	for _, l := range sorted {
		sum += l
	}
	return QueueStats{
		Iterations:  iterations,
		Interval:    interval,
		MeanLatency: float64(sum) / float64(iterations),
		P95Latency:  sorted[(len(sorted)*95)/100],
		MaxLatency:  sorted[len(sorted)-1],
		Makespan:    makespan,
	}, nil
}
