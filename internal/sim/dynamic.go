package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/retime"
)

// DynamicStats reports a self-timed dataflow execution.
type DynamicStats struct {
	// Makespan is the completion time of the last iteration.
	Makespan int
	// Iterations echoes the run length.
	Iterations int
	// Throughput is iterations per time unit.
	Throughput float64
	// BusyPE is aggregate PE-busy time; utilization is
	// BusyPE/(Makespan*NumPEs).
	BusyPE int
	// MaxInFlight is the peak number of concurrent iterations.
	MaxInFlight int
}

// Utilization returns the fraction of PE time spent computing.
func (s DynamicStats) Utilization(numPEs int) float64 {
	if s.Makespan == 0 || numPEs == 0 {
		return 0
	}
	return float64(s.BusyPE) / float64(s.Makespan*numPEs)
}

// dynEvent is a completion event in the dynamic executor.
type dynEvent struct {
	time int
	kind uint8 // 0 = task finished, 1 = transfer arrived
	node dag.NodeID
	edge dag.EdgeID
	iter int
}

type dynHeap []dynEvent

func (h dynHeap) Len() int { return len(h) }
func (h dynHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].iter != h[j].iter {
		return h[i].iter < h[j].iter
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	if h[i].node != h[j].node {
		return h[i].node < h[j].node
	}
	return h[i].edge < h[j].edge
}
func (h dynHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *dynHeap) Push(x any)   { *h = append(*h, x.(dynEvent)) }
func (h *dynHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// iterSlot is the scoreboard of one in-flight iteration.
type iterSlot struct {
	iter    int
	pending []int // unarrived operand count per vertex
	done    int   // vertices completed
	used    bool
}

// Dynamic executes the application as a self-timed dataflow machine:
// no static schedule, no retiming — any task instance whose operands
// have arrived is dispatched to the first free PE, with up to `window`
// application iterations in flight at once.  This is the execution
// model a fully dynamic PIM runtime would implement; its throughput
// upper-bounds what a static scheduler can reach under the same IPR
// placement, at the price of hardware the paper's architecture does
// not have (global dispatch, per-instance scoreboards).  The ablation
// benches report how close Para-CONV's static kernel comes to this
// bound.
func Dynamic(g *dag.Graph, cfg pim.Config, assignment retime.Assignment, iterations, window int) (DynamicStats, error) {
	if err := cfg.Validate(); err != nil {
		return DynamicStats{}, fmt.Errorf("sim: dynamic: %w", err)
	}
	if err := g.Validate(); err != nil {
		return DynamicStats{}, fmt.Errorf("sim: dynamic: %w", err)
	}
	if g.NumNodes() == 0 {
		return DynamicStats{}, fmt.Errorf("sim: dynamic: empty graph")
	}
	if len(assignment) != g.NumEdges() {
		return DynamicStats{}, fmt.Errorf("sim: dynamic: assignment covers %d/%d edges", len(assignment), g.NumEdges())
	}
	if iterations < 1 || window < 1 {
		return DynamicStats{}, fmt.Errorf("sim: dynamic: iterations %d, window %d; want >= 1", iterations, window)
	}

	n := g.NumNodes()
	transfer := func(eid dag.EdgeID) int {
		e := g.Edge(eid)
		if assignment[eid] == pim.InCache {
			return e.CacheTime
		}
		return e.EDRAMTime
	}

	slots := make([]iterSlot, window)
	started, completed := 0, 0

	var events dynHeap
	var readyQ []dynEvent
	peFree := make([]int, cfg.NumPEs)
	busy := 0
	makespan := 0
	maxInFlight := 0

	// admit starts iterations while the window has room and the
	// target slot is reusable; sources of a fresh iteration become
	// ready immediately.
	admit := func(now int) {
		for started < iterations && started-completed < window {
			slot := &slots[started%window]
			if slot.used && slot.done < n {
				break
			}
			*slot = iterSlot{iter: started, pending: make([]int, n), used: true}
			for v := 0; v < n; v++ {
				slot.pending[v] = g.InDegree(dag.NodeID(v))
				if slot.pending[v] == 0 {
					readyQ = append(readyQ, dynEvent{time: now, node: dag.NodeID(v), iter: started})
				}
			}
			started++
		}
		if f := started - completed; f > maxInFlight {
			maxInFlight = f
		}
	}

	// dispatch assigns ready tasks to free PEs at time `now`.
	dispatch := func(now int) {
		i := 0
		for i < len(readyQ) {
			pe := -1
			for p := 0; p < cfg.NumPEs; p++ {
				if peFree[p] <= now {
					pe = p
					break
				}
			}
			if pe < 0 {
				break
			}
			ev := readyQ[i]
			exec := g.Node(ev.node).Exec
			peFree[pe] = now + exec
			busy += exec
			heap.Push(&events, dynEvent{time: now + exec, kind: 0, node: ev.node, iter: ev.iter})
			readyQ = append(readyQ[:i], readyQ[i+1:]...)
		}
	}

	admit(0)
	dispatch(0)

	for completed < iterations {
		if events.Len() == 0 {
			return DynamicStats{}, fmt.Errorf("sim: dynamic executor stalled at %d/%d iterations", completed, iterations)
		}
		ev := heap.Pop(&events).(dynEvent)
		now := ev.time
		switch ev.kind {
		case 0: // task finished
			slot := &slots[ev.iter%window]
			slot.done++
			if slot.done == n {
				completed++
				if now > makespan {
					makespan = now
				}
			}
			for _, eid := range g.Out(ev.node) {
				heap.Push(&events, dynEvent{time: now + transfer(eid), kind: 1, edge: eid, iter: ev.iter})
			}
		case 1: // transfer arrived
			e := g.Edge(ev.edge)
			slot := &slots[ev.iter%window]
			if slot.used && slot.iter == ev.iter && slot.done < n {
				slot.pending[e.To]--
				if slot.pending[e.To] == 0 {
					readyQ = append(readyQ, dynEvent{time: now, node: e.To, iter: ev.iter})
				}
			}
		}
		admit(now)
		dispatch(now)
	}

	return DynamicStats{
		Makespan:    makespan,
		Iterations:  iterations,
		Throughput:  float64(iterations) / float64(makespan),
		BusyPE:      busy,
		MaxInFlight: maxInFlight,
	}, nil
}
