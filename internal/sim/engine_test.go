package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/synth"
)

func TestTraceRunMatchesRunParaCONV(t *testing.T) {
	g := synthGraph(t, 50, 120, 21)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := TraceRun(plan, cfg, 60)
	if err != nil {
		t.Fatalf("TraceRun: %v", err)
	}
	fast, err := Run(plan, cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, fast) {
		t.Errorf("TraceRun stats %+v != Run stats %+v", stats, fast)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	// Events sorted by time.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTraceRunMatchesRunSPARTA(t *testing.T) {
	g := synthGraph(t, 40, 100, 8)
	cfg := pim.Neurocube(16)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := TraceRun(plan, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(plan, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, fast) {
		t.Errorf("stats mismatch: %+v vs %+v", stats, fast)
	}
	// Every iteration appears and completes in order.
	prevDone := -1
	for it := 0; it < 20; it++ {
		start, done, ok := tr.IterationSpan(it)
		if !ok {
			t.Fatalf("iteration %d missing from trace", it)
		}
		if start >= done {
			t.Errorf("iteration %d: start %d >= done %d", it, start, done)
		}
		if done <= prevDone {
			t.Errorf("iteration %d completes at %d, not after %d", it, done, prevDone)
		}
		prevDone = done
	}
}

// TestTraceTaskInstanceCounts verifies the retimed execution table:
// every vertex executes once per completed round, plus R(v) prologue
// instances... i.e. exactly `rounds` instances within the horizon.
func TestTraceTaskInstanceCounts(t *testing.T) {
	g := synthGraph(t, 30, 70, 5)
	cfg := pim.Neurocube(8)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iters := 24
	_, tr, err := TraceRun(plan, cfg, iters)
	if err != nil {
		t.Fatal(err)
	}
	kernel := plan.ConcurrentIterations
	rounds := (iters + kernel - 1) / kernel
	for v := 0; v < plan.Iter.Graph.NumNodes(); v++ {
		evs := tr.TaskEvents(dag.NodeID(v))
		// start+end per instance.
		if len(evs) != 2*rounds {
			t.Fatalf("vertex %d has %d task events, want %d", v, len(evs), 2*rounds)
		}
	}
}

// TestTraceTransfersRespectInstanceOrder checks, for every transfer
// event pair, that the data leaves after its producer instance ends
// and arrives before its consumer instance starts.
func TestTraceTransfersRespectInstanceOrder(t *testing.T) {
	g := synthGraph(t, 40, 95, 13)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := TraceRun(plan, cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	kg := plan.Iter.Graph

	type key struct {
		node dag.NodeID
		iter int
	}
	taskStart := map[key]int{}
	taskEnd := map[key]int{}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvTaskStart:
			taskStart[key{ev.Node, ev.Iter}] = ev.Time
		case EvTaskEnd:
			taskEnd[key{ev.Node, ev.Iter}] = ev.Time
		}
	}
	checked := 0
	for _, ev := range tr.Events {
		if ev.Kind != EvTransferStart {
			continue
		}
		e := kg.Edge(ev.Edge)
		endT, ok1 := taskEnd[key{e.From, ev.Iter}]
		startT, ok2 := taskStart[key{e.To, ev.Iter}]
		if !ok1 || !ok2 {
			continue // instance outside horizon
		}
		if ev.Time < endT {
			t.Errorf("edge %d->%d iter %d: transfer at %d before producer end %d",
				e.From, e.To, ev.Iter, ev.Time, endT)
		}
		// Find the matching end event time = start + duration.
		dur := e.CacheTime
		if ev.Place == pim.InEDRAM {
			dur = e.EDRAMTime
		}
		if ev.Time+dur > startT {
			t.Errorf("edge %d->%d iter %d: transfer ends %d after consumer start %d",
				e.From, e.To, ev.Iter, ev.Time+dur, startT)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no transfers verified")
	}
}

func TestPlaceTransfer(t *testing.T) {
	cases := []struct {
		name                                    string
		dur, finish, start, period, gap, pr, cr int
		wantOK                                  bool
		wantTime                                int
	}{
		{"same-round fits", 1, 2, 4, 8, 0, 3, 3, true, 26},
		{"same-round misses", 3, 2, 4, 8, 0, 3, 3, false, 0},
		{"tail fits", 3, 4, 1, 8, 1, 2, 3, true, 20},
		{"head fits", 5, 6, 5, 8, 1, 2, 3, true, 24},
		{"one-gap misses", 7, 6, 5, 8, 1, 2, 3, false, 0},
		{"dedicated round", 8, 8, 0, 8, 2, 1, 3, true, 16},
		{"oversize", 9, 8, 0, 8, 2, 1, 3, false, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok := placeTransfer(c.dur, c.finish, c.start, c.period, c.gap, c.pr, c.cr)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v", ok, c.wantOK)
			}
			if ok && got != c.wantTime {
				t.Errorf("time = %d, want %d", got, c.wantTime)
			}
		})
	}
}

func TestTraceResourceProfiles(t *testing.T) {
	g := synthGraph(t, 60, 150, 17)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := TraceRun(plan, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeakConcurrentEDRAM < 0 {
		t.Error("negative eDRAM concurrency")
	}
	// Some transfers must be in flight at peak unless everything is
	// cached.
	if plan.CachedIPRs < plan.Iter.Graph.NumEdges() && tr.PeakConcurrentEDRAM == 0 {
		t.Error("eDRAM transfers exist but peak concurrency is zero")
	}
}

func TestEventKindString(t *testing.T) {
	for ev, want := range map[EventKind]string{
		EvTaskStart: "task-start", EvTransferEnd: "xfer-end",
		EvIterationDone: "iter-done", EventKind(99): "event(99)",
	} {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
}

func TestTraceRunRejectsBadInput(t *testing.T) {
	g := synthGraph(t, 20, 45, 1)
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TraceRun(nil, cfg, 5); err == nil {
		t.Error("nil plan accepted")
	}
	if _, _, err := TraceRun(plan, cfg, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	unknown := *plan
	unknown.Scheme = "wat"
	if _, _, err := TraceRun(&unknown, cfg, 5); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// Property: the trace-driven and closed-form simulators agree for
// random graphs and architectures, for both schemes.
func TestTraceAgreesWithRunProperty(t *testing.T) {
	f := func(seed int64, vRaw, peRaw, schemeRaw uint8) bool {
		v := int(vRaw%30) + 5
		e := v + int(seed&0x0F)%v
		g, err := synth.Generate(synth.Params{Vertices: v, Edges: e, Seed: seed})
		if err != nil {
			return true
		}
		cfg := pim.Neurocube([]int{4, 8, 16}[int(peRaw)%3])
		var plan *sched.Plan
		if schemeRaw%2 == 0 {
			plan, err = sched.ParaCONV(g, cfg)
		} else {
			plan, err = sched.SPARTA(g, cfg)
		}
		if err != nil {
			return false
		}
		slow, _, err := TraceRun(plan, cfg, 11)
		if err != nil {
			return false
		}
		fast, err := Run(plan, cfg, 11)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(slow, fast)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTracePEBusyProfile(t *testing.T) {
	g := synthGraph(t, 40, 100, 19)
	cfg := pim.Neurocube(8)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, tr, err := TraceRun(plan, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range tr.PEBusy {
		if b < 0 {
			t.Fatalf("negative busy time %d", b)
		}
		total += b
	}
	if total != stats.BusyPE {
		t.Errorf("trace busy sum %d != stats.BusyPE %d", total, stats.BusyPE)
	}
	if tr.BusySpread() < 0 {
		t.Error("negative spread")
	}
	if (&Trace{}).BusySpread() != 0 {
		t.Error("empty trace spread != 0")
	}
}
