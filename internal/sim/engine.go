package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dag"
	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/sched"
)

// EventKind tags one simulation event.
type EventKind uint8

const (
	// EvTaskStart and EvTaskEnd bracket one vertex instance's
	// execution on a PE.
	EvTaskStart EventKind = iota
	EvTaskEnd
	// EvTransferStart and EvTransferEnd bracket one IPR transfer
	// (cache forward or eDRAM round trip).
	EvTransferStart
	EvTransferEnd
	// EvIterationDone marks the completion of one application
	// iteration (all its sinks executed).
	EvIterationDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvTaskStart:
		return "task-start"
	case EvTaskEnd:
		return "task-end"
	case EvTransferStart:
		return "xfer-start"
	case EvTransferEnd:
		return "xfer-end"
	case EvIterationDone:
		return "iter-done"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one timestamped simulation event.
type Event struct {
	Time int
	Kind EventKind
	// PE is set for task events.
	PE pim.PEID
	// Node is the vertex (task events) indexed into the kernel graph.
	Node dag.NodeID
	// Edge is the IPR (transfer events) indexed into the kernel graph.
	Edge dag.EdgeID
	// Iter is the application iteration the event serves.
	Iter int
	// Place is the IPR's placement (transfer events).
	Place pim.Placement
}

// Trace is the full event log of a simulation run plus derived
// resource-usage profiles.
type Trace struct {
	Events []Event

	// PeakConcurrentEDRAM is the maximum number of eDRAM transfers in
	// flight at any time unit — compare against the vault count to
	// judge TSV contention.
	PeakConcurrentEDRAM int

	// PeakLiveCachedIPRs is the maximum number of cached IPR
	// instances simultaneously live (produced but not yet consumed);
	// with statically reserved slots this is bounded by the slot
	// count times the instances a slot must hold (Theorem 3.1: ≤ 3).
	PeakLiveCachedIPRs int

	// PEBusy is the total busy time per PE over the run, derived from
	// the task events; the spread across entries shows load balance.
	PEBusy []int
}

// BusySpread returns max(PEBusy) - min(PEBusy), the load imbalance in
// time units (0 for an empty trace).
func (tr *Trace) BusySpread() int {
	if len(tr.PEBusy) == 0 {
		return 0
	}
	min, max := tr.PEBusy[0], tr.PEBusy[0]
	for _, b := range tr.PEBusy[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return max - min
}

// TraceRun simulates the plan event by event for `iterations`
// application iterations, emitting the full event log.  It performs
// the same legality checks as Run (and returns the same Stats), but
// derives everything from the generated events rather than closed
// forms — the two paths cross-check each other in tests.
//
// The event volume is proportional to iterations x (|V|+|E|), so use
// modest iteration counts (the steady state repeats exactly).
//
//paraconv:hotpath
func TraceRun(plan *sched.Plan, cfg pim.Config, iterations int) (Stats, *Trace, error) {
	return TraceRunCtx(context.Background(), plan, cfg, iterations)
}

// TraceRunCtx is TraceRun under a context.  The event generators check
// ctx at round (pipelined) and iteration (sequential) boundaries and
// return the context's error when cancelled, discarding the partial
// trace.
//
//paraconv:hotpath
func TraceRunCtx(ctx context.Context, plan *sched.Plan, cfg pim.Config, iterations int) (Stats, *Trace, error) {
	sp := span.Start(ctx, "sim.trace_run")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return Stats{}, nil, fmt.Errorf("sim: %w", err)
	}
	if plan == nil {
		return Stats{}, nil, fmt.Errorf("sim: nil plan")
	}
	if err := cfg.Validate(); err != nil {
		return Stats{}, nil, fmt.Errorf("sim: %w", err)
	}
	if iterations < 1 {
		return Stats{}, nil, fmt.Errorf("sim: %d iterations; want >= 1", iterations)
	}
	if err := plan.Iter.Validate(); err != nil {
		return Stats{}, nil, fmt.Errorf("sim: invalid iteration schedule: %w", err)
	}
	if err := checkCacheCapacity(plan, cfg); err != nil {
		return Stats{}, nil, err
	}
	switch plan.Scheme {
	case "para-conv":
		return tracePipelined(ctx, plan, cfg, iterations)
	case "sparta", "naive":
		return traceSequential(ctx, plan, cfg, iterations)
	default:
		return Stats{}, nil, fmt.Errorf("sim: unknown scheme %q", plan.Scheme)
	}
}

// traceSequential replays back-to-back iterations of a dependency-
// complete schedule.
//
//paraconv:hotpath
func traceSequential(ctx context.Context, plan *sched.Plan, cfg pim.Config, iterations int) (Stats, *Trace, error) {
	g := plan.Iter.Graph
	if err := plan.Iter.CheckDependencies(); err != nil {
		return Stats{}, nil, fmt.Errorf("sim: sequential plan violates dependencies: %w", err)
	}
	p := plan.Iter.Period
	// The event volume is exactly plan-derived: per iteration, two task
	// events per task, two transfer events per edge, plus one
	// iteration-done marker — so the log is allocated once, up front.
	tr := &Trace{
		Events: make([]Event, 0, iterations*(2*len(plan.Iter.Tasks)+2*g.NumEdges()+1)),
		PEBusy: make([]int, plan.Iter.PEs),
	}
	for it := 0; it < iterations; it++ {
		if err := ctx.Err(); err != nil {
			return Stats{}, nil, fmt.Errorf("sim: trace cancelled at iteration %d/%d: %w", it, iterations, err)
		}
		base := it * p
		for i := range plan.Iter.Tasks {
			t := plan.Iter.Tasks[i]
			tr.Events = append(tr.Events,
				Event{Time: base + t.Start, Kind: EvTaskStart, PE: t.PE, Node: t.Node, Iter: it},
				Event{Time: base + t.Finish, Kind: EvTaskEnd, PE: t.PE, Node: t.Node, Iter: it})
		}
		for i := range g.Edges() {
			e := g.Edge(dag.EdgeID(i))
			place := plan.Iter.Assignment[i]
			dur := e.CacheTime
			if place == pim.InEDRAM {
				dur = e.EDRAMTime
			}
			start := base + plan.Iter.Tasks[e.From].Finish
			tr.Events = append(tr.Events,
				Event{Time: start, Kind: EvTransferStart, Edge: e.ID, Iter: it, Place: place},
				Event{Time: start + dur, Kind: EvTransferEnd, Edge: e.ID, Iter: it, Place: place})
		}
		tr.Events = append(tr.Events, Event{Time: base + p, Kind: EvIterationDone, Iter: it})
	}
	finalize(tr)
	stats, err := runSequential(plan, cfg, iterations)
	if err != nil {
		return Stats{}, nil, err
	}
	return stats, tr, nil
}

// tracePipelined replays the retimed kernel: after a prologue of RMax
// rounds, each kernel round completes ConcurrentIterations application
// iterations.  The instance of vertex v serving logical iteration ℓ
// runs in round ℓ + RMax - R(v); transfers are placed inside the
// windows the Theorem 3.1 discipline guarantees.
//
//paraconv:hotpath
func tracePipelined(ctx context.Context, plan *sched.Plan, cfg pim.Config, iterations int) (Stats, *Trace, error) {
	g := plan.Iter.Graph
	r := plan.Retiming
	if len(r.R) != g.NumNodes() || len(r.REdge) != g.NumEdges() {
		return Stats{}, nil, fmt.Errorf("sim: plan retiming covers %d vertices/%d edges; want %d/%d",
			len(r.R), len(r.REdge), g.NumNodes(), g.NumEdges())
	}
	p := plan.Iter.Period
	kernelIters := plan.ConcurrentIterations
	if kernelIters < 1 {
		kernelIters = 1
	}
	rounds := (iterations + kernelIters - 1) / kernelIters
	totalRounds := r.RMax + rounds
	tm := plan.Iter.Timing()

	// Exact plan-derived event count: every task emits two events for
	// each of the `rounds` in-horizon iterations (the prologue/epilogue
	// rounds skip the out-of-range instances), every edge two transfer
	// events per iteration, plus one done marker per iteration.
	tr := &Trace{
		Events: make([]Event, 0, rounds*(2*len(plan.Iter.Tasks)+2*g.NumEdges()+1)),
		PEBusy: make([]int, plan.Iter.PEs),
	}
	// Task events: vertex v in round k serves iteration k - RMax +
	// R(v) of its kernel slot (each kernel slot is an independent
	// iteration stream when the kernel packs several groups/unroll
	// copies; we report the stream-local iteration index).
	for k := 0; k < totalRounds; k++ {
		if err := ctx.Err(); err != nil {
			return Stats{}, nil, fmt.Errorf("sim: trace cancelled at round %d/%d: %w", k, totalRounds, err)
		}
		base := k * p
		for i := range plan.Iter.Tasks {
			t := plan.Iter.Tasks[i]
			iter := k - r.RMax + r.R[t.Node]
			if iter < 0 || iter >= rounds {
				continue // not yet started, or past the run's horizon
			}
			tr.Events = append(tr.Events,
				Event{Time: base + t.Start, Kind: EvTaskStart, PE: t.PE, Node: t.Node, Iter: iter},
				Event{Time: base + t.Finish, Kind: EvTaskEnd, PE: t.PE, Node: t.Node, Iter: iter})
		}
	}

	// Transfer events: edge (i,j) for iteration ℓ moves data from the
	// producer instance (round ℓ+RMax-R(i)) to the consumer instance
	// (round ℓ+RMax-R(j)).  Placement within the gap follows the
	// non-straddling window discipline; any misfit is a hard error.
	for i := range g.Edges() {
		if err := ctx.Err(); err != nil {
			return Stats{}, nil, fmt.Errorf("sim: trace cancelled at edge %d/%d: %w", i, g.NumEdges(), err)
		}
		e := g.Edge(dag.EdgeID(i))
		place := plan.Iter.Assignment[i]
		dur := e.CacheTime
		if place == pim.InEDRAM {
			dur = e.EDRAMTime
		}
		gap := r.R[e.From] - r.R[e.To]
		if gap < 0 {
			return Stats{}, nil, fmt.Errorf("sim: edge %d->%d has negative retiming gap", e.From, e.To)
		}
		for iter := 0; iter < rounds; iter++ {
			prodRound := iter + r.RMax - r.R[e.From]
			consRound := iter + r.RMax - r.R[e.To]
			start, ok := placeTransfer(dur, tm.Finish[e.From], tm.Start[e.To], p, gap, prodRound, consRound)
			if !ok {
				return Stats{}, nil, fmt.Errorf("sim: edge %d->%d iteration %d: transfer %d does not fit gap %d (finish %d, start %d, period %d)",
					e.From, e.To, iter, dur, gap, tm.Finish[e.From], tm.Start[e.To], p)
			}
			tr.Events = append(tr.Events,
				Event{Time: start, Kind: EvTransferStart, Edge: e.ID, Iter: iter, Place: place},
				Event{Time: start + dur, Kind: EvTransferEnd, Edge: e.ID, Iter: iter, Place: place})
		}
	}

	// Iteration completions: iteration ℓ's last instance runs in
	// round ℓ + RMax (its sinks, R=0).
	for iter := 0; iter < rounds; iter++ {
		tr.Events = append(tr.Events, Event{Time: (iter + r.RMax + 1) * p, Kind: EvIterationDone, Iter: iter})
	}
	finalize(tr)

	stats, err := runPipelined(ctx, plan, cfg, iterations)
	if err != nil {
		return Stats{}, nil, err
	}
	return stats, tr, nil
}

// placeTransfer picks the deterministic start time of a transfer under
// the non-straddling window discipline and reports whether it fits.
// prodRound/consRound are the absolute kernel rounds of the producer
// and consumer instances.
func placeTransfer(dur, finish, start, period, gap, prodRound, consRound int) (int, bool) {
	switch {
	case gap == 0:
		// Same round: between producer finish and consumer start.
		if finish+dur <= start {
			return prodRound*period + finish, true
		}
		return 0, false
	case gap == 1:
		// Producer round's tail, else consumer round's head.
		if dur <= period-finish {
			return prodRound*period + finish, true
		}
		if dur <= start {
			return consRound*period + start - dur, true
		}
		return 0, false
	default:
		// A dedicated intermediate round.
		if dur <= period {
			return (prodRound + 1) * period, true
		}
		return 0, false
	}
}

// taskStartPool recycles finalize's in-flight task map across runs.
// The map's population peaks at the number of concurrently running
// task instances (entries are deleted at each task end), so the
// recycled map stays small regardless of trace length.
var taskStartPool = sync.Pool{New: func() any { return make(map[[2]int]int, 64) }}

// finalize sorts the event log and computes the resource profiles.
func finalize(tr *Trace) {
	sort.SliceStable(tr.Events, func(a, b int) bool {
		if tr.Events[a].Time != tr.Events[b].Time {
			return tr.Events[a].Time < tr.Events[b].Time
		}
		// Ends before starts at the same instant, so occupancy
		// profiles are tight.
		return tr.Events[a].Kind > tr.Events[b].Kind
	})
	edram, live := 0, 0
	taskStart := taskStartPool.Get().(map[[2]int]int)
	defer func() {
		clear(taskStart)
		taskStartPool.Put(taskStart)
	}()
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvTaskStart:
			taskStart[[2]int{int(ev.Node), ev.Iter}] = ev.Time
		case EvTaskEnd:
			key := [2]int{int(ev.Node), ev.Iter}
			if s, ok := taskStart[key]; ok {
				for int(ev.PE) >= len(tr.PEBusy) {
					tr.PEBusy = append(tr.PEBusy, 0)
				}
				tr.PEBusy[ev.PE] += ev.Time - s
				delete(taskStart, key)
			}
		case EvTransferStart:
			if ev.Place == pim.InEDRAM {
				edram++
				if edram > tr.PeakConcurrentEDRAM {
					tr.PeakConcurrentEDRAM = edram
				}
			} else {
				live++
				if live > tr.PeakLiveCachedIPRs {
					tr.PeakLiveCachedIPRs = live
				}
			}
		case EvTransferEnd:
			if ev.Place == pim.InEDRAM {
				edram--
			} else {
				live--
			}
		}
	}
}

// TaskEvents returns the trace's task events for one vertex, in time
// order — a convenience for tests and debugging.
func (tr *Trace) TaskEvents(v dag.NodeID) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if (ev.Kind == EvTaskStart || ev.Kind == EvTaskEnd) && ev.Node == v {
			out = append(out, ev)
		}
	}
	return out
}

// IterationSpan returns the first task-start and the iteration-done
// time of one application iteration, or ok=false if the iteration is
// not in the trace.
func (tr *Trace) IterationSpan(iter int) (start, done int, ok bool) {
	start, done = -1, -1
	for _, ev := range tr.Events {
		if ev.Iter != iter {
			continue
		}
		switch ev.Kind {
		case EvTaskStart:
			if start == -1 || ev.Time < start {
				start = ev.Time
			}
		case EvIterationDone:
			done = ev.Time
		}
	}
	return start, done, start >= 0 && done >= 0
}
