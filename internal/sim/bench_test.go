package sim

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/synth"
)

// The sim benchmarks cover both execution paths: the closed-form Run
// (the serving path's workhorse) and the event-level TraceRun whose
// buffers are preallocated from plan-derived bounds.

func benchPlan(b *testing.B) (*sched.Plan, pim.Config) {
	b.Helper()
	g, err := synth.Generate(synth.Params{Name: "simbench", Vertices: 240, Edges: 600, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pim.Neurocube(16)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return plan, cfg
}

func BenchmarkSimRun(b *testing.B) {
	plan, cfg := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(plan, cfg, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceRun(b *testing.B) {
	plan, cfg := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TraceRun(plan, cfg, 20); err != nil {
			b.Fatal(err)
		}
	}
}
