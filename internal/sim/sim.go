// Package sim is a discrete-event simulator for the 3D PIM
// architecture: it executes a scheduled plan cycle by cycle (at
// schedule time-unit granularity), tracking PE busy/idle state, data
// cache residency, eDRAM vault fetches, FIFO traffic and the energy of
// every data movement.
//
// The simulator plays two roles in the reproduction.  First, it is
// the referee: a plan that claims a period p and retiming R must
// actually run — every consumer must find its operand produced the
// right number of iterations earlier, every PE must never execute two
// tasks at once, and every cached IPR must fit the array's capacity.
// Second, it is the measurement instrument for the data-movement
// metrics (off-PE fetch counts, bytes moved, picojoules) that the
// paper's motivation (§1, §2.3) is built on.
package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/sched"
)

// Stats aggregates everything the simulator measures.
type Stats struct {
	// Cycles is the total simulated time units.
	Cycles int
	// Iterations is the number of application iterations completed.
	Iterations int
	// TasksExecuted counts vertex executions (across iterations).
	TasksExecuted int

	// CacheReads and EDRAMReads count IPR fetches by source.
	CacheReads int
	EDRAMReads int
	// CacheBytes and EDRAMBytes are the corresponding volumes.
	CacheBytes int64
	EDRAMBytes int64
	// EnergyPJ is the total data-movement energy.
	EnergyPJ float64

	// BusyPE is the total PE-busy time units; utilization is
	// BusyPE / (Cycles * NumPEs).
	BusyPE int
	// PEBusy is the per-PE busy time, indexed by PE id; its entries
	// sum to BusyPE.  Both simulator paths derive it from the same
	// task placement the event stream replays, so it cross-checks
	// Trace.PEBusy exactly.
	PEBusy []int
	// NumPEs echoes the configuration for utilization math.
	NumPEs int

	// PeakCacheLoad is the maximum simultaneous cache occupancy
	// observed, in capacity units.
	PeakCacheLoad int
}

// Utilization returns the fraction of PE-time spent executing tasks.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || s.NumPEs == 0 {
		return 0
	}
	return float64(s.BusyPE) / float64(s.Cycles*s.NumPEs)
}

// OffChipFetchRatio returns the fraction of IPR reads served from
// eDRAM — the "off-chip fetching" penalty Para-CONV minimizes.
func (s Stats) OffChipFetchRatio() float64 {
	total := s.CacheReads + s.EDRAMReads
	if total == 0 {
		return 0
	}
	return float64(s.EDRAMReads) / float64(total)
}

// Run simulates `iterations` iterations of the plan's application on
// the given PIM configuration and returns the measured statistics.
// It returns an error if the plan is structurally invalid, violates
// a dependency at run time, or oversubscribes the cache.
func Run(plan *sched.Plan, cfg pim.Config, iterations int) (Stats, error) {
	return RunCtx(context.Background(), plan, cfg, iterations)
}

// RunCtx is Run under a context.  The closed-form simulator's only
// long stretch is the per-edge legality sweep, which checks ctx at
// edge boundaries and returns its error when cancelled.
func RunCtx(ctx context.Context, plan *sched.Plan, cfg pim.Config, iterations int) (Stats, error) {
	sp := span.Start(ctx, "sim.run")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return Stats{}, fmt.Errorf("sim: %w", err)
	}
	if plan == nil {
		return Stats{}, errors.New("sim: nil plan")
	}
	if err := cfg.Validate(); err != nil {
		return Stats{}, fmt.Errorf("sim: %w", err)
	}
	if iterations < 1 {
		return Stats{}, fmt.Errorf("sim: %d iterations; want >= 1", iterations)
	}
	if err := plan.Iter.Validate(); err != nil {
		return Stats{}, fmt.Errorf("sim: invalid iteration schedule: %w", err)
	}
	switch plan.Scheme {
	case "para-conv":
		if check.Enabled() {
			if err := check.CheckRetiming(plan.Iter.Graph, plan.Retiming.R, plan.Retiming.REdge); err != nil {
				return Stats{}, fmt.Errorf("sim: %w", err)
			}
		}
		return runPipelined(ctx, plan, cfg, iterations)
	case "sparta", "naive":
		return runSequential(plan, cfg, iterations)
	default:
		return Stats{}, fmt.Errorf("sim: unknown scheme %q", plan.Scheme)
	}
}

// runSequential executes iterations back-to-back: iteration k occupies
// absolute time [k*M, (k+1)*M).  Dependencies are intra-iteration and
// must be satisfied by the schedule itself.
func runSequential(plan *sched.Plan, cfg pim.Config, iterations int) (Stats, error) {
	g := plan.Iter.Graph
	if err := plan.Iter.CheckDependencies(); err != nil {
		return Stats{}, fmt.Errorf("sim: sequential plan violates dependencies: %w", err)
	}
	if err := checkCacheCapacity(plan, cfg); err != nil {
		return Stats{}, err
	}
	stats := Stats{NumPEs: cfg.NumPEs}
	stats.Cycles = iterations * plan.Iter.Period
	stats.Iterations = iterations
	stats.TasksExecuted = iterations * g.NumNodes()
	stats.BusyPE = iterations * totalExec(g)
	stats.PEBusy = perPEBusy(plan, cfg.NumPEs, iterations)
	accumulateTraffic(&stats, g, plan.Iter.Assignment, cfg, iterations)
	stats.PeakCacheLoad = cacheLoad(g, plan.Iter.Assignment)
	recordRunMetrics(stats, 0)
	return stats, nil
}

// runPipelined executes a retimed kernel: after a prologue of RMax
// periods, one kernel period completes ConcurrentIterations
// application iterations.  The simulator replays the steady state and
// verifies, for every edge, that the producing task instance finished
// (and its transfer completed) before the consuming instance starts,
// using the retiming offsets — the run-time restatement of
// retime.CheckLegal against absolute time.
func runPipelined(ctx context.Context, plan *sched.Plan, cfg pim.Config, iterations int) (Stats, error) {
	g := plan.Iter.Graph
	if err := checkCacheCapacity(plan, cfg); err != nil {
		return Stats{}, err
	}
	p := plan.Iter.Period
	r := plan.Retiming
	if len(r.R) != g.NumNodes() || len(r.REdge) != g.NumEdges() {
		return Stats{}, fmt.Errorf("sim: plan retiming covers %d vertices/%d edges; want %d/%d",
			len(r.R), len(r.REdge), g.NumNodes(), g.NumEdges())
	}
	// Absolute-time dependency verification in steady state: the
	// instance of vertex v serving logical iteration ℓ runs in kernel
	// round ℓ + R(v) ... equivalently, within a round, v's instance
	// belongs to iteration (round - R(v)).  For edge (i, j) the
	// producer's result for iteration ℓ is computed in round ℓ+R(i),
	// the consumer reads it in round ℓ+R(j); the transfer has
	// R(i)-R(j) >= rrv periods available, which retime guarantees is
	// enough under the non-straddling window discipline.  Here we
	// re-derive the requirement and fail loudly on any violation.
	tm := plan.Iter.Timing()
	for i := range g.Edges() {
		if err := ctx.Err(); err != nil {
			return Stats{}, fmt.Errorf("sim: cancelled verifying edge %d/%d: %w", i, g.NumEdges(), err)
		}
		e := g.Edge(dag.EdgeID(i))
		transfer := e.CacheTime
		if plan.Iter.Assignment[i] == pim.InEDRAM {
			transfer = e.EDRAMTime
		}
		gap := r.R[e.From] - r.R[e.To] // rounds between producer and consumer instances
		if gap < 0 {
			return Stats{}, fmt.Errorf("sim: edge %d->%d has negative retiming gap %d", e.From, e.To, gap)
		}
		ok := false
		switch {
		case gap == 0:
			ok = tm.Finish[e.From]+transfer <= tm.Start[e.To]
		case gap == 1:
			ok = transfer <= p-tm.Finish[e.From] || transfer <= tm.Start[e.To]
		default: // gap >= 2: a full dedicated period is available
			ok = transfer <= p
		}
		if !ok {
			return Stats{}, fmt.Errorf("sim: edge %d->%d unschedulable: gap %d periods, transfer %d, producer finish %d, consumer start %d, period %d",
				e.From, e.To, gap, transfer, tm.Finish[e.From], tm.Start[e.To], p)
		}
	}

	kernelIters := plan.ConcurrentIterations
	if kernelIters < 1 {
		kernelIters = 1
	}
	// Semantics: run exactly `rounds` application iterations to
	// completion.  Each vertex then executes exactly once per
	// iteration — retimed vertices start during the prologue rounds
	// and fall silent during the symmetric drain — so total work is
	// rounds x one kernel, spread over (RMax + rounds) periods of
	// wall-clock (fill and drain idle included in Cycles, hence in
	// Utilization).
	rounds := (iterations + kernelIters - 1) / kernelIters
	stats := Stats{NumPEs: cfg.NumPEs}
	stats.Cycles = (r.RMax + rounds) * p
	stats.Iterations = rounds * kernelIters
	stats.TasksExecuted = rounds * g.NumNodes()
	stats.BusyPE = rounds * totalExec(g)
	stats.PEBusy = perPEBusy(plan, cfg.NumPEs, rounds)
	accumulateTraffic(&stats, g, plan.Iter.Assignment, cfg, rounds)
	stats.PeakCacheLoad = cacheLoad(g, plan.Iter.Assignment)
	recordRunMetrics(stats, r.RMax)
	return stats, nil
}

// perPEBusy distributes the total busy time over PEs: each scheduled
// task instance contributes its execution span to its PE once per
// repetition (iteration or kernel round).  This is exactly the
// accounting the event-level trace derives from task start/end pairs,
// so Stats.PEBusy and Trace.PEBusy agree entry by entry.
func perPEBusy(plan *sched.Plan, numPEs, repetitions int) []int {
	out := make([]int, numPEs)
	for i := range plan.Iter.Tasks {
		t := &plan.Iter.Tasks[i]
		if int(t.PE) < numPEs {
			out[t.PE] += (t.Finish - t.Start) * repetitions
		}
	}
	return out
}

// recordRunMetrics publishes one completed run's measurements to the
// shared observability registry: run and prologue counts, aggregate
// busy/idle PE-time, and per-placement fetch counts and volumes.
func recordRunMetrics(stats Stats, rmax int) {
	if !obs.Enabled() {
		return
	}
	obs.SimRuns.Inc()
	obs.SimPEBusyTime.Add(int64(stats.BusyPE))
	obs.SimPEIdleTime.Add(int64(stats.Cycles*stats.NumPEs - stats.BusyPE))
	obs.SimProloguePeriods.Add(int64(rmax))
	obs.TransferReads("cache").Add(int64(stats.CacheReads))
	obs.TransferBytes("cache").Add(stats.CacheBytes)
	obs.TransferReads("edram").Add(int64(stats.EDRAMReads))
	obs.TransferBytes("edram").Add(stats.EDRAMBytes)
}

func totalExec(g *dag.Graph) int {
	sum := 0
	for i := range g.Nodes() {
		sum += g.Nodes()[i].Exec
	}
	return sum
}

func cacheLoad(g *dag.Graph, a []pim.Placement) int {
	load := 0
	for i := range g.Edges() {
		if a[i] == pim.InCache {
			load += g.Edge(dag.EdgeID(i)).Size
		}
	}
	return load
}

// checkCacheCapacity verifies the plan's logical cache footprint fits
// the PE array.  The load is per logical IPR (CacheLoadUnits): each
// cached intermediate result reserves one slot that successive
// iterations — and unrolled replicas, which are just iterations —
// reuse.
func checkCacheCapacity(plan *sched.Plan, cfg pim.Config) error {
	g := plan.Iter.Graph
	if len(plan.Iter.Assignment) != g.NumEdges() {
		return fmt.Errorf("sim: assignment covers %d/%d edges", len(plan.Iter.Assignment), g.NumEdges())
	}
	if load, cap := plan.CacheLoadUnits, cfg.TotalCacheUnits(); load > cap {
		return fmt.Errorf("sim: cached IPRs need %d capacity units; PE array has %d", load, cap)
	}
	return nil
}

func accumulateTraffic(stats *Stats, g *dag.Graph, a []pim.Placement, cfg pim.Config, repetitions int) {
	for i := range g.Edges() {
		e := g.Edge(dag.EdgeID(i))
		bytes := e.Bytes
		if bytes == 0 {
			bytes = int64(e.Size) * int64(cfg.CacheBytesPerUnit)
		}
		if a[i] == pim.InCache {
			stats.CacheReads += repetitions
			stats.CacheBytes += int64(repetitions) * bytes
			stats.EnergyPJ += float64(repetitions) * cfg.MoveEnergyPJ(pim.InCache, bytes)
		} else {
			stats.EDRAMReads += repetitions
			stats.EDRAMBytes += int64(repetitions) * bytes
			stats.EnergyPJ += float64(repetitions) * cfg.MoveEnergyPJ(pim.InEDRAM, bytes)
		}
	}
}
