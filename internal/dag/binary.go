package dag

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// The binary codec is the wire-efficient sibling of the text format:
// a length-prefixed, varint-encoded frame carrying exactly the same
// information content (name, per-node kind/exec/name, per-edge
// endpoints and weights), so the two formats round-trip through each
// other.  Layout, all integers varint (zigzag for signed values,
// plain uvarint for counts and lengths):
//
//	magic   'P' 'C' 'G'            (3 bytes)
//	version 0x01                   (1 byte)
//	name    uvarint len + bytes
//	counts  uvarint nodes, uvarint edges
//	node*   kind byte, varint exec, uvarint namelen + bytes
//	edge*   uvarint from, uvarint to,
//	        varint size, varint cachetime, varint edramtime
//
// Encoding is byte-for-byte deterministic: the same graph always
// yields the same bytes (field order is fixed and varints have a
// unique minimal form).  Decoding rejects trailing bytes, unknown
// versions and out-of-range references, and enforces the same Limits
// policy as the text parser — with the counts checked against the
// remaining input length first, so a lying header cannot reserve
// memory the body could never justify.

// BinaryVersion is the frame version the codec writes and the only
// one it accepts.  Bump it on any layout change; readers reject
// frames from the future rather than misparse them.
const BinaryVersion = 1

// binMagic are the three magic bytes opening a binary graph frame.
var binMagic = [3]byte{'P', 'C', 'G'}

// AppendBinary appends the binary encoding of g to dst and returns
// the extended slice.  It is the allocation-free core of WriteBinary
// (zero allocations once dst has capacity).
//
//paraconv:hotpath
func AppendBinary(dst []byte, g *Graph) []byte {
	dst = append(dst, binMagic[0], binMagic[1], binMagic[2], BinaryVersion)
	dst = appendBinString(dst, g.name)
	dst = binary.AppendUvarint(dst, uint64(len(g.nodes)))
	dst = binary.AppendUvarint(dst, uint64(len(g.edges)))
	for i := range g.nodes {
		n := &g.nodes[i]
		dst = append(dst, byte(n.Kind))
		dst = binary.AppendVarint(dst, int64(n.Exec))
		dst = appendBinString(dst, n.Name)
	}
	for i := range g.edges {
		e := &g.edges[i]
		dst = binary.AppendUvarint(dst, uint64(e.From))
		dst = binary.AppendUvarint(dst, uint64(e.To))
		dst = binary.AppendVarint(dst, int64(e.Size))
		dst = binary.AppendVarint(dst, int64(e.CacheTime))
		dst = binary.AppendVarint(dst, int64(e.EDRAMTime))
	}
	return dst
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binBufPool recycles the staging buffers WriteBinary encodes into and
// ReadBinaryLimits drains readers into.
var binBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBinBuf caps what a recycled binary staging buffer may
// retain, mirroring the text scanner pool's discipline.
const maxPooledBinBuf = 1 << 20

func putBinBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBinBuf {
		return
	}
	b.Reset()
	binBufPool.Put(b)
}

// WriteBinary serializes g in the package binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	buf := binBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write(AppendBinary(buf.AvailableBuffer(), g))
	_, err := w.Write(buf.Bytes())
	putBinBuf(buf)
	if err != nil {
		return fmt.Errorf("dag: writing binary graph: %w", err)
	}
	return nil
}

// ReadBinary parses the package binary format with no size caps.  The
// returned graph is validated; any structural defect is an error.
func ReadBinary(r io.Reader) (*Graph, error) {
	return ReadBinaryLimits(r, Limits{})
}

// ReadBinaryLimits is ReadBinary with caps on the declared graph
// size; crossing a cap aborts the parse with a *LimitError.
func ReadBinaryLimits(r io.Reader, lim Limits) (*Graph, error) {
	buf := binBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r); err != nil {
		putBinBuf(buf)
		return nil, fmt.Errorf("dag: reading binary graph: %w", err)
	}
	g, err := DecodeBinary(buf.Bytes(), lim)
	putBinBuf(buf)
	return g, err
}

// binNameScratch pools the decoder's name staging: all node names are
// accumulated in one byte buffer (with per-node lengths) and then
// backed by a single string, so a 1000-vertex graph costs one name
// allocation instead of one per vertex.
type binNameScratch struct {
	buf  []byte
	lens []int
}

var binNamePool = sync.Pool{New: func() any { return new(binNameScratch) }}

// DecodeBinary parses a binary graph frame from data, which must
// contain exactly one frame (trailing bytes are an error).  The
// returned graph holds no references into data.  It enforces lim the
// same way ReadTextLimits does and validates the result.
//
//paraconv:hotpath
func DecodeBinary(data []byte, lim Limits) (*Graph, error) {
	d := binDecoder{data: data}
	if len(data) < 4 {
		return nil, fmt.Errorf("dag: binary graph: %d-byte input shorter than the 4-byte header", len(data))
	}
	if data[0] != binMagic[0] || data[1] != binMagic[1] || data[2] != binMagic[2] {
		return nil, fmt.Errorf("dag: binary graph: bad magic % x", data[:3])
	}
	if data[3] != BinaryVersion {
		return nil, fmt.Errorf("dag: binary graph: unsupported version %d (want %d)", data[3], BinaryVersion)
	}
	d.off = 4

	name, err := d.bstring()
	if err != nil {
		return nil, err
	}
	nodes, err := d.count("node")
	if err != nil {
		return nil, err
	}
	edges, err := d.count("edge")
	if err != nil {
		return nil, err
	}
	if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
		return nil, &LimitError{Kind: "nodes", Max: lim.MaxNodes, Offset: d.off}
	}
	if lim.MaxEdges > 0 && edges > lim.MaxEdges {
		return nil, &LimitError{Kind: "edges", Max: lim.MaxEdges, Offset: d.off}
	}
	// Every node costs at least 3 bytes and every edge at least 5, so
	// a header whose counts outrun the remaining input is lying; fail
	// before reserving anything.
	if rem := len(data) - d.off; 3*nodes+5*edges > rem {
		return nil, fmt.Errorf("dag: binary graph: declared %d nodes, %d edges exceed the %d input bytes remaining", nodes, edges, rem)
	}

	g := New(string(name))
	g.Grow(nodes, 0)
	ns := binNamePool.Get().(*binNameScratch)
	ns.buf = ns.buf[:0]
	ns.lens = ns.lens[:0]
	defer binNamePool.Put(ns)
	for i := 0; i < nodes; i++ {
		if d.off >= len(data) {
			return nil, d.truncated("node")
		}
		kind := OpKind(data[d.off])
		d.off++
		if kind > OpOutput {
			return nil, fmt.Errorf("dag: binary graph: node %d has unknown op kind %d", i, kind)
		}
		exec, err := d.bvarint("node exec")
		if err != nil {
			return nil, err
		}
		nm, err := d.bstring()
		if err != nil {
			return nil, err
		}
		ns.buf = append(ns.buf, nm...)
		ns.lens = append(ns.lens, len(nm))
		g.AddNode(Node{Kind: kind, Exec: int(exec)})
	}
	if len(ns.buf) > 0 {
		backing := string(ns.buf)
		off := 0
		for i, l := range ns.lens {
			if l > 0 {
				g.nodes[i].Name = backing[off : off+l]
				off += l
			}
		}
	}

	batchp := edgeBatchPool.Get().(*[]Edge)
	es := (*batchp)[:0]
	if cap(es) < edges {
		es = make([]Edge, 0, edges)
	}
	defer func() {
		*batchp = es[:0]
		edgeBatchPool.Put(batchp)
	}()
	for i := 0; i < edges; i++ {
		from, err := d.count("edge endpoint")
		if err != nil {
			return nil, err
		}
		to, err := d.count("edge endpoint")
		if err != nil {
			return nil, err
		}
		if from >= nodes || to >= nodes {
			return nil, fmt.Errorf("dag: binary graph: edge %d->%d references undeclared node", from, to)
		}
		size, err := d.bvarint("edge size")
		if err != nil {
			return nil, err
		}
		ct, err := d.bvarint("edge cachetime")
		if err != nil {
			return nil, err
		}
		et, err := d.bvarint("edge edramtime")
		if err != nil {
			return nil, err
		}
		es = append(es, Edge{From: NodeID(from), To: NodeID(to), Size: int(size), CacheTime: int(ct), EDRAMTime: int(et)})
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("dag: binary graph: %d trailing bytes after the frame", len(data)-d.off)
	}
	g.AddEdges(es)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// binDecoder is a bounds-checked cursor over one binary frame.
type binDecoder struct {
	data []byte
	off  int
}

func (d *binDecoder) truncated(what string) error {
	return fmt.Errorf("dag: binary graph: truncated at offset %d reading %s", d.off, what)
}

func (d *binDecoder) buvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.truncated(what)
	}
	d.off += n
	return v, nil
}

// maxAbsWeight bounds signed frame values to what the text codec can
// represent (atoiBytes caps fields at 18 decimal digits), keeping the
// two formats' accepted domains identical.
const maxAbsWeight = 1e18 - 1

func (d *binDecoder) bvarint(what string) (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.truncated(what)
	}
	if v > maxAbsWeight || v < -maxAbsWeight {
		return 0, fmt.Errorf("dag: binary graph: %s %d out of range", what, v)
	}
	d.off += n
	return v, nil
}

// count reads a uvarint that must fit a non-negative int with headroom
// (counts, lengths and endpoint indexes).  The label is passed through
// verbatim — never concatenated — so the success path stays
// allocation-free.
func (d *binDecoder) count(what string) (int, error) {
	v, err := d.buvarint(what)
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("dag: binary graph: %s %d out of range", what, v)
	}
	return int(v), nil
}

// bstring reads a length-prefixed byte string, returning a view into
// the input (callers must copy before the input is recycled).
func (d *binDecoder) bstring() ([]byte, error) {
	l, err := d.count("string")
	if err != nil {
		return nil, err
	}
	if l > len(d.data)-d.off {
		return nil, d.truncated("string body")
	}
	s := d.data[d.off : d.off+l]
	d.off += l
	return s, nil
}
