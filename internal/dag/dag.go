// Package dag implements the weighted directed-acyclic task-graph model
// used throughout Para-CONV.
//
// A CNN application is modelled (paper §2.2) as a weighted DAG
// G = (V, E, P, R): each vertex is a convolution or pooling operation
// V_i(s_i, c_i, d_i) with start time, execution time and deadline; each
// directed edge (V_i, V_j) carries the intermediate processing result
// (IPR) I_{i,j} produced by V_i and consumed by V_j.  The profit
// function P associates every IPR with two weights — the profit of
// placing it in on-chip PE cache versus in stacked eDRAM — and R is the
// retiming function manipulated by package retime.
//
// The package is a pure data-structure substrate: construction,
// validation, traversal, classic DAG algorithms (topological order,
// longest path, level decomposition) and serialization.  It knows
// nothing about scheduling policy.
package dag

import (
	"fmt"
	"sort"
)

// OpKind classifies the operation a vertex performs.  The paper
// partitions CNN applications "based on the functionality (i.e.,
// convolution, or pooling)"; fully-connected layers are treated as a
// special kind of convolution (§2.2) but we keep the tag for reporting.
type OpKind uint8

const (
	// OpConv is a convolution operation (the dominant kind).
	OpConv OpKind = iota
	// OpPool is a pooling (max/average) operation.
	OpPool
	// OpFC is a fully-connected (inner product) operation.
	OpFC
	// OpInput marks a pseudo-source feeding input feature maps.
	OpInput
	// OpOutput marks a pseudo-sink collecting network outputs.
	OpOutput
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpConv:
		return "conv"
	case OpPool:
		return "pool"
	case OpFC:
		return "fc"
	case OpInput:
		return "input"
	case OpOutput:
		return "output"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// NodeID identifies a vertex within one Graph.  IDs are dense indexes
// assigned by AddNode in insertion order, so they double as slice
// offsets everywhere in the code base.
type NodeID int

// Node is one convolution/pooling operation V_i(s_i, c_i, d_i).
// Times are in abstract schedule "time units", the same unit the paper
// uses in its motivational example (Figure 3).
type Node struct {
	ID   NodeID
	Name string
	Kind OpKind

	// Exec is c_i, the execution time of the operation on one PE.
	Exec int
	// Start is s_i, the start time in the objective schedule for the
	// first iteration (filled in by schedulers; zero before that).
	Start int
	// Deadline is d_i, the deadline in the objective schedule for the
	// first iteration (filled in by schedulers; zero before that).
	Deadline int

	// MACs optionally records the multiply-accumulate count of the
	// underlying CNN operation (set when the graph was derived from a
	// layer model, see package cnn); purely informational.
	MACs int64
}

// EdgeID identifies an edge (an IPR) within one Graph, dense in
// insertion order.
type EdgeID int

// Edge is one intermediate processing result I_{i,j}: the data
// transferred from operation From to operation To.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID

	// Size is sp_m, the space the IPR occupies if allocated to on-chip
	// cache, in cache capacity units (the DP in internal/core budgets
	// cache by this).
	Size int

	// CacheTime and EDRAMTime are the transfer/handling time c_{i,j}
	// of the IPR when placed in on-chip PE cache versus in stacked
	// eDRAM.  Fetching from a DRAM vault costs 2x-10x the cache cost
	// (paper §2.2), so EDRAMTime >= CacheTime always holds for a valid
	// graph.
	CacheTime int
	EDRAMTime int

	// Bytes optionally records the real size of the feature-map slice
	// this edge models (set by package cnn); informational.
	Bytes int64
}

// Graph is the mutable weighted DAG.  The zero value is not usable;
// call New.
type Graph struct {
	name  string
	nodes []Node
	edges []Edge

	// out[v] and in[v] hold edge IDs ordered by insertion.
	out [][]EdgeID
	in  [][]EdgeID
}

// New returns an empty graph with the given name (used in reports and
// DOT output; may be empty).
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Grow preallocates storage for at least nodes further vertices and
// edges further edges, so a caller that knows the final size up front
// (the text codec's counts header, the synthesizer) builds the graph
// without incremental append growth.  Negative arguments are ignored.
//
//paraconv:hotpath
func (g *Graph) Grow(nodes, edges int) {
	if nodes > 0 {
		if free := cap(g.nodes) - len(g.nodes); free < nodes {
			g.nodes = append(make([]Node, 0, len(g.nodes)+nodes), g.nodes...)
			g.out = append(make([][]EdgeID, 0, len(g.out)+nodes), g.out...)
			g.in = append(make([][]EdgeID, 0, len(g.in)+nodes), g.in...)
		}
	}
	if edges > 0 {
		if free := cap(g.edges) - len(g.edges); free < edges {
			g.edges = append(make([]Edge, 0, len(g.edges)+edges), g.edges...)
		}
	}
}

// AddNode appends a vertex and returns its ID.  The ID field of the
// argument is ignored and overwritten.
func (g *Graph) AddNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n.ID
}

// AddEdge appends an edge and returns its ID.  It panics if either
// endpoint is out of range; cycle creation is not checked here (use
// Validate or IsAcyclic after construction).
func (g *Graph) AddEdge(e Edge) EdgeID {
	if !g.hasNode(e.From) || !g.hasNode(e.To) {
		panic(fmt.Sprintf("dag: AddEdge %d->%d: node out of range (|V|=%d)", e.From, e.To, len(g.nodes)))
	}
	e.ID = EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.ID)
	g.in[e.To] = append(g.in[e.To], e.ID)
	return e.ID
}

// AddEdges appends a batch of edges at once.  When the graph has no
// edges yet (the codec's bulk-load case), the adjacency lists are
// carved out of two exact-fit backing arrays sized from the batch's
// degree counts, so the whole load costs a constant number of
// allocations instead of one growth chain per vertex.  With edges
// already present it degrades to a plain AddEdge loop.  Like AddEdge
// it panics on an out-of-range endpoint and assigns IDs in order.
//
//paraconv:hotpath
func (g *Graph) AddEdges(es []Edge) {
	if len(es) == 0 {
		return
	}
	if len(g.edges) > 0 {
		for i := range es {
			g.AddEdge(es[i])
		}
		return
	}
	for i := range es {
		if !g.hasNode(es[i].From) || !g.hasNode(es[i].To) {
			panic(fmt.Sprintf("dag: AddEdges %d->%d: node out of range (|V|=%d)",
				es[i].From, es[i].To, len(g.nodes)))
		}
	}
	g.Grow(0, len(es))
	deg := make([]int, 2*len(g.nodes))
	outDeg, inDeg := deg[:len(g.nodes)], deg[len(g.nodes):]
	for i := range es {
		outDeg[es[i].From]++
		inDeg[es[i].To]++
	}
	backing := make([]EdgeID, 2*len(es))
	outB, inB := backing[:len(es)], backing[len(es):]
	outOff, inOff := 0, 0
	for v := range g.out {
		g.out[v] = outB[outOff : outOff : outOff+outDeg[v]]
		outOff += outDeg[v]
		g.in[v] = inB[inOff : inOff : inOff+inDeg[v]]
		inOff += inDeg[v]
	}
	for i := range es {
		e := es[i]
		e.ID = EdgeID(len(g.edges))
		g.edges = append(g.edges, e)
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
}

func (g *Graph) hasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

func (g *Graph) hasEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Node returns a pointer to the vertex with the given ID, panicking on
// an invalid ID.  The pointer stays valid until the next AddNode.
func (g *Graph) Node(id NodeID) *Node {
	if !g.hasNode(id) {
		panic(fmt.Sprintf("dag: Node(%d): out of range (|V|=%d)", id, len(g.nodes)))
	}
	return &g.nodes[id]
}

// Edge returns a pointer to the edge with the given ID, panicking on an
// invalid ID.  The pointer stays valid until the next AddEdge.
func (g *Graph) Edge(id EdgeID) *Edge {
	if !g.hasEdge(id) {
		panic(fmt.Sprintf("dag: Edge(%d): out of range (|E|=%d)", id, len(g.edges)))
	}
	return &g.edges[id]
}

// Nodes returns the vertex slice in ID order.  Callers must not append
// to it; element mutation is allowed and is the idiomatic way to fill
// in schedule times.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns the edge slice in ID order, with the same aliasing
// contract as Nodes.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving v, in insertion order.
func (g *Graph) Out(v NodeID) []EdgeID { return g.out[v] }

// In returns the IDs of edges entering v, in insertion order.
func (g *Graph) In(v NodeID) []EdgeID { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Successors returns the distinct successor vertex IDs of v in
// ascending order.
func (g *Graph) Successors(v NodeID) []NodeID {
	return g.neighborSet(g.out[v], func(e *Edge) NodeID { return e.To })
}

// Predecessors returns the distinct predecessor vertex IDs of v in
// ascending order.
func (g *Graph) Predecessors(v NodeID) []NodeID {
	return g.neighborSet(g.in[v], func(e *Edge) NodeID { return e.From })
}

func (g *Graph) neighborSet(ids []EdgeID, pick func(*Edge) NodeID) []NodeID {
	if len(ids) == 0 {
		return nil
	}
	seen := make(map[NodeID]bool, len(ids))
	var ns []NodeID
	for _, id := range ids {
		n := pick(&g.edges[id])
		if !seen[n] {
			seen[n] = true
			ns = append(ns, n)
		}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Sources returns all vertices with no incoming edges, ascending.
func (g *Graph) Sources() []NodeID {
	var s []NodeID
	for i := range g.nodes {
		if len(g.in[i]) == 0 {
			s = append(s, NodeID(i))
		}
	}
	return s
}

// Sinks returns all vertices with no outgoing edges, ascending.
func (g *Graph) Sinks() []NodeID {
	var s []NodeID
	for i := range g.nodes {
		if len(g.out[i]) == 0 {
			s = append(s, NodeID(i))
		}
	}
	return s
}

// Clone returns a deep copy of the graph.  The copy's adjacency lists
// are carved out of two shared exact-fit backing arrays (full-slice
// expressions cap each list at its own region, so a later AddEdge on
// the clone reallocates that vertex's list instead of clobbering a
// neighbour's), keeping the clone at a constant number of allocations
// regardless of edge count.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:  g.name,
		nodes: append([]Node(nil), g.nodes...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	backing := make([]EdgeID, 2*len(g.edges))
	outB, inB := backing[:len(g.edges)], backing[len(g.edges):]
	outOff, inOff := 0, 0
	for i := range g.out {
		d := len(g.out[i])
		c.out[i] = outB[outOff : outOff+d : outOff+d]
		copy(c.out[i], g.out[i])
		outOff += d
	}
	for i := range g.in {
		d := len(g.in[i])
		c.in[i] = inB[inOff : inOff+d : inOff+d]
		copy(c.in[i], g.in[i])
		inOff += d
	}
	return c
}

// TotalExec returns the sum of execution times over all vertices
// (the Σ c_i used by rate-optimality bounds).
func (g *Graph) TotalExec() int {
	sum := 0
	for i := range g.nodes {
		sum += g.nodes[i].Exec
	}
	return sum
}

// MaxExec returns max c_i over all vertices, or 0 for an empty graph.
func (g *Graph) MaxExec() int {
	m := 0
	for i := range g.nodes {
		if g.nodes[i].Exec > m {
			m = g.nodes[i].Exec
		}
	}
	return m
}

// Stats summarizes a graph for reports.
type Stats struct {
	Name      string
	Nodes     int
	Edges     int
	Sources   int
	Sinks     int
	Depth     int // number of levels in the level decomposition
	TotalExec int
	MaxExec   int
	CritPath  int // execution-weighted critical path length
}

// ComputeStats computes summary statistics.  It returns ErrCyclic
// (wrapped) if the graph is cyclic (Depth and CritPath are undefined
// then); call Validate first on untrusted input.
func (g *Graph) ComputeStats() (Stats, error) {
	levels, err := g.Levels()
	if err != nil {
		return Stats{}, err
	}
	cp, _, err := g.CriticalPath()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Name:      g.name,
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		Sources:   len(g.Sources()),
		Sinks:     len(g.Sinks()),
		Depth:     len(levels),
		TotalExec: g.TotalExec(),
		MaxExec:   g.MaxExec(),
		CritPath:  cp,
	}, nil
}

// String implements fmt.Stringer with a short one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: |V|=%d |E|=%d depth=%d Σc=%d critpath=%d",
		s.Name, s.Nodes, s.Edges, s.Depth, s.TotalExec, s.CritPath)
}
