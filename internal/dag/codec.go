package dag

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
)

// The text format written by WriteText / read by ReadText is a small
// line-oriented exchange format so the cmd/ tools can pass graphs
// around without a JSON schema:
//
//	graph <name>
//	counts <nodes> <edges>
//	node <id> <kind> <exec> [name]
//	edge <from> <to> <size> <cachetime> <edramtime>
//
// Lines beginning with '#' and blank lines are ignored.  The counts
// header is optional (older encodings omit it); when present it lets
// the parser preallocate node, edge and adjacency storage in one shot
// and reject over-limit graphs before reading a single body line.
// Node lines must appear before any edge referencing them; ids must be
// the dense 0..n-1 sequence in order (matching AddNode's assignment).
//
// The parser is on the planning daemon's per-request path, so it is
// built to run allocation-lean: scanner buffers come from a pool,
// lines are tokenized in place (no strings.Fields slice per line), and
// numeric fields parse with strconv instead of fmt's reflection-based
// scanning.

// WriteText serializes g in the package text format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %s\n", sanitizeToken(g.Name(), "unnamed"))
	fmt.Fprintf(bw, "counts %d %d\n", g.NumNodes(), g.NumEdges())
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		fmt.Fprintf(bw, "node %d %s %d %s\n", n.ID, n.Kind, n.Exec, sanitizeToken(n.Name, "-"))
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		fmt.Fprintf(bw, "edge %d %d %d %d %d\n", e.From, e.To, e.Size, e.CacheTime, e.EDRAMTime)
	}
	return bw.Flush()
}

func sanitizeToken(s, fallback string) string {
	s = strings.Join(strings.Fields(s), "_")
	if s == "" {
		return fallback
	}
	return s
}

// Limits bounds what ReadTextLimits accepts, for parsing graphs from
// untrusted input (the planning service's network requests).  Zero
// values mean "no cap" on that dimension.
type Limits struct {
	// MaxNodes and MaxEdges cap the declared graph size.  Parsing
	// fails fast with a *LimitError as soon as a cap is crossed — at
	// the counts header when the input carries one, otherwise at the
	// first body line over the cap — so an oversized input costs at
	// most the capped prefix.
	MaxNodes int
	MaxEdges int
}

// LimitError reports a graph exceeding a codec cap.  It is a distinct
// type so servers can map it to a client error (the input is
// well-formed but over policy) rather than an internal failure.
type LimitError struct {
	// Kind is "nodes" or "edges".
	Kind string
	// Max is the cap that was crossed; Line is the text-input line
	// that crossed it (0 for binary input, which reports Offset
	// instead).
	Max  int
	Line int
	// Offset is the byte offset at which a binary parse crossed the
	// cap (0 for text input).
	Offset int
}

// Error implements error.
func (e *LimitError) Error() string {
	if e.Offset > 0 {
		return fmt.Sprintf("dag: offset %d: graph exceeds %s limit %d", e.Offset, e.Kind, e.Max)
	}
	return fmt.Sprintf("dag: line %d: graph exceeds %s limit %d", e.Line, e.Kind, e.Max)
}

// scanBufPool recycles the scanner's initial read buffer across
// parses; bufio.Scanner only reallocates past this when a single line
// exceeds 64 KiB.
var scanBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64*1024)
	return &b
}}

// maxPreallocNodes bounds how much storage a counts header may reserve
// when no explicit limit applies, so a lying header cannot turn into a
// large allocation before the body proves the size real.
const maxPreallocNodes = 1 << 20

// splitFieldsInto tokenizes line on ASCII whitespace into dst without
// allocating, returning the field count.  At most len(dst) fields are
// stored; the count keeps growing past that so arity checks still
// reject over-long lines.
func splitFieldsInto(line []byte, dst [][]byte) int {
	n := 0
	i := 0
	for i < len(line) {
		for i < len(line) && isSpace(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		start := i
		for i < len(line) && !isSpace(line[i]) {
			i++
		}
		if n < len(dst) {
			dst[n] = line[start:i]
		}
		n++
	}
	return n
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// atoiBytes parses a decimal integer from a byte field without the
// string conversion strconv.Atoi would force (whose error path makes
// the string escape, costing an allocation per numeric field).
func atoiBytes(b []byte) (int, bool) {
	i := 0
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) || len(b)-i > 18 {
		return 0, false
	}
	n := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// ReadText parses the package text format with no size caps.  The
// returned graph is validated; any structural defect is reported as
// an error.
//
//paraconv:hotpath
func ReadText(r io.Reader) (*Graph, error) {
	return ReadTextLimits(r, Limits{})
}

// edgeBatchPool recycles the edge staging slice ReadTextLimits
// accumulates before the one-shot AddEdges bulk load.
var edgeBatchPool = sync.Pool{New: func() any { return new([]Edge) }}

// ReadTextLimits is ReadText with caps on the declared graph size;
// crossing a cap aborts the parse with a *LimitError.
//
//paraconv:hotpath
func ReadTextLimits(r io.Reader, lim Limits) (*Graph, error) {
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	sc := bufio.NewScanner(r)
	sc.Buffer(*bufp, 1024*1024)
	g := New("")
	lineNo := 0
	var fields [8][]byte
	// Edges are staged and bulk-loaded at EOF so AddEdges can size the
	// adjacency lists exactly instead of growing them edge by edge.
	batchp := edgeBatchPool.Get().(*[]Edge)
	defer func() {
		*batchp = (*batchp)[:0]
		edgeBatchPool.Put(batchp)
	}()
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		nf := splitFieldsInto(line, fields[:])
		switch string(fields[0]) {
		case "graph":
			if nf != 2 {
				return nil, fmt.Errorf("dag: line %d: want 'graph <name>', got %q", lineNo, line)
			}
			g.SetName(string(fields[1]))
		case "counts":
			if nf != 3 {
				return nil, fmt.Errorf("dag: line %d: want 'counts <nodes> <edges>', got %q", lineNo, line)
			}
			nodes, ok := atoiBytes(fields[1])
			if !ok || nodes < 0 {
				return nil, fmt.Errorf("dag: line %d: bad node count %q", lineNo, fields[1])
			}
			edges, ok := atoiBytes(fields[2])
			if !ok || edges < 0 {
				return nil, fmt.Errorf("dag: line %d: bad edge count %q", lineNo, fields[2])
			}
			// Fail before the body when the declared size is over
			// policy; clamp the reservation so a dishonest header
			// cannot allocate more than the caps (or a sane default)
			// allow.
			if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
				return nil, &LimitError{Kind: "nodes", Max: lim.MaxNodes, Line: lineNo}
			}
			if lim.MaxEdges > 0 && edges > lim.MaxEdges {
				return nil, &LimitError{Kind: "edges", Max: lim.MaxEdges, Line: lineNo}
			}
			g.Grow(min(nodes, maxPreallocNodes), 0)
			if want := min(edges, 4*maxPreallocNodes); cap(*batchp) < want {
				*batchp = make([]Edge, 0, want)
			}
		case "node":
			if nf < 4 || nf > 5 {
				return nil, fmt.Errorf("dag: line %d: want 'node <id> <kind> <exec> [name]', got %q", lineNo, line)
			}
			id, ok := atoiBytes(fields[1])
			if !ok {
				return nil, fmt.Errorf("dag: line %d: bad node id %q", lineNo, fields[1])
			}
			kind, err := parseKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: %v", lineNo, err)
			}
			exec, ok := atoiBytes(fields[3])
			if !ok {
				return nil, fmt.Errorf("dag: line %d: bad exec %q", lineNo, fields[3])
			}
			name := ""
			if nf == 5 && string(fields[4]) != "-" {
				name = string(fields[4])
			}
			if lim.MaxNodes > 0 && g.NumNodes() >= lim.MaxNodes {
				return nil, &LimitError{Kind: "nodes", Max: lim.MaxNodes, Line: lineNo}
			}
			got := g.AddNode(Node{Name: name, Kind: kind, Exec: exec})
			if int(got) != id {
				return nil, fmt.Errorf("dag: line %d: node ids must be dense and in order: declared %d, assigned %d", lineNo, id, got)
			}
		case "edge":
			if nf != 6 {
				return nil, fmt.Errorf("dag: line %d: want 'edge <from> <to> <size> <cachetime> <edramtime>', got %q", lineNo, line)
			}
			var nums [5]int
			for i := range nums {
				v, ok := atoiBytes(fields[i+1])
				if !ok {
					return nil, fmt.Errorf("dag: line %d: bad field %q", lineNo, fields[i+1])
				}
				nums[i] = v
			}
			from, to, size, ct, et := nums[0], nums[1], nums[2], nums[3], nums[4]
			if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
				return nil, fmt.Errorf("dag: line %d: edge %d->%d references undeclared node", lineNo, from, to)
			}
			if lim.MaxEdges > 0 && g.NumEdges()+len(*batchp) >= lim.MaxEdges {
				return nil, &LimitError{Kind: "edges", Max: lim.MaxEdges, Line: lineNo}
			}
			*batchp = append(*batchp, Edge{From: NodeID(from), To: NodeID(to), Size: size, CacheTime: ct, EDRAMTime: et})
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dag: reading graph: %w", err)
	}
	g.AddEdges(*batchp)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseKind(s []byte) (OpKind, error) {
	switch string(s) {
	case "conv":
		return OpConv, nil
	case "pool":
		return OpPool, nil
	case "fc":
		return OpFC, nil
	case "input":
		return OpInput, nil
	case "output":
		return OpOutput, nil
	default:
		return 0, fmt.Errorf("unknown op kind %q", s)
	}
}

// WriteDOT emits the graph in Graphviz DOT syntax for visual
// inspection.  Conv vertices are boxes, pool vertices are ellipses;
// edge labels show size and the cache/eDRAM transfer times.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sanitizeToken(g.Name(), "G"))
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [fontsize=10];\n")
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		shape := "box"
		switch n.Kind {
		case OpPool:
			shape = "ellipse"
		case OpFC:
			shape = "hexagon"
		case OpInput, OpOutput:
			shape = "plaintext"
		}
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("T%d", n.ID+1)
		}
		fmt.Fprintf(bw, "  n%d [shape=%s,label=\"%s\\nc=%d\"];\n", n.ID, shape, label, n.Exec)
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		fmt.Fprintf(bw, "  n%d -> n%d [label=\"sp=%d t=%d/%d\"];\n", e.From, e.To, e.Size, e.CacheTime, e.EDRAMTime)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
