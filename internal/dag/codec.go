package dag

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format written by WriteText / read by ReadText is a small
// line-oriented exchange format so the cmd/ tools can pass graphs
// around without a JSON schema:
//
//	graph <name>
//	node <id> <kind> <exec> [name]
//	edge <from> <to> <size> <cachetime> <edramtime>
//
// Lines beginning with '#' and blank lines are ignored.  Node lines
// must appear before any edge referencing them; ids must be the dense
// 0..n-1 sequence in order (matching AddNode's assignment).

// WriteText serializes g in the package text format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %s\n", sanitizeToken(g.Name(), "unnamed"))
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		fmt.Fprintf(bw, "node %d %s %d %s\n", n.ID, n.Kind, n.Exec, sanitizeToken(n.Name, "-"))
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		fmt.Fprintf(bw, "edge %d %d %d %d %d\n", e.From, e.To, e.Size, e.CacheTime, e.EDRAMTime)
	}
	return bw.Flush()
}

func sanitizeToken(s, fallback string) string {
	s = strings.Join(strings.Fields(s), "_")
	if s == "" {
		return fallback
	}
	return s
}

// Limits bounds what ReadTextLimits accepts, for parsing graphs from
// untrusted input (the planning service's network requests).  Zero
// values mean "no cap" on that dimension.
type Limits struct {
	// MaxNodes and MaxEdges cap the declared graph size.  Parsing
	// fails fast with a *LimitError as soon as a cap is crossed, so
	// an oversized input costs at most the capped prefix.
	MaxNodes int
	MaxEdges int
}

// LimitError reports a graph exceeding a ReadTextLimits cap.  It is a
// distinct type so servers can map it to a client error (the input is
// well-formed but over policy) rather than an internal failure.
type LimitError struct {
	// Kind is "nodes" or "edges".
	Kind string
	// Max is the cap that was crossed; Line is the input line that
	// crossed it.
	Max  int
	Line int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("dag: line %d: graph exceeds %s limit %d", e.Line, e.Kind, e.Max)
}

// ReadText parses the package text format with no size caps.  The
// returned graph is validated; any structural defect is reported as
// an error.
func ReadText(r io.Reader) (*Graph, error) {
	return ReadTextLimits(r, Limits{})
}

// ReadTextLimits is ReadText with caps on the declared graph size;
// crossing a cap aborts the parse with a *LimitError.
func ReadTextLimits(r io.Reader, lim Limits) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	g := New("")
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: want 'graph <name>', got %q", lineNo, line)
			}
			g.SetName(fields[1])
		case "node":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("dag: line %d: want 'node <id> <kind> <exec> [name]', got %q", lineNo, line)
			}
			var id, exec int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("dag: line %d: bad node id %q: %v", lineNo, fields[1], err)
			}
			kind, err := parseKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: %v", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &exec); err != nil {
				return nil, fmt.Errorf("dag: line %d: bad exec %q: %v", lineNo, fields[3], err)
			}
			name := ""
			if len(fields) == 5 && fields[4] != "-" {
				name = fields[4]
			}
			if lim.MaxNodes > 0 && g.NumNodes() >= lim.MaxNodes {
				return nil, &LimitError{Kind: "nodes", Max: lim.MaxNodes, Line: lineNo}
			}
			got := g.AddNode(Node{Name: name, Kind: kind, Exec: exec})
			if int(got) != id {
				return nil, fmt.Errorf("dag: line %d: node ids must be dense and in order: declared %d, assigned %d", lineNo, id, got)
			}
		case "edge":
			if len(fields) != 6 {
				return nil, fmt.Errorf("dag: line %d: want 'edge <from> <to> <size> <cachetime> <edramtime>', got %q", lineNo, line)
			}
			var from, to, size, ct, et int
			for i, dst := range []*int{&from, &to, &size, &ct, &et} {
				if _, err := fmt.Sscanf(fields[i+1], "%d", dst); err != nil {
					return nil, fmt.Errorf("dag: line %d: bad field %q: %v", lineNo, fields[i+1], err)
				}
			}
			if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
				return nil, fmt.Errorf("dag: line %d: edge %d->%d references undeclared node", lineNo, from, to)
			}
			if lim.MaxEdges > 0 && g.NumEdges() >= lim.MaxEdges {
				return nil, &LimitError{Kind: "edges", Max: lim.MaxEdges, Line: lineNo}
			}
			g.AddEdge(Edge{From: NodeID(from), To: NodeID(to), Size: size, CacheTime: ct, EDRAMTime: et})
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dag: reading graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseKind(s string) (OpKind, error) {
	switch s {
	case "conv":
		return OpConv, nil
	case "pool":
		return OpPool, nil
	case "fc":
		return OpFC, nil
	case "input":
		return OpInput, nil
	case "output":
		return OpOutput, nil
	default:
		return 0, fmt.Errorf("unknown op kind %q", s)
	}
}

// WriteDOT emits the graph in Graphviz DOT syntax for visual
// inspection.  Conv vertices are boxes, pool vertices are ellipses;
// edge labels show size and the cache/eDRAM transfer times.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sanitizeToken(g.Name(), "G"))
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [fontsize=10];\n")
	for i := range g.Nodes() {
		n := &g.Nodes()[i]
		shape := "box"
		switch n.Kind {
		case OpPool:
			shape = "ellipse"
		case OpFC:
			shape = "hexagon"
		case OpInput, OpOutput:
			shape = "plaintext"
		}
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("T%d", n.ID+1)
		}
		fmt.Fprintf(bw, "  n%d [shape=%s,label=\"%s\\nc=%d\"];\n", n.ID, shape, label, n.Exec)
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		fmt.Fprintf(bw, "  n%d -> n%d [label=\"sp=%d t=%d/%d\"];\n", e.From, e.To, e.Size, e.CacheTime, e.EDRAMTime)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
