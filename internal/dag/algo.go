package dag

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCyclic is returned (wrapped) by algorithms that require a DAG when
// the graph contains a directed cycle.
var ErrCyclic = errors.New("dag: graph contains a cycle")

// topoScratch is the pooled working state of a topological sort: the
// in-degree counters, the ready heap, and (for callers that discard
// the order, like IsAcyclic) an order buffer of their own.
type topoScratch struct {
	indeg []int
	heap  idHeap
	order []NodeID
}

var topoPool = sync.Pool{New: func() any { return new(topoScratch) }}

// TopoSort returns one topological order of the vertices (Kahn's
// algorithm, smallest-ID-first among ready vertices so the order is
// deterministic).  It returns ErrCyclic if the graph is not acyclic.
func (g *Graph) TopoSort() ([]NodeID, error) {
	order, err := g.TopoSortInto(nil)
	if err != nil {
		return nil, err
	}
	return order, nil
}

// TopoSortInto is TopoSort appending into order[:0], so a caller that
// plans repeatedly can reuse one buffer across solves.  On error the
// returned slice is the (truncated) buffer, valid only for capacity
// reuse.  The sort's internal in-degree and heap state is pooled.
//
//paraconv:hotpath
func (g *Graph) TopoSortInto(order []NodeID) ([]NodeID, error) {
	n := g.NumNodes()
	sc := topoPool.Get().(*topoScratch)
	if cap(sc.indeg) < n {
		sc.indeg = make([]int, n)
	}
	indeg := sc.indeg[:n]
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	// Min-heap behaviour via a simple sorted ready list is O(V^2) in
	// the worst case; the graphs here are ≤ a few thousand vertices,
	// and determinism matters more than asymptotics.  Use an index
	// heap for O(E log V) anyway, hand-rolled to avoid interface
	// allocation churn.
	if cap(sc.heap.a) < n {
		sc.heap.a = make([]NodeID, 0, n)
	}
	heap := &sc.heap
	heap.a = heap.a[:0]
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.push(NodeID(v))
		}
	}
	if cap(order) < n {
		order = make([]NodeID, 0, n)
	}
	order = order[:0]
	for heap.len() > 0 {
		v := heap.pop()
		order = append(order, v)
		for _, eid := range g.out[v] {
			w := g.edges[eid].To
			indeg[w]--
			if indeg[w] == 0 {
				heap.push(w)
			}
		}
	}
	topoPool.Put(sc)
	if len(order) != n {
		return order, fmt.Errorf("topological sort visited %d of %d vertices: %w", len(order), n, ErrCyclic)
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	sc := topoPool.Get().(*topoScratch)
	order, err := g.TopoSortInto(sc.order)
	sc.order = order[:0]
	topoPool.Put(sc)
	return err == nil
}

// Levels returns the ASAP level decomposition: level 0 holds the
// sources; level k holds vertices all of whose predecessors sit in
// levels < k with at least one in level k-1.  It returns ErrCyclic
// (wrapped) if the graph is not acyclic.
func (g *Graph) Levels() ([][]NodeID, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, g.NumNodes())
	maxLvl := -1
	for _, v := range order {
		l := 0
		for _, eid := range g.in[v] {
			p := g.edges[eid].From
			if lvl[p]+1 > l {
				l = lvl[p] + 1
			}
		}
		lvl[v] = l
		if l > maxLvl {
			maxLvl = l
		}
	}
	levels := make([][]NodeID, maxLvl+1)
	for _, v := range order {
		levels[lvl[v]] = append(levels[lvl[v]], v)
	}
	return levels, nil
}

// LevelOf returns, for each vertex, its ASAP level (same definition as
// Levels).  It returns ErrCyclic (wrapped) if the graph is not
// acyclic.
func (g *Graph) LevelOf() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, g.NumNodes())
	for _, v := range order {
		for _, eid := range g.in[v] {
			p := g.edges[eid].From
			if lvl[p]+1 > lvl[v] {
				lvl[v] = lvl[p] + 1
			}
		}
	}
	return lvl, nil
}

// CriticalPath returns the execution-weighted length of the longest
// path (sum of Exec over its vertices, edge weights excluded) and one
// such path.  For an empty graph it returns (0, nil, nil).  It returns
// ErrCyclic (wrapped) if the graph is not acyclic.
func (g *Graph) CriticalPath() (int, []NodeID, error) {
	return g.longestPath(func(e *Edge) int { return 0 })
}

// CriticalPathWithTransfers is CriticalPath but adds an edge weight for
// every traversed edge, supplied by weight (typically the eDRAM or
// cache transfer time of the IPR).  It returns ErrCyclic (wrapped) if
// the graph is not acyclic.
func (g *Graph) CriticalPathWithTransfers(weight func(*Edge) int) (int, []NodeID, error) {
	return g.longestPath(weight)
}

func (g *Graph) longestPath(edgeWeight func(*Edge) int) (int, []NodeID, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return 0, nil, nil
	}
	dist := make([]int, n) // longest path ending at v, inclusive of v
	pred := make([]NodeID, n)
	for i := range pred {
		pred[i] = -1
	}
	best, bestV := 0, NodeID(-1)
	for _, v := range order {
		d := 0
		for _, eid := range g.in[v] {
			e := &g.edges[eid]
			cand := dist[e.From] + edgeWeight(e)
			if cand > d {
				d = cand
				pred[v] = e.From
			}
		}
		dist[v] = d + g.nodes[v].Exec
		if dist[v] > best {
			best, bestV = dist[v], v
		}
	}
	var path []NodeID
	for v := bestV; v != -1; v = pred[v] {
		path = append(path, v)
	}
	// reverse in place
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// ASAPStarts returns the as-soon-as-possible start time of each vertex
// assuming unlimited PEs, where a vertex may start once every
// predecessor has finished and its IPR has been transferred; transfer
// times come from weight.  It returns ErrCyclic (wrapped) if the graph
// is not acyclic.
func (g *Graph) ASAPStarts(weight func(*Edge) int) ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	start := make([]int, g.NumNodes())
	for _, v := range order {
		s := 0
		for _, eid := range g.in[v] {
			e := &g.edges[eid]
			ready := start[e.From] + g.nodes[e.From].Exec + weight(e)
			if ready > s {
				s = ready
			}
		}
		start[v] = s
	}
	return start, nil
}

// ReachableFrom returns the set of vertices reachable from v,
// including v itself, as a boolean slice indexed by NodeID.
func (g *Graph) ReachableFrom(v NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{v}
	seen[v] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.out[u] {
			w := g.edges[eid].To
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// HasPath reports whether a directed path exists from a to b (true for
// a == b).
func (g *Graph) HasPath(a, b NodeID) bool {
	return g.ReachableFrom(a)[b]
}

// idHeap is a minimal binary min-heap of NodeIDs; hand-rolled rather
// than container/heap to keep the hot topological-sort path free of
// interface boxing.
type idHeap struct{ a []NodeID }

func newIDHeap(capacity int) *idHeap {
	return &idHeap{a: make([]NodeID, 0, capacity)}
}

func (h *idHeap) len() int { return len(h.a) }

func (h *idHeap) push(v NodeID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *idHeap) pop() NodeID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
