package dag

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	g := paperGraph(t)
	g.SetName("fig 2b") // space forces sanitization
	g.Node(2).Kind = OpPool
	g.Node(2).Name = "pool layer" // space forces sanitization

	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if got.Name() != "fig_2b" {
		t.Errorf("round-tripped name = %q, want %q", got.Name(), "fig_2b")
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: |V|=%d |E|=%d", got.NumNodes(), got.NumEdges())
	}
	if got.Node(2).Kind != OpPool || got.Node(2).Name != "pool_layer" {
		t.Errorf("node 2 round trip = %+v", *got.Node(2))
	}
	for i := range g.Edges() {
		a, b := g.Edge(EdgeID(i)), got.Edge(EdgeID(i))
		if a.From != b.From || a.To != b.To || a.Size != b.Size ||
			a.CacheTime != b.CacheTime || a.EDRAMTime != b.EDRAMTime {
			t.Errorf("edge %d round trip mismatch: %+v vs %+v", i, *a, *b)
		}
	}
}

func TestReadTextSkipsCommentsAndBlank(t *testing.T) {
	in := `# a comment
graph g

node 0 conv 2 first
# another comment
node 1 fc 3 -
edge 0 1 4 1 3
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("|V|=%d |E|=%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
	if g.Node(1).Kind != OpFC || g.Node(1).Name != "" {
		t.Errorf("node 1 = %+v", *g.Node(1))
	}
	e := g.Edge(0)
	if e.Size != 4 || e.CacheTime != 1 || e.EDRAMTime != 3 {
		t.Errorf("edge = %+v", *e)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"unknown directive", "frob 1 2\n", "unknown directive"},
		{"bad node arity", "node 0 conv\n", "want 'node"},
		{"bad kind", "node 0 wat 1\n", "unknown op kind"},
		{"non-dense id", "node 5 conv 1\n", "dense"},
		{"bad edge arity", "node 0 conv 1\nedge 0 0\n", "want 'edge"},
		{"edge to undeclared", "node 0 conv 1\nedge 0 7 1 0 1\n", "undeclared"},
		{"invalid graph", "node 0 conv 1\nnode 1 conv 1\nedge 0 1 0 0 1\n", "size"},
		{"bad exec literal", "node 0 conv xyz\n", "bad exec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadText(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("ReadText returned nil error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := paperGraph(t)
	g.Node(1).Kind = OpPool
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "ellipse", "sp=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestTextRoundTripProperty regenerates random small DAGs and checks
// that serialize→parse is the identity on the fields the format
// carries.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 12, 20)
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Edges() {
			a, b := g.Edge(EdgeID(i)), got.Edge(EdgeID(i))
			if *a != *b && (a.From != b.From || a.To != b.To || a.Size != b.Size ||
				a.CacheTime != b.CacheTime || a.EDRAMTime != b.EDRAMTime) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomDAG builds a seeded random DAG with up to maxV vertices and
// maxE forward edges; used by property tests in this package.
func randomDAG(seed int64, maxV, maxE int) *Graph {
	// A tiny deterministic linear-congruential generator keeps this
	// helper self-contained (math/rand would be fine too).
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	v := 2 + next(maxV-1)
	g := New("rand")
	for i := 0; i < v; i++ {
		g.AddNode(Node{Kind: OpConv, Exec: 1 + next(4)})
	}
	e := next(maxE + 1)
	seen := make(map[[2]int]bool)
	for i := 0; i < e; i++ {
		a := next(v - 1)
		b := a + 1 + next(v-a-1)
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		ct := next(3)
		g.AddEdge(Edge{
			From: NodeID(a), To: NodeID(b),
			Size: 1 + next(5), CacheTime: ct, EDRAMTime: ct + next(4),
		})
	}
	return g
}

// TestReadTextNeverPanics feeds adversarial byte soup to the parser:
// it must return a value or an error, never panic.
func TestReadTextNeverPanics(t *testing.T) {
	inputs := []string{
		"", "\n\n\n", "graph", "graph a b c",
		"node", "node -1 conv 1", "node 0 conv -5",
		"node 0 conv 99999999999999999999",
		"edge 0 1 1 1 1",
		"node 0 conv 1\nedge 0 0 1 0 1",
		"node 0 conv 1\nnode 1 conv 1\nedge 0 1 -1 -2 -3",
		strings.Repeat("node 0 conv 1\n", 3),
		"graph g\x00\x01\x02",
		"node 0 conv 1 " + strings.Repeat("x", 100000),
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d panicked: %v", i, r)
				}
			}()
			_, _ = ReadText(strings.NewReader(in))
		}()
	}
}

// TestReadTextRandomBytesProperty: random short byte strings never
// panic the parser.
func TestReadTextRandomBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		defer func() { recover() }()
		_, _ = ReadText(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadTextLimits exercises the untrusted-input size caps: graphs
// under the caps parse, graphs over a cap fail fast with a typed
// *LimitError the serving layer maps to a client error.
func TestReadTextLimits(t *testing.T) {
	const text = `graph t
node 0 conv 1 a
node 1 conv 2 b
node 2 conv 3 c
edge 0 1 1 0 2
edge 0 2 1 0 2
edge 1 2 1 0 2
`
	tests := []struct {
		name     string
		lim      Limits
		wantKind string // "" = parse succeeds
		wantMax  int
	}{
		{"unlimited", Limits{}, "", 0},
		{"exactly-at-caps", Limits{MaxNodes: 3, MaxEdges: 3}, "", 0},
		{"node-cap-only-generous", Limits{MaxNodes: 100}, "", 0},
		{"over-node-cap", Limits{MaxNodes: 2, MaxEdges: 100}, "nodes", 2},
		{"over-edge-cap", Limits{MaxNodes: 100, MaxEdges: 2}, "edges", 2},
		{"node-cap-one", Limits{MaxNodes: 1}, "nodes", 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadTextLimits(strings.NewReader(text), tc.lim)
			if tc.wantKind == "" {
				if err != nil {
					t.Fatalf("ReadTextLimits: %v", err)
				}
				if g.NumNodes() != 3 || g.NumEdges() != 3 {
					t.Fatalf("parsed %d nodes / %d edges, want 3 / 3", g.NumNodes(), g.NumEdges())
				}
				return
			}
			if err == nil {
				t.Fatal("ReadTextLimits succeeded, want a limit error")
			}
			var lim *LimitError
			if !errors.As(err, &lim) {
				t.Fatalf("error %v (%T) is not a *LimitError", err, err)
			}
			if lim.Kind != tc.wantKind || lim.Max != tc.wantMax {
				t.Errorf("LimitError{Kind: %q, Max: %d}, want {%q, %d}", lim.Kind, lim.Max, tc.wantKind, tc.wantMax)
			}
			if lim.Line == 0 {
				t.Error("LimitError.Line is unset")
			}
		})
	}
}

// TestReadTextUnchangedByLimits pins ReadText to the unlimited path.
func TestReadTextUnchangedByLimits(t *testing.T) {
	big := &strings.Builder{}
	fmt.Fprintln(big, "graph big")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(big, "node %d conv 1 -\n", i)
	}
	for i := 0; i+1 < 500; i++ {
		fmt.Fprintf(big, "edge %d %d 1 0 2\n", i, i+1)
	}
	g, err := ReadText(strings.NewReader(big.String()))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("parsed %d nodes, want 500", g.NumNodes())
	}
}
