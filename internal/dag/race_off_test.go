//go:build !race

package dag

const raceEnabled = false
