package dag

import "fmt"

// WidthProfile returns the number of vertices at each ASAP level — the
// graph's parallelism profile.  MaxWidth bounds how many PEs a
// dependency-respecting scheduler can keep busy simultaneously, which
// is exactly where the SPARTA baseline's scaling saturates.  It
// returns ErrCyclic (wrapped) if the graph is not acyclic.
func (g *Graph) WidthProfile() ([]int, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	widths := make([]int, len(levels))
	for i, l := range levels {
		widths[i] = len(l)
	}
	return widths, nil
}

// MaxWidth returns the widest level of the ASAP decomposition, or 0
// for an empty graph.  It returns ErrCyclic (wrapped) if the graph is
// not acyclic.
func (g *Graph) MaxWidth() (int, error) {
	widths, err := g.WidthProfile()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, w := range widths {
		if w > max {
			max = w
		}
	}
	return max, nil
}

// PathCount returns the number of distinct source-to-sink paths.  On
// pathological graphs (path counts grow exponentially) it saturates at
// 2^40 rather than overflowing.  It returns ErrCyclic (wrapped) if the
// graph is not acyclic.
func (g *Graph) PathCount() (int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	const saturate = int64(1) << 40
	paths := make([]int64, g.NumNodes())
	total := int64(0)
	for _, v := range order {
		if g.InDegree(v) == 0 {
			paths[v] = 1
		}
		for _, eid := range g.Out(v) {
			w := g.Edge(eid).To
			paths[w] += paths[v]
			if paths[w] > saturate {
				paths[w] = saturate
			}
		}
		if g.OutDegree(v) == 0 {
			total += paths[v]
			if total > saturate {
				total = saturate
			}
		}
	}
	return total, nil
}

// TransitiveReduction returns a copy of the graph with every edge
// (u,v) removed when another u→v path of length ≥ 2 exists.  Edge
// attributes of surviving edges are preserved.  The reduction is the
// minimal graph with the same reachability — useful for visualizing
// dense generated graphs and for measuring how much of |E| is
// redundant dependency information.  It returns ErrCyclic (wrapped) if
// the graph is not acyclic (the reduction is unique only for DAGs).
func (g *Graph) TransitiveReduction() (*Graph, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	out := New(g.Name())
	for i := range g.Nodes() {
		out.AddNode(g.Nodes()[i])
	}
	// An edge (u,v) is redundant iff v is reachable from u using at
	// least one intermediate vertex.  Check by DFS from each
	// successor of u other than v itself, bounded by topological
	// position for pruning.
	for u := 0; u < g.NumNodes(); u++ {
		direct := g.Out(NodeID(u))
		targets := make(map[NodeID]EdgeID, len(direct))
		for _, eid := range direct {
			targets[g.Edge(eid).To] = eid
		}
		redundant := make(map[NodeID]bool)
		// DFS from each direct successor; any other direct target
		// reached transitively is redundant.
		stack := make([]NodeID, 0, len(direct))
		visited := make(map[NodeID]bool)
		for _, eid := range direct {
			mid := g.Edge(eid).To
			for _, eid2 := range g.Out(mid) {
				stack = append(stack, g.Edge(eid2).To)
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[v] {
				continue
			}
			visited[v] = true
			if _, isTarget := targets[v]; isTarget {
				redundant[v] = true
			}
			for _, eid := range g.Out(v) {
				w := g.Edge(eid).To
				if !visited[w] && pos[w] > pos[NodeID(u)] {
					stack = append(stack, w)
				}
			}
		}
		for _, eid := range direct {
			e := g.Edge(eid)
			if !redundant[e.To] {
				out.AddEdge(*e)
			}
		}
	}
	return out, nil
}

// Summary returns a one-paragraph human description including the
// parallelism metrics.  For a cyclic (hence invalid) graph it returns
// the defect description instead.
func (g *Graph) Summary() string {
	st, err := g.ComputeStats()
	if err != nil {
		return fmt.Sprintf("%s: %v", g.name, err)
	}
	width, err := g.MaxWidth()
	if err != nil {
		return fmt.Sprintf("%s: %v", g.name, err)
	}
	paths, err := g.PathCount()
	if err != nil {
		return fmt.Sprintf("%s: %v", g.name, err)
	}
	return fmt.Sprintf("%s; width max %d, %d paths", st, width, paths)
}
