package dag

import (
	"fmt"
	"strconv"
)

// Replicate returns a graph containing `copies` disjoint copies of g.
// Copy k's vertex i gets ID k*|V|+i, so IDs within a copy keep their
// relative order; names are suffixed "#k" for k > 0.  Schedulers use
// this to unroll several iterations of an application into one kernel
// when the PE array is larger than a single iteration can fill.
//
// Replicate sits on the planning hot path (every Para-CONV solve with
// more than one group unrolls through it), so it builds the result in
// bulk: storage is reserved up front, edges are staged and loaded via
// AddEdges' exact-fit adjacency backing, and each copy's renamed
// vertex names are carved out of one shared string.
//
//paraconv:hotpath
func Replicate(g *Graph, copies int) (*Graph, error) {
	if copies < 1 {
		return nil, fmt.Errorf("dag: Replicate(%d); want >= 1", copies)
	}
	if copies == 1 {
		return g.Clone(), nil
	}
	n, m := g.NumNodes(), g.NumEdges()
	out := New(g.Name())
	out.Grow(copies*n, copies*m)
	var nameBuf []byte
	for k := 0; k < copies; k++ {
		// Stage this copy's renamed vertex names into one buffer so a
		// single string conversion backs all of them.
		names := ""
		if k > 0 {
			nameBuf = nameBuf[:0]
			for i := range g.Nodes() {
				if name := g.Nodes()[i].Name; name != "" {
					nameBuf = append(nameBuf, name...)
					nameBuf = append(nameBuf, '#')
					nameBuf = strconv.AppendInt(nameBuf, int64(k), 10)
				}
			}
			names = string(nameBuf)
		}
		off := 0
		for i := range g.Nodes() {
			node := g.Nodes()[i]
			if k > 0 && node.Name != "" {
				w := len(node.Name) + 1 + digits(k)
				node.Name = names[off : off+w]
				off += w
			}
			out.AddNode(node)
		}
	}
	batchp := edgeBatchPool.Get().(*[]Edge)
	es := (*batchp)[:0]
	if cap(es) < copies*m {
		es = make([]Edge, 0, copies*m)
	}
	for k := 0; k < copies; k++ {
		for i := range g.Edges() {
			e := g.Edges()[i]
			e.From += NodeID(k * n)
			e.To += NodeID(k * n)
			es = append(es, e)
		}
	}
	out.AddEdges(es)
	*batchp = es[:0]
	edgeBatchPool.Put(batchp)
	return out, nil
}

// digits returns the decimal digit count of the non-negative k.
func digits(k int) int {
	d := 1
	for k >= 10 {
		k /= 10
		d++
	}
	return d
}
