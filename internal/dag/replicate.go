package dag

import "fmt"

// Replicate returns a graph containing `copies` disjoint copies of g.
// Copy k's vertex i gets ID k*|V|+i, so IDs within a copy keep their
// relative order; names are suffixed "#k" for k > 0.  Schedulers use
// this to unroll several iterations of an application into one kernel
// when the PE array is larger than a single iteration can fill.
func Replicate(g *Graph, copies int) (*Graph, error) {
	if copies < 1 {
		return nil, fmt.Errorf("dag: Replicate(%d); want >= 1", copies)
	}
	if copies == 1 {
		return g.Clone(), nil
	}
	out := New(g.Name())
	n := g.NumNodes()
	for k := 0; k < copies; k++ {
		for i := range g.Nodes() {
			node := g.Nodes()[i]
			if k > 0 && node.Name != "" {
				node.Name = fmt.Sprintf("%s#%d", node.Name, k)
			}
			out.AddNode(node)
		}
		for i := range g.Edges() {
			e := g.Edges()[i]
			e.From += NodeID(k * n)
			e.To += NodeID(k * n)
			out.AddEdge(e)
		}
	}
	return out, nil
}
