//go:build race

package dag

// raceEnabled reports whether the race detector is compiled in.  Its
// instrumentation allocates on its own, so AllocsPerRun gates are
// skipped under -race (the tests still run there for the data races
// themselves — see scripts/ci.sh).
const raceEnabled = true
