package dag

import (
	"strings"
	"testing"
	"testing/quick"
)

// must calls a no-argument accessor and fails the test on error.
func must[T any](t *testing.T, f func() (T, error)) T {
	t.Helper()
	v, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestWidthProfile(t *testing.T) {
	g := paperGraph(t)
	widths := must(t, g.WidthProfile)
	want := []int{1, 2, 2}
	if len(widths) != len(want) {
		t.Fatalf("widths = %v", widths)
	}
	for i, w := range want {
		if widths[i] != w {
			t.Errorf("width[%d] = %d, want %d", i, widths[i], w)
		}
	}
	if got := must(t, g.MaxWidth); got != 2 {
		t.Errorf("MaxWidth = %d", got)
	}
	if got := must(t, New("empty").MaxWidth); got != 0 {
		t.Error("empty graph MaxWidth != 0")
	}
}

func TestPathCount(t *testing.T) {
	// fig2b: T1 fans to T2/T3, each fans to T4/T5: 4 paths.
	if got := must(t, paperGraph(t).PathCount); got != 4 {
		t.Errorf("paths = %d, want 4", got)
	}
	// A lone vertex is one path.
	g := New("one")
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	if got := must(t, g.PathCount); got != 1 {
		t.Errorf("single vertex paths = %d", got)
	}
	// Diamond: 2 paths.
	if got := must(t, diamond(t).PathCount); got != 2 {
		t.Errorf("diamond paths = %d, want 2", got)
	}
}

func TestPathCountSaturates(t *testing.T) {
	// A ladder of diamonds doubles the count per stage; 80 stages
	// would overflow int64 without saturation.
	g := New("ladder")
	prev := g.AddNode(Node{Kind: OpConv, Exec: 1})
	for i := 0; i < 80; i++ {
		a := g.AddNode(Node{Kind: OpConv, Exec: 1})
		b := g.AddNode(Node{Kind: OpConv, Exec: 1})
		join := g.AddNode(Node{Kind: OpConv, Exec: 1})
		g.AddEdge(Edge{From: prev, To: a, Size: 1})
		g.AddEdge(Edge{From: prev, To: b, Size: 1})
		g.AddEdge(Edge{From: a, To: join, Size: 1})
		g.AddEdge(Edge{From: b, To: join, Size: 1})
		prev = join
	}
	got := must(t, g.PathCount)
	if got <= 0 {
		t.Fatalf("saturated count = %d; must stay positive", got)
	}
}

func TestTransitiveReduction(t *testing.T) {
	// Triangle: 0->1, 1->2, 0->2; the direct 0->2 is redundant.
	g := New("tri")
	for i := 0; i < 3; i++ {
		g.AddNode(Node{Kind: OpConv, Exec: 1})
	}
	g.AddEdge(Edge{From: 0, To: 1, Size: 1})
	g.AddEdge(Edge{From: 1, To: 2, Size: 1})
	g.AddEdge(Edge{From: 0, To: 2, Size: 1})
	r := must(t, g.TransitiveReduction)
	if r.NumEdges() != 2 {
		t.Fatalf("reduced |E| = %d, want 2", r.NumEdges())
	}
	for i := range r.Edges() {
		e := r.Edge(EdgeID(i))
		if e.From == 0 && e.To == 2 {
			t.Error("redundant edge 0->2 survived")
		}
	}
}

func TestTransitiveReductionPreservesEssentialEdges(t *testing.T) {
	g := paperGraph(t) // no redundant edges
	r := must(t, g.TransitiveReduction)
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("reduction removed essential edges: %d -> %d", g.NumEdges(), r.NumEdges())
	}
}

// Property: the reduction preserves reachability exactly and never
// adds edges.
func TestTransitiveReductionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 14, 30)
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		if r.NumEdges() > g.NumEdges() {
			return false
		}
		for a := 0; a < g.NumNodes(); a++ {
			ra := g.ReachableFrom(NodeID(a))
			rb := r.ReachableFrom(NodeID(a))
			for v := range ra {
				if ra[v] != rb[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphSummary(t *testing.T) {
	s := paperGraph(t).Summary()
	for _, want := range []string{"width max 2", "4 paths"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
