package dag

import (
	"errors"
	"fmt"
	"slices"
	"sync"
)

// ValidationError describes one defect found by Validate.
type ValidationError struct {
	// Kind is a short machine-checkable category, e.g. "cycle",
	// "exec", "transfer", "size", "self-loop", "duplicate-edge".
	Kind string
	// Detail is the human-readable description.
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string { return "dag: invalid graph: " + e.Kind + ": " + e.Detail }

// dupScratch pools the packed (From,To) key slice the duplicate-edge
// scan sorts, so validating a clean graph costs no steady-state
// allocations (Validate runs on every parsed request body).
type dupScratch struct{ keys []uint64 }

var dupPool = sync.Pool{New: func() any { return new(dupScratch) }}

// hasDuplicateEdges reports whether any (From,To) pair appears on more
// than one edge, via a sort-and-scan over packed keys instead of a
// map.  NodeIDs fit 32 bits by construction: they are dense slice
// indexes, and 2^32 Node structs would not fit in memory.
func (g *Graph) hasDuplicateEdges() bool {
	if len(g.edges) < 2 {
		return false
	}
	sc := dupPool.Get().(*dupScratch)
	keys := sc.keys[:0]
	if cap(keys) < len(g.edges) {
		keys = make([]uint64, 0, len(g.edges))
	}
	for i := range g.edges {
		keys = append(keys, uint64(uint32(g.edges[i].From))<<32|uint64(uint32(g.edges[i].To)))
	}
	slices.Sort(keys)
	dup := false
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			dup = true
			break
		}
	}
	sc.keys = keys[:0]
	dupPool.Put(sc)
	return dup
}

// Validate checks the structural and weight invariants the rest of the
// system relies on:
//
//   - the graph is acyclic;
//   - no self-loops and no duplicate (From,To) pairs;
//   - every vertex has Exec >= 1 (a convolution takes time);
//   - every edge has Size >= 1, CacheTime >= 0 and
//     EDRAMTime >= CacheTime (vault fetch is never cheaper than
//     on-chip cache, paper §2.2).
//
// All defects are reported, joined with errors.Join; nil means valid.
// The clean-graph path allocates nothing: the duplicate-edge check
// runs over pooled sorted keys, and the map-based scan only re-runs
// (to attribute each duplicate to its edge ID) once a duplicate is
// known to exist.
func (g *Graph) Validate() error {
	if g.hasDuplicateEdges() {
		return g.validateSlow()
	}
	var errs []error
	if !g.IsAcyclic() {
		errs = append(errs, &ValidationError{Kind: "cycle", Detail: "graph must be a DAG"})
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.From == e.To {
			errs = append(errs, &ValidationError{
				Kind:   "self-loop",
				Detail: fmt.Sprintf("edge %d is a self-loop on vertex %d", e.ID, e.From),
			})
		}
		errs = appendEdgeWeightErrors(errs, e)
	}
	errs = appendExecErrors(errs, g)
	return errors.Join(errs...)
}

// validateSlow is the original map-based validation, kept for the
// defective case so duplicate-edge errors interleave with the other
// per-edge defects in edge-ID order, exactly as before.
func (g *Graph) validateSlow() error {
	var errs []error
	if !g.IsAcyclic() {
		errs = append(errs, &ValidationError{Kind: "cycle", Detail: "graph must be a DAG"})
	}
	seen := make(map[[2]NodeID]bool, len(g.edges))
	for i := range g.edges {
		e := &g.edges[i]
		if e.From == e.To {
			errs = append(errs, &ValidationError{
				Kind:   "self-loop",
				Detail: fmt.Sprintf("edge %d is a self-loop on vertex %d", e.ID, e.From),
			})
		}
		key := [2]NodeID{e.From, e.To}
		if seen[key] {
			errs = append(errs, &ValidationError{
				Kind:   "duplicate-edge",
				Detail: fmt.Sprintf("duplicate edge %d->%d (edge id %d)", e.From, e.To, e.ID),
			})
		}
		seen[key] = true
		errs = appendEdgeWeightErrors(errs, e)
	}
	errs = appendExecErrors(errs, g)
	return errors.Join(errs...)
}

func appendEdgeWeightErrors(errs []error, e *Edge) []error {
	if e.Size < 1 {
		errs = append(errs, &ValidationError{
			Kind:   "size",
			Detail: fmt.Sprintf("edge %d (%d->%d) has Size %d; want >= 1", e.ID, e.From, e.To, e.Size),
		})
	}
	if e.CacheTime < 0 {
		errs = append(errs, &ValidationError{
			Kind:   "transfer",
			Detail: fmt.Sprintf("edge %d (%d->%d) has negative CacheTime %d", e.ID, e.From, e.To, e.CacheTime),
		})
	}
	if e.EDRAMTime < e.CacheTime {
		errs = append(errs, &ValidationError{
			Kind: "transfer",
			Detail: fmt.Sprintf("edge %d (%d->%d) has EDRAMTime %d < CacheTime %d; vault fetch cannot be cheaper than cache",
				e.ID, e.From, e.To, e.EDRAMTime, e.CacheTime),
		})
	}
	return errs
}

func appendExecErrors(errs []error, g *Graph) []error {
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Kind == OpInput || n.Kind == OpOutput {
			continue // pseudo vertices may be zero-cost
		}
		if n.Exec < 1 {
			errs = append(errs, &ValidationError{
				Kind:   "exec",
				Detail: fmt.Sprintf("vertex %d (%q) has Exec %d; want >= 1", n.ID, n.Name, n.Exec),
			})
		}
	}
	return errs
}
