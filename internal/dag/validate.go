package dag

import (
	"errors"
	"fmt"
)

// ValidationError describes one defect found by Validate.
type ValidationError struct {
	// Kind is a short machine-checkable category, e.g. "cycle",
	// "exec", "transfer", "size", "self-loop", "duplicate-edge".
	Kind string
	// Detail is the human-readable description.
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string { return "dag: invalid graph: " + e.Kind + ": " + e.Detail }

// Validate checks the structural and weight invariants the rest of the
// system relies on:
//
//   - the graph is acyclic;
//   - no self-loops and no duplicate (From,To) pairs;
//   - every vertex has Exec >= 1 (a convolution takes time);
//   - every edge has Size >= 1, CacheTime >= 0 and
//     EDRAMTime >= CacheTime (vault fetch is never cheaper than
//     on-chip cache, paper §2.2).
//
// All defects are reported, joined with errors.Join; nil means valid.
func (g *Graph) Validate() error {
	var errs []error
	if !g.IsAcyclic() {
		errs = append(errs, &ValidationError{Kind: "cycle", Detail: "graph must be a DAG"})
	}
	seen := make(map[[2]NodeID]bool, len(g.edges))
	for i := range g.edges {
		e := &g.edges[i]
		if e.From == e.To {
			errs = append(errs, &ValidationError{
				Kind:   "self-loop",
				Detail: fmt.Sprintf("edge %d is a self-loop on vertex %d", e.ID, e.From),
			})
		}
		key := [2]NodeID{e.From, e.To}
		if seen[key] {
			errs = append(errs, &ValidationError{
				Kind:   "duplicate-edge",
				Detail: fmt.Sprintf("duplicate edge %d->%d (edge id %d)", e.From, e.To, e.ID),
			})
		}
		seen[key] = true
		if e.Size < 1 {
			errs = append(errs, &ValidationError{
				Kind:   "size",
				Detail: fmt.Sprintf("edge %d (%d->%d) has Size %d; want >= 1", e.ID, e.From, e.To, e.Size),
			})
		}
		if e.CacheTime < 0 {
			errs = append(errs, &ValidationError{
				Kind:   "transfer",
				Detail: fmt.Sprintf("edge %d (%d->%d) has negative CacheTime %d", e.ID, e.From, e.To, e.CacheTime),
			})
		}
		if e.EDRAMTime < e.CacheTime {
			errs = append(errs, &ValidationError{
				Kind: "transfer",
				Detail: fmt.Sprintf("edge %d (%d->%d) has EDRAMTime %d < CacheTime %d; vault fetch cannot be cheaper than cache",
					e.ID, e.From, e.To, e.EDRAMTime, e.CacheTime),
			})
		}
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Kind == OpInput || n.Kind == OpOutput {
			continue // pseudo vertices may be zero-cost
		}
		if n.Exec < 1 {
			errs = append(errs, &ValidationError{
				Kind:   "exec",
				Detail: fmt.Sprintf("vertex %d (%q) has Exec %d; want >= 1", n.ID, n.Name, n.Exec),
			})
		}
	}
	return errors.Join(errs...)
}
