package dag

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// binTestGraph builds a small named graph exercising every field the
// binary codec carries: graph name, node kind/exec/name (including an
// anonymous node), and all three edge weights.
func binTestGraph(t testing.TB) *Graph {
	t.Helper()
	g := New("bin-test")
	g.AddNode(Node{Name: "conv1", Kind: OpConv, Exec: 4})
	g.AddNode(Node{Name: "", Kind: OpPool, Exec: 2})
	g.AddNode(Node{Name: "fc_out", Kind: OpFC, Exec: 7})
	g.AddEdge(Edge{From: 0, To: 1, Size: 3, CacheTime: 1, EDRAMTime: 2})
	g.AddEdge(Edge{From: 0, To: 2, Size: 5, CacheTime: 0, EDRAMTime: 3})
	g.AddEdge(Edge{From: 1, To: 2, Size: 1, CacheTime: 0, EDRAMTime: 1})
	return g
}

func graphsStructurallyEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Errorf("name %q != %q", a.Name(), b.Name())
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes |V| %d/%d, |E| %d/%d", a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		x, y := a.Node(NodeID(i)), b.Node(NodeID(i))
		if x.Kind != y.Kind || x.Exec != y.Exec || x.Name != y.Name {
			t.Errorf("node %d: %+v != %+v", i, *x, *y)
		}
	}
	for i := 0; i < a.NumEdges(); i++ {
		x, y := a.Edge(EdgeID(i)), b.Edge(EdgeID(i))
		if x.From != y.From || x.To != y.To || x.Size != y.Size ||
			x.CacheTime != y.CacheTime || x.EDRAMTime != y.EDRAMTime {
			t.Errorf("edge %d: %+v != %+v", i, *x, *y)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := binTestGraph(t)
	data := AppendBinary(nil, g)
	got, err := DecodeBinary(data, Limits{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	graphsStructurallyEqual(t, g, got)
}

func TestBinaryWriteReadRoundTrip(t *testing.T) {
	g := binTestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), AppendBinary(nil, g)) {
		t.Error("WriteBinary output differs from AppendBinary")
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	graphsStructurallyEqual(t, g, got)
}

// TestBinaryDeterministic pins the byte-for-byte determinism contract:
// the same graph encodes identically on every call, and re-encoding a
// decoded graph reproduces the original frame.
func TestBinaryDeterministic(t *testing.T) {
	g := binTestGraph(t)
	b1 := AppendBinary(nil, g)
	b2 := AppendBinary(nil, g)
	if !bytes.Equal(b1, b2) {
		t.Fatal("two encodings of the same graph differ")
	}
	got, err := DecodeBinary(b1, Limits{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if b3 := AppendBinary(nil, got); !bytes.Equal(b1, b3) {
		t.Fatalf("decode/re-encode changed the frame:\n% x\n% x", b1, b3)
	}
}

// TestBinaryTextEquivalence checks the two codecs carry identical
// information: a graph pushed through the binary round trip and then
// the text codec yields the same bytes as the text codec alone.
func TestBinaryTextEquivalence(t *testing.T) {
	g := binTestGraph(t)
	viaBin, err := DecodeBinary(AppendBinary(nil, g), Limits{})
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	var direct, viaBinText bytes.Buffer
	if err := WriteText(&direct, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&viaBinText, viaBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaBinText.Bytes()) {
		t.Fatalf("binary round trip is not text-transparent:\n%s\nvs\n%s", direct.String(), viaBinText.String())
	}
}

// TestBinaryTextEquivalenceSweep runs the cross-codec equivalence over
// 60 seeded random DAGs: parse(text(g)) and decode(binary(g)) must
// agree structurally, and both must re-encode to identical binary
// frames.
func TestBinaryTextEquivalenceSweep(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := randomDAG(seed, 40, 120)
		var txt bytes.Buffer
		if err := WriteText(&txt, g); err != nil {
			t.Fatalf("seed %d: WriteText: %v", seed, err)
		}
		fromText, err := ReadText(&txt)
		if err != nil {
			t.Fatalf("seed %d: ReadText: %v", seed, err)
		}
		frame := AppendBinary(nil, g)
		fromBin, err := DecodeBinary(frame, Limits{})
		if err != nil {
			t.Fatalf("seed %d: DecodeBinary: %v", seed, err)
		}
		graphsStructurallyEqual(t, fromText, fromBin)
		if !bytes.Equal(AppendBinary(nil, fromText), AppendBinary(nil, fromBin)) {
			t.Fatalf("seed %d: text and binary round trips diverge in binary form", seed)
		}
	}
}

func TestBinaryLimits(t *testing.T) {
	g := binTestGraph(t) // 3 nodes, 3 edges
	data := AppendBinary(nil, g)
	tests := []struct {
		name     string
		lim      Limits
		wantKind string
		wantMax  int
	}{
		{"unlimited", Limits{}, "", 0},
		{"exactly-at-caps", Limits{MaxNodes: 3, MaxEdges: 3}, "", 0},
		{"over-node-cap", Limits{MaxNodes: 2, MaxEdges: 100}, "nodes", 2},
		{"over-edge-cap", Limits{MaxNodes: 100, MaxEdges: 2}, "edges", 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeBinary(data, tc.lim)
			if tc.wantKind == "" {
				if err != nil {
					t.Fatalf("DecodeBinary: %v", err)
				}
				graphsStructurallyEqual(t, g, got)
				return
			}
			if err == nil {
				t.Fatal("DecodeBinary succeeded, want a limit error")
			}
			var lim *LimitError
			if !errors.As(err, &lim) {
				t.Fatalf("error %v (%T) is not a *LimitError", err, err)
			}
			if lim.Kind != tc.wantKind || lim.Max != tc.wantMax {
				t.Errorf("LimitError{Kind: %q, Max: %d}, want {%q, %d}", lim.Kind, lim.Max, tc.wantKind, tc.wantMax)
			}
			if lim.Offset == 0 {
				t.Error("LimitError.Offset is unset for a binary parse")
			}
			if !strings.Contains(lim.Error(), "offset") {
				t.Errorf("binary LimitError text %q does not mention the offset", lim.Error())
			}
		})
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	valid := AppendBinary(nil, binTestGraph(t))
	corrupt := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), valid...))
	}
	tests := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "shorter than"},
		{"short header", []byte{'P', 'C'}, "shorter than"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"future version", corrupt(func(b []byte) []byte { b[3] = 9; return b }), "unsupported version"},
		{"truncated mid-frame", valid[:len(valid)-3], "truncated"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0x00), "trailing"},
		{"lying header", []byte{'P', 'C', 'G', 1, 0, 0xff, 0xff, 0x03, 0}, "exceed"},
		{"bad kind", corrupt(func(b []byte) []byte {
			// header(4) + name len(1)+"bin-test"(8) + counts(2) = offset 15
			// is the first node's kind byte.
			b[15] = 0xee
			return b
		}), "unknown op kind"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBinary(tc.data, Limits{})
			if err == nil {
				t.Fatal("DecodeBinary returned nil error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeBinaryUndeclaredEndpoint hand-builds a frame whose edge
// references a node beyond the declared count.
func TestDecodeBinaryUndeclaredEndpoint(t *testing.T) {
	g := New("x")
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 1, CacheTime: 0, EDRAMTime: 1})
	data := AppendBinary(nil, g)
	// The final edge is encoded as from=0, to=1, then three weights;
	// bump the 'to' varint (second-to-last group of 5 trailing bytes)
	// to an out-of-range node id.
	data[len(data)-4] = 9 // 'to' uvarint, single byte
	_, err := DecodeBinary(data, Limits{})
	if err == nil || !strings.Contains(err.Error(), "undeclared node") {
		t.Fatalf("err = %v, want undeclared-node error", err)
	}
}

// TestDecodeBinaryNeverPanics feeds adversarial frames to the decoder:
// every outcome must be a value or an error, never a panic.
func TestDecodeBinaryNeverPanics(t *testing.T) {
	valid := AppendBinary(nil, binTestGraph(t))
	inputs := [][]byte{
		nil,
		{'P', 'C', 'G', 1},
		{'P', 'C', 'G', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		valid[:7],
		valid[:len(valid)/2],
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i := 1; i < len(valid); i += 3 {
		inputs = append(inputs, valid[:i])
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d panicked: %v", i, r)
				}
			}()
			_, _ = DecodeBinary(in, Limits{})
		}()
	}
}

// TestAppendBinaryZeroAlloc pins the encoder's allocation contract:
// with a pre-sized destination the encode touches the heap zero times.
func TestAppendBinaryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	g := binTestGraph(t)
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendBinary(buf[:0], g)
	})
	if allocs > 0 {
		t.Errorf("AppendBinary allocates %.1f times per run, want 0", allocs)
	}
}

// TestDecodeBinaryAllocBudget bounds the decoder's per-call
// allocations: graph + node/edge/adjacency storage + one shared name
// backing, independent of node count beyond that.
func TestDecodeBinaryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	g := New("alloc")
	for i := 0; i < 200; i++ {
		g.AddNode(Node{Kind: OpConv, Exec: 1 + i%7, Name: "layer"})
	}
	for i := 0; i+1 < 200; i++ {
		g.AddEdge(Edge{From: NodeID(i), To: NodeID(i + 1), Size: 1, CacheTime: 0, EDRAMTime: 1})
	}
	data := AppendBinary(nil, g)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecodeBinary(data, Limits{}); err != nil {
			t.Fatal(err)
		}
	})
	// The decoded graph itself (nodes, edges, adjacency backing, name
	// string, Graph struct) is retained output, not scratch; ~12 covers
	// it with headroom while still catching a per-node regression.
	if allocs > 16 {
		t.Errorf("DecodeBinary allocates %.1f times per 200-node graph, want <= 16", allocs)
	}
}
