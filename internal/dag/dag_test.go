package dag

import (
	"strings"
	"testing"
)

// diamond builds the 4-vertex diamond 0->1, 0->2, 1->3, 2->3 with
// Exec=1 everywhere and uniform edge weights.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Name: "t", Kind: OpConv, Exec: 1})
	}
	g.AddEdge(Edge{From: 0, To: 1, Size: 1, CacheTime: 0, EDRAMTime: 1})
	g.AddEdge(Edge{From: 0, To: 2, Size: 1, CacheTime: 0, EDRAMTime: 1})
	g.AddEdge(Edge{From: 1, To: 3, Size: 1, CacheTime: 0, EDRAMTime: 1})
	g.AddEdge(Edge{From: 2, To: 3, Size: 1, CacheTime: 0, EDRAMTime: 1})
	return g
}

// paperGraph builds the 5-vertex graph of the paper's Figure 2(b):
// T1->T2, T1->T3, T2->T4, T2->T5, T3->T4, T3->T5.
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("fig2b")
	for i := 0; i < 5; i++ {
		g.AddNode(Node{Kind: OpConv, Exec: 1})
	}
	for _, p := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}} {
		g.AddEdge(Edge{From: p[0], To: p[1], Size: 1, CacheTime: 0, EDRAMTime: 1})
	}
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New("x")
	for i := 0; i < 10; i++ {
		id := g.AddNode(Node{Kind: OpConv, Exec: 1})
		if int(id) != i {
			t.Fatalf("AddNode #%d returned id %d", i, id)
		}
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestAddEdgePanicsOnBadEndpoint(t *testing.T) {
	g := New("x")
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge with out-of-range endpoint did not panic")
		}
	}()
	g.AddEdge(Edge{From: 0, To: 5, Size: 1})
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := paperGraph(t)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(3) = %d, want 2", got)
	}
	succ := g.Successors(1)
	if len(succ) != 2 || succ[0] != 3 || succ[1] != 4 {
		t.Errorf("Successors(1) = %v, want [3 4]", succ)
	}
	pred := g.Predecessors(4)
	if len(pred) != 2 || pred[0] != 1 || pred[1] != 2 {
		t.Errorf("Predecessors(4) = %v, want [1 2]", pred)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := paperGraph(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 2 || s[0] != 3 || s[1] != 4 {
		t.Errorf("Sinks = %v, want [3 4]", s)
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := paperGraph(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
	// Deterministic: smallest ready vertex first.
	want := []NodeID{0, 1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New("cyc")
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 1})
	g.AddEdge(Edge{From: 1, To: 0, Size: 1})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("TopoSort on cyclic graph returned nil error")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic = true for a cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	g := paperGraph(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if len(levels) != 3 {
		t.Fatalf("len(Levels) = %d, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Errorf("level 0 = %v, want [0]", levels[0])
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v, want two vertices", levels[1])
	}
	if len(levels[2]) != 2 {
		t.Errorf("level 2 = %v, want two vertices", levels[2])
	}
	lvl, err := g.LevelOf()
	if err != nil {
		t.Fatalf("LevelOf: %v", err)
	}
	if lvl[0] != 0 || lvl[1] != 1 || lvl[3] != 2 {
		t.Errorf("LevelOf = %v", lvl)
	}
}

func TestCriticalPath(t *testing.T) {
	g := paperGraph(t)
	length, path, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if length != 3 {
		t.Errorf("critical path length = %d, want 3", length)
	}
	if len(path) != 3 || path[0] != 0 {
		t.Errorf("critical path = %v, want a 3-vertex path from 0", path)
	}
}

func TestCriticalPathWithTransfers(t *testing.T) {
	g := paperGraph(t)
	length, _, err := g.CriticalPathWithTransfers(func(e *Edge) int { return e.EDRAMTime })
	if err != nil {
		t.Fatalf("CriticalPathWithTransfers: %v", err)
	}
	// 1 + 1 + 1 execution plus two eDRAM hops of 1 each.
	if length != 5 {
		t.Errorf("critical path with eDRAM transfers = %d, want 5", length)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New("empty")
	length, path, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if length != 0 || path != nil {
		t.Errorf("empty graph critical path = (%d, %v), want (0, nil)", length, path)
	}
}

func TestASAPStarts(t *testing.T) {
	g := paperGraph(t)
	starts, err := g.ASAPStarts(func(e *Edge) int { return e.EDRAMTime })
	if err != nil {
		t.Fatalf("ASAPStarts: %v", err)
	}
	want := []int{0, 2, 2, 4, 4}
	for i, w := range want {
		if starts[i] != w {
			t.Errorf("ASAP start of %d = %d, want %d", i, starts[i], w)
		}
	}
}

func TestReachabilityAndHasPath(t *testing.T) {
	g := paperGraph(t)
	if !g.HasPath(0, 4) {
		t.Error("HasPath(0,4) = false, want true")
	}
	if g.HasPath(3, 0) {
		t.Error("HasPath(3,0) = true, want false")
	}
	if !g.HasPath(2, 2) {
		t.Error("HasPath(v,v) = false, want true")
	}
	reach := g.ReachableFrom(1)
	wantReach := []bool{false, true, false, true, true}
	for i, w := range wantReach {
		if reach[i] != w {
			t.Errorf("ReachableFrom(1)[%d] = %v, want %v", i, reach[i], w)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	c.Node(0).Exec = 99
	c.Edge(0).Size = 42
	c.AddNode(Node{Kind: OpPool, Exec: 1})
	if g.Node(0).Exec != 1 {
		t.Error("mutating the clone's node leaked into the original")
	}
	if g.Edge(0).Size != 1 {
		t.Error("mutating the clone's edge leaked into the original")
	}
	if g.NumNodes() != 5 {
		t.Error("adding to the clone changed the original's vertex count")
	}
}

func TestTotalsAndStats(t *testing.T) {
	g := paperGraph(t)
	g.Node(2).Exec = 4
	if got := g.TotalExec(); got != 8 {
		t.Errorf("TotalExec = %d, want 8", got)
	}
	if got := g.MaxExec(); got != 4 {
		t.Errorf("MaxExec = %d, want 4", got)
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if st.Nodes != 5 || st.Edges != 6 || st.Depth != 3 || st.Sources != 1 || st.Sinks != 2 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "|V|=5") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestValidateAcceptsGoodGraph(t *testing.T) {
	if err := paperGraph(t).Validate(); err != nil {
		t.Fatalf("Validate on good graph: %v", err)
	}
	if err := diamond(t).Validate(); err != nil {
		t.Fatalf("Validate on diamond: %v", err)
	}
}

func TestValidateRejectsDefects(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		want  string
	}{
		{"cycle", func() *Graph {
			g := New("c")
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddEdge(Edge{From: 0, To: 1, Size: 1})
			g.AddEdge(Edge{From: 1, To: 0, Size: 1})
			return g
		}, "cycle"},
		{"self-loop", func() *Graph {
			g := New("s")
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddEdge(Edge{From: 0, To: 0, Size: 1})
			return g
		}, "self-loop"},
		{"duplicate-edge", func() *Graph {
			g := New("d")
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddEdge(Edge{From: 0, To: 1, Size: 1})
			g.AddEdge(Edge{From: 0, To: 1, Size: 1})
			return g
		}, "duplicate-edge"},
		{"zero-exec", func() *Graph {
			g := New("z")
			g.AddNode(Node{Kind: OpConv, Exec: 0})
			return g
		}, "exec"},
		{"zero-size", func() *Graph {
			g := New("zs")
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddEdge(Edge{From: 0, To: 1, Size: 0})
			return g
		}, "size"},
		{"edram-cheaper-than-cache", func() *Graph {
			g := New("t")
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddNode(Node{Kind: OpConv, Exec: 1})
			g.AddEdge(Edge{From: 0, To: 1, Size: 1, CacheTime: 3, EDRAMTime: 1})
			return g
		}, "transfer"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if err == nil {
				t.Fatal("Validate returned nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAllowsZeroExecPseudoNodes(t *testing.T) {
	g := New("p")
	g.AddNode(Node{Kind: OpInput, Exec: 0})
	g.AddNode(Node{Kind: OpConv, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		OpConv: "conv", OpPool: "pool", OpFC: "fc",
		OpInput: "input", OpOutput: "output", OpKind(99): "opkind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNodeEdgeAccessorsPanic(t *testing.T) {
	g := diamond(t)
	for _, f := range []func(){
		func() { g.Node(-1) },
		func() { g.Node(100) },
		func() { g.Edge(-1) },
		func() { g.Edge(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("accessor with invalid id did not panic")
				}
			}()
			f()
		}()
	}
}
