package dag

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDAGCodecRoundTrip feeds arbitrary text to ReadText.  Inputs the
// parser rejects must fail with an error (never a panic); inputs it
// accepts must survive a write/read/write round trip byte-identically,
// so the text format is a fixed point after one normalization.
func FuzzDAGCodecRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	g := New("fuzzseed")
	g.AddNode(Node{Name: "a", Kind: OpConv, Exec: 2})
	g.AddNode(Node{Name: "b", Kind: OpPool, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 3, CacheTime: 0, EDRAMTime: 2, Bytes: 4096})
	if err := WriteText(&seed, g); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("graph g 1 0\nnode 0 x conv 1 0\n")
	f.Add("")
	f.Add("graph bad -1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g1, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; a panic would fail the fuzzer
		}
		var w1 bytes.Buffer
		if err := WriteText(&w1, g1); err != nil {
			t.Fatalf("WriteText after successful ReadText: %v", err)
		}
		g2, err := ReadText(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("ReadText of its own output: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := WriteText(&w2, g2); err != nil {
			t.Fatalf("WriteText on round-tripped graph: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("text format is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
		if g2.NumNodes() != g1.NumNodes() || g2.NumEdges() != g1.NumEdges() {
			t.Fatalf("round trip changed counts: |V| %d->%d, |E| %d->%d",
				g1.NumNodes(), g2.NumNodes(), g1.NumEdges(), g2.NumEdges())
		}
	})
}
