package dag

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDAGCodecRoundTrip feeds arbitrary text to ReadText.  Inputs the
// parser rejects must fail with an error (never a panic); inputs it
// accepts must survive a write/read/write round trip byte-identically,
// so the text format is a fixed point after one normalization.
func FuzzDAGCodecRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	g := New("fuzzseed")
	g.AddNode(Node{Name: "a", Kind: OpConv, Exec: 2})
	g.AddNode(Node{Name: "b", Kind: OpPool, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 3, CacheTime: 0, EDRAMTime: 2, Bytes: 4096})
	if err := WriteText(&seed, g); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("graph g 1 0\nnode 0 x conv 1 0\n")
	f.Add("")
	f.Add("graph bad -1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g1, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; a panic would fail the fuzzer
		}
		var w1 bytes.Buffer
		if err := WriteText(&w1, g1); err != nil {
			t.Fatalf("WriteText after successful ReadText: %v", err)
		}
		g2, err := ReadText(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("ReadText of its own output: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := WriteText(&w2, g2); err != nil {
			t.Fatalf("WriteText on round-tripped graph: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("text format is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
		if g2.NumNodes() != g1.NumNodes() || g2.NumEdges() != g1.NumEdges() {
			t.Fatalf("round trip changed counts: |V| %d->%d, |E| %d->%d",
				g1.NumNodes(), g2.NumNodes(), g1.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzBinaryCodecRoundTrip feeds arbitrary bytes to DecodeBinary.
// Rejected frames must fail with an error (never a panic); accepted
// frames must re-encode byte-identically (the binary format is
// canonical) and must carry exactly the text codec's information: the
// graph pushed through WriteText/ReadText agrees structurally with the
// binary parse, modulo the text format's name sanitization.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	g := New("fuzzseed")
	g.AddNode(Node{Name: "a", Kind: OpConv, Exec: 2})
	g.AddNode(Node{Name: "b", Kind: OpPool, Exec: 1})
	g.AddEdge(Edge{From: 0, To: 1, Size: 3, CacheTime: 0, EDRAMTime: 2})
	f.Add(AppendBinary(nil, g))
	f.Add([]byte{'P', 'C', 'G', 1})
	f.Add([]byte{'P', 'C', 'G', 1, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g1, err := DecodeBinary(data, Limits{})
		if err != nil {
			return // rejection is fine; a panic would fail the fuzzer
		}
		b1 := AppendBinary(nil, g1)
		g2, err := DecodeBinary(b1, Limits{})
		if err != nil {
			t.Fatalf("DecodeBinary of its own encoding: %v", err)
		}
		if b2 := AppendBinary(nil, g2); !bytes.Equal(b1, b2) {
			t.Fatalf("binary format is not canonical:\n% x\n% x", b1, b2)
		}
		// Cross-codec equivalence: the text round trip must preserve
		// everything except names, which it sanitizes.
		var txt bytes.Buffer
		if err := WriteText(&txt, g1); err != nil {
			t.Fatalf("WriteText after successful DecodeBinary: %v", err)
		}
		g3, err := ReadText(&txt)
		if err != nil {
			t.Fatalf("ReadText of the text encoding: %v", err)
		}
		if g3.NumNodes() != g1.NumNodes() || g3.NumEdges() != g1.NumEdges() {
			t.Fatalf("codecs disagree on counts: |V| %d vs %d, |E| %d vs %d",
				g1.NumNodes(), g3.NumNodes(), g1.NumEdges(), g3.NumEdges())
		}
		for i := 0; i < g1.NumNodes(); i++ {
			a, b := g1.Node(NodeID(i)), g3.Node(NodeID(i))
			if a.Kind != b.Kind || a.Exec != b.Exec {
				t.Fatalf("node %d: binary %+v vs text %+v", i, *a, *b)
			}
			want := sanitizeToken(a.Name, "-")
			if want == "-" {
				want = ""
			}
			if b.Name != want {
				t.Fatalf("node %d name: text %q, want sanitized %q of binary %q", i, b.Name, want, a.Name)
			}
		}
		for i := 0; i < g1.NumEdges(); i++ {
			a, b := g1.Edge(EdgeID(i)), g3.Edge(EdgeID(i))
			if a.From != b.From || a.To != b.To || a.Size != b.Size ||
				a.CacheTime != b.CacheTime || a.EDRAMTime != b.EDRAMTime {
				t.Fatalf("edge %d: binary %+v vs text %+v", i, *a, *b)
			}
		}
	})
}
