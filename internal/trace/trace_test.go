package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
)

func tracedPlan(t *testing.T) (*sched.Plan, *sim.Trace) {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "tr", Vertices: 20, Edges: 45, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pim.Neurocube(8)
	plan, err := sched.ParaCONV(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := sim.TraceRun(plan, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	return plan, tr
}

func TestWriteJSONL(t *testing.T) {
	_, tr := tracedPlan(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		if _, ok := rec["time"]; !ok {
			t.Fatalf("line %d missing time: %v", lines+1, rec)
		}
		if _, ok := rec["kind"]; !ok {
			t.Fatalf("line %d missing kind: %v", lines+1, rec)
		}
		lines++
	}
	if lines != len(tr.Events) {
		t.Errorf("wrote %d lines for %d events", lines, len(tr.Events))
	}
}

func TestWriteCSV(t *testing.T) {
	_, tr := tracedPlan(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(tr.Events)+1 {
		t.Errorf("csv has %d lines for %d events", lines, len(tr.Events))
	}
	if !strings.HasPrefix(buf.String(), "time,kind,iter,pe,node,edge,place") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestWriteChrome(t *testing.T) {
	plan, tr := tracedPlan(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, plan.Iter.Graph); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int    `json:"ts"`
			Dur  int    `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	tasks, xfers, milestones := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Errorf("event %q has non-positive duration %d", ev.Name, ev.Dur)
		}
		switch {
		case ev.Cat == "task":
			tasks++
		case strings.HasPrefix(ev.Cat, "transfer:"):
			xfers++
		case ev.Cat == "milestone":
			milestones++
		}
	}
	if tasks == 0 || xfers == 0 || milestones == 0 {
		t.Errorf("census: %d tasks, %d transfers, %d milestones", tasks, xfers, milestones)
	}
}

func TestWriteChromeNilGraph(t *testing.T) {
	_, tr := tracedPlan(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, nil); err != nil {
		t.Fatalf("WriteChrome without graph: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("missing traceEvents key")
	}
}

func TestWriteChromeSPARTATrace(t *testing.T) {
	g, err := synth.Generate(synth.Params{Name: "sp", Vertices: 15, Edges: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pim.Neurocube(8)
	plan, err := sched.SPARTA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := sim.TraceRun(plan, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, plan.Iter.Graph); err != nil {
		t.Fatal(err)
	}
}
