package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeParsesAsTraceEvents is the satellite golden check:
// the Chrome export must round-trip through encoding/json as a valid
// trace-event document — a top-level traceEvents array whose complete
// events carry the viewer's required fields with sane values.
func TestWriteChromeParsesAsTraceEvents(t *testing.T) {
	plan, tr := tracedPlan(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, plan.Iter.Graph); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Cat  *string `json:"cat"`
			Ph   *string `json:"ph"`
			Ts   *int    `json:"ts"`
			Dur  *int    `json:"dur"`
			PID  *int    `json:"pid"`
			TID  *int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no traceEvents")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			t.Fatalf("event %d: missing name", i)
		}
		if ev.Ph == nil || *ev.Ph == "" {
			t.Fatalf("event %d (%s): missing ph", i, *ev.Name)
		}
		if ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d (%s): missing pid/tid", i, *ev.Name)
		}
		switch *ev.Ph {
		case "X": // complete event: needs a timestamp and a duration
			if ev.Ts == nil || ev.Dur == nil {
				t.Fatalf("event %d (%s): complete event missing ts/dur", i, *ev.Name)
			}
			if *ev.Ts < 0 || *ev.Dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur (%d, %d)", i, *ev.Name, *ev.Ts, *ev.Dur)
			}
			if ev.Cat == nil || *ev.Cat == "" {
				t.Errorf("event %d (%s): complete event missing cat", i, *ev.Name)
			}
		case "M": // metadata (process/thread names)
		default:
			t.Errorf("event %d (%s): unexpected phase %q", i, *ev.Name, *ev.Ph)
		}
	}
}
