// Package trace exports simulation event logs in interchange formats:
// JSON Lines for ad-hoc tooling, CSV for spreadsheets, and the Chrome
// trace-event format (the JSON consumed by chrome://tracing and
// Perfetto) for visual timeline inspection of kernel schedules,
// prologue fill and transfer windows.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sim"
)

// WriteJSONL writes one JSON object per event.
func WriteJSONL(w io.Writer, tr *sim.Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tr.Events {
		ev := &tr.Events[i]
		rec := map[string]any{
			"time": ev.Time,
			"kind": ev.Kind.String(),
			"iter": ev.Iter,
		}
		switch ev.Kind {
		case sim.EvTaskStart, sim.EvTaskEnd:
			rec["pe"] = int(ev.PE)
			rec["node"] = int(ev.Node)
		case sim.EvTransferStart, sim.EvTransferEnd:
			rec["edge"] = int(ev.Edge)
			rec["place"] = ev.Place.String()
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteCSV writes the event log as CSV with a fixed column set.
func WriteCSV(w io.Writer, tr *sim.Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "iter", "pe", "node", "edge", "place"}); err != nil {
		return err
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		pe, node, edge, place := "", "", "", ""
		switch ev.Kind {
		case sim.EvTaskStart, sim.EvTaskEnd:
			pe = strconv.Itoa(int(ev.PE))
			node = strconv.Itoa(int(ev.Node))
		case sim.EvTransferStart, sim.EvTransferEnd:
			edge = strconv.Itoa(int(ev.Edge))
			place = ev.Place.String()
		}
		rec := []string{
			strconv.Itoa(ev.Time), ev.Kind.String(), strconv.Itoa(ev.Iter),
			pe, node, edge, place,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// chromeEvent is one entry of the Chrome trace-event "complete" (X)
// phase: a duration event on a (pid, tid) track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int            `json:"ts"`  // microseconds; we map 1 time unit -> 1000 us
	Dur  int            `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace-event JSON.  PEs appear
// as threads of process 1 ("PE array"); transfers as threads of
// process 2 ("memory"), one lane per placement.  g names the vertices;
// pass the plan's kernel graph.
func WriteChrome(w io.Writer, tr *sim.Trace, g *dag.Graph) error {
	const unit = 1000 // 1 schedule time unit -> 1 ms in the viewer
	var events []chromeEvent

	// Pair starts and ends by (id, iteration) — instances are unique
	// per iteration, and zero-duration cached forwards may have their
	// end sorted at the same timestamp as their start.
	type taskKey struct {
		node dag.NodeID
		iter int
	}
	type xferKey struct {
		edge dag.EdgeID
		iter int
	}
	taskStart := make(map[taskKey]*sim.Event)
	xferStart := make(map[xferKey]*sim.Event)
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case sim.EvTaskStart:
			taskStart[taskKey{ev.Node, ev.Iter}] = ev
		case sim.EvTransferStart:
			xferStart[xferKey{ev.Edge, ev.Iter}] = ev
		}
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case sim.EvTaskEnd:
			s, ok := taskStart[taskKey{ev.Node, ev.Iter}]
			if !ok {
				return fmt.Errorf("trace: task end for node %d iteration %d without start", ev.Node, ev.Iter)
			}
			name := fmt.Sprintf("T%d", ev.Node+1)
			if g != nil && int(ev.Node) < g.NumNodes() && g.Node(ev.Node).Name != "" {
				name = g.Node(ev.Node).Name
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "task", Ph: "X",
				Ts: s.Time * unit, Dur: (ev.Time - s.Time) * unit,
				PID: 1, TID: int(ev.PE) + 1,
				Args: map[string]any{"iteration": ev.Iter},
			})
		case sim.EvTransferEnd:
			s, ok := xferStart[xferKey{ev.Edge, ev.Iter}]
			if !ok {
				return fmt.Errorf("trace: transfer end for edge %d iteration %d without start", ev.Edge, ev.Iter)
			}
			tid := 1
			if ev.Place == pim.InEDRAM {
				tid = 2
			}
			name := fmt.Sprintf("I%d", ev.Edge)
			if g != nil && int(ev.Edge) < g.NumEdges() {
				e := g.Edge(ev.Edge)
				name = fmt.Sprintf("I(%d,%d)", e.From+1, e.To+1)
			}
			dur := ev.Time - s.Time
			if dur == 0 {
				dur = 1 // zero-width events vanish in the viewer
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "transfer:" + ev.Place.String(), Ph: "X",
				Ts: s.Time * unit, Dur: dur * unit,
				PID: 2, TID: tid,
				Args: map[string]any{"iteration": ev.Iter, "place": ev.Place.String()},
			})
		case sim.EvIterationDone:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("iteration %d done", ev.Iter), Cat: "milestone", Ph: "X",
				Ts: ev.Time * unit, Dur: 1,
				PID: 3, TID: 1,
			})
		}
	}
	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	return bw.Flush()
}
