package cnn

import (
	"fmt"
	"sort"
)

// The paper's benchmark suite names twelve applications (cat, car,
// flower, character recognition, image compression, stock prediction,
// string matching, shortest path, speech, protein analysis) whose task
// graphs were extracted by running the programs.  The traces are not
// published; BenchmarkNetwork provides a plausible layer model for
// each application class so examples and studies can exercise the
// pipeline on *structurally real* CNN workloads (the quantitative
// reproduction in internal/bench uses exact-size synthetic graphs —
// see DESIGN.md for the substitution rationale).

// BenchmarkNetwork builds a layer model for the named paper benchmark.
func BenchmarkNetwork(name string) (*Network, error) {
	build, ok := appBuilders[name]
	if !ok {
		names := make([]string, 0, len(appBuilders))
		for n := range appBuilders {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("cnn: unknown benchmark network %q; valid names: %v", name, names)
	}
	n, err := build()
	if err != nil {
		return nil, fmt.Errorf("cnn: building %q: %w", name, err)
	}
	return n, nil
}

// BenchmarkNetworkNames lists the available application models in
// stable order.
func BenchmarkNetworkNames() []string {
	names := make([]string, 0, len(appBuilders))
	for n := range appBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var appBuilders = map[string]func() (*Network, error){
	"cat":             catNet,
	"car":             carNet,
	"flower":          flowerNet,
	"character-1":     func() (*Network, error) { return characterNet("character-1", 1) },
	"character-2":     func() (*Network, error) { return characterNet("character-2", 2) },
	"image-compress":  imageCompressNet,
	"stock-predict":   stockPredictNet,
	"string-matching": stringMatchNet,
	"shortest-path":   shortestPathNet,
	"speech-1":        func() (*Network, error) { return speechNet("speech-1", 4) },
	"speech-2":        func() (*Network, error) { return speechNet("speech-2", 7) },
	"protein":         proteinNet,
}

// catNet: a single-inception-module classifier — the smallest of the
// image-recognition trio.
func catNet() (*Network, error) {
	n := NewNetwork("cat")
	n.Input("data", Shape{C: 3, H: 64, W: 64})
	n.Conv("stem", "data", 32, 3, 2, 1)
	out := n.AddInception("inc1", "stem", InceptionSpec{16, 24, 32, 4, 8, 8})
	n.Pool("gap", out, AvgPool, 16, 16, 0)
	n.FC("cls", "gap", 10)
	return n, n.Finalize()
}

// carNet: two stacked inception modules.
func carNet() (*Network, error) {
	n := NewNetwork("car")
	n.Input("data", Shape{C: 3, H: 64, W: 64})
	n.Conv("stem", "data", 32, 3, 2, 1)
	out := n.AddInception("inc1", "stem", InceptionSpec{16, 24, 32, 4, 8, 8})
	out = n.AddInception("inc2", out, InceptionSpec{32, 32, 48, 8, 16, 16})
	n.Pool("gap", out, AvgPool, 16, 16, 0)
	n.FC("cls", "gap", 20)
	return n, n.Finalize()
}

// flowerNet: three inception modules with an interleaved pool — the
// deepest of the trio.
func flowerNet() (*Network, error) {
	n := NewNetwork("flower")
	n.Input("data", Shape{C: 3, H: 96, W: 96})
	n.Conv("stem", "data", 32, 5, 2, 2)
	out := n.AddInception("inc1", "stem", InceptionSpec{16, 24, 32, 4, 8, 8})
	n.Pool("mid", out, MaxPool, 3, 2, 1)
	out = n.AddInception("inc2", "mid", InceptionSpec{32, 32, 48, 8, 16, 16})
	out = n.AddInception("inc3", out, InceptionSpec{48, 48, 64, 12, 24, 24})
	n.Pool("gap", out, AvgPool, 12, 12, 0)
	n.FC("cls", "gap", 102)
	return n, n.Finalize()
}

// characterNet: LeNet-style handwritten-character recognizers; depth 2
// doubles the convolutional trunk.
func characterNet(name string, depth int) (*Network, error) {
	n := NewNetwork(name)
	n.Input("data", Shape{C: 1, H: 32, W: 32})
	prev := "data"
	width := 6
	for d := 0; d < depth; d++ {
		c := fmt.Sprintf("c%d", d+1)
		s := fmt.Sprintf("s%d", d+1)
		n.Conv(c, prev, width, 5, 1, 2)
		n.Pool(s, c, AvgPool, 2, 2, 0)
		prev = s
		width *= 3
	}
	n.Conv("trunk", prev, 120, 3, 1, 1)
	n.FC("f1", "trunk", 84)
	n.FC("out", "f1", 26)
	return n, n.Finalize()
}

// imageCompressNet: a convolutional autoencoder — encoder halves the
// resolution three times into a bottleneck, decoder is modelled as
// expanding fully-connected stages (the paper's "vast amounts of
// information" compression workload).
func imageCompressNet() (*Network, error) {
	n := NewNetwork("image-compress")
	n.Input("data", Shape{C: 3, H: 64, W: 64})
	n.Conv("enc1", "data", 16, 3, 2, 1)
	n.Conv("enc2", "enc1", 32, 3, 2, 1)
	n.Conv("enc3", "enc2", 64, 3, 2, 1)
	n.Conv("bottleneck", "enc3", 8, 1, 1, 0)
	n.FC("dec1", "bottleneck", 256)
	n.FC("dec2", "dec1", 1024)
	n.FC("recon", "dec2", 3*64*64/16)
	return n, n.Finalize()
}

// stockPredictNet: a deep multi-layer perceptron over a feature
// window, the shape of classic financial time-series predictors.
func stockPredictNet() (*Network, error) {
	n := NewNetwork("stock-predict")
	n.Input("window", Shape{C: 1, H: 1, W: 128})
	prev := "window"
	for i, width := range []int{256, 256, 128, 64, 32} {
		name := fmt.Sprintf("fc%d", i+1)
		n.FC(name, prev, width)
		prev = name
	}
	n.FC("out", prev, 1)
	return n, n.Finalize()
}

// stringMatchNet: 1-D convolutions over a character stream (H = 1),
// the convolutional formulation of approximate string matching.
func stringMatchNet() (*Network, error) {
	n := NewNetwork("string-matching")
	n.Input("stream", Shape{C: 64, H: 1, W: 256})
	prev := "stream"
	width := 64
	for i := 0; i < 4; i++ {
		conv := fmt.Sprintf("conv%d", i+1)
		pool := fmt.Sprintf("pool%d", i+1)
		n.Conv(conv, prev, width, 1, 1, 0)
		n.Pool(pool, conv, MaxPool, 1, 2, 0)
		prev = pool
		width *= 2
	}
	n.FC("score", prev, 2)
	return n, n.Finalize()
}

// shortestPathNet: iterative relaxation as unrolled 1x1 convolutions
// over a node-feature map — the neural-algorithm formulation of
// shortest path.
func shortestPathNet() (*Network, error) {
	n := NewNetwork("shortest-path")
	n.Input("nodes", Shape{C: 32, H: 16, W: 16})
	prev := "nodes"
	for i := 0; i < 10; i++ {
		relax := fmt.Sprintf("relax%d", i+1)
		n.Conv(relax, prev, 32, 3, 1, 1)
		prev = relax
	}
	n.Conv("readout", prev, 1, 1, 1, 0)
	return n, n.Finalize()
}

// speechNet: a TDNN-style recognizer — 1-D convolutions over time
// followed by a deep fully-connected stack; depth scales the trunk.
func speechNet(name string, depth int) (*Network, error) {
	n := NewNetwork(name)
	n.Input("frames", Shape{C: 40, H: 1, W: 128})
	prev := "frames"
	for i := 0; i < depth; i++ {
		conv := fmt.Sprintf("tdnn%d", i+1)
		n.Conv(conv, prev, 64+16*i, 1, 1, 0)
		prev = conv
	}
	n.Pool("pool", prev, AvgPool, 1, 2, 0)
	prev = "pool"
	for i := 0; i < depth/2+1; i++ {
		fc := fmt.Sprintf("fc%d", i+1)
		n.FC(fc, prev, 512)
		prev = fc
	}
	n.FC("phones", prev, 48)
	return n, n.Finalize()
}

// proteinNet: a deep residual-style trunk over a contact-map-like
// input, with concat skip connections every third block — the deepest
// model, mirroring the largest benchmark.
func proteinNet() (*Network, error) {
	n := NewNetwork("protein")
	n.Input("contacts", Shape{C: 16, H: 32, W: 32})
	prev := "contacts"
	skip := prev
	for i := 0; i < 15; i++ {
		conv := fmt.Sprintf("res%d", i+1)
		n.Conv(conv, prev, 32, 3, 1, 1)
		prev = conv
		if (i+1)%3 == 0 {
			cat := fmt.Sprintf("skip%d", i+1)
			n.Concat(cat, prev, skip)
			// Re-project to the trunk width.
			proj := fmt.Sprintf("proj%d", i+1)
			n.Conv(proj, cat, 32, 1, 1, 0)
			prev, skip = proj, proj
		}
	}
	n.Pool("gap", prev, AvgPool, 32, 32, 0)
	n.FC("family", "gap", 128)
	n.FC("out", "family", 20)
	return n, n.Finalize()
}
