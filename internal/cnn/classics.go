package cnn

import "fmt"

// AlexNet builds the Krizhevsky et al. 2012 network (grouping folded
// into plain convolutions): five convolutional layers with interleaved
// max pooling and three fully-connected layers.  Together with
// GoogLeNet and VGG-16 it anchors the front end against networks whose
// sizes are public record.
func AlexNet() (*Network, error) {
	n := NewNetwork("alexnet")
	n.Input("data", Shape{C: 3, H: 227, W: 227})
	n.Conv("conv1", "data", 96, 11, 4, 0)
	n.Pool("pool1", "conv1", MaxPool, 3, 2, 0)
	n.Conv("conv2", "pool1", 256, 5, 1, 2)
	n.Pool("pool2", "conv2", MaxPool, 3, 2, 0)
	n.Conv("conv3", "pool2", 384, 3, 1, 1)
	n.Conv("conv4", "conv3", 384, 3, 1, 1)
	n.Conv("conv5", "conv4", 256, 3, 1, 1)
	n.Pool("pool5", "conv5", MaxPool, 3, 2, 0)
	n.FC("fc6", "pool5", 4096)
	n.FC("fc7", "fc6", 4096)
	n.FC("fc8", "fc7", 1000)
	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("cnn: building AlexNet: %w", err)
	}
	return n, nil
}

// VGG16 builds the Simonyan & Zisserman configuration D: thirteen 3x3
// convolutions in five blocks with max pooling, then three
// fully-connected layers.
func VGG16() (*Network, error) {
	n := NewNetwork("vgg16")
	n.Input("data", Shape{C: 3, H: 224, W: 224})
	prev := "data"
	block := func(name string, convs, width int) {
		for i := 1; i <= convs; i++ {
			layer := fmt.Sprintf("%s_%d", name, i)
			n.Conv(layer, prev, width, 3, 1, 1)
			prev = layer
		}
		pool := "pool_" + name
		n.Pool(pool, prev, MaxPool, 2, 2, 0)
		prev = pool
	}
	block("conv1", 2, 64)
	block("conv2", 2, 128)
	block("conv3", 3, 256)
	block("conv4", 3, 512)
	block("conv5", 3, 512)
	n.FC("fc6", prev, 4096)
	n.FC("fc7", "fc6", 4096)
	n.FC("fc8", "fc7", 1000)
	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("cnn: building VGG-16: %w", err)
	}
	return n, nil
}
