package cnn

import (
	"errors"
	"fmt"
)

// Network is an ordered collection of layers forming a DAG by name
// references.  Build one with NewNetwork and the fluent add methods,
// then call Finalize to run shape inference.
type Network struct {
	name     string
	layers   []Layer
	index    map[string]int
	inferErr error
	final    bool
}

// NewNetwork returns an empty network.
func NewNetwork(name string) *Network {
	return &Network{name: name, index: make(map[string]int)}
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// Layers returns the layers in insertion (topological) order.  Only
// valid after Finalize.
func (n *Network) Layers() []Layer { return n.layers }

// Layer returns the named layer, or nil if absent.
func (n *Network) Layer(name string) *Layer {
	i, ok := n.index[name]
	if !ok {
		return nil
	}
	return &n.layers[i]
}

func (n *Network) add(l Layer) *Network {
	if n.final {
		n.fail(fmt.Errorf("cnn: add %q after Finalize", l.Name))
		return n
	}
	if l.Name == "" {
		n.fail(errors.New("cnn: layer with empty name"))
		return n
	}
	if _, dup := n.index[l.Name]; dup {
		n.fail(fmt.Errorf("cnn: duplicate layer name %q", l.Name))
		return n
	}
	for _, in := range l.Inputs {
		if _, ok := n.index[in]; !ok {
			n.fail(fmt.Errorf("cnn: layer %q references undeclared input %q", l.Name, in))
			return n
		}
	}
	n.index[l.Name] = len(n.layers)
	n.layers = append(n.layers, l)
	return n
}

func (n *Network) fail(err error) {
	if n.inferErr == nil {
		n.inferErr = err
	}
}

// Input declares the network input with the given shape.
func (n *Network) Input(name string, s Shape) *Network {
	if !s.Valid() {
		n.fail(fmt.Errorf("cnn: input %q has invalid shape %v", name, s))
		return n
	}
	return n.add(Layer{Name: name, Kind: KindInput, OutShape: s, InShape: s})
}

// Conv adds a square convolution: outC filters of kernel k, stride s,
// padding p, consuming layer "in".
func (n *Network) Conv(name, in string, outC, k, s, p int) *Network {
	return n.add(Layer{Name: name, Kind: KindConv, Inputs: []string{in}, OutC: outC, Kernel: k, Stride: s, Pad: p})
}

// Pool adds a pooling layer with operator op, window k, stride s,
// padding p.
func (n *Network) Pool(name, in string, op PoolOp, k, s, p int) *Network {
	return n.add(Layer{Name: name, Kind: KindPool, Inputs: []string{in}, Op: op, Kernel: k, Stride: s, Pad: p})
}

// FC adds a fully-connected layer with outC output neurons.
func (n *Network) FC(name, in string, outC int) *Network {
	return n.add(Layer{Name: name, Kind: KindFC, Inputs: []string{in}, OutC: outC})
}

// Concat adds a channel-axis concatenation of the given inputs.
func (n *Network) Concat(name string, inputs ...string) *Network {
	return n.add(Layer{Name: name, Kind: KindConcat, Inputs: append([]string(nil), inputs...)})
}

// Finalize runs shape inference over the network and freezes it.  Any
// construction or inference error accumulated so far is returned; the
// first error wins and later builder calls after an error are no-ops.
func (n *Network) Finalize() error {
	if n.inferErr != nil {
		return n.inferErr
	}
	if len(n.layers) == 0 {
		return errors.New("cnn: empty network")
	}
	for i := range n.layers {
		l := &n.layers[i]
		if l.Kind == KindInput {
			continue
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("cnn: layer %q has no inputs", l.Name)
		}
		in := n.Layer(l.Inputs[0])
		l.InShape = in.OutShape
		switch l.Kind {
		case KindConv:
			out, err := convOut(l.InShape, l.Kernel, l.Stride, l.Pad, l.OutC)
			if err != nil {
				return fmt.Errorf("cnn: layer %q: %w", l.Name, err)
			}
			l.OutShape = out
		case KindPool:
			out, err := convOut(l.InShape, l.Kernel, l.Stride, l.Pad, l.InShape.C)
			if err != nil {
				return fmt.Errorf("cnn: layer %q: %w", l.Name, err)
			}
			l.OutShape = out
		case KindFC:
			if l.OutC < 1 {
				return fmt.Errorf("cnn: layer %q: OutC = %d; want >= 1", l.Name, l.OutC)
			}
			l.OutShape = Shape{C: l.OutC, H: 1, W: 1}
		case KindConcat:
			c := 0
			for _, name := range l.Inputs {
				s := n.Layer(name).OutShape
				if s.H != l.InShape.H || s.W != l.InShape.W {
					return fmt.Errorf("cnn: layer %q: concat input %q has spatial %dx%d, want %dx%d",
						l.Name, name, s.H, s.W, l.InShape.H, l.InShape.W)
				}
				c += s.C
			}
			l.OutShape = Shape{C: c, H: l.InShape.H, W: l.InShape.W}
		}
	}
	n.final = true
	return nil
}

func convOut(in Shape, k, stride, pad, outC int) (Shape, error) {
	if k < 1 || stride < 1 || pad < 0 {
		return Shape{}, fmt.Errorf("invalid geometry k=%d stride=%d pad=%d", k, stride, pad)
	}
	h := (in.H+2*pad-k)/stride + 1
	w := (in.W+2*pad-k)/stride + 1
	out := Shape{C: outC, H: h, W: w}
	if !out.Valid() {
		return Shape{}, fmt.Errorf("kernel %d stride %d pad %d does not fit input %v", k, stride, pad, in)
	}
	return out, nil
}

// TotalMACs sums MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var sum int64
	for i := range n.layers {
		sum += n.layers[i].MACs()
	}
	return sum
}

// TotalWeights sums stored weights over all layers.
func (n *Network) TotalWeights() int64 {
	var sum int64
	for i := range n.layers {
		sum += n.layers[i].Weights()
	}
	return sum
}

// NumCompute returns the number of compute layers (conv/pool/fc).
func (n *Network) NumCompute() int {
	c := 0
	for i := range n.layers {
		if n.layers[i].IsCompute() {
			c++
		}
	}
	return c
}
