// Package cnn models convolutional neural networks at the layer level
// and lowers them to the task DAGs Para-CONV schedules.
//
// The paper's application model (§2.2) treats a CNN as a standard stack
// of convolutional, pooling and fully-connected layers and derives from
// it a weighted DAG whose vertices are convolution/pooling operations
// and whose edges are intermediate processing results (feature maps in
// flight between layers).  This package provides that front end: a
// declarative network builder with shape inference, MAC/weight
// accounting, a faithful GoogLeNet [16] definition (the benchmark
// source named in §4.1), and the lowering pass ToTaskGraph.
package cnn

import "fmt"

// Shape is a 3D feature-map shape in channels x height x width order.
type Shape struct {
	C, H, W int
}

// Elems returns the number of elements in the feature map.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Bytes returns the feature-map size assuming 16-bit fixed-point
// activations, the representation Neurocube-class accelerators use.
func (s Shape) Bytes() int64 { return 2 * s.Elems() }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.C >= 1 && s.H >= 1 && s.W >= 1 }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// LayerKind enumerates supported layer types.
type LayerKind uint8

const (
	// KindInput is the network input (a pseudo layer holding a shape).
	KindInput LayerKind = iota
	// KindConv is a 2D convolution (with implicit activation).
	KindConv
	// KindPool is max or average pooling.
	KindPool
	// KindFC is a fully-connected (inner product) layer; the paper
	// treats it as a special kind of convolution.
	KindFC
	// KindConcat concatenates inputs along the channel axis (the glue
	// of GoogLeNet inception modules).
	KindConcat
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConv:
		return "conv"
	case KindPool:
		return "pool"
	case KindFC:
		return "fc"
	case KindConcat:
		return "concat"
	default:
		return fmt.Sprintf("layerkind(%d)", uint8(k))
	}
}

// PoolOp selects the pooling operator.
type PoolOp uint8

const (
	// MaxPool takes the maximum over the window.
	MaxPool PoolOp = iota
	// AvgPool averages over the window.
	AvgPool
)

// String implements fmt.Stringer.
func (p PoolOp) String() string {
	if p == MaxPool {
		return "max"
	}
	return "avg"
}

// Layer is one network layer.  Fields are populated according to Kind;
// the builder methods on Network fill them consistently.
type Layer struct {
	Name   string
	Kind   LayerKind
	Inputs []string // producer layer names (len>1 only for concat)

	// Conv / Pool geometry.
	Kernel int // square kernel side
	Stride int
	Pad    int

	// Conv / FC output channels (FC: output neurons).
	OutC int

	// Pool operator.
	Op PoolOp

	// InShape and OutShape are filled by shape inference.
	InShape  Shape
	OutShape Shape
}

// MACs returns the multiply-accumulate count of the layer: the
// paper's "30K-600K operations per input pixel" cost lives here.
// Pooling and concat contribute comparison/copy work which we count as
// one op per output element.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case KindConv:
		perOut := int64(l.Kernel) * int64(l.Kernel) * int64(l.InShape.C)
		return perOut * l.OutShape.Elems()
	case KindFC:
		return l.InShape.Elems() * int64(l.OutC)
	case KindPool, KindConcat:
		return l.OutShape.Elems()
	default:
		return 0
	}
}

// Weights returns the number of filter weights (synapses) the layer
// stores.
func (l *Layer) Weights() int64 {
	switch l.Kind {
	case KindConv:
		return int64(l.Kernel)*int64(l.Kernel)*int64(l.InShape.C)*int64(l.OutC) + int64(l.OutC)
	case KindFC:
		return l.InShape.Elems()*int64(l.OutC) + int64(l.OutC)
	default:
		return 0
	}
}

// IsCompute reports whether the layer performs real work on a PE
// (convolution, pooling or FC) as opposed to being a pseudo layer
// (input, concat) that lowering folds away.
func (l *Layer) IsCompute() bool {
	switch l.Kind {
	case KindConv, KindPool, KindFC:
		return true
	default:
		return false
	}
}
