package cnn

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{C: 3, H: 224, W: 224}
	if s.Elems() != 3*224*224 {
		t.Errorf("Elems = %d", s.Elems())
	}
	if s.Bytes() != 2*s.Elems() {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if !s.Valid() || (Shape{C: 0, H: 1, W: 1}).Valid() {
		t.Error("Valid misclassifies")
	}
	if s.String() != "3x224x224" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSimpleNetworkShapes(t *testing.T) {
	n := NewNetwork("tiny")
	n.Input("data", Shape{C: 3, H: 32, W: 32})
	n.Conv("c1", "data", 16, 3, 1, 1)
	n.Pool("p1", "c1", MaxPool, 2, 2, 0)
	n.FC("fc", "p1", 10)
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got := n.Layer("c1").OutShape; got != (Shape{C: 16, H: 32, W: 32}) {
		t.Errorf("c1 out = %v", got)
	}
	if got := n.Layer("p1").OutShape; got != (Shape{C: 16, H: 16, W: 16}) {
		t.Errorf("p1 out = %v", got)
	}
	if got := n.Layer("fc").OutShape; got != (Shape{C: 10, H: 1, W: 1}) {
		t.Errorf("fc out = %v", got)
	}
}

func TestMACsAndWeights(t *testing.T) {
	n := NewNetwork("m")
	n.Input("data", Shape{C: 3, H: 8, W: 8})
	n.Conv("c", "data", 4, 3, 1, 1)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c := n.Layer("c")
	// 3x3x3 per output element, 4x8x8 outputs.
	if want := int64(3*3*3) * int64(4*8*8); c.MACs() != want {
		t.Errorf("conv MACs = %d, want %d", c.MACs(), want)
	}
	if want := int64(3*3*3*4 + 4); c.Weights() != want {
		t.Errorf("conv weights = %d, want %d", c.Weights(), want)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Network
		want  string
	}{
		{"duplicate", func() *Network {
			n := NewNetwork("x")
			n.Input("a", Shape{1, 4, 4})
			n.Conv("a", "a", 1, 1, 1, 0)
			return n
		}, "duplicate"},
		{"undeclared input", func() *Network {
			n := NewNetwork("x")
			n.Input("a", Shape{1, 4, 4})
			n.Conv("c", "nope", 1, 1, 1, 0)
			return n
		}, "undeclared"},
		{"bad input shape", func() *Network {
			n := NewNetwork("x")
			n.Input("a", Shape{0, 4, 4})
			return n
		}, "invalid shape"},
		{"kernel too big", func() *Network {
			n := NewNetwork("x")
			n.Input("a", Shape{1, 4, 4})
			n.Conv("c", "a", 1, 9, 1, 0)
			return n
		}, "does not fit"},
		{"empty", func() *Network { return NewNetwork("x") }, "empty network"},
		{"concat spatial mismatch", func() *Network {
			n := NewNetwork("x")
			n.Input("a", Shape{1, 8, 8})
			n.Conv("c1", "a", 2, 1, 1, 0)
			n.Conv("c2", "a", 2, 3, 2, 1)
			n.Concat("cat", "c1", "c2")
			return n
		}, "spatial"},
		{"empty layer name", func() *Network {
			n := NewNetwork("x")
			n.Input("", Shape{1, 4, 4})
			return n
		}, "empty name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Finalize()
			if err == nil {
				t.Fatal("Finalize returned nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestBuilderErrorsUsesErrHelper(t *testing.T) {
	// The "empty" case above passes Finalize directly; double-check
	// the add-after-finalize guard too.
	n := NewNetwork("x")
	n.Input("a", Shape{1, 4, 4})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	n.Conv("late", "a", 1, 1, 1, 0)
	if err := n.Finalize(); err == nil || !strings.Contains(err.Error(), "after Finalize") {
		t.Errorf("adding after Finalize: err = %v", err)
	}
}

func TestGoogLeNetStructure(t *testing.T) {
	n, err := GoogLeNet()
	if err != nil {
		t.Fatalf("GoogLeNet: %v", err)
	}
	// 9 inception modules x 6 convs + 3 stem convs = 57 convolutions,
	// 9 module pools + 5 standalone pools = 14 pools, 1 FC.
	convs, pools, fcs := 0, 0, 0
	for _, l := range n.Layers() {
		switch l.Kind {
		case KindConv:
			convs++
		case KindPool:
			pools++
		case KindFC:
			fcs++
		}
	}
	if convs != 57 || pools != 14 || fcs != 1 {
		t.Errorf("layer census = %d convs, %d pools, %d fc; want 57/14/1", convs, pools, fcs)
	}
	// Known shape waypoints from Szegedy et al. Table 1.
	waypoints := map[string]Shape{
		"conv1/7x7_s2":        {64, 112, 112},
		"pool2/3x3_s2":        {192, 28, 28},
		"inception_3a/output": {256, 28, 28},
		"inception_3b/output": {480, 28, 28},
		"inception_4a/output": {512, 14, 14},
		"inception_4e/output": {832, 14, 14},
		"inception_5b/output": {1024, 7, 7},
		"pool5/7x7_s1":        {1024, 1, 1},
		"loss3/classifier":    {1000, 1, 1},
	}
	for name, want := range waypoints {
		l := n.Layer(name)
		if l == nil {
			t.Errorf("missing layer %q", name)
			continue
		}
		if l.OutShape != want {
			t.Errorf("%s out = %v, want %v", name, l.OutShape, want)
		}
	}
	// ~6.8M weights (no aux heads); sanity band 5M-8M.
	w := n.TotalWeights()
	if w < 5_000_000 || w > 8_000_000 {
		t.Errorf("GoogLeNet weights = %d, want ~6.8M", w)
	}
	// ~1.58 GMACs one inference pass; band 1.2-2.0G.
	m := n.TotalMACs()
	if m < 1_200_000_000 || m > 2_000_000_000 {
		t.Errorf("GoogLeNet MACs = %d, want ~1.58G", m)
	}
}

func TestLeNet5(t *testing.T) {
	n, err := LeNet5()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Layer("output").OutShape; got != (Shape{10, 1, 1}) {
		t.Errorf("output shape = %v", got)
	}
	if n.NumCompute() != 7 {
		t.Errorf("NumCompute = %d, want 7", n.NumCompute())
	}
}

func TestInceptionModuleGraphMatchesPaperSmallBenchmarks(t *testing.T) {
	// A single inception module lowers to 7 vertices (6 convs + pool)
	// — the same order of magnitude as the paper's smallest benchmark
	// ("cat", 9 vertices).
	net, err := InceptionModule("inc", Shape{192, 28, 28}, InceptionSpec{64, 96, 128, 16, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToTaskGraph(net, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 {
		t.Errorf("|V| = %d, want 7", g.NumNodes())
	}
	// Edges: data->everything is dropped (input), so: 3x3_reduce->3x3,
	// 5x5_reduce->5x5, pool->pool_proj.  Concat output feeds nothing.
	if g.NumEdges() != 3 {
		t.Errorf("|E| = %d, want 3", g.NumEdges())
	}
}

func TestToTaskGraphGoogLeNet(t *testing.T) {
	net, err := GoogLeNet()
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToTaskGraph(net, LowerOptions{Arch: pim.Neurocube(64), MaxExec: 4})
	if err != nil {
		t.Fatalf("ToTaskGraph: %v", err)
	}
	if g.NumNodes() != net.NumCompute() {
		t.Errorf("|V| = %d, want %d compute layers", g.NumNodes(), net.NumCompute())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("lowered graph invalid: %v", err)
	}
	// Consumers of an inception output must depend on all four branch
	// producers (concat folded away).
	var b1 dag.NodeID = -1
	for _, n := range g.Nodes() {
		if n.Name == "inception_3b/1x1" {
			b1 = n.ID
		}
	}
	if b1 < 0 {
		t.Fatal("missing vertex inception_3b/1x1")
	}
	preds := g.Predecessors(b1)
	if len(preds) != 4 {
		t.Errorf("inception_3b/1x1 has %d producers, want 4 (the 3a branches)", len(preds))
	}
	for _, p := range preds {
		name := g.Node(p).Name
		if !strings.HasPrefix(name, "inception_3a/") {
			t.Errorf("unexpected producer %q", name)
		}
	}
	// Exec scaling: all within [1, MaxExec].
	for _, n := range g.Nodes() {
		if n.Exec < 1 || n.Exec > 4 {
			t.Errorf("vertex %q exec = %d outside [1,4]", n.Name, n.Exec)
		}
	}
	// Transfer asymmetry holds everywhere.
	for _, e := range g.Edges() {
		if e.EDRAMTime <= e.CacheTime {
			t.Errorf("edge %d->%d: eDRAM %d <= cache %d", e.From, e.To, e.EDRAMTime, e.CacheTime)
		}
		if e.Bytes <= 0 {
			t.Errorf("edge %d->%d: no byte annotation", e.From, e.To)
		}
	}
}

func TestToTaskGraphRejectsBadArch(t *testing.T) {
	net, err := LeNet5()
	if err != nil {
		t.Fatal(err)
	}
	bad := pim.Neurocube(16)
	bad.EDRAMAccessCycles = 1
	if _, err := ToTaskGraph(net, LowerOptions{Arch: bad}); err == nil {
		t.Fatal("ToTaskGraph accepted an invalid architecture")
	}
}

func TestComputeProducersThroughConcatChains(t *testing.T) {
	n := NewNetwork("chain")
	n.Input("data", Shape{1, 8, 8})
	n.Conv("a", "data", 2, 1, 1, 0)
	n.Conv("b", "data", 2, 1, 1, 0)
	n.Concat("cat1", "a", "b")
	n.Concat("cat2", "cat1", "a") // nested concat, with duplicate producer
	n.Conv("c", "cat2", 2, 1, 1, 0)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := n.computeProducers([]string{"cat2"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("computeProducers = %v, want [a b]", got)
	}
}

func TestKindStrings(t *testing.T) {
	if KindConv.String() != "conv" || KindConcat.String() != "concat" {
		t.Error("LayerKind strings wrong")
	}
	if MaxPool.String() != "max" || AvgPool.String() != "avg" {
		t.Error("PoolOp strings wrong")
	}
}
