package cnn

import "fmt"

// InceptionSpec gives the filter counts of one GoogLeNet inception
// module in the order of Table 1 of Szegedy et al. [16]: the 1x1 path,
// the 3x3 reduce + 3x3 path, the 5x5 reduce + 5x5 path, and the pooling
// projection.
type InceptionSpec struct {
	P1x1     int // #1x1
	Reduce3  int // #3x3 reduce
	P3x3     int // #3x3
	Reduce5  int // #5x5 reduce
	P5x5     int // #5x5
	PoolProj int // pool proj
}

// OutChannels returns the channel count of the module's concat output.
func (s InceptionSpec) OutChannels() int { return s.P1x1 + s.P3x3 + s.P5x5 + s.PoolProj }

// AddInception appends a four-branch inception module named prefix,
// consuming layer in, and returns the name of its concat output.
func (n *Network) AddInception(prefix, in string, spec InceptionSpec) string {
	b1 := prefix + "/1x1"
	n.Conv(b1, in, spec.P1x1, 1, 1, 0)

	r3 := prefix + "/3x3_reduce"
	b3 := prefix + "/3x3"
	n.Conv(r3, in, spec.Reduce3, 1, 1, 0)
	n.Conv(b3, r3, spec.P3x3, 3, 1, 1)

	r5 := prefix + "/5x5_reduce"
	b5 := prefix + "/5x5"
	n.Conv(r5, in, spec.Reduce5, 1, 1, 0)
	n.Conv(b5, r5, spec.P5x5, 5, 1, 2)

	pp := prefix + "/pool"
	pj := prefix + "/pool_proj"
	n.Pool(pp, in, MaxPool, 3, 1, 1)
	n.Conv(pj, pp, spec.PoolProj, 1, 1, 0)

	out := prefix + "/output"
	n.Concat(out, b1, b3, b5, pj)
	return out
}

// googLeNetSpecs are the nine inception modules of GoogLeNet in
// network order, with the filter counts of [16] Table 1.
var googLeNetSpecs = []struct {
	name string
	spec InceptionSpec
}{
	{"inception_3a", InceptionSpec{64, 96, 128, 16, 32, 32}},
	{"inception_3b", InceptionSpec{128, 128, 192, 32, 96, 64}},
	{"inception_4a", InceptionSpec{192, 96, 208, 16, 48, 64}},
	{"inception_4b", InceptionSpec{160, 112, 224, 24, 64, 64}},
	{"inception_4c", InceptionSpec{128, 128, 256, 24, 64, 64}},
	{"inception_4d", InceptionSpec{112, 144, 288, 32, 64, 64}},
	{"inception_4e", InceptionSpec{256, 160, 320, 32, 128, 128}},
	{"inception_5a", InceptionSpec{256, 160, 320, 32, 128, 128}},
	{"inception_5b", InceptionSpec{384, 192, 384, 48, 128, 128}},
}

// GoogLeNet builds the full 22-weight-layer GoogLeNet of Szegedy et
// al. [16] (the "GoogLeNet ConvNet" benchmark source named in §4.1):
// stem convolutions, nine inception modules with interleaved max
// pooling, global average pooling and the final classifier.  Auxiliary
// classifiers are omitted — they exist only for training.
func GoogLeNet() (*Network, error) {
	n := NewNetwork("googlenet")
	n.Input("data", Shape{C: 3, H: 224, W: 224})
	n.Conv("conv1/7x7_s2", "data", 64, 7, 2, 3)
	n.Pool("pool1/3x3_s2", "conv1/7x7_s2", MaxPool, 3, 2, 1)
	n.Conv("conv2/3x3_reduce", "pool1/3x3_s2", 64, 1, 1, 0)
	n.Conv("conv2/3x3", "conv2/3x3_reduce", 192, 3, 1, 1)
	n.Pool("pool2/3x3_s2", "conv2/3x3", MaxPool, 3, 2, 1)

	prev := "pool2/3x3_s2"
	for i, m := range googLeNetSpecs {
		prev = n.AddInception(m.name, prev, m.spec)
		// Max pooling after 3b (index 1) and 4e (index 6).
		switch i {
		case 1:
			n.Pool("pool3/3x3_s2", prev, MaxPool, 3, 2, 1)
			prev = "pool3/3x3_s2"
		case 6:
			n.Pool("pool4/3x3_s2", prev, MaxPool, 3, 2, 1)
			prev = "pool4/3x3_s2"
		}
	}
	n.Pool("pool5/7x7_s1", prev, AvgPool, 7, 1, 0)
	n.FC("loss3/classifier", "pool5/7x7_s1", 1000)
	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("cnn: building GoogLeNet: %w", err)
	}
	return n, nil
}

// InceptionModule builds a standalone network containing a single
// inception module over the given input shape — handy for deriving
// small task graphs like the paper's 9-to-21-vertex benchmarks.
func InceptionModule(name string, in Shape, spec InceptionSpec) (*Network, error) {
	n := NewNetwork(name)
	n.Input("data", in)
	n.AddInception(name, "data", spec)
	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("cnn: building inception module %q: %w", name, err)
	}
	return n, nil
}

// LeNet5 builds the classic LeNet-5 handwritten-character network
// (conv-pool-conv-pool-fc-fc-fc) — the archetype of the paper's
// "character" recognition benchmarks.
func LeNet5() (*Network, error) {
	n := NewNetwork("lenet5")
	n.Input("data", Shape{C: 1, H: 32, W: 32})
	n.Conv("c1", "data", 6, 5, 1, 0)
	n.Pool("s2", "c1", AvgPool, 2, 2, 0)
	n.Conv("c3", "s2", 16, 5, 1, 0)
	n.Pool("s4", "c3", AvgPool, 2, 2, 0)
	n.Conv("c5", "s4", 120, 5, 1, 0)
	n.FC("f6", "c5", 84)
	n.FC("output", "f6", 10)
	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("cnn: building LeNet-5: %w", err)
	}
	return n, nil
}
