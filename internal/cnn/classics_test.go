package cnn

import (
	"testing"

	"repro/internal/pim"
)

func TestAlexNetKnownProperties(t *testing.T) {
	n, err := AlexNet()
	if err != nil {
		t.Fatal(err)
	}
	waypoints := map[string]Shape{
		"conv1": {96, 55, 55},
		"pool1": {96, 27, 27},
		"conv2": {256, 27, 27},
		"conv5": {256, 13, 13},
		"pool5": {256, 6, 6},
		"fc8":   {1000, 1, 1},
	}
	for name, want := range waypoints {
		if got := n.Layer(name).OutShape; got != want {
			t.Errorf("%s out = %v, want %v", name, got, want)
		}
	}
	// Ungrouped AlexNet: ~62M weights (fc6's 37.7M dominates), ~1.1
	// GMACs.  Bands allow the grouping simplification.
	if w := n.TotalWeights(); w < 55_000_000 || w > 70_000_000 {
		t.Errorf("weights = %d, want ~62M", w)
	}
	if m := n.TotalMACs(); m < 900_000_000 || m > 1_500_000_000 {
		t.Errorf("MACs = %d, want ~1.1G", m)
	}
}

func TestVGG16KnownProperties(t *testing.T) {
	n, err := VGG16()
	if err != nil {
		t.Fatal(err)
	}
	waypoints := map[string]Shape{
		"conv1_2":    {64, 224, 224},
		"pool_conv1": {64, 112, 112},
		"conv3_3":    {256, 56, 56},
		"pool_conv5": {512, 7, 7},
		"fc8":        {1000, 1, 1},
	}
	for name, want := range waypoints {
		if got := n.Layer(name).OutShape; got != want {
			t.Errorf("%s out = %v, want %v", name, got, want)
		}
	}
	// Published: ~138M weights, ~15.5 GMACs.
	if w := n.TotalWeights(); w < 130_000_000 || w > 145_000_000 {
		t.Errorf("weights = %d, want ~138M", w)
	}
	if m := n.TotalMACs(); m < 14_000_000_000 || m > 17_000_000_000 {
		t.Errorf("MACs = %d, want ~15.5G", m)
	}
}

func TestClassicsLowerAndPlan(t *testing.T) {
	for _, build := range []func() (*Network, error){AlexNet, VGG16} {
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		g, err := ToTaskGraph(n, LowerOptions{Arch: pim.Neurocube(16)})
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if g.NumNodes() != n.NumCompute() {
			t.Errorf("%s: |V| = %d, compute = %d", n.Name(), g.NumNodes(), n.NumCompute())
		}
	}
}
