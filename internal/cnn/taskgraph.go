package cnn

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/pim"
)

// LowerOptions controls how a Network is lowered to a task DAG.
type LowerOptions struct {
	// Arch supplies the PIM latency model used to derive per-edge
	// transfer times.  Zero value defaults to pim.Neurocube(16).
	Arch pim.Config

	// MaxExec is the execution time (in schedule time units) assigned
	// to the most expensive layer; other layers scale linearly by
	// MACs, minimum 1.  Default 4.
	MaxExec int

	// MaxSize is the cache-capacity footprint (dag.Edge.Size) of the
	// largest intermediate result; other edges scale by bytes,
	// minimum 1.  Default 2, matching the paper's abstraction where a
	// PE cache holds roughly one IPR.
	MaxSize int
}

func (o LowerOptions) withDefaults() LowerOptions {
	if o.Arch.NumPEs == 0 {
		o.Arch = pim.Neurocube(16)
	}
	if o.MaxExec == 0 {
		o.MaxExec = 4
	}
	if o.MaxSize == 0 {
		o.MaxSize = 2
	}
	return o
}

// ToTaskGraph lowers a finalized network to the weighted task DAG of
// the paper's application model: one vertex per compute layer
// (conv/pool/fc), with input and concat layers folded away so that a
// consumer of a concat output depends directly on each branch
// producer.  Edge transfer times follow the PIM latency model: cache
// residency is effectively free at schedule granularity, while an
// eDRAM round trip costs whole time units scaled by the IPR size.
func ToTaskGraph(n *Network, opts LowerOptions) (*dag.Graph, error) {
	opts = opts.withDefaults()
	if err := opts.Arch.Validate(); err != nil {
		return nil, fmt.Errorf("cnn: lowering %q: %w", n.Name(), err)
	}
	layers := n.Layers()
	if len(layers) == 0 {
		return nil, fmt.Errorf("cnn: lowering %q: empty network (did Finalize succeed?)", n.Name())
	}

	g := dag.New(n.Name())

	// Pass 1: create vertices for compute layers, scaled by MACs.
	var maxMACs int64 = 1
	for i := range layers {
		if layers[i].IsCompute() && layers[i].MACs() > maxMACs {
			maxMACs = layers[i].MACs()
		}
	}
	vertexOf := make(map[string]dag.NodeID, len(layers))
	for i := range layers {
		l := &layers[i]
		if !l.IsCompute() {
			continue
		}
		exec := int(int64(opts.MaxExec) * l.MACs() / maxMACs)
		if exec < 1 {
			exec = 1
		}
		kind := dag.OpConv
		switch l.Kind {
		case KindPool:
			kind = dag.OpPool
		case KindFC:
			kind = dag.OpFC
		}
		vertexOf[l.Name] = g.AddNode(dag.Node{
			Name: l.Name,
			Kind: kind,
			Exec: exec,
			MACs: l.MACs(),
		})
	}

	// Pass 2: resolve each compute layer's producers through folded
	// (input/concat) layers and create IPR edges.  First collect the
	// byte sizes so Size can be quantized against the maximum.
	type rawEdge struct {
		from, to dag.NodeID
		bytes    int64
	}
	var raw []rawEdge
	var maxBytes int64 = 1
	for i := range layers {
		l := &layers[i]
		if !l.IsCompute() {
			continue
		}
		to := vertexOf[l.Name]
		for _, p := range n.computeProducers(l.Inputs) {
			b := n.Layer(p).OutShape.Bytes()
			raw = append(raw, rawEdge{from: vertexOf[p], to: to, bytes: b})
			if b > maxBytes {
				maxBytes = b
			}
		}
	}
	// Deterministic edge order regardless of map iteration above
	// (computeProducers is already deterministic, but keep the sort as
	// a hard guarantee for golden tests).
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].to != raw[j].to {
			return raw[i].to < raw[j].to
		}
		return raw[i].from < raw[j].from
	})

	edramUnit := opts.Arch.TransferTimeUnits(pim.InEDRAM)
	if edramUnit < 1 {
		edramUnit = 1
	}
	for _, r := range raw {
		size := int(int64(opts.MaxSize) * r.bytes / maxBytes)
		if size < 1 {
			size = 1
		}
		g.AddEdge(dag.Edge{
			From:      r.from,
			To:        r.to,
			Size:      size,
			CacheTime: 0,
			EDRAMTime: edramUnit * size,
			Bytes:     r.bytes,
		})
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cnn: lowering %q produced invalid graph: %w", n.Name(), err)
	}
	return g, nil
}

// computeProducers maps a list of input layer names to the compute
// layers that actually produce the data, looking through concat and
// dropping network inputs (which model off-chip input feature maps,
// not IPRs).  The result is deterministic and duplicate-free, in
// first-reference order.
func (n *Network) computeProducers(inputs []string) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(name string)
	walk = func(name string) {
		l := n.Layer(name)
		switch {
		case l == nil:
			// Unreachable for finalized networks; ignore defensively.
		case l.IsCompute():
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		case l.Kind == KindConcat:
			for _, in := range l.Inputs {
				walk(in)
			}
		case l.Kind == KindInput:
			// No edge: inputs stream from off-chip.
		}
	}
	for _, in := range inputs {
		walk(in)
	}
	return out
}
