package cnn

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
)

func TestBenchmarkNetworksAllBuild(t *testing.T) {
	names := BenchmarkNetworkNames()
	if len(names) != 12 {
		t.Fatalf("%d benchmark networks, want 12", len(names))
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			n, err := BenchmarkNetwork(name)
			if err != nil {
				t.Fatalf("BenchmarkNetwork(%q): %v", name, err)
			}
			if n.Name() != name {
				t.Errorf("network name = %q", n.Name())
			}
			if n.NumCompute() < 3 {
				t.Errorf("only %d compute layers", n.NumCompute())
			}
			if n.TotalMACs() <= 0 {
				t.Error("no MACs")
			}
			// Every network must lower to a valid task graph and plan.
			g, err := ToTaskGraph(n, LowerOptions{Arch: pim.Neurocube(16)})
			if err != nil {
				t.Fatalf("lowering: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("lowered graph invalid: %v", err)
			}
			if g.NumNodes() != n.NumCompute() {
				t.Errorf("|V| = %d, compute layers = %d", g.NumNodes(), n.NumCompute())
			}
		})
	}
}

func TestBenchmarkNetworkUnknown(t *testing.T) {
	_, err := BenchmarkNetwork("nope")
	if err == nil || !strings.Contains(err.Error(), "valid names") {
		t.Errorf("err = %v", err)
	}
}

func TestBenchmarkNetworkSizesOrdered(t *testing.T) {
	// The application classes scale like the paper's suite: the
	// image-recognition trio grows cat < car < flower, the character
	// pair grows, the speech pair grows, protein is the deepest
	// convolutional trunk.
	sizeOf := func(name string) int {
		n, err := BenchmarkNetwork(name)
		if err != nil {
			t.Fatal(err)
		}
		return n.NumCompute()
	}
	pairs := [][2]string{
		{"cat", "car"}, {"car", "flower"},
		{"character-1", "character-2"},
		{"speech-1", "speech-2"},
	}
	for _, p := range pairs {
		if sizeOf(p[0]) >= sizeOf(p[1]) {
			t.Errorf("%s (%d layers) should be smaller than %s (%d)",
				p[0], sizeOf(p[0]), p[1], sizeOf(p[1]))
		}
	}
}

func TestProteinSkipConnections(t *testing.T) {
	n, err := BenchmarkNetwork("protein")
	if err != nil {
		t.Fatal(err)
	}
	// Skip concats must exist and fan in two producers.
	l := n.Layer("skip3")
	if l == nil {
		t.Fatal("missing skip3 concat")
	}
	if len(l.Inputs) != 2 {
		t.Errorf("skip3 has %d inputs", len(l.Inputs))
	}
	// Lowered, a later projection conv must depend on both branches
	// (the first skip merges with the network input, which lowering
	// folds away, so check proj6: trunk res6 + skip proj3).
	g, err := ToTaskGraph(n, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var projID = -1
	for _, node := range g.Nodes() {
		if node.Name == "proj6" {
			projID = int(node.ID)
		}
	}
	if projID < 0 {
		t.Fatal("missing proj6 vertex")
	}
	if got := g.InDegree(dag.NodeID(projID)); got != 2 {
		t.Errorf("proj6 in-degree = %d, want 2 (trunk + skip)", got)
	}
}

func TestOneDimensionalNetworksShapes(t *testing.T) {
	n, err := BenchmarkNetwork("speech-2")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Layer("phones").OutShape; got != (Shape{48, 1, 1}) {
		t.Errorf("phones out = %v", got)
	}
	sm, err := BenchmarkNetwork("string-matching")
	if err != nil {
		t.Fatal(err)
	}
	// Four halvings of W=256.
	if got := sm.Layer("pool4").OutShape.W; got != 16 {
		t.Errorf("pool4 W = %d, want 16", got)
	}
}
