package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
// Test files (*_test.go) are excluded: the passes police library and
// binary code, and tests are explicitly allowed to use panics, global
// randomness shims and unordered iteration where convenient.
type Package struct {
	// Path is the full import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the package lives in.
	Dir string
	// Files holds the parsed non-test source files, sorted by name.
	Files []*ast.File
	// FileNames[i] is the absolute path of Files[i].
	FileNames []string
	// Types and Info carry the go/types results.  Type checking is
	// best-effort: unresolved imports degrade precision but never abort
	// the analysis, so both may be partially populated.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, type-checked Go module.
type Module struct {
	// Path is the module path declared in go.mod.
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	// Fset positions all parsed files.
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package
}

// Rel converts an absolute file name under the module root to a
// slash-separated root-relative path (the form diagnostics and the
// ignore file use).
func (m *Module) Rel(filename string) string {
	if r, err := filepath.Rel(m.Root, filename); err == nil {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// Load parses and type-checks every non-test package under root, which
// must contain a go.mod.  Directories named testdata or vendor, and
// hidden or underscore-prefixed directories, are skipped, matching the
// go tool's convention.  Type-check errors (for example an import the
// environment cannot resolve) are tolerated: the passes work with
// whatever type information could be computed.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}

	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	m.typecheck()
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			path = strings.Trim(path, `"`)
			if path != "" {
				return path, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// goDirs returns every directory under root that contains at least one
// non-test .go file, skipping testdata, vendor, hidden and
// underscore-prefixed directories.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test files of one directory into a Package,
// or returns nil if the directory holds no parsable Go package.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, full)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// localImports lists the module-local import paths of a package.
func (m *Module) localImports(p *Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == m.Path || strings.HasPrefix(path, m.Path+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typecheck runs go/types over every package in dependency order.
// Module-local imports resolve to the already-checked packages;
// everything else goes through the toolchain's default importer.
// All type errors are swallowed: precision degrades, analysis goes on.
func (m *Module) typecheck() {
	byPath := make(map[string]*Package, len(m.Packages))
	for _, p := range m.Packages {
		byPath[p.Path] = p
	}
	std := importer.Default()
	var imp importerFunc
	imp = func(path string) (*types.Package, error) {
		if local, ok := byPath[path]; ok {
			if local.Types == nil {
				return nil, fmt.Errorf("analysis: import cycle or unchecked package %q", path)
			}
			return local.Types, nil
		}
		return std.Import(path)
	}

	checked := make(map[string]bool, len(m.Packages))
	var visit func(p *Package)
	visit = func(p *Package) {
		if checked[p.Path] {
			return
		}
		checked[p.Path] = true // pre-mark: a (compiler-impossible) cycle degrades, not loops
		for _, dep := range m.localImports(p) {
			if d, ok := byPath[dep]; ok {
				visit(d)
			}
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer:    imp,
			Error:       func(error) {}, // collect nothing, tolerate everything
			FakeImportC: true,
		}
		tpkg, _ := conf.Check(p.Path, m.Fset, p.Files, info)
		p.Types, p.Info = tpkg, info
	}
	for _, p := range m.Packages {
		visit(p)
	}
}
