package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runLibPanic flags panic calls in non-test code under internal/.
// Library paths must return errors: a panic in internal/dag or
// internal/core takes down every caller — the CLI tools, the bench
// harness, a future service — instead of letting them degrade
// gracefully.  Functions named Must* (or must*) are exempt; they are
// the conventional wrappers tests and package-level initialization use
// when an error is truly unrecoverable.
func runLibPanic(m *Module, p *Package) []Diagnostic {
	if !strings.HasPrefix(p.Path, m.Path+"/internal/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Confirm it is the builtin, not a shadowing function.
				if obj := p.Info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						return true
					}
				}
				diags = append(diags, diag(m, "libpanic", call.Pos(),
					"panic in library function %s; return an error or move it behind a Must* helper", name))
				return true
			})
		}
	}
	return diags
}
