package analysis

import (
	"encoding/json"
	"io"
)

// jsonReport is the machine-readable output schema.  The version field
// lets CI consumers detect format changes; findings reuse the
// Diagnostic fields with stable lowercase keys and arrive pre-sorted
// by (file, line, pass, message), so the byte output is deterministic
// for a given tree.
type jsonReport struct {
	Version  int           `json:"paraconv_vet"`
	Module   string        `json:"module"`
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// WriteJSON renders the findings as one indented JSON document.  A nil
// or empty slice produces "findings": [] rather than null, so
// consumers can always range over the array.
func WriteJSON(w io.Writer, modulePath string, diags []Diagnostic) error {
	rep := jsonReport{
		Version:  1,
		Module:   modulePath,
		Findings: make([]jsonFinding, 0, len(diags)),
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.File, Line: d.Line, Pass: d.Pass, Message: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
