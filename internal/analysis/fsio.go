package analysis

import (
	"go/ast"
	"go/types"
)

// fsioPackageSuffixes are the package trees allowed to create, rewrite
// or rename files directly.  Durable state belongs to internal/store,
// whose writes are atomic (temp file + fsync + rename) and CRC-framed;
// an os.Create or os.Rename anywhere else is a durability bug waiting
// for a crash — a torn file the store's recovery sweep will never see.
var fsioPackageSuffixes = []string{"/internal/store"}

// bannedFSFuncs are the os functions that mutate the filesystem
// namespace.  Reads (os.Open, os.ReadFile) and temp-file creation in
// throwaway directories stay legal everywhere; it is the durable-write
// verbs that must be centralised.
var bannedFSFuncs = map[string]bool{
	"Create":    true,
	"WriteFile": true,
	"Rename":    true,
}

// runFSIO flags direct filesystem writes outside the sanctioned store
// tree.
func runFSIO(m *Module, p *Package) []Diagnostic {
	if pathSuffixMatch(m, p, fsioPackageSuffixes) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isBannedFSCall(p, sel) {
				return true
			}
			diags = append(diags, diag(m, "fsio", call.Pos(),
				"direct filesystem write (os.%s) outside internal/store; durable state goes through the plan store's atomic writer", sel.Sel.Name))
			return true
		})
	}
	return diags
}

// isBannedFSCall reports whether sel resolves to one of the os
// filesystem-write functions, preferring type information and falling
// back to the syntactic os-qualified form when type checking could not
// resolve the callee.
func isBannedFSCall(p *Package, sel *ast.SelectorExpr) bool {
	if p.Info != nil {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
			pkg := fn.Pkg()
			return pkg != nil && pkg.Path() == "os" && bannedFSFuncs[fn.Name()]
		}
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return id.Name == "os" && bannedFSFuncs[sel.Sel.Name]
}
