package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runSpanCtx enforces the tracing discipline around span.Start in
// internal/ packages: every span that is started must be endable.
//
// A qualified span.Start call is flagged when its result is thrown
// away — used as a bare statement or assigned to the blank
// identifier — because a discarded Span can never be ended, leaving
// the trace's open-stack parent attribution pointing at a span that
// outlives its region.  A call whose result lands in a plain local
// variable is flagged when no End call on that variable appears
// anywhere in the enclosing function (deferred End, End inside a
// deferred closure and explicit mid-function End all count).  Results
// stored through fields, returned, or passed along are left alone:
// ownership moved, and the receiving code is the one on the hook.
func runSpanCtx(m *Module, p *Package) []Diagnostic {
	if !strings.Contains(p.Path, "/internal/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		inspectStack(f, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSpanStart(p, call) {
				return true
			}
			parent := parentNode(stack)
			switch pn := parent.(type) {
			case *ast.ExprStmt:
				diags = append(diags, diag(m, "spanctx", call.Pos(),
					"span.Start result discarded; a span nobody holds can never be ended"))
			case *ast.DeferStmt, *ast.GoStmt:
				// `defer span.Start(...)` runs Start at function exit
				// and discards the span; same defect, worse timing.
				_ = pn
				diags = append(diags, diag(m, "spanctx", call.Pos(),
					"span.Start result discarded; a span nobody holds can never be ended"))
			case *ast.AssignStmt:
				if id := assignTarget(pn, call); id != nil {
					diags = append(diags, spanCtxCheckVar(m, p, stack, call, id)...)
				}
			case *ast.ValueSpec:
				if id := valueSpecTarget(pn, call); id != nil {
					diags = append(diags, spanCtxCheckVar(m, p, stack, call, id)...)
				}
			}
			return true
		})
	}
	return diags
}

// spanCtxCheckVar flags the Start call when id is blank or when the
// enclosing function never calls End on id's object.
func spanCtxCheckVar(m *Module, p *Package, stack []ast.Node, call *ast.CallExpr, id *ast.Ident) []Diagnostic {
	if id.Name == "_" {
		return []Diagnostic{diag(m, "spanctx", call.Pos(),
			"span.Start assigned to the blank identifier; a span nobody holds can never be ended")}
	}
	obj := objOf(p, id)
	if obj == nil {
		return nil
	}
	fn := enclosingFuncBody(stack)
	if fn == nil || spanEndCalled(p, fn, obj) {
		return nil
	}
	return []Diagnostic{diag(m, "spanctx", call.Pos(),
		"span %s is started but never ended in this function; call %s.End() (usually deferred)", id.Name, id.Name)}
}

// isSpanStart matches a qualified call of Start from an obs/span
// package.  With type information the callee's package path decides;
// without it the `span.Start` spelling is trusted.
func isSpanStart(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	if obj := objOf(p, sel.Sel); obj != nil {
		pkg := obj.Pkg()
		return pkg != nil && strings.HasSuffix(pkg.Path(), "/obs/span")
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "span"
}

// parentNode returns the node immediately enclosing the visited one
// (inspectStack's stack is outermost-first and excludes the node
// itself, so the parent is the last entry).
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// assignTarget returns the identifier on the left of the assignment
// that receives the call's value, nil when the target is not a plain
// identifier (field stores and friends move ownership elsewhere).
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range as.Rhs {
		if rhs != ast.Expr(call) {
			continue
		}
		// One call filling several names is the multi-return shape;
		// Start returns one value, so positions align only when the
		// counts match.
		if len(as.Lhs) != len(as.Rhs) {
			return nil
		}
		id, _ := as.Lhs[i].(*ast.Ident)
		return id
	}
	return nil
}

// valueSpecTarget is assignTarget for `var sp = span.Start(...)`.
func valueSpecTarget(vs *ast.ValueSpec, call *ast.CallExpr) *ast.Ident {
	for i, v := range vs.Values {
		if v == ast.Expr(call) {
			if len(vs.Names) != len(vs.Values) {
				return nil
			}
			return vs.Names[i]
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function (decl
// or literal) on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// spanEndCalled reports whether body contains a call of End on an
// identifier resolving to obj.  Nested closures count: deferring a
// closure that ends the span is the request handler's idiom.
func spanEndCalled(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && objOf(p, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
