package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapRangePackages are the output-producing package trees (relative to
// the module path) where hash-ordered map iteration silently corrupts
// golden reports, DOT exports and error listings.
var mapRangePackages = []string{
	"/internal/sched",
	"/internal/bench",
	"/internal/dag",
	"/internal/trace",
}

// runMapRange flags `for … range m` over a map value in the packages
// above unless the loop follows a deterministic idiom.  Two shapes are
// accepted:
//
//   - pure accumulation: the body only assigns, appends or increments
//     (no function calls beyond append/len/cap/delete/min/max), so the
//     result is iteration-order independent — this is the "collect the
//     keys" half of the sorted-keys idiom and also covers sums and
//     maxima;
//   - collect-then-sort: a sort.* or slices.Sort* call appears in the
//     same function after the loop, which is the canonical
//     keys := …; sort.Slice(keys, …) sequence.
//
// Everything else — printing, writing, or calling helpers directly
// from a map range — is reported.
func runMapRange(m *Module, p *Package) []Diagnostic {
	if !pathSuffixMatch(m, p, mapRangePackages) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if pureAccumulation(p, rs.Body) {
					return true
				}
				if hasSortCallAfter(p, fn.Body, rs.End()) {
					return true
				}
				diags = append(diags, diag(m, "maprange", rs.Pos(),
					"iteration over map %s in output-producing package is nondeterministic; range over sorted keys", exprString(rs.X)))
				return true
			})
		}
	}
	return diags
}

// accumulationBuiltins are the only callees allowed inside a map-range
// body for it to count as pure accumulation.
var accumulationBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "delete": true,
	"min": true, "max": true, "abs": true,
}

// pureAccumulation reports whether the block contains no call other
// than order-insensitive builtins — ranging a map with such a body
// cannot leak iteration order into any output stream.
func pureAccumulation(p *Package, body *ast.BlockStmt) bool {
	pure := true
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && accumulationBuiltins[id.Name] {
				return true
			}
			// Type conversions (e.g. NodeID(v)) are order-safe too.
			if _, isType := p.Info.Uses[id].(*types.TypeName); isType {
				return true
			}
		}
		pure = false
		return false
	})
	return pure
}

// hasSortCallAfter reports whether a sort.* or slices.Sort* call
// occurs in body strictly after pos — the tail of the sorted-keys
// idiom.
func hasSortCallAfter(p *Package, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprString renders a short source form of simple expressions for
// diagnostics (identifiers and selector chains; anything else becomes
// "expression").
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	default:
		return "expression"
	}
}
