package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runLockSafe reports the two concurrency-primitive misuses the race
// detector only catches on exercised paths:
//
//   - copying a value whose type (transitively, through struct fields
//     and arrays) contains a sync.Mutex, sync.RWMutex, sync.WaitGroup,
//     sync.Once, sync.Cond, sync.Map, sync.Pool or a sync/atomic
//     value type — assignments, by-value parameters and value
//     receivers all silently fork the lock state;
//   - mixing sync/atomic function access and plain access to the same
//     struct field: the plain access races every atomic one.
func runLockSafe(m *Module, p *Package) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, lockCopies(m, p)...)
	diags = append(diags, mixedAtomic(m, p)...)
	return diags
}

// syncValueTypes are the sync package types that must not be copied
// after first use.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

// atomicValueTypes are the sync/atomic wrapper types; copying one
// detaches it from every other accessor.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// containsLock reports whether t holds concurrency-primitive state by
// value.  Pointers stop the walk: sharing through a pointer is the
// correct shape.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0, map[types.Type]bool{})
}

func containsLockDepth(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 10 || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncValueTypes[obj.Name()] {
					return true
				}
			case "sync/atomic":
				if atomicValueTypes[obj.Name()] {
					return true
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1, seen)
	}
	return false
}

// lockCopies flags by-value copies of lock-bearing values: plain
// assignments from existing values, call arguments, returns, range
// element bindings and value receivers.  Composite literals and calls
// on the right-hand side are first uses, not copies, and stay legal.
func lockCopies(m *Module, p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	copiesValue := func(e ast.Expr) bool {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
		default:
			return false // literals, calls, &x, conversions: not a copy of live state
		}
		t := p.Info.TypeOf(e)
		return t != nil && containsLock(t)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Value receiver of a lock-bearing type.
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				rt := p.Info.TypeOf(fn.Recv.List[0].Type)
				if rt != nil {
					if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr && containsLock(rt) {
						diags = append(diags, diag(m, "locksafe", fn.Recv.List[0].Pos(),
							"method %s has a value receiver of a type containing a lock; use a pointer receiver", fn.Name.Name))
					}
				}
			}
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) {
							break
						}
						if copiesValue(rhs) {
							diags = append(diags, diag(m, "locksafe", rhs.Pos(),
								"assignment copies a value containing a lock; share it through a pointer"))
						}
					}
				case *ast.CallExpr:
					for _, arg := range n.Args {
						if copiesValue(arg) {
							diags = append(diags, diag(m, "locksafe", arg.Pos(),
								"call passes a value containing a lock by value; pass a pointer"))
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if copiesValue(res) {
							diags = append(diags, diag(m, "locksafe", res.Pos(),
								"return copies a value containing a lock; return a pointer"))
						}
					}
				case *ast.RangeStmt:
					if n.Value != nil && n.Tok == token.DEFINE {
						if t := p.Info.TypeOf(n.Value); t != nil && containsLock(t) {
							diags = append(diags, diag(m, "locksafe", n.Value.Pos(),
								"range binding copies elements containing a lock; iterate by index"))
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// atomicAccessFuncs are the sync/atomic package functions whose first
// argument is the address of the accessed word.
func isAtomicAccess(name string) bool {
	switch {
	case len(name) >= 4 && name[:4] == "Load":
		return true
	case len(name) >= 5 && name[:5] == "Store":
		return true
	case len(name) >= 3 && name[:3] == "Add":
		return true
	case len(name) >= 4 && name[:4] == "Swap":
		return true
	case len(name) >= 14 && name[:14] == "CompareAndSwap":
		return true
	}
	return false
}

// mixedAtomic finds struct fields accessed both through sync/atomic
// functions and as plain loads/stores anywhere in the package, and
// flags each plain access.
func mixedAtomic(m *Module, p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	// Phase 1: fields used atomically, and the selector nodes that are
	// part of those atomic calls (so they are not re-flagged as plain).
	atomicFields := map[types.Object]bool{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicAccess(fn.Name()) {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			fieldSel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := p.Info.Selections[fieldSel]; ok && s.Kind() == types.FieldVal {
				atomicFields[s.Obj()] = true
				inAtomicCall[fieldSel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Phase 2: plain accesses to those fields.
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal || !atomicFields[s.Obj()] {
				return true
			}
			diags = append(diags, diag(m, "locksafe", sel.Pos(),
				"plain access to field %s that is accessed atomically elsewhere in this package; every access must go through sync/atomic", s.Obj().Name()))
			return true
		})
	}
	return diags
}
