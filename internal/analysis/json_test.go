package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 3, Pass: "libpanic", Msg: "panic in library function F"},
		{File: "b.go", Line: 9, Pass: "goroleak", Msg: "goroutine captures no stop signal"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "repro", diags); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version  int    `json:"paraconv_vet"`
		Module   string `json:"module"`
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Pass    string `json:"pass"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Version != 1 || rep.Module != "repro" {
		t.Errorf("header = (%d, %q), want (1, repro)", rep.Version, rep.Module)
	}
	if len(rep.Findings) != 2 || rep.Findings[0].File != "a.go" || rep.Findings[1].Pass != "goroleak" {
		t.Errorf("findings = %+v", rep.Findings)
	}

	// Byte-identical output for identical input.
	var again bytes.Buffer
	if err := WriteJSON(&again, "repro", diags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteJSON output is not deterministic")
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "repro", nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty findings must encode as [], got:\n%s", buf.String())
	}
}
