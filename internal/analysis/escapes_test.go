package analysis

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// loadEscapeFixture loads the dedicated escape-gate module.
func loadEscapeFixture(t *testing.T) *Module {
	t.Helper()
	m, err := Load("testdata/escape/mod")
	if err != nil {
		t.Fatalf("Load(testdata/escape/mod): %v", err)
	}
	return m
}

func TestHotpathFuncs(t *testing.T) {
	m := loadEscapeFixture(t)
	hot := HotpathFuncs(m)
	var keys []string
	for _, h := range hot {
		keys = append(keys, h.Key)
		if h.File != "hot.go" {
			t.Errorf("%s: File = %q, want hot.go", h.Key, h.File)
		}
		if h.StartLine <= 0 || h.EndLine < h.StartLine {
			t.Errorf("%s: bad line span [%d,%d]", h.Key, h.StartLine, h.EndLine)
		}
	}
	want := []string{"escapetest.Box", "escapetest.Grow", "escapetest.Sum"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("hot functions = %v, want %v (Cold must not appear)", keys, want)
	}
}

func TestFuncKeyNameMethods(t *testing.T) {
	// Methods on the real module exercise the receiver rendering; pick
	// them out of this repository's own tree via the fixture-free path.
	m := loadTestdata(t)
	for _, h := range HotpathFuncs(m) {
		t.Errorf("testdata/mod should contain no hotpath directives, found %s", h.Key)
	}
}

// requireGoTool skips when the go command is unavailable (the AST
// passes never need it; only the escape gate shells out).
func requireGoTool(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH; skipping escape-gate compile test")
	}
}

// TestEscapeGateFixture runs the full gate against the fixture module:
// the committed baseline must be accepted exactly, a missing baseline
// entry must surface as a hotalloc finding, and an extra one as stale.
func TestEscapeGateFixture(t *testing.T) {
	requireGoTool(t)
	m := loadEscapeFixture(t)
	hot := HotpathFuncs(m)
	got, err := CollectEscapes(m, hot)
	if err != nil {
		t.Fatalf("CollectEscapes: %v", err)
	}
	if n := len(got["escapetest.Sum"]); n != 0 {
		t.Errorf("Sum reported %d escapes, want 0: %v", n, got["escapetest.Sum"])
	}
	if msgs := got["escapetest.Box"]; len(msgs) != 1 || msgs[0] != "moved to heap: v" {
		t.Errorf("Box escapes = %v, want [moved to heap: v]", msgs)
	}

	data, err := os.ReadFile("testdata/escape/baseline")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	baseline, err := ParseEscapeBaseline(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("ParseEscapeBaseline: %v", err)
	}

	// The committed baseline matches the current compiler output.
	added, stale := DiffEscapes(m, hot, got, baseline)
	if len(added) != 0 || len(stale) != 0 {
		t.Fatalf("committed baseline out of date: added=%v stale=%v\nregenerate with paraconv-vet -escapes -escapes-update -escapes-baseline", added, stale)
	}

	// An empty baseline turns every current escape into a finding,
	// attributed to the right file and declaration line.
	added, stale = DiffEscapes(m, hot, got, EscapeSet{})
	if len(stale) != 0 {
		t.Errorf("empty baseline reported stale entries: %v", stale)
	}
	if len(added) != 2 {
		t.Fatalf("empty baseline: %d findings, want 2 (Box, Grow): %v", len(added), added)
	}
	for _, d := range added {
		if d.Pass != EscapeGatePass || d.File != "hot.go" || d.Line <= 0 {
			t.Errorf("finding %+v: want pass %s in hot.go with a line", d, EscapeGatePass)
		}
	}

	// A baseline entry the compiler no longer reports is stale, as is
	// one naming an unknown function.
	extra, err := ParseEscapeBaseline(strings.NewReader(string(data) +
		"escapetest.Sum make([]bogus) escapes to heap\n" +
		"escapetest.Gone moved to heap: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	added, stale = DiffEscapes(m, hot, got, extra)
	if len(added) != 0 {
		t.Errorf("padded baseline produced findings: %v", added)
	}
	if len(stale) != 2 {
		t.Errorf("padded baseline: %d stale entries, want 2: %v", len(stale), stale)
	}
}

func TestParseCompilerDiag(t *testing.T) {
	tests := []struct {
		line   string
		file   string
		lineNo int
		msg    string
		ok     bool
	}{
		{"./hot.go:21:9: moved to heap: v", "hot.go", 21, "moved to heap: v", true},
		{"internal/dag/codec.go:100:12: make([]Edge, 0, want) escapes to heap", "internal/dag/codec.go", 100, "make([]Edge, 0, want) escapes to heap", true},
		{"# escapetest", "", 0, "", false},
		{"", "", 0, "", false},
		{"hot.go:xx:1: nope", "", 0, "", false},
		{"no diagnostics here", "", 0, "", false},
	}
	for _, tc := range tests {
		file, lineNo, msg, ok := parseCompilerDiag(tc.line)
		if ok != tc.ok || file != tc.file || lineNo != tc.lineNo || msg != tc.msg {
			t.Errorf("parseCompilerDiag(%q) = (%q,%d,%q,%v), want (%q,%d,%q,%v)",
				tc.line, file, lineNo, msg, ok, tc.file, tc.lineNo, tc.msg, tc.ok)
		}
	}
}

func TestIsHeapAllocMsg(t *testing.T) {
	yes := []string{"moved to heap: v", "make([]int, n) escapes to heap", "&v{...} escapes to heap"}
	no := []string{"can inline Sum", "leaking param: xs", "make([]int, n) does not escape", "inlining call to Sum"}
	for _, m := range yes {
		if !isHeapAllocMsg(m) {
			t.Errorf("isHeapAllocMsg(%q) = false, want true", m)
		}
	}
	for _, m := range no {
		if isHeapAllocMsg(m) {
			t.Errorf("isHeapAllocMsg(%q) = true, want false", m)
		}
	}
}

// TestAttributeEscapes feeds canned compiler output through the parser
// with no toolchain involved.
func TestAttributeEscapes(t *testing.T) {
	hot := []HotFunc{
		{Key: "p.A", File: "a.go", StartLine: 10, EndLine: 20},
		{Key: "p.B", File: "a.go", StartLine: 30, EndLine: 40},
	}
	out := strings.Join([]string{
		"# p",
		"./a.go:12:5: make([]int, n) escapes to heap", // inside A
		"./a.go:15:5: can inline helper",              // not a heap message
		"./a.go:35:5: moved to heap: v",               // inside B
		"./a.go:50:5: moved to heap: w",               // outside both
		"./b.go:12:5: moved to heap: q",               // wrong file
	}, "\n")
	set, err := attributeEscapes(hot, strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(set["p.A"]) != 1 || set["p.A"][0] != "make([]int, n) escapes to heap" {
		t.Errorf("p.A = %v", set["p.A"])
	}
	if len(set["p.B"]) != 1 || set["p.B"][0] != "moved to heap: v" {
		t.Errorf("p.B = %v", set["p.B"])
	}
}

func TestEscapeBaselineRoundTrip(t *testing.T) {
	set := EscapeSet{
		"p.B": {"moved to heap: v", "moved to heap: v", "make([]int, n) escapes to heap"},
		"p.A": {"x escapes to heap"},
	}
	parsed, err := ParseEscapeBaseline(strings.NewReader(string(FormatEscapeBaseline(set))))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || len(parsed["p.B"]) != 3 || len(parsed["p.A"]) != 1 {
		t.Fatalf("round trip = %v, want %v", parsed, set)
	}
	// Duplicates survive as a multiset.
	if n := countMsgs(parsed["p.B"])["moved to heap: v"]; n != 2 {
		t.Errorf("duplicate count = %d, want 2", n)
	}
	if _, err := ParseEscapeBaseline(strings.NewReader("justafunctionkey\n")); err == nil {
		t.Error("ParseEscapeBaseline accepted a line with no message")
	}
}
