package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// allocLoopPackages are the hot-path trees where per-iteration
// allocation patterns are policed: the solver, the graph codec, the
// scheduler, the simulator and the serving layer.  BENCH_0.json holds
// these paths to allocs/op contracts; this pass catches the patterns
// that break them before a benchmark has to.
var allocLoopPackages = []string{
	"/internal/core",
	"/internal/dag",
	"/internal/sched",
	"/internal/sim",
	"/internal/server",
}

// runAllocInLoop flags three allocation-per-iteration patterns inside
// for/range loops in the hot packages:
//
//   - fmt.Sprintf / fmt.Errorf calls that run unconditionally every
//     iteration.  A call under an if or switch (defect collectors,
//     error branches) or feeding a return or panic (the way out of the
//     loop) allocates on a rare path, not per iteration, and is left
//     alone;
//   - string accumulation: s += x or s = s + x on a string variable —
//     each iteration reallocates the whole accumulated prefix; use
//     strings.Builder or strconv;
//   - x = append(x, …) as a direct, unconditional statement of a
//     range-loop body, growing a slice that was declared in this
//     function with no capacity (var x []T, x := []T{}, or
//     make([]T, 0)) — the iteration count is the operand's length, so
//     the growth chain's log(n) reallocations are one make(…, 0, n)
//     away.  Conditional appends and appends in counted loops keep an
//     unknowable final size and are left alone.
//
// At most one diagnostic is reported per line.
func runAllocInLoop(m *Module, p *Package) []Diagnostic {
	if !pathSuffixMatch(m, p, allocLoopPackages) {
		return nil
	}
	var diags []Diagnostic
	seen := map[string]bool{} // file:line dedupe
	report := func(pos token.Pos, format string, args ...any) {
		d := diag(m, "allocinloop", pos, format, args...)
		key := d.File + ":" + strconv.Itoa(d.Line)
		if !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			noCap := noCapSlices(p, fn.Body)
			inspectStack(fn.Body, func(stack []ast.Node, n ast.Node) bool {
				if !insideLoop(stack) {
					return true
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					if (isPkgFunc(p, n, "fmt", "Sprintf") || isPkgFunc(p, n, "fmt", "Errorf")) &&
						!onLoopExit(stack, n) && !conditionalInLoop(stack) {
						sel := n.Fun.(*ast.SelectorExpr)
						report(n.Pos(), "%s.%s inside a hot-path loop allocates every iteration; format outside the loop or use strconv",
							exprString(sel.X), sel.Sel.Name)
					}
				case *ast.AssignStmt:
					diagStringConcat(p, n, report)
					if directRangeBodyStmt(stack) {
						diagAppendNoPrealloc(p, n, noCap, report)
					}
				}
				return true
			})
		}
	}
	return diags
}

// insideLoop reports whether the stack passes through a for or range
// statement body without leaving the current function.
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// conditionalInLoop reports whether a branch statement sits between
// the node and its innermost enclosing loop — the node then runs a
// data-dependent subset of iterations, not every one.
func conditionalInLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return true
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
	}
	return false
}

// directRangeBodyStmt reports whether the node being visited is an
// immediate statement of a range-loop body: the two innermost
// ancestors are the range statement and its block.  Appends nested
// under an if, switch or inner loop run a data-dependent number of
// times, so no preallocation size is knowable for them.
func directRangeBodyStmt(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	if _, ok := stack[len(stack)-1].(*ast.BlockStmt); !ok {
		return false
	}
	_, ok := stack[len(stack)-2].(*ast.RangeStmt)
	return ok
}

// onLoopExit reports whether the call is an argument of a return
// statement or a panic call somewhere between it and the enclosing
// loop — such a call runs at most once per loop execution.
func onLoopExit(stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.BlockStmt:
			// Keep climbing: blocks and the loop itself do not decide.
		}
	}
	return false
}

// diagStringConcat flags s += x and s = s + … accumulation on string
// identifiers.
func diagStringConcat(p *Package, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	t := p.Info.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		report(as.Pos(), "string accumulation %s += … inside a hot-path loop reallocates the prefix every iteration; use strings.Builder", id.Name)
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD && mentionsIdent(p, bin, objOf(p, id)) {
			report(as.Pos(), "string accumulation %s = %s + … inside a hot-path loop reallocates the prefix every iteration; use strings.Builder", id.Name, id.Name)
		}
	}
}

// mentionsIdent reports whether the expression references obj.
func mentionsIdent(p *Package, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(p, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// noCapSlices collects the local slice variables declared with no
// capacity: `var x []T` with no initializer, `x := []T{}` with an
// empty literal, and `x := make([]T, 0)` with no capacity argument.
func noCapSlices(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := objOf(p, id); obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch r := rhs.(type) {
				case *ast.CompositeLit:
					if len(r.Elts) == 0 {
						mark(id)
					}
				case *ast.CallExpr:
					if fid, ok := r.Fun.(*ast.Ident); ok && fid.Name == "make" && len(r.Args) == 2 {
						if _, isBuiltin := p.Info.Uses[fid].(*types.Builtin); isBuiltin {
							if lit, ok := r.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
								mark(id)
							}
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// diagAppendNoPrealloc flags x = append(x, …) in a loop when x is a
// no-capacity local.
func diagAppendNoPrealloc(p *Package, as *ast.AssignStmt, noCap map[types.Object]bool, report func(token.Pos, string, ...any)) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return
	}
	lid, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" {
		return
	}
	if _, isBuiltin := p.Info.Uses[fid].(*types.Builtin); !isBuiltin {
		return
	}
	firstID, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := objOf(p, lid)
	if obj == nil || objOf(p, firstID) != obj || !noCap[obj] {
		return
	}
	report(as.Pos(), "append to %s grows an uncapacitated slice inside a hot-path loop; preallocate with make(…, 0, n)", lid.Name)
}
