package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqPackages are the cost/energy model trees (relative to the
// module path) where an exact floating-point comparison is almost
// always a latent bug: energy totals, ratios and densities are sums
// and quotients whose low bits depend on evaluation order.
var floatEqPackages = []string{
	"/internal/pim",
	"/internal/bench",
	"/internal/sim",
	"/internal/core",
}

// runFloatEq flags == and != between floating-point expressions in the
// packages above.  Compare against an epsilon, or restate the
// comparison in integer arithmetic (cross-multiply densities, count in
// fixed units).
func runFloatEq(m *Module, p *Package) []Diagnostic {
	if !pathSuffixMatch(m, p, floatEqPackages) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(p.Info.TypeOf(bin.X)) || isFloat(p.Info.TypeOf(bin.Y)) {
				diags = append(diags, diag(m, "floateq", bin.Pos(),
					"floating-point %s comparison; use an epsilon or integer arithmetic", bin.Op))
			}
			return true
		})
	}
	return diags
}

// isFloat reports whether t's underlying type is a floating-point
// kind (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
