// Package gen exercises the globalrand pass: global math/rand draws
// are flagged anywhere in the module, seeded generators never are.
package gen

import "math/rand"

// Shuffle draws from the process-global source.
func Shuffle(n int) int {
	return rand.Intn(n) // want globalrand
}

// Jitter also hits the global source through a float helper.
func Jitter() float64 {
	return rand.Float64() // want globalrand
}

// SeededShuffle builds an explicit generator; the constructors and the
// methods on the returned *rand.Rand are both allowed.
func SeededShuffle(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
