package gen

import randv2 "math/rand/v2"

// Pick draws from math/rand/v2's global source.
func Pick(n int) int {
	return randv2.IntN(n) // want globalrand
}

// SeededPick uses an explicitly seeded PCG; allowed.
func SeededPick(seed uint64, n int) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(n)
}
