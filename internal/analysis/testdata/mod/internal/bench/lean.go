// Package bench is the other sanctioned peer-call tree: the harness's
// lean driver measures the serving path with its own client.
package bench

import "net/http"

// Driver constructs a measurement client; no diagnostics expected.
func Driver() http.Client {
	return http.Client{}
}
