// Package store is the sanctioned durable-write tree: the fsio pass
// exempts it, so the same verbs that fswrite is flagged for are legal
// here.
package store

import "os"

// Persist writes a file the way only the store may.
func Persist(path string, data []byte) error {
	f, err := os.Create(path + ".tmp") // allowed: inside internal/store
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // allowed: inside internal/store
}
