// Package locks exercises the locksafe pass: by-value copies of
// lock-bearing types and mixed atomic/plain field access.
package locks

import (
	"sync"
	"sync/atomic"
)

// Counter guards its count with an embedded-by-value mutex; copying a
// Counter forks the lock from the state it protects.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc uses a pointer receiver; allowed.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Read copies the receiver, lock included; flagged.
func (c Counter) Read() int { // want locksafe
	return c.n
}

// Snapshot copies a live Counter into a local; flagged.
func Snapshot(c *Counter) int {
	local := *c // want locksafe
	return local.n
}

// observe takes its Counter by pointer; calls passing &c are allowed.
func observe(c *Counter) int {
	return c.n
}

// byValue takes a Counter by value, so every call site copies.
func byValue(c Counter) int {
	return c.n
}

// Uses shows the two call shapes.
func Uses(c *Counter) int {
	total := observe(c)
	total += byValue(*c) // want locksafe
	return total
}

// Drain iterates a slice of Counters; the value binding copies each
// element, the index form does not.
func Drain(cs []Counter) int {
	total := 0
	for _, c := range cs { // want locksafe
		total += c.n
	}
	for i := range cs {
		total += cs[i].n
	}
	return total
}

// Stat mixes atomic and plain access to the same field.
type Stat struct {
	hits int64
}

// Bump goes through sync/atomic; this is the sanctioned access.
func (s *Stat) Bump() {
	atomic.AddInt64(&s.hits, 1)
}

// Peek reads the same field without atomics; flagged — it races with
// every Bump.
func (s *Stat) Peek() int64 {
	return s.hits // want locksafe
}

// PeekAtomic loads atomically; allowed.
func (s *Stat) PeekAtomic() int64 {
	return atomic.LoadInt64(&s.hits)
}
