// Package telemetry violates the obsreg rule both ways: it publishes
// through expvar's ungated global registry and mints a private obs
// registry the exporters never serve.
package telemetry

import (
	"expvar" // want obsreg

	"vettest/internal/obs"
)

// jobs lives in expvar's own namespace, invisible to the obs exporters.
var jobs = expvar.NewInt("jobs")

// Count bumps the side-channel counter.
func Count() { jobs.Add(1) }

// Private builds a registry detached from the debug endpoint.
func Private() *obs.Registry {
	return obs.NewRegistry() // want obsreg
}

// Shared records through the sanctioned default registry; not flagged.
func Shared() string {
	return obs.Default().Counter("telemetry_jobs_total")
}
