// Package pool exercises the poolhygiene pass: Get-without-assertion,
// Put-without-reset, and pooled values escaping past their Put.
package pool

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Untyped uses the Get result through the raw any; flagged.
func Untyped() int {
	v := bufPool.Get() // want poolhygiene
	b := v.(*bytes.Buffer)
	defer bufPool.Put(b)
	b.Reset()
	return b.Len()
}

// Render follows the full discipline: assert, reset, put; allowed.
func Render(parts []string) string {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	for _, p := range parts {
		b.WriteString(p)
	}
	s := b.String()
	bufPool.Put(b)
	return s
}

// StalePut returns the value to the pool still carrying this call's
// contents; the next Get sees them.
func StalePut(p string) int {
	b := bufPool.Get().(*bytes.Buffer)
	n, _ := b.WriteString(p)
	bufPool.Put(b) // want poolhygiene
	return n
}

// Leak both Puts the buffer and returns it, so the caller and the
// pool share one object.
func Leak() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	bufPool.Put(b)
	return b // want poolhygiene
}

// holder keeps a reference past the function.
type holder struct {
	buf *bytes.Buffer
}

// Stash stores the pooled buffer into a field while also Putting it;
// the stored reference outlives the Put.
func Stash(h *holder) {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	h.buf = b // want poolhygiene
	bufPool.Put(b)
}

// Acquire hands ownership to the caller and never Puts; the matching
// Release is where the value re-enters the pool.  Allowed.
func Acquire() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// Release resets on the way back in; allowed.
func Release(b *bytes.Buffer) {
	b.Reset()
	bufPool.Put(b)
}
