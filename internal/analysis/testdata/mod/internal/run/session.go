// Package run mirrors the real module's execution layer for the
// ctxfield pass: its Session type is the one struct allowed to hold a
// context.Context; everything else in the package is still policed.
package run

import "context"

// Session is the sanctioned context-in-struct exception; never flagged.
type Session struct {
	ctx   context.Context
	cache map[string]int
}

// New returns a Session scoped to ctx.
func New(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{ctx: ctx, cache: map[string]int{}}
}

// Context returns the session's scope.
func (s *Session) Context() context.Context { return s.ctx }

// worker is in the sanctioned package but is not the Session type, so
// its stored context is still flagged.
type worker struct {
	id  int
	ctx context.Context // want ctxfield
}

// Run keeps the worker type referenced.
func (w *worker) Run() error { return w.ctx.Err() }
