// Package cluster is a sanctioned peer-call tree: the pooled fill
// client may construct http.Client values and use the default-client
// helpers without tripping the peercall pass.
package cluster

import "net/http"

// Pooled constructs the sanctioned client; no diagnostics expected.
func Pooled() *http.Client {
	return &http.Client{}
}

// Probe uses a helper; no diagnostics expected.
func Probe(url string) (*http.Response, error) {
	return http.Get(url)
}
