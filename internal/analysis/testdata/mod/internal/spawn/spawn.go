// Package spawn exercises the goroleak pass: goroutines under
// internal/ must be able to observe a stop signal, and HTTP handlers
// must not spawn goroutines at all.
package spawn

import (
	"context"
	"net/http"
)

var hits int

// tick has no context and no channel; a goroutine running it can never
// be stopped.
func tick() {
	hits++
}

// Fire spawns the unstoppable tick; flagged.
func Fire() {
	go tick() // want goroleak
}

// FireInline spawns an unstoppable literal; flagged.
func FireInline() {
	go func() { // want goroleak
		hits++
	}()
}

// WaitDone parks on a done channel; the close side can always reach
// it.  Allowed.
func WaitDone(done chan struct{}) {
	go func() {
		<-done
		hits++
	}()
}

// worker drains a jobs channel and terminates when it is closed.
func worker(jobs chan int) {
	for range jobs {
		hits++
	}
}

// StartWorker passes the channel through the call; allowed.
func StartWorker(jobs chan int) {
	go worker(jobs)
}

// runCtx watches its context.
func runCtx(ctx context.Context) {
	<-ctx.Done()
}

// StartCtx passes a context through the call; allowed.
func StartCtx(ctx context.Context) {
	go runCtx(ctx)
}

// Srv owns a work channel its loop drains.
type Srv struct {
	ch chan int
}

// loop stops when ch is closed.
func (s *Srv) loop() {
	for range s.ch {
		hits++
	}
}

// Start spawns a same-package method whose body observes the channel;
// allowed.
func (s *Srv) Start() {
	go s.loop()
}

// Handle spawns per-request work directly from a handler; flagged even
// though the goroutine is stoppable — request-rate concurrency must go
// through the bounded worker pool.
func Handle(w http.ResponseWriter, r *http.Request, done chan struct{}) {
	_ = done
}

// HandleExact is handler-shaped and spawns; flagged.
func HandleExact(w http.ResponseWriter, r *http.Request) {
	done := make(chan struct{})
	go func() { // want goroleak
		<-done
	}()
	close(done)
	w.WriteHeader(http.StatusAccepted)
}
