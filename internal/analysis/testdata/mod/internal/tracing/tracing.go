// Package tracing exercises the spanctx rule: spans must be held and
// ended, not dropped on the floor.
package tracing

import (
	"context"

	"vettest/internal/obs/span"
)

// Pipeline holds a span across a request's lifetime; field stores
// move ownership and are not the pass's business.
type Pipeline struct {
	root span.Span
}

// Dropped discards the started span outright.
func Dropped(ctx context.Context) {
	span.Start(ctx, "dropped") // want spanctx
}

// Blanked throws the span away through the blank identifier.
func Blanked(ctx context.Context) {
	_ = span.Start(ctx, "blanked") // want spanctx
}

// DeferredStart runs Start at function exit and discards the result —
// the defer idiom belongs on End, not Start.
func DeferredStart(ctx context.Context) {
	defer span.Start(ctx, "late") // want spanctx
}

// NeverEnded starts a span into a local that no End ever touches.
func NeverEnded(ctx context.Context) {
	sp := span.Start(ctx, "leaky") // want spanctx
	_ = sp
}

// DeferEnded is the canonical shape: start, defer End.
func DeferEnded(ctx context.Context) {
	sp := span.Start(ctx, "ok")
	defer sp.End()
}

// MidEnded closes the span explicitly before the function returns.
func MidEnded(ctx context.Context) int {
	sp := span.Start(ctx, "phase")
	n := 1 + 1
	sp.End()
	return n
}

// ClosureEnded ends the span inside a deferred closure, the request
// handler's idiom when End shares a defer with other teardown.
func ClosureEnded(ctx context.Context) {
	sp := span.Start(ctx, "teardown")
	defer func() {
		sp.End()
	}()
}

// Handed returns the span to the caller; ownership moved, the caller
// is on the hook for End.
func Handed(ctx context.Context) span.Span {
	return span.Start(ctx, "handed")
}

// Stored parks the span in a field for a later Finish path.
func (p *Pipeline) Stored(ctx context.Context) {
	p.root = span.Start(ctx, "request")
}

// VarDeclared uses a var declaration instead of :=; same rule.
func VarDeclared(ctx context.Context) {
	var sp = span.Start(ctx, "vardecl") // want spanctx
	_ = sp
}
