// Package span mirrors the real module's request-tracing API for the
// spanctx pass: a Start that returns a Span and an End that closes
// it.  The pass recognises the package by its import-path suffix, so
// this stub lives at the same relative location as the real one.
package span

import "context"

// Span is a minimal stand-in for the real value-type span handle.
type Span struct{ open bool }

// Start opens a span on the trace carried by ctx.
func Start(ctx context.Context, name string) Span {
	_ = ctx
	_ = name
	return Span{open: true}
}

// End closes the span.
func (s Span) End() {}
