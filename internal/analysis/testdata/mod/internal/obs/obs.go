// Package obs mirrors the real module's observability registry for
// the obsreg pass: this tree is the one place allowed to mint
// registries, so nothing here is flagged.
package obs

// Registry is a minimal stand-in for the real metrics registry.
type Registry struct{ names []string }

// NewRegistry mints a registry; sanctioned inside internal/obs only.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is created here without a finding.
var defaultRegistry = NewRegistry()

// Default returns the shared registry.
func Default() *Registry { return defaultRegistry }

// Counter registers and returns a counter name.
func (r *Registry) Counter(name string) string {
	r.names = append(r.names, name)
	return name
}
