// hotloop.go exercises the allocinloop pass: core is one of the
// hot-path packages, so per-iteration allocation patterns inside its
// loops are flagged.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Labels formats inside the loop; flagged even though the slice itself
// is preallocated.
func Labels(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("T%d", i)) // want allocinloop
	}
	return out
}

// LabelsFast builds the same strings with strconv; allowed.
func LabelsFast(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, "T"+strconv.Itoa(i))
	}
	return out
}

// CheckNonNegative formats only on the way out of the loop — an
// error constructed at most once per call is not a per-iteration cost.
func CheckNonNegative(vals []int) error {
	for i, v := range vals {
		if v < 0 {
			return fmt.Errorf("core: negative value %d at index %d", v, i)
		}
	}
	return nil
}

// Defects formats only on the defect branch and appends conditionally;
// neither is a per-iteration cost, so nothing is flagged.
func Defects(vals []int) []string {
	var out []string
	for i, v := range vals {
		if v < 0 {
			out = append(out, fmt.Sprintf("core: bad value %d at %d", v, i))
		}
	}
	return out
}

// Join accumulates into a string; every iteration reallocates the
// whole prefix.
func Join(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want allocinloop
	}
	return s
}

// JoinRebind spells the same accumulation as s = s + p; flagged too.
func JoinRebind(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p // want allocinloop
	}
	return s
}

// JoinBuilder uses strings.Builder; allowed.
func JoinBuilder(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// Doubles grows an uncapacitated slice one element at a time.
func Doubles(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v*2) // want allocinloop
	}
	return out
}

// DoublesPrealloc sizes the slice up front; allowed.
func DoublesPrealloc(vals []int) []int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v*2)
	}
	return out
}
