// Package core exercises the libpanic and floateq passes: it lives
// under internal/ and in one of the cost-model trees.
package core

import "errors"

// Pick panics on bad input from a plain library function; flagged.
func Pick(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic("core: index out of range") // want libpanic
	}
	return xs[i]
}

// PickChecked returns an error instead; allowed.
func PickChecked(xs []int, i int) (int, error) {
	if i < 0 || i >= len(xs) {
		return 0, errors.New("core: index out of range")
	}
	return xs[i], nil
}

// MustPick is a conventional Must* wrapper; its panic is exempt.
func MustPick(xs []int, i int) int {
	v, err := PickChecked(xs, i)
	if err != nil {
		panic(err)
	}
	return v
}
