package core

// SameDensity compares floats exactly; flagged.
func SameDensity(a, b float64) bool {
	return a == b // want floateq
}

// Changed uses != on floats; flagged.
func Changed(a, b float64) bool {
	return a != b // want floateq
}

// ZeroEnergy compares against an untyped float constant; flagged.
func ZeroEnergy(pj float64) bool {
	return pj == 0.0 // want floateq
}

// SameDensityInt restates the comparison by cross-multiplying; allowed.
func SameDensityInt(an, ad, bn, bd int) bool {
	return an*bd == bn*ad
}

// CloseEnough is the epsilon idiom; the < comparison is allowed.
func CloseEnough(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}
