// Package web violates the httpserve rule every way the pass covers:
// raw listeners, the package-level http serving helpers, and the
// method form on *http.Server — all outside the sanctioned
// internal/obs and internal/server trees.
package web

import (
	"net"
	"net/http"
)

// Raw opens a listener directly.
func Raw() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0") // want httpserve
}

// Quick uses the package-level serving helpers.
func Quick(handler http.Handler) error {
	go http.ListenAndServe(":8080", handler) // want httpserve goroleak
	ln, err := Raw()
	if err != nil {
		return err
	}
	return http.Serve(ln, handler) // want httpserve
}

// Method serves through an http.Server value.
func Method(srv *http.Server) error {
	return srv.ListenAndServe() // want httpserve
}

// Client-side HTTP through the default client is fenced too: peer
// calls belong to the cluster's pooled fill client.
func Fetch(url string) (*http.Response, error) {
	return http.Get(url) // want peercall
}
