// Package server mirrors the real module's planning service for the
// httpserve pass: this tree (like internal/obs) is sanctioned to open
// listeners, so nothing here is flagged.
package server

import (
	"net"
	"net/http"
)

// Listen opens the service listener; allowed in this tree.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Serve runs an HTTP server on the listener; allowed in this tree.
func Serve(ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	return srv.Serve(ln)
}
