// Package util sits under internal/ but outside the maprange and
// floateq package scopes: only libpanic applies here.
package util

import "fmt"

// Dump iterates a map, but util is not an output-producing tree; not
// flagged.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Eq compares floats exactly, but util is not a cost-model tree; not
// flagged.
func Eq(a, b float64) bool {
	return a == b
}

// Boom panics; libpanic applies to all of internal/.
func Boom() {
	panic("util: boom") // want libpanic
}
