// Package peer violates the peercall rule every way the pass covers:
// ad-hoc http.Client construction and the default-client helpers,
// outside the sanctioned internal/cluster and internal/bench trees.
package peer

import (
	"net/http"
	"time"
)

// Adhoc constructs a private client instead of using the cluster's
// pooled fill client.
func Adhoc() *http.Client {
	return &http.Client{Timeout: 5 * time.Second} // want peercall
}

// AdhocValue constructs one by value.
func AdhocValue() http.Client {
	return http.Client{} // want peercall
}

// Helpers route through net/http's default client.
func Helpers(url string) error {
	if _, err := http.Post(url, "text/plain", nil); err != nil { // want peercall
		return err
	}
	_, err := http.Head(url) // want peercall
	return err
}

// Default touches the default client directly.
func Default(req *http.Request) (*http.Response, error) {
	return http.DefaultClient.Do(req) // want peercall
}
