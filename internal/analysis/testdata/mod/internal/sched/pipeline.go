package sched

import "context"

// pipeline stores a context in a struct field outside the sanctioned
// session type; flagged.
type pipeline struct {
	name string
	ctx  context.Context // want ctxfield
}

// tracer embeds a context anonymously; flagged the same way.
type tracer struct {
	context.Context // want ctxfield
	events          []string
}

// Drain passes ctx as a parameter — the approved shape, never flagged.
func Drain(ctx context.Context, p *pipeline) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = p.name
	return nil
}

// Trace keeps the tracer type referenced.
func Trace(t *tracer) int { return len(t.events) }
