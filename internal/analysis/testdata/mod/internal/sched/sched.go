// Package sched exercises the maprange pass: it sits in one of the
// output-producing trees, so map iteration must follow a deterministic
// idiom.
package sched

import (
	"fmt"
	"sort"
)

// Report prints in hash order; flagged.
func Report(byPE map[int]int) {
	for pe, n := range byPE { // want maprange
		fmt.Println(pe, n)
	}
}

// Keys is the pure-accumulation half of the sorted-keys idiom: the
// body only appends, so iteration order cannot leak.  The slice is
// preallocated, so allocinloop (sched is a hot package) stays quiet.
func Keys(byPE map[int]int) []int {
	keys := make([]int, 0, len(byPE))
	for pe := range byPE {
		keys = append(keys, pe)
	}
	sort.Ints(keys)
	return keys
}

// Total is an order-insensitive reduction with no calls at all.
func Total(byPE map[int]int) int {
	total := 0
	for _, n := range byPE {
		total += n
	}
	return total
}

// Rows calls fmt.Sprintf inside the loop but sorts afterwards in the
// same function — the collect-then-sort shape is accepted by maprange.
// allocinloop still objects: sched is a hot package, and the line both
// formats per iteration and grows an uncapacitated slice (the two
// patterns dedupe to one diagnostic per line).
func Rows(byPE map[int]int) []string {
	var rows []string
	for pe, n := range byPE {
		rows = append(rows, fmt.Sprintf("pe%d=%d", pe, n)) // want allocinloop
	}
	sort.Strings(rows)
	return rows
}

// SliceReport ranges a slice, which is ordered; never flagged.
func SliceReport(counts []int) {
	for pe, n := range counts {
		fmt.Println(pe, n)
	}
}
