// Package fswrite violates the fsio rule every way the pass covers:
// file creation, whole-file writes and renames outside the sanctioned
// internal/store tree.  Reads and temp files stay legal.
package fswrite

import "os"

// Dump creates a file directly.
func Dump(path string) (*os.File, error) {
	return os.Create(path) // want fsio
}

// Snapshot rewrites a file in one shot.
func Snapshot(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want fsio
}

// Swap renames over a live file.
func Swap(tmp, path string) error {
	return os.Rename(tmp, path) // want fsio
}

// Load only reads; the pass fences the write verbs, not access.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Scratch makes a temp file, which is not a durable-state write.
func Scratch() (*os.File, error) {
	return os.CreateTemp("", "scratch-*")
}
