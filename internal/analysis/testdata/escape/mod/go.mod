module escapetest

go 1.22
