// Package escapetest is the fixture for the hotalloc escape gate: a
// clean hot function, two that allocate, and an unannotated function
// whose allocations must not be attributed to anyone.
package escapetest

// Sum is allocation-free; its baseline entry set is empty.
//
//paraconv:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Box forces its parameter to the heap; the baseline allows exactly
// that move.
//
//paraconv:hotpath
func Box(v int) *int {
	return &v
}

// Grow returns a fresh slice; the make escapes through the return.
//
//paraconv:hotpath
func Grow(n int) []int {
	return make([]int, n)
}

// Cold allocates too, but carries no directive, so the gate never
// sees it.
func Cold(n int) []int {
	return make([]int, n)
}
