package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads the fake module under testdata/mod once per test.
func loadTestdata(t *testing.T) *Module {
	t.Helper()
	m, err := Load("testdata/mod")
	if err != nil {
		t.Fatalf("Load(testdata/mod): %v", err)
	}
	if m.Path != "vettest" {
		t.Fatalf("module path = %q, want vettest", m.Path)
	}
	return m
}

// wantRe matches expected-diagnostic annotations in testdata sources:
// a trailing comment of the form `// want pass1 pass2 ...`.
var wantRe = regexp.MustCompile(`// want ([a-z ]+)$`)

// expectation is one annotated (file, line, pass) triple.
type expectation struct {
	File string
	Line int
	Pass string
}

// wantedDiagnostics scans every comment in the loaded module for
// `// want <pass>` annotations.
func wantedDiagnostics(t *testing.T, m *Module) []expectation {
	t.Helper()
	var wants []expectation
	for _, p := range m.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := wantRe.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					for _, pass := range strings.Fields(match[1]) {
						if _, ok := PassByName(pass); !ok {
							t.Fatalf("%s:%d: annotation names unknown pass %q", m.Rel(pos.Filename), pos.Line, pass)
						}
						wants = append(wants, expectation{File: m.Rel(pos.Filename), Line: pos.Line, Pass: pass})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("testdata module contains no // want annotations")
	}
	return wants
}

// TestPassesAgainstTestdata runs each pass over the annotated fake
// module and checks its findings against the // want annotations,
// pass by pass.
func TestPassesAgainstTestdata(t *testing.T) {
	m := loadTestdata(t)
	wants := wantedDiagnostics(t, m)

	for _, pass := range AllPasses() {
		t.Run(pass.Name, func(t *testing.T) {
			want := map[string]bool{}
			for _, w := range wants {
				if w.Pass == pass.Name {
					want[fmt.Sprintf("%s:%d", w.File, w.Line)] = true
				}
			}
			got := map[string]bool{}
			for _, d := range RunPasses(m, []Pass{pass}) {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				if got[key] {
					t.Errorf("duplicate diagnostic at %s", key)
				}
				got[key] = true
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing diagnostic at %s [%s]", key, pass.Name)
				}
			}
			for key := range got {
				if !want[key] {
					t.Errorf("unexpected diagnostic at %s [%s]", key, pass.Name)
				}
			}
		})
	}
}

// TestRunPassesSorted checks the merged findings come out ordered by
// file, then line, then pass.
func TestRunPassesSorted(t *testing.T) {
	m := loadTestdata(t)
	diags := RunPasses(m, AllPasses())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/core/core.go", Line: 12, Pass: "libpanic", Msg: "panic in library function Pick"}
	want := "internal/core/core.go:12: panic in library function Pick [libpanic]"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestParseIgnore(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		want    []IgnoreEntry
		wantErr bool
	}{
		{"empty", "", nil, false},
		{"comment-only", "# a comment\n\n", nil, false},
		{"file-only", "internal/dag/dag.go\n", []IgnoreEntry{{File: "internal/dag/dag.go"}}, false},
		{"file-line", "internal/dag/dag.go:163\n", []IgnoreEntry{{File: "internal/dag/dag.go", Line: 163}}, false},
		{"file-line-pass", "internal/dag/dag.go:163 libpanic\n",
			[]IgnoreEntry{{File: "internal/dag/dag.go", Line: 163, Pass: "libpanic"}}, false},
		{"trailing-comment", "a.go:1 floateq # why\n", []IgnoreEntry{{File: "a.go", Line: 1, Pass: "floateq"}}, false},
		{"unknown-pass", "a.go:1 nosuchpass\n", nil, true},
		{"bad-line", "a.go:zero libpanic\n", nil, true},
		{"too-many-fields", "a.go 1 libpanic\n", nil, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseIgnore(strings.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseIgnore(%q) = %v, want error", tc.input, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseIgnore(%q): %v", tc.input, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("entries = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("entry %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestFilterIgnored(t *testing.T) {
	diags := []Diagnostic{
		{File: "a.go", Line: 1, Pass: "libpanic", Msg: "x"},
		{File: "a.go", Line: 2, Pass: "floateq", Msg: "y"},
		{File: "b.go", Line: 9, Pass: "maprange", Msg: "z"},
	}
	entries := []IgnoreEntry{
		{File: "a.go", Line: 1, Pass: "libpanic"}, // exact match
		{File: "b.go"},          // whole-file match
		{File: "c.go", Line: 3}, // stale
	}
	kept, unused := FilterIgnored(diags, entries)
	if len(kept) != 1 || kept[0].File != "a.go" || kept[0].Line != 2 {
		t.Errorf("kept = %v, want only a.go:2", kept)
	}
	if len(unused) != 1 || unused[0].File != "c.go" {
		t.Errorf("unused = %v, want only c.go:3", unused)
	}
}

// TestIgnoreSuppressesTestdataFindings round-trips the allowlist
// machinery against real findings from the fake module.
func TestIgnoreSuppressesTestdataFindings(t *testing.T) {
	m := loadTestdata(t)
	diags := RunPasses(m, AllPasses())
	if len(diags) == 0 {
		t.Fatal("no findings to suppress")
	}
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d %s\n", d.File, d.Line, d.Pass)
	}
	entries, err := ParseIgnore(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	kept, unused := FilterIgnored(diags, entries)
	if len(kept) != 0 {
		t.Errorf("full allowlist left %d findings: %v", len(kept), kept)
	}
	if len(unused) != 0 {
		t.Errorf("full allowlist reported %d stale entries: %v", len(unused), unused)
	}
}
