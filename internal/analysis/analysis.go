// Package analysis implements paraconv-vet, the project's custom
// static-analysis tool, using only the standard library's go/ast,
// go/parser, go/token and go/types.
//
// The tool exists because the repository's correctness story leans on
// discipline a compiler does not enforce: all randomness must flow
// through injected, seeded *rand.Rand values (golden experiment
// numbers depend on it), report-emitting loops must not iterate maps
// in hash order, library code under internal/ must return errors
// rather than panic, the cost/energy model must not compare floats
// with == / !=, and cancellation must flow through ctx parameters (or
// the execution layer's Session) rather than contexts squirrelled away
// in struct fields.  Each rule is a Pass; cmd/paraconv-vet runs them all
// and exits nonzero on findings, with a .paraconv-vet-ignore allowlist
// for grandfathered sites.
package analysis

import (
	"bufio"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding: a position, the pass that produced it,
// and a human-readable message.  The rendered form is
// "file:line: message [pass]" with file relative to the module root.
type Diagnostic struct {
	File string // module-root-relative, slash-separated
	Line int
	Pass string
	Msg  string
}

// String renders the diagnostic in the canonical form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", d.File, d.Line, d.Msg, d.Pass)
}

// Pass is one analysis rule, run package by package.
type Pass struct {
	// Name is the short identifier shown in brackets after each
	// diagnostic and used in the ignore file.
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run reports the pass's findings for one package.
	Run func(m *Module, p *Package) []Diagnostic
}

// AllPasses returns the registered passes in stable order.
func AllPasses() []Pass {
	return []Pass{
		{
			Name: "globalrand",
			Doc:  "calls to the global math/rand source; randomness must flow through an injected *rand.Rand",
			Run:  runGlobalRand,
		},
		{
			Name: "maprange",
			Doc:  "map iteration without a sorted-keys idiom in report/output-producing packages",
			Run:  runMapRange,
		},
		{
			Name: "libpanic",
			Doc:  "panic in non-test library code under internal/; library paths must return errors",
			Run:  runLibPanic,
		},
		{
			Name: "floateq",
			Doc:  "==/!= on floating-point expressions in the cost/energy model packages",
			Run:  runFloatEq,
		},
		{
			Name: "ctxfield",
			Doc:  "context.Context stored in a struct field outside the sanctioned Session type; pass ctx as a parameter",
			Run:  runCtxField,
		},
		{
			Name: "obsreg",
			Doc:  "expvar use or obs.NewRegistry call outside internal/obs; metrics must go through the shared registry's instruments",
			Run:  runObsReg,
		},
		{
			Name: "httpserve",
			Doc:  "network listener or HTTP serving outside internal/obs and internal/server; all serving goes through the sanctioned trees",
			Run:  runHTTPServe,
		},
		{
			Name: "peercall",
			Doc:  "ad-hoc net/http client construction outside internal/cluster and internal/bench; peer calls go through the cluster's pooled fill client",
			Run:  runPeerCall,
		},
		{
			Name: "fsio",
			Doc:  "direct filesystem writes (os.Create, os.WriteFile, os.Rename) outside internal/store; durable state goes through the store's atomic writer",
			Run:  runFSIO,
		},
		{
			Name: "poolhygiene",
			Doc:  "sync.Pool misuse: Get without a type assertion, Put without reset evidence, or pooled values escaping the get/put scope",
			Run:  runPoolHygiene,
		},
		{
			Name: "goroleak",
			Doc:  "goroutines under internal/ with no context or stop channel, and goroutines spawned inside HTTP handlers",
			Run:  runGoroLeak,
		},
		{
			Name: "locksafe",
			Doc:  "by-value copies of types containing sync or sync/atomic state, and mixed atomic/plain access to the same field",
			Run:  runLockSafe,
		},
		{
			Name: "spanctx",
			Doc:  "span.Start results that are discarded or never ended; every started span must reach End",
			Run:  runSpanCtx,
		},
		{
			Name: "allocinloop",
			Doc:  "per-iteration allocation patterns (Sprintf, string concat, uncapacitated append) in hot-path package loops",
			Run:  runAllocInLoop,
		},
	}
}

// EscapeGatePass is the name of the escape-analysis gate, which runs
// the compiler rather than an AST pass (see escapes.go) but shares the
// diagnostic and ignore-file namespace with the AST passes.
const EscapeGatePass = "hotalloc"

// knownPassName reports whether name is a registered AST pass or the
// escape gate.
func knownPassName(name string) bool {
	if name == EscapeGatePass {
		return true
	}
	_, ok := PassByName(name)
	return ok
}

// PassByName returns the registered pass with the given name.
func PassByName(name string) (Pass, bool) {
	for _, p := range AllPasses() {
		if p.Name == name {
			return p, true
		}
	}
	return Pass{}, false
}

// RunPasses applies the passes to every package of the module and
// returns the merged findings sorted by file, line and pass name.
func RunPasses(m *Module, passes []Pass) []Diagnostic {
	var diags []Diagnostic
	for _, p := range m.Packages {
		for _, pass := range passes {
			diags = append(diags, pass.Run(m, p)...)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, pass and message —
// the byte-stable order every output mode uses.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
}

// diag builds a Diagnostic for a position inside the module.
func diag(m *Module, pass string, pos token.Pos, format string, args ...any) Diagnostic {
	p := m.Fset.Position(pos)
	return Diagnostic{
		File: m.Rel(p.Filename),
		Line: p.Line,
		Pass: pass,
		Msg:  fmt.Sprintf(format, args...),
	}
}

// pathSuffixMatch reports whether the package path is the module path
// joined with one of the given suffixes (each beginning with "/"), or
// a subpackage of one.
func pathSuffixMatch(m *Module, p *Package, suffixes []string) bool {
	for _, s := range suffixes {
		full := m.Path + s
		if p.Path == full || strings.HasPrefix(p.Path, full+"/") {
			return true
		}
	}
	return false
}

// IgnoreEntry is one allowlist line.
type IgnoreEntry struct {
	// File is the module-root-relative path the entry suppresses.
	File string
	// Line restricts the entry to one line; 0 matches any line.
	Line int
	// Pass restricts the entry to one pass; "" matches any pass.
	Pass string
}

func (e IgnoreEntry) String() string {
	s := e.File
	if e.Line > 0 {
		s += ":" + strconv.Itoa(e.Line)
	}
	if e.Pass != "" {
		s += " " + e.Pass
	}
	return s
}

func (e IgnoreEntry) matches(d Diagnostic) bool {
	if e.File != d.File {
		return false
	}
	if e.Line != 0 && e.Line != d.Line {
		return false
	}
	if e.Pass != "" && e.Pass != d.Pass {
		return false
	}
	return true
}

// ParseIgnore reads an allowlist.  Each non-blank, non-comment line is
//
//	<file>[:<line>] [<pass>]
//
// with <file> relative to the module root using forward slashes.
// Omitting the line suppresses the whole file; omitting the pass
// suppresses every pass.  '#' starts a comment.
func ParseIgnore(r io.Reader) ([]IgnoreEntry, error) {
	var entries []IgnoreEntry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("analysis: ignore file line %d: want '<file>[:<line>] [pass]', got %q", lineNo, line)
		}
		entry := IgnoreEntry{File: fields[0]}
		if file, lineStr, ok := strings.Cut(fields[0], ":"); ok {
			n, err := strconv.Atoi(lineStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("analysis: ignore file line %d: bad line number %q", lineNo, lineStr)
			}
			entry.File, entry.Line = file, n
		}
		if len(fields) == 2 {
			if !knownPassName(fields[1]) {
				return nil, fmt.Errorf("analysis: ignore file line %d: unknown pass %q", lineNo, fields[1])
			}
			entry.Pass = fields[1]
		}
		entries = append(entries, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// FilterIgnored drops diagnostics matched by the allowlist and reports
// the entries that matched nothing (stale grandfathering worth
// cleaning up).
func FilterIgnored(diags []Diagnostic, entries []IgnoreEntry) (kept []Diagnostic, unused []IgnoreEntry) {
	used := make([]bool, len(entries))
	for _, d := range diags {
		suppressed := false
		for i, e := range entries {
			if e.matches(d) {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i, e := range entries {
		if !used[i] {
			unused = append(unused, e)
		}
	}
	return kept, unused
}
