package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks the tree like ast.Inspect but hands the visitor
// the ancestor stack as well (outermost first, not including n).  The
// pool, loop and handler passes all need to answer "what statement or
// loop encloses this expression", which plain ast.Inspect cannot.
func inspectStack(root ast.Node, visit func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(stack, n)
		stack = append(stack, n)
		if !descend {
			// ast.Inspect still sends the nil pop for this node only
			// if we return true; returning false means no pop comes,
			// so unwind ourselves.
			stack = stack[:len(stack)-1]
		}
		return descend
	})
}

// funcDecls indexes a package's function declarations by their
// types.Object so method and function calls can be resolved back to
// their bodies.
func funcDecls(p *Package) map[types.Object]*ast.FuncDecl {
	idx := make(map[types.Object]*ast.FuncDecl)
	if p.Info == nil {
		return idx
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fn.Name]; obj != nil {
				idx[obj] = fn
			}
		}
	}
	return idx
}

// baseIdent walks selector / index / star / paren chains down to the
// root identifier, or nil when the expression is not rooted in one
// (e.g. a call result).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its types.Object (use or def).
func objOf(p *Package, id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isPkgFunc reports whether the call's callee resolves to the named
// function of the named package (e.g. "fmt", "Sprintf").
func isPkgFunc(p *Package, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.Info != nil {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
			return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
		}
	}
	// Syntactic fallback when type checking could not resolve the
	// callee: match "<lastPathElem>.<name>".
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	last := pkgPath
	if i := lastSlash(pkgPath); i >= 0 {
		last = pkgPath[i+1:]
	}
	return id.Name == last && sel.Sel.Name == name
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
