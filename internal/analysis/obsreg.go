package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// obsPackageSuffix is the one package tree allowed to create metric
// instruments and registries.  Everything else must record through the
// exported instruments internal/obs declares, so that the metric
// namespace stays centralized, the Prometheus families are stable, and
// the enable gate governs every write.
const obsPackageSuffix = "/internal/obs"

// runObsReg flags global-metric creation outside the sanctioned
// internal/obs tree:
//
//   - importing expvar (the stdlib's ungated global metric registry,
//     which would publish series the obs exporters never see), and
//   - calling the obs package's NewRegistry, which mints a registry
//     detached from the exporters and the debug endpoint.
func runObsReg(m *Module, p *Package) []Diagnostic {
	if pathSuffixMatch(m, p, []string{obsPackageSuffix}) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		// expvar import: any use of the package is a side registry.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "expvar" {
				continue
			}
			diags = append(diags, diag(m, "obsreg", imp.Pos(),
				"import of expvar outside internal/obs creates an ungated global metric registry; record through internal/obs instruments"))
		}
		// obs.NewRegistry call: a private registry invisible to the
		// exporters and the debug endpoint.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NewRegistry" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !importedObsPackage(p, id) {
				return true
			}
			diags = append(diags, diag(m, "obsreg", call.Pos(),
				"obs.NewRegistry outside internal/obs mints a registry the exporters never serve; use obs.Default's instruments"))
			return true
		})
	}
	return diags
}

// importedObsPackage reports whether id resolves to an imported
// package whose import path ends in the sanctioned obs suffix.
func importedObsPackage(p *Package, id *ast.Ident) bool {
	if p.Info == nil {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == strings.TrimPrefix(obsPackageSuffix, "/") || strings.HasSuffix(path, obsPackageSuffix)
}
