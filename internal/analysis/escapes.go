package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"io"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// The hotalloc gate moves the repo's zero-alloc contracts from runtime
// (AllocsPerRun tests, which fire only on exercised paths, after the
// regression landed) to analysis time.  Functions on the serving and
// solving hot paths carry a `//paraconv:hotpath` directive in their doc
// comment; the gate compiles their packages with -gcflags=-m, collects
// the compiler's escape diagnostics inside each annotated function,
// and diffs the result against a committed baseline
// (.paraconv-escapes).  A new heap allocation in a hot function is a
// build failure until the baseline is regenerated — so every
// intentional allocation change is an explicit diff a reviewer sees.
//
// Messages are compared without line numbers: unrelated edits move
// code, but "make([]int, rowLen) escapes to heap" stays textually
// stable until the allocation itself changes.

// HotpathDirective is the doc-comment line that opts a function into
// the escape gate.
const HotpathDirective = "//paraconv:hotpath"

// HotFunc is one function annotated //paraconv:hotpath.
type HotFunc struct {
	// Key identifies the function in the baseline file:
	// pkgpath.Name or pkgpath.(*Recv).Name for methods.
	Key string
	// PkgPath is the import path of the defining package.
	PkgPath string
	// File is the module-root-relative file, StartLine/EndLine the
	// declaration's line span (both inclusive).
	File      string
	StartLine int
	EndLine   int
}

// HotpathFuncs scans the module for annotated functions, sorted by Key.
func HotpathFuncs(m *Module) []HotFunc {
	var out []HotFunc
	for _, p := range m.Packages {
		for i, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil {
					continue
				}
				annotated := false
				for _, c := range fn.Doc.List {
					if strings.TrimSpace(c.Text) == HotpathDirective {
						annotated = true
						break
					}
				}
				if !annotated {
					continue
				}
				start := m.Fset.Position(fn.Pos())
				end := m.Fset.Position(fn.End())
				out = append(out, HotFunc{
					Key:       p.Path + "." + funcKeyName(fn),
					PkgPath:   p.Path,
					File:      m.Rel(p.FileNames[i]),
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// funcKeyName renders Name or (Recv).Name / (*Recv).Name.
func funcKeyName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	name := "?"
	switch r := recv.(type) {
	case *ast.Ident:
		name = r.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := r.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return "(" + star + name + ")." + fn.Name.Name
}

// EscapeSet maps a hot function key to the sorted multiset of escape
// messages the compiler reported inside it.
type EscapeSet map[string][]string

// CollectEscapes compiles the packages containing the hot functions
// with -gcflags=-m and attributes each heap-allocation diagnostic to
// the annotated function whose line span contains it.  The go tool
// replays compiler output from the build cache, so repeat runs are
// cheap.
func CollectEscapes(m *Module, hot []HotFunc) (EscapeSet, error) {
	if len(hot) == 0 {
		return EscapeSet{}, nil
	}
	pkgSet := map[string]bool{}
	for _, h := range hot {
		pkgSet[h.PkgPath] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Root
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return attributeEscapes(hot, &stderr)
}

// attributeEscapes parses `file:line:col: message` diagnostics from
// the compiler output, keeps the heap-allocation ones, and buckets
// them by hot function.
func attributeEscapes(hot []HotFunc, r io.Reader) (EscapeSet, error) {
	set := EscapeSet{}
	for _, h := range hot {
		set[h.Key] = nil // every hot function appears, even if clean
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		file, lineNo, msg, ok := parseCompilerDiag(line)
		if !ok || !isHeapAllocMsg(msg) {
			continue
		}
		for i := range hot {
			h := &hot[i]
			if h.File == file && lineNo >= h.StartLine && lineNo <= h.EndLine {
				set[h.Key] = append(set[h.Key], msg)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for k := range set {
		sort.Strings(set[k])
	}
	return set, nil
}

// parseCompilerDiag splits "file.go:12:34: message"; the leading
// "./" the compiler sometimes emits is stripped so paths match
// Module.Rel output.
func parseCompilerDiag(line string) (file string, lineNo int, msg string, ok bool) {
	if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
		return "", 0, "", false
	}
	// file : line : col : msg
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = strings.TrimPrefix(line[:i+3], "./")
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, "", false
	}
	return file, n, strings.TrimSpace(parts[2]), true
}

// isHeapAllocMsg keeps the -m diagnostics that mean "this allocates on
// the heap": escapes-to-heap sites and moved-to-heap variables.
// Inlining decisions, leaking-param facts and does-not-escape results
// are dropped.
func isHeapAllocMsg(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// ParseEscapeBaseline reads a committed baseline: one
// "<funcKey> <message>" line per allowed allocation, '#' comments and
// blank lines ignored.  Duplicate lines express multiple identical
// allocations.
func ParseEscapeBaseline(r io.Reader) (EscapeSet, error) {
	set := EscapeSet{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, msg, ok := strings.Cut(line, " ")
		if !ok || msg == "" {
			return nil, fmt.Errorf("analysis: escape baseline line %d: want '<func> <message>', got %q", lineNo, line)
		}
		set[key] = append(set[key], strings.TrimSpace(msg))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for k := range set {
		sort.Strings(set[k])
	}
	return set, nil
}

// FormatEscapeBaseline renders a set in the committed file format,
// sorted by function then message.
func FormatEscapeBaseline(set EscapeSet) []byte {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("# paraconv-vet escape baseline (generated by paraconv-vet -escapes-update).\n")
	b.WriteString("# One '<function> <compiler escape message>' line per allowed heap\n")
	b.WriteString("# allocation in a //paraconv:hotpath function.  A hot function gaining\n")
	b.WriteString("# an allocation not listed here fails the -escapes gate.\n")
	for _, k := range keys {
		for _, msg := range set[k] {
			fmt.Fprintf(&b, "%s %s\n", k, msg)
		}
	}
	return b.Bytes()
}

// DiffEscapes compares the compiler's current escapes against the
// baseline.  Added allocations come back as hotalloc diagnostics
// anchored at the hot function's declaration; stale baseline lines
// (alloc no longer present, or unknown function) come back as strings
// so the caller can fail the run the same way it fails on dead ignore
// entries.
func DiffEscapes(m *Module, hot []HotFunc, got, baseline EscapeSet) (added []Diagnostic, stale []string) {
	byKey := map[string]*HotFunc{}
	for i := range hot {
		byKey[hot[i].Key] = &hot[i]
	}
	for key, msgs := range got {
		allowed := countMsgs(baseline[key])
		h := byKey[key]
		for _, msg := range msgs {
			if allowed[msg] > 0 {
				allowed[msg]--
				continue
			}
			d := Diagnostic{Pass: "hotalloc", Msg: fmt.Sprintf("%s: heap allocation not in escape baseline: %s", key, msg)}
			if h != nil {
				d.File, d.Line = h.File, h.StartLine
			}
			added = append(added, d)
		}
	}
	for key, msgs := range baseline {
		gotMsgs, known := got[key]
		if !known {
			stale = append(stale, fmt.Sprintf("%s (no //paraconv:hotpath function with this key)", key))
			continue
		}
		have := countMsgs(gotMsgs)
		for msg, n := range countMsgs(msgs) {
			if extra := n - have[msg]; extra > 0 {
				stale = append(stale, fmt.Sprintf("%s %s (%dx no longer reported)", key, msg, extra))
			}
		}
	}
	SortDiagnostics(added)
	sort.Strings(stale)
	return added, stale
}

func countMsgs(msgs []string) map[string]int {
	c := make(map[string]int, len(msgs))
	for _, m := range msgs {
		c[m]++
	}
	return c
}
