package analysis

import (
	"go/ast"
	"go/types"
)

// peerPackageSuffixes are the package trees allowed to construct HTTP
// clients: the cluster's pooled fill client (the sanctioned peer-call
// path) and the bench harness's lean driver (which measures the
// serving path and must not share the daemon's machinery).  Anywhere
// else, an ad-hoc net/http client is a second, unpooled, unmetered
// peer-call path — it bypasses the cluster's breaker and connection
// pool, so a failing peer would not be flipped out of the ring.
var peerPackageSuffixes = []string{"/internal/cluster", "/internal/bench"}

// bannedClientFuncs are the net/http package-level helpers that route
// through the default client.
var bannedClientFuncs = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

// runPeerCall flags ad-hoc HTTP client construction and default-client
// use outside the sanctioned trees: http.Client composite literals,
// http.Get/Head/Post/PostForm calls, and http.DefaultClient mentions.
func runPeerCall(m *Module, p *Package) []Diagnostic {
	if pathSuffixMatch(m, p, peerPackageSuffixes) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isHTTPClientType(p, n.Type) {
					diags = append(diags, diag(m, "peercall", n.Pos(),
						"http.Client constructed outside internal/cluster and internal/bench; peer calls go through the cluster's pooled fill client"))
				}
			case *ast.SelectorExpr:
				if kind, ok := bannedClientSelector(p, n); ok {
					diags = append(diags, diag(m, "peercall", n.Pos(),
						"%s uses net/http's default client; peer calls go through the cluster's pooled fill client", kind))
				}
				// Keep descending: http.DefaultClient.Do nests the
				// DefaultClient selector inside the method selector.
			}
			return true
		})
	}
	return diags
}

// isHTTPClientType reports whether the composite literal's type is
// net/http.Client, preferring type information and falling back to the
// syntactic http.Client form.
func isHTTPClientType(p *Package, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	if p.Info != nil {
		if tv, ok := p.Info.Types[expr]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				return obj != nil && obj.Name() == "Client" &&
					obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
			}
			return false
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Client" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "http"
}

// bannedClientSelector reports whether sel is a default-client helper
// call target (http.Get and friends) or the http.DefaultClient
// variable, returning a label for the diagnostic.
func bannedClientSelector(p *Package, sel *ast.SelectorExpr) (string, bool) {
	if p.Info != nil {
		switch obj := p.Info.Uses[sel.Sel].(type) {
		case *types.Func:
			// Package-level functions only: http.Header.Get and other
			// methods share names with the banned helpers.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return "", false
			}
			if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "net/http" && bannedClientFuncs[obj.Name()] {
				return "http." + obj.Name(), true
			}
			return "", false
		case *types.Var:
			if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "net/http" && obj.Name() == "DefaultClient" {
				return "http.DefaultClient", true
			}
			return "", false
		}
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "http" {
		return "", false
	}
	if bannedClientFuncs[sel.Sel.Name] {
		return "http." + sel.Sel.Name, true
	}
	if sel.Sel.Name == "DefaultClient" {
		return "http.DefaultClient", true
	}
	return "", false
}
