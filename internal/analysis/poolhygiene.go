package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runPoolHygiene polices the sync.Pool discipline the zero-alloc hot
// paths depend on.  Three shapes are reported:
//
//   - Get() whose result is used without an immediate type assertion —
//     the untyped any forces a later assertion (or reflection) at every
//     use site and hides pool-type mixups from the compiler;
//   - Put(v) in a function showing no evidence that v was reset — a
//     recycled value carrying its previous request's state is the
//     classic pool corruption bug, and an unreset bytes.Buffer pins its
//     high-water allocation forever.  Evidence is any Reset/Clear-style
//     call rooted at v, a clear(v…) builtin, an assignment through v
//     (fields, elements, *v, v itself), or v being handed to another
//     function (which is assumed to reset it);
//   - a value obtained from Get() in a function that also Puts it being
//     returned or stored into a field of another value — the reference
//     outlives the Put, so the pool hands the same object to two owners.
//
// Test files are never loaded, so benchmarks and tests may do what
// they like.
func runPoolHygiene(m *Module, p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			diags = append(diags, poolCheckFunc(m, p, fn)...)
		}
	}
	return diags
}

// isPoolMethodCall reports whether call is pool.Get / pool.Put on a
// sync.Pool (by value or pointer).
func isPoolMethodCall(p *Package, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if p.Info == nil {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// poolCheckFunc applies the three pool rules to one function.
func poolCheckFunc(m *Module, p *Package, fn *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic

	// Pass 1 over the body: find Get calls, whether each is wrapped in
	// a type assertion, the variables Get results are bound to, and the
	// Put calls with their argument objects.
	type getInfo struct {
		call     *ast.CallExpr
		asserted bool
		obj      types.Object // variable the asserted result is bound to, if any
	}
	var gets []*getInfo
	getByCall := map[*ast.CallExpr]*getInfo{}
	putObjs := map[types.Object]*ast.CallExpr{}

	inspectStack(fn.Body, func(stack []ast.Node, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolMethodCall(p, call, "Get") {
			gi := &getInfo{call: call}
			// The assertion must wrap the call directly:
			// pool.Get().(*T).  Parens in between are tolerated.
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ParenExpr:
					continue
				case *ast.TypeAssertExpr:
					gi.asserted = true
				}
				break
			}
			gets = append(gets, gi)
			getByCall[call] = gi
		}
		if isPoolMethodCall(p, call, "Put") && len(call.Args) == 1 {
			if id := baseIdent(call.Args[0]); id != nil {
				if obj := objOf(p, id); obj != nil {
					putObjs[obj] = call
				}
			}
		}
		return true
	})

	// Bind Get results to variables: v := pool.Get().(*T) or
	// v = pool.Get().(*T).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := as.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return true
		}
		call, ok := ta.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		gi, ok := getByCall[call]
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			gi.obj = objOf(p, id)
		}
		return true
	})

	// Rule 1: Get without a type assertion.
	for _, gi := range gets {
		if !gi.asserted {
			diags = append(diags, diag(m, "poolhygiene", gi.call.Pos(),
				"sync.Pool Get result used without a type assertion; bind it as pool.Get().(*T)"))
		}
	}

	// Rule 2: Put without reset evidence.
	for obj, put := range putObjs {
		if !hasResetEvidence(p, fn.Body, obj, put) {
			diags = append(diags, diag(m, "poolhygiene", put.Pos(),
				"pooled value %s is Put back with no reset in this function; stale state leaks into the next Get", obj.Name()))
		}
	}

	// Rule 3: a value this function both Gets and Puts escaping past
	// the Put via a return or a store into someone else's field.
	for _, gi := range gets {
		if gi.obj == nil {
			continue
		}
		if _, put := putObjs[gi.obj]; !put {
			continue // acquire helpers hand ownership out; allowed
		}
		obj := gi.obj
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if id := baseIdent(res); id != nil && objOf(p, id) == obj {
						diags = append(diags, diag(m, "poolhygiene", n.Pos(),
							"pooled value %s is returned but also Put in this function; the caller and the pool now share it", obj.Name()))
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					rid := baseIdent(n.Rhs[i])
					if rid == nil || objOf(p, rid) != obj {
						continue
					}
					// Storing into a field or element of some other
					// value: x.f = v, x[i] = v.
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						if lid := baseIdent(lhs); lid == nil || objOf(p, lid) != obj {
							diags = append(diags, diag(m, "poolhygiene", n.Pos(),
								"pooled value %s is stored into a field or element but also Put in this function; the store outlives the Put", obj.Name()))
						}
					}
				}
			}
			return true
		})
	}

	return diags
}

// hasResetEvidence reports whether the function body contains any
// statement that plausibly resets obj before (or after acquiring) it:
// a method call named Reset/Clear/Truncate rooted at obj, clear(obj…),
// an assignment whose LHS is rooted at obj, or obj passed as an
// argument to any call other than the Put itself.
func hasResetEvidence(p *Package, body *ast.BlockStmt, obj types.Object, put *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == put {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Reset", "Clear", "Truncate":
					if id := baseIdent(sel.X); id != nil && objOf(p, id) == obj {
						found = true
						return false
					}
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "clear" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					if aid := baseIdent(n.Args[0]); aid != nil && objOf(p, aid) == obj {
						found = true
						return false
					}
				}
			}
			// obj handed to another function: assume it resets.
			for _, arg := range n.Args {
				if id := baseIdent(arg); id != nil && objOf(p, id) == obj {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isPlain := lhs.(*ast.Ident); isPlain && n.Tok == token.DEFINE {
					continue // the binding itself is not a reset
				}
				if id := baseIdent(lhs); id != nil && objOf(p, id) == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
