package analysis

import (
	"go/ast"
	"go/types"
)

// servePackageSuffixes are the package trees allowed to open network
// listeners: the obs debug server and the planning service.  Serving
// anywhere else fragments the deployment surface — listeners that the
// daemon's drain sequence never stops and the loopback-by-default
// binding policy never covers.
var servePackageSuffixes = []string{"/internal/obs", "/internal/server"}

// bannedListenFuncs maps a defining package path to the function and
// method names that open or serve a listener.  Matching on the
// resolved *types.Func covers both package-level calls
// (net.Listen, http.ListenAndServe) and method calls
// ((*http.Server).ListenAndServe, (*http.Server).Serve).
var bannedListenFuncs = map[string]map[string]bool{
	"net": {
		"Listen": true, "ListenTCP": true, "ListenUDP": true,
		"ListenUnix": true, "ListenIP": true, "ListenPacket": true,
	},
	"net/http": {
		"ListenAndServe": true, "ListenAndServeTLS": true,
		"Serve": true, "ServeTLS": true,
	},
}

// runHTTPServe flags listener creation and HTTP serving outside the
// sanctioned trees.
func runHTTPServe(m *Module, p *Package) []Diagnostic {
	if pathSuffixMatch(m, p, servePackageSuffixes) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isBannedListenCall(p, sel) {
				return true
			}
			diags = append(diags, diag(m, "httpserve", call.Pos(),
				"network listener opened outside internal/obs and internal/server; serve through internal/server (or the obs debug server)"))
			return true
		})
	}
	return diags
}

// isBannedListenCall reports whether sel resolves to one of the
// listener-opening functions, preferring type information and falling
// back to the syntactic package-qualified form when type checking
// could not resolve the callee.
func isBannedListenCall(p *Package, sel *ast.SelectorExpr) bool {
	if p.Info != nil {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
			pkg := fn.Pkg()
			return pkg != nil && bannedListenFuncs[pkg.Path()][fn.Name()]
		}
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "net":
		return bannedListenFuncs["net"][sel.Sel.Name]
	case "http":
		return bannedListenFuncs["net/http"][sel.Sel.Name]
	}
	return false
}
