package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// runGoroLeak flags goroutines in internal/ packages that carry no way
// to be stopped, and any goroutine spawned directly from an HTTP
// handler.
//
// A goroutine counts as stoppable when the code it runs — the literal
// body, or the body of a same-package function or method it calls —
// references a context.Context or any channel-typed value (receives,
// sends, range loops and closes all qualify: a worker draining a
// work channel terminates when the channel is closed).  Everything
// else is a goroutine the daemon's drain sequence cannot reach; the
// serving stack's graceful shutdown depends on there being none.
//
// Inside handler-shaped functions (w http.ResponseWriter, r
// *http.Request) a bare `go` is flagged regardless: per-request
// goroutines multiply with request rate, so concurrency there must go
// through the bounded worker pool.
func runGoroLeak(m *Module, p *Package) []Diagnostic {
	if !strings.Contains(p.Path, "/internal/") {
		return nil
	}
	decls := funcDecls(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		inspectStack(f, func(stack []ast.Node, n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if inHandler(p, stack) {
				diags = append(diags, diag(m, "goroleak", gs.Pos(),
					"goroutine spawned inside an HTTP handler; per-request work must go through the bounded worker pool"))
				return true
			}
			if goroutineStoppable(p, decls, gs) {
				return true
			}
			diags = append(diags, diag(m, "goroleak", gs.Pos(),
				"goroutine captures no context.Context and no stop/done channel; it cannot be cancelled or drained"))
			return true
		})
	}
	return diags
}

// inHandler reports whether the stack passes through a function (decl
// or literal) with the (http.ResponseWriter, *http.Request) signature.
func inHandler(p *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if isHandlerType(p, ft) {
			return true
		}
		// Only the innermost enclosing function decides: a closure
		// inside a handler that is itself not handler-shaped is the
		// worker-pool job shape and is judged by the stoppable rule.
		return false
	}
	return false
}

// isHandlerType matches func(http.ResponseWriter, *http.Request).
func isHandlerType(p *Package, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) != 2 {
		return false
	}
	return isNamedType(p, ft.Params.List[0].Type, "net/http", "ResponseWriter") &&
		isPtrToNamedType(p, ft.Params.List[1].Type, "net/http", "Request")
}

func isNamedType(p *Package, e ast.Expr, pkgPath, name string) bool {
	if p.Info != nil {
		if t := p.Info.TypeOf(e); t != nil {
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
			}
		}
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	last := pkgPath
	if i := lastSlash(pkgPath); i >= 0 {
		last = pkgPath[i+1:]
	}
	return ok && id.Name == last && sel.Sel.Name == name
}

func isPtrToNamedType(p *Package, e ast.Expr, pkgPath, name string) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	return isNamedType(p, star.X, pkgPath, name)
}

// goroutineStoppable reports whether the go statement's code can
// observe a stop signal.
func goroutineStoppable(p *Package, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) bool {
	// The call's arguments are part of the goroutine's environment.
	for _, arg := range gs.Call.Args {
		if exprHasSignal(p, arg) {
			return true
		}
	}
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return nodeHasSignal(p, fun.Body)
	case *ast.Ident, *ast.SelectorExpr:
		var callee types.Object
		switch f := fun.(type) {
		case *ast.Ident:
			callee = objOf(p, f)
		case *ast.SelectorExpr:
			callee = objOf(p, f.Sel)
			// A method expression's receiver may itself carry the
			// signal (go s.loop where s holds nothing is still checked
			// via the body below).
			if exprHasSignal(p, f.X) {
				return true
			}
		}
		if callee != nil {
			if decl, ok := decls[callee]; ok {
				return nodeHasSignal(p, decl.Body)
			}
		}
	}
	return false
}

// nodeHasSignal reports whether any expression under n is a
// context.Context or has a channel type.
func nodeHasSignal(p *Package, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if e, ok := x.(ast.Expr); ok && exprHasSignal(p, e) {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprHasSignal reports whether e's type is context.Context or a
// channel.
func exprHasSignal(p *Package, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}
