package analysis

import (
	"go/ast"
	"go/types"
)

// sessionPkgSuffix and sessionTypeName locate the module's one
// sanctioned context-holding struct: the Session type of the execution
// layer.  A Session is itself a cancellation scope — it lives exactly
// as long as the run it governs — so storing its context is the
// documented exception to the pass-ctx-as-a-parameter rule.
const (
	sessionPkgSuffix = "/internal/run"
	sessionTypeName  = "Session"
)

// runCtxField flags struct fields of type context.Context anywhere but
// the session type.  Contexts stored in long-lived structs outlive the
// call they were meant to scope: cancellation stops propagating, and a
// value cancelled long ago silently poisons every later method call.
// The Go rule is to pass ctx as the first parameter; structs that need
// a scope should take a *run.Session instead.
func runCtxField(m *Module, p *Package) []Diagnostic {
	sanctioned := p.Path == m.Path+sessionPkgSuffix
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if sanctioned && ts.Name.Name == sessionTypeName {
				return true
			}
			for _, field := range st.Fields.List {
				if !isContextType(p, field.Type) {
					continue
				}
				name := "embedded field"
				if len(field.Names) > 0 {
					name = "field " + field.Names[0].Name
				}
				diags = append(diags, diag(m, "ctxfield", field.Pos(),
					"%s of struct %s stores a context.Context; pass ctx as a parameter (or take a *run.Session)",
					name, ts.Name.Name))
			}
			return true
		})
	}
	return diags
}

// isContextType reports whether the field type is context.Context,
// preferring type information and falling back to the syntactic
// `context.Context` selector when type checking could not resolve it.
func isContextType(p *Package, expr ast.Expr) bool {
	if p.Info != nil {
		if tv, ok := p.Info.Types[expr]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				return obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "context" && obj.Name() == "Context"
			}
			return false
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}
