package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that are
// fine to call anywhere: they build an explicitly seeded generator
// rather than draw from the shared global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// runGlobalRand flags every call to a package-level function of
// math/rand or math/rand/v2 other than the constructors above.  Those
// functions draw from the process-global source, whose sequence
// depends on whatever else has consumed it — identical seeds then stop
// giving identical graphs, case mixes and reports.  Methods on an
// injected *rand.Rand are always allowed.
func runGlobalRand(m *Module, p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an injected generator
			}
			if randConstructors[fn.Name()] {
				return true
			}
			diags = append(diags, diag(m, "globalrand", call.Pos(),
				"call to global %s.%s; inject a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name()))
			return true
		})
	}
	return diags
}
