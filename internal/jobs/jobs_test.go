package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTest(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(e.Close)
	return e
}

func waitTerminal(t *testing.T, e *Engine, id string) Snapshot {
	t.Helper()
	snap, ok := e.Wait(context.Background(), id, 5*time.Second)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	if !snap.State.Terminal() {
		t.Fatalf("job %s still %s after 5s", id, snap.State)
	}
	return snap
}

func TestSubmitRunsToDone(t *testing.T) {
	e := newTest(t, Options{Workers: 2})
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.ID == "" || snap.State.Terminal() {
		t.Fatalf("submit snapshot = %+v, want a queued/running job with an id", snap)
	}
	final := waitTerminal(t, e, snap.ID)
	if final.State != StateDone || final.Result != 42 || final.Err != nil {
		t.Fatalf("final = %+v, want done/42", final)
	}
	if final.Finished.Before(final.Submitted) {
		t.Fatalf("finished %v before submitted %v", final.Finished, final.Submitted)
	}
}

func TestFailedJobKeepsError(t *testing.T) {
	e := newTest(t, Options{})
	boom := errors.New("boom")
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, e, snap.ID)
	if final.State != StateFailed || !errors.Is(final.Err, boom) {
		t.Fatalf("final = %+v, want failed/boom", final)
	}
}

func TestUnknownJob(t *testing.T) {
	e := newTest(t, Options{})
	if _, ok := e.Get("nope"); ok {
		t.Fatal("Get found an unknown id")
	}
	if _, ok := e.Wait(context.Background(), "nope", 10*time.Millisecond); ok {
		t.Fatal("Wait found an unknown id")
	}
	if _, ok := e.Cancel("nope"); ok {
		t.Fatal("Cancel found an unknown id")
	}
}

func TestLongPollReturnsEarlyOnCompletion(t *testing.T) {
	e := newTest(t, Options{})
	release := make(chan struct{})
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		<-release
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A short poll on a busy job returns non-terminal, promptly.
	start := time.Now()
	got, ok := e.Wait(context.Background(), snap.ID, 20*time.Millisecond)
	if !ok || got.State.Terminal() {
		t.Fatalf("short poll = %+v/%v, want a live job", got, ok)
	}
	if time.Since(start) > time.Second {
		t.Fatal("short poll did not respect its wait bound")
	}
	// A long poll unblocks as soon as the job finishes, not at the
	// wait bound.
	start = time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	got, ok = e.Wait(context.Background(), snap.ID, 10*time.Second)
	if !ok || got.State != StateDone {
		t.Fatalf("long poll = %+v/%v, want done", got, ok)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("long poll waited to the bound despite completion")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := newTest(t, Options{Workers: 1})
	block := make(chan struct{})
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()
	// Occupy the single worker so the next submission stays queued.
	if _, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.Cancel(snap.ID)
	if !ok || got.State != StateCancelled {
		t.Fatalf("Cancel = %+v/%v, want cancelled", got, ok)
	}
	close(block)
	final := waitTerminal(t, e, snap.ID)
	if final.State != StateCancelled {
		t.Fatalf("final = %+v, want cancelled", final)
	}
	// Give the worker a beat to drain the skipped job, then confirm
	// the cancelled function never ran.
	time.Sleep(50 * time.Millisecond)
	if ran {
		t.Fatal("cancelled queued job still executed")
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := newTest(t, Options{})
	started := make(chan struct{})
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := e.Cancel(snap.ID); !ok {
		t.Fatal("Cancel lost the job")
	}
	final := waitTerminal(t, e, snap.ID)
	if final.State != StateCancelled {
		t.Fatalf("final = %+v, want cancelled", final)
	}
}

func TestTimeoutCoversQueueWait(t *testing.T) {
	e := newTest(t, Options{Workers: 1, DefaultTimeout: 50 * time.Millisecond, MaxTimeout: 50 * time.Millisecond})
	block := make(chan struct{})
	defer close(block)
	if _, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	// This job spends its whole budget queued behind the blocker; its
	// context must already be expired when it runs.
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	block <- struct{}{}
	final := waitTerminal(t, e, snap.ID)
	if final.State != StateFailed || !errors.Is(final.Err, context.DeadlineExceeded) {
		t.Fatalf("final = %+v, want failed/deadline-exceeded", final)
	}
}

func TestQueueFullRejects(t *testing.T) {
	e := newTest(t, Options{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	defer close(block)
	blocker := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	// First fills the worker (after dequeue), second fills the queue;
	// submissions race the dequeue, so keep submitting until the
	// queue is genuinely full, then require rejection.
	deadline := time.Now().Add(5 * time.Second)
	var rejected bool
	for time.Now().Before(deadline) {
		if _, err := e.Submit("plan", 0, blocker); errors.Is(err, ErrQueueFull) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("queue never rejected despite a blocked worker")
	}
}

func TestTTLSweep(t *testing.T) {
	e := newTest(t, Options{TTL: 30 * time.Millisecond})
	snap, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, e, snap.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := e.Get(snap.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job survived well past its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	e := New(Options{Workers: 1})
	started := make(chan struct{})
	running, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if got, _ := e.Get(running.ID); got.State != StateCancelled {
		t.Fatalf("running job after Close = %s, want cancelled", got.State)
	}
	if got, _ := e.Get(queued.ID); got.State != StateCancelled {
		t.Fatalf("queued job after Close = %s, want cancelled", got.State)
	}
	if _, err := e.Submit("plan", 0, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestConcurrentSubmitPollCancel(t *testing.T) {
	e := newTest(t, Options{Workers: 4, QueueDepth: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				snap, err := e.Submit(fmt.Sprintf("op%d", w%3), 0, func(ctx context.Context) (any, error) {
					return i, nil
				})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%5 == 0 {
					e.Cancel(snap.ID)
				}
				got, ok := e.Wait(context.Background(), snap.ID, 5*time.Second)
				if !ok || !got.State.Terminal() {
					t.Errorf("job %s = %+v/%v, want terminal", snap.ID, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
