// Package jobs is the daemon's async execution engine: submissions
// return a job id immediately, a bounded worker pool drains a FIFO
// queue, and clients poll (or long-poll) the job until it reaches a
// terminal state.  The engine is deliberately generic — a job is any
// func(ctx) (result, error) — so the server layer can run every
// endpoint's solve path through it without the engine knowing about
// graphs or plans.
//
// Lifecycle: queued → running → done | failed | cancelled.  A queued
// job can be cancelled before a worker picks it up; a running job's
// context is cancelled and the job lands in cancelled when its
// function returns.  Terminal jobs are retained for Options.TTL so
// clients can fetch results, then swept by the janitor.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Func is the work a job runs on a pool worker.  The context carries
// the job's deadline (measured from submission, so queue wait counts
// against it) and is cancelled when the job is.
type Func func(ctx context.Context) (any, error)

// Submission errors.
var (
	// ErrQueueFull rejects a submission when the queue is at depth —
	// the async analogue of the sync path's 429 shed.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: engine closed")
)

// Options tunes one engine.  Zero values take defaults.
type Options struct {
	// Workers is the async pool size (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64);
	// submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// TTL is how long a terminal job (and its result) stays
	// retrievable (default 5m).
	TTL time.Duration
	// DefaultTimeout bounds a job whose submission named none;
	// MaxTimeout caps what a submission may ask for (defaults 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TTL <= 0 {
		o.TTL = 5 * time.Minute
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * time.Second
	}
	return o
}

// job is the engine's record of one submission.  All mutable fields
// are guarded by the engine mutex; done is closed exactly once, on the
// transition to a terminal state.
type job struct {
	id        string
	op        string
	fn        Func
	timeout   time.Duration
	state     State
	result    any
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	// cancel interrupts the running function.  Only the CancelFunc is
	// stored (the context itself stays a local of the worker, per the
	// module's context-in-struct rule).
	cancel    context.CancelFunc
	cancelReq bool
	done      chan struct{}
}

// Snapshot is a point-in-time copy of one job's externally visible
// state.
type Snapshot struct {
	ID        string
	Op        string
	State     State
	Result    any
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Engine runs submitted jobs on a bounded worker pool.
type Engine struct {
	opts Options

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool

	queue       chan *job
	wg          sync.WaitGroup
	janitorStop chan struct{}
}

// New starts an engine: opts.Workers pool workers plus one janitor
// sweeping expired terminal jobs.  Close stops all of them.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:        opts,
		jobs:        make(map[string]*job),
		queue:       make(chan *job, opts.QueueDepth),
		janitorStop: make(chan struct{}),
	}
	obs.JobsQueueDepth.Set(0)
	e.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go e.worker()
	}
	e.wg.Add(1)
	go e.janitor()
	return e
}

// newID returns a 128-bit random hex job id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Submit queues fn under a fresh job id and returns its snapshot
// immediately.  timeout bounds the job from submission (0 takes the
// default; asks above MaxTimeout are capped).  The queue being full
// fails fast with ErrQueueFull.
func (e *Engine) Submit(op string, timeout time.Duration, fn Func) (Snapshot, error) {
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	if timeout > e.opts.MaxTimeout {
		timeout = e.opts.MaxTimeout
	}
	id, err := newID()
	if err != nil {
		obs.JobsRejected.Inc()
		return Snapshot{}, err
	}
	j := &job{
		id:        id,
		op:        op,
		fn:        fn,
		timeout:   timeout,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		obs.JobsRejected.Inc()
		return Snapshot{}, ErrClosed
	}
	// The non-blocking send happens under the mutex Close also takes,
	// so it can never race a close of the queue channel.
	select {
	case e.queue <- j:
	default:
		obs.JobsRejected.Inc()
		return Snapshot{}, ErrQueueFull
	}
	e.jobs[id] = j
	obs.JobsSubmitted.Inc()
	obs.JobsQueueDepth.Set(int64(len(e.queue)))
	obs.JobsRetained.Set(int64(len(e.jobs)))
	return j.snapshotLocked(), nil
}

// snapshotLocked copies the job's visible state; the engine mutex is
// held.
func (j *job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:        j.id,
		Op:        j.op,
		State:     j.state,
		Result:    j.result,
		Err:       j.err,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Get returns the job's current snapshot.
func (e *Engine) Get(id string) (Snapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

// Wait long-polls: it returns the job's snapshot as soon as it is
// terminal, or after wait elapses (or ctx ends), whichever is first.
// The returned snapshot is current either way; callers distinguish by
// State.Terminal().
func (e *Engine) Wait(ctx context.Context, id string, wait time.Duration) (Snapshot, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Snapshot{}, false
	}
	done := j.done
	e.mu.Unlock()
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return e.Get(id)
}

// Cancel moves a queued job straight to cancelled, or interrupts a
// running one (which lands in cancelled when its function returns).
// Cancelling a terminal job is a no-op; the bool reports whether the
// id was known.
func (e *Engine) Cancel(id string) (Snapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	switch j.state {
	case StateQueued:
		e.finishLocked(j, StateCancelled, nil, context.Canceled)
	case StateRunning:
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshotLocked(), true
}

// QueueDepth returns the jobs currently waiting for a worker.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// finishLocked performs the one transition to a terminal state: state,
// result, timestamps, done-channel close, and the per-outcome
// instruments.  The engine mutex is held.
func (e *Engine) finishLocked(j *job, s State, result any, err error) {
	if j.state.Terminal() {
		return
	}
	if j.state == StateRunning {
		obs.JobsRunning.Add(-1)
	}
	j.state = s
	j.result = result
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	obs.JobsFinished(string(s)).Inc()
	obs.JobTimer(j.op).Observe(j.finished.Sub(j.submitted))
	if s == StateCancelled {
		obs.JobsCancelled.Inc()
	}
}

// worker drains the queue until Close closes it.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.runJob(j)
	}
}

// runJob executes one dequeued job on this worker.
func (e *Engine) runJob(j *job) {
	e.mu.Lock()
	obs.JobsQueueDepth.Set(int64(len(e.queue)))
	if j.state.Terminal() {
		// Cancelled while queued (or the engine is closing): nothing
		// to run.
		e.mu.Unlock()
		return
	}
	// The deadline is anchored at submission so queue wait counts
	// against the client's budget, exactly like admission wait does on
	// the sync path.
	ctx, cancel := context.WithDeadline(context.Background(), j.submitted.Add(j.timeout))
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	obs.JobsQueueWait.Observe(j.started.Sub(j.submitted))
	obs.JobsRunning.Add(1)
	fn := j.fn
	e.mu.Unlock()

	result, err := fn(ctx)
	cancel()

	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case j.cancelReq:
		e.finishLocked(j, StateCancelled, nil, context.Canceled)
	case err != nil:
		e.finishLocked(j, StateFailed, nil, err)
	default:
		e.finishLocked(j, StateDone, result, nil)
	}
}

// janitor sweeps terminal jobs past their retention TTL.
func (e *Engine) janitor() {
	defer e.wg.Done()
	interval := e.opts.TTL / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.janitorStop:
			return
		case <-t.C:
			e.sweep(time.Now())
		}
	}
}

// sweep drops terminal jobs whose retention expired before now.
func (e *Engine) sweep(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, j := range e.jobs {
		if j.state.Terminal() && now.Sub(j.finished) > e.opts.TTL {
			delete(e.jobs, id)
			obs.JobsExpired.Inc()
		}
	}
	obs.JobsRetained.Set(int64(len(e.jobs)))
}

// Close stops intake, cancels every non-terminal job, and waits for
// the workers and janitor to exit.  Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, j := range e.jobs {
		switch j.state {
		case StateQueued:
			e.finishLocked(j, StateCancelled, nil, ErrClosed)
		case StateRunning:
			j.cancelReq = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	close(e.queue)
	close(e.janitorStop)
	e.mu.Unlock()
	e.wg.Wait()
	obs.JobsQueueDepth.Set(0)
	obs.JobsRunning.Set(0)
}
