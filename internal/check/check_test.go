package check

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
)

func TestEnabledInTests(t *testing.T) {
	if !Enabled() {
		t.Fatal("Enabled() = false inside a test binary")
	}
	// SetEnabled must not be able to turn checks off under test.
	SetEnabled(false)
	if !Enabled() {
		t.Fatal("SetEnabled(false) disabled checks inside a test binary")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("Enabled() = false after SetEnabled(true)")
	}
	SetEnabled(false)
}

func diamond() *dag.Graph {
	g := dag.New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
	}
	g.AddEdge(dag.Edge{From: 0, To: 1, Size: 1, EDRAMTime: 1})
	g.AddEdge(dag.Edge{From: 0, To: 2, Size: 1, EDRAMTime: 1})
	g.AddEdge(dag.Edge{From: 1, To: 3, Size: 1, EDRAMTime: 1})
	g.AddEdge(dag.Edge{From: 2, To: 3, Size: 1, EDRAMTime: 1})
	return g
}

func TestCheckDAG(t *testing.T) {
	if err := CheckDAG(diamond()); err != nil {
		t.Errorf("CheckDAG(diamond) = %v", err)
	}
	if err := CheckDAG(nil); err == nil {
		t.Error("CheckDAG(nil) accepted")
	}
	cyc := dag.New("cyc")
	cyc.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
	cyc.AddNode(dag.Node{Kind: dag.OpConv, Exec: 1})
	cyc.AddEdge(dag.Edge{From: 0, To: 1, Size: 1})
	cyc.AddEdge(dag.Edge{From: 1, To: 0, Size: 1})
	if err := CheckDAG(cyc); err == nil {
		t.Error("CheckDAG accepted a cyclic graph")
	}
}

func TestCheckRetiming(t *testing.T) {
	g := diamond()
	tests := []struct {
		name  string
		r     []int
		rEdge []int
		want  string // "" = legal; otherwise substring of the error
	}{
		{"all-zero", []int{0, 0, 0, 0}, []int{0, 0, 0, 0}, ""},
		{"legal-gaps", []int{2, 1, 1, 0}, []int{1, 1, 1, 1}, ""},
		{"slack-ok", []int{2, 0, 0, 0}, []int{1, 2, 0, 0}, ""},
		{"negative-r", []int{-1, 0, 0, 0}, []int{0, 0, 0, 0}, "negative retiming"},
		{"gap-too-small", []int{0, 0, 0, 0}, []int{1, 0, 0, 0}, "no legal edge retiming"},
		{"rrv-over-bound", []int{3, 0, 0, 0}, []int{3, 0, 0, 0}, "outside Theorem 3.1"},
		{"rrv-negative", []int{1, 0, 0, 0}, []int{-1, 0, 0, 0}, "outside Theorem 3.1"},
		{"wrong-lengths", []int{0, 0}, []int{0, 0, 0, 0}, "covers"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckRetiming(g, tc.r, tc.rEdge)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("CheckRetiming: %v, want legal", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckRetiming = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestCheckSchedule(t *testing.T) {
	exec := []int{2, 1, 1}
	tests := []struct {
		name               string
		numPEs, period     int
		slots              []Slot
		cacheLoad, makeCap int
		want               string
	}{
		{"valid", 2, 3,
			[]Slot{{PE: 0, Start: 0, Finish: 2}, {PE: 0, Start: 2, Finish: 3}, {PE: 1, Start: 0, Finish: 1}},
			2, 4, ""},
		{"overlap", 2, 3,
			[]Slot{{PE: 0, Start: 0, Finish: 2}, {PE: 0, Start: 1, Finish: 2}, {PE: 1, Start: 0, Finish: 1}},
			0, 4, "oversubscribed"},
		{"pe-out-of-range", 2, 3,
			[]Slot{{PE: 2, Start: 0, Finish: 2}, {PE: 0, Start: 0, Finish: 1}, {PE: 1, Start: 0, Finish: 1}},
			0, 4, "want in [0,2)"},
		{"window-outside", 2, 3,
			[]Slot{{PE: 0, Start: 2, Finish: 4}, {PE: 0, Start: 0, Finish: 1}, {PE: 1, Start: 0, Finish: 1}},
			0, 4, "outside [0,3]"},
		{"wrong-duration", 2, 3,
			[]Slot{{PE: 0, Start: 0, Finish: 1}, {PE: 0, Start: 2, Finish: 3}, {PE: 1, Start: 0, Finish: 1}},
			0, 4, "execution time"},
		{"cache-overflow", 2, 3,
			[]Slot{{PE: 0, Start: 0, Finish: 2}, {PE: 0, Start: 2, Finish: 3}, {PE: 1, Start: 0, Finish: 1}},
			5, 4, "capacity units"},
		{"bad-pes", 0, 3, []Slot{{}, {}, {}}, 0, 4, "PEs"},
		{"bad-period", 2, 0, []Slot{{}, {}, {}}, 0, 4, "period"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckSchedule(tc.numPEs, tc.period, exec, tc.slots, tc.cacheLoad, tc.makeCap)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("CheckSchedule: %v, want valid", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckSchedule = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestCheckAllocation(t *testing.T) {
	g := diamond() // 4 edges, Size 1 each
	cache2 := []pim.Placement{pim.InCache, pim.InCache, pim.InEDRAM, pim.InEDRAM}
	tests := []struct {
		name      string
		placement []pim.Placement
		capacity  int
		claim     Claim
		r         []int
		want      string
	}{
		{"consistent", cache2, 4, Claim{CacheUsed: 2, CachedCount: 2, RMax: 1}, []int{1, 0, 0, 0}, ""},
		{"alloc-only", cache2, 4, Claim{CacheUsed: 2, CachedCount: 2, RMax: -1}, nil, ""},
		{"over-capacity", cache2, 1, Claim{CacheUsed: 2, CachedCount: 2, RMax: -1}, nil, "capacity is 1"},
		{"wrong-used", cache2, 4, Claim{CacheUsed: 3, CachedCount: 2, RMax: -1}, nil, "claimed 3"},
		{"wrong-count", cache2, 4, Claim{CacheUsed: 2, CachedCount: 1, RMax: -1}, nil, "claimed 1"},
		{"wrong-rmax", cache2, 4, Claim{CacheUsed: 2, CachedCount: 2, RMax: 2}, []int{1, 0, 0, 0}, "R_max 1"},
		{"bad-placement", []pim.Placement{9, pim.InEDRAM, pim.InEDRAM, pim.InEDRAM}, 4,
			Claim{RMax: -1}, nil, "invalid placement"},
		{"short-placement", cache2[:2], 4, Claim{RMax: -1}, nil, "covers 2/4"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckAllocation(g, tc.placement, tc.capacity, tc.claim, tc.r)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("CheckAllocation: %v, want consistent", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckAllocation = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}
