// Package check is the run-time invariant layer: executable
// restatements of the paper's correctness conditions, callable from
// any stage of the pipeline.
//
// Each validator re-derives one contract from first principles —
// retiming legality R(i) >= R(i,j) >= R(j) with the Theorem 3.1 bound
// rrv <= 2, schedule soundness (no PE runs two tasks at once, cached
// IPRs fit the array), allocation bookkeeping (the DP's claimed
// profit, footprint and prologue match its placement), and DAG
// structural sanity.  Production code calls them behind Enabled() so
// the checks cost nothing when off; tests get them unconditionally.
//
// The validators deliberately take plain slices rather than the
// producing packages' result types: check imports only dag and pim, so
// retime, sched, core, opt, sim and synth can all call it without
// import cycles.
package check

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
)

// enabled is the process-wide switch for checks in production
// binaries.  Tests bypass it: Enabled is always true under `go test`.
var enabled atomic.Bool

// SetEnabled turns the run-time checks on or off for production code
// paths (for example from a -check CLI flag).  Under `go test` the
// checks are always on regardless.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the invariant checks should run: either
// explicitly enabled, or executing inside a test binary.
func Enabled() bool { return enabled.Load() || testing.Testing() }

// CheckDAG verifies structural sanity of a task graph: every edge
// connects vertices that exist, no self-loops, and the graph is
// acyclic.  It is the invariant every generator and graph transform
// (synth, clustering, replication, codec) must preserve.
func CheckDAG(g *dag.Graph) error {
	if g == nil {
		return fmt.Errorf("check: nil graph")
	}
	n := g.NumNodes()
	for i := range g.Edges() {
		e := &g.Edges()[i]
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return fmt.Errorf("check: graph %q edge %d: endpoints %d->%d outside [0,%d)", g.Name(), i, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("check: graph %q edge %d: self-loop on vertex %d", g.Name(), i, e.From)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return fmt.Errorf("check: graph %q: %w", g.Name(), err)
	}
	return nil
}

// CheckRetiming verifies Definition 3.1's legality and the Theorem 3.1
// bound for a retiming: r holds the per-vertex retiming values R(i),
// rEdge the chosen per-edge relative retiming values rrv(i,j).  A
// legal retiming has every R(i) >= 0 and, on every edge, an edge
// retiming R(i,j) with R(i) >= R(i,j) >= R(j) — equivalently
// R(i) - R(j) >= rrv(i,j) >= 0 — and Theorem 3.1 caps rrv at 2
// whenever transfers fit within one period.
func CheckRetiming(g *dag.Graph, r, rEdge []int) error {
	if len(r) != g.NumNodes() || len(rEdge) != g.NumEdges() {
		return fmt.Errorf("check: retiming covers %d vertices, %d edges; graph %q has %d, %d",
			len(r), len(rEdge), g.Name(), g.NumNodes(), g.NumEdges())
	}
	for v, x := range r {
		if x < 0 {
			return fmt.Errorf("check: vertex %d has negative retiming %d", v, x)
		}
	}
	for i := range g.Edges() {
		e := &g.Edges()[i]
		rrv := rEdge[i]
		if rrv < 0 || rrv > 2 {
			return fmt.Errorf("check: edge %d (%d->%d): rrv %d outside Theorem 3.1's [0,2]", i, e.From, e.To, rrv)
		}
		if gap := r[e.From] - r[e.To]; gap < rrv {
			return fmt.Errorf("check: edge %d (%d->%d): R(i)-R(j) = %d < rrv %d; no legal edge retiming exists",
				i, e.From, e.To, gap, rrv)
		}
	}
	return nil
}

// Slot is one task's occupancy of a PE within an iteration period.
type Slot struct {
	PE     int
	Start  int
	Finish int
}

// CheckSchedule verifies an iteration schedule against the hardware:
// slots[v] places vertex v (with execution time exec[v]) on a PE for
// [Start, Finish).  No PE may run two tasks at once, every window must
// lie inside [0, period], every duration must equal the vertex's
// execution time, and the cached-IPR footprint cacheLoad must fit the
// array's cacheCap capacity units.
func CheckSchedule(numPEs, period int, exec []int, slots []Slot, cacheLoad, cacheCap int) error {
	if numPEs < 1 {
		return fmt.Errorf("check: %d PEs; want >= 1", numPEs)
	}
	if period < 1 {
		return fmt.Errorf("check: period %d; want >= 1", period)
	}
	if len(slots) != len(exec) {
		return fmt.Errorf("check: %d slots for %d vertices", len(slots), len(exec))
	}
	byPE := make(map[int][]int) // PE -> slot indices
	for v, s := range slots {
		if s.PE < 0 || s.PE >= numPEs {
			return fmt.Errorf("check: vertex %d on PE %d; want in [0,%d)", v, s.PE, numPEs)
		}
		if s.Start < 0 || s.Finish > period {
			return fmt.Errorf("check: vertex %d window [%d,%d] outside [0,%d]", v, s.Start, s.Finish, period)
		}
		if got := s.Finish - s.Start; got != exec[v] {
			return fmt.Errorf("check: vertex %d occupies %d units; execution time is %d", v, got, exec[v])
		}
		byPE[s.PE] = append(byPE[s.PE], v)
	}
	pes := make([]int, 0, len(byPE))
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		vs := byPE[pe]
		sort.Slice(vs, func(a, b int) bool {
			if slots[vs[a]].Start != slots[vs[b]].Start {
				return slots[vs[a]].Start < slots[vs[b]].Start
			}
			return vs[a] < vs[b]
		})
		for i := 1; i < len(vs); i++ {
			prev, cur := vs[i-1], vs[i]
			if slots[cur].Start < slots[prev].Finish {
				return fmt.Errorf("check: PE %d oversubscribed: vertices %d and %d overlap ([%d,%d) vs [%d,%d))",
					pe, prev, cur, slots[prev].Start, slots[prev].Finish, slots[cur].Start, slots[cur].Finish)
			}
		}
	}
	if cacheLoad > cacheCap {
		return fmt.Errorf("check: cached IPRs need %d capacity units; array has %d", cacheLoad, cacheCap)
	}
	return nil
}

// Claim is the bookkeeping an allocation/retiming stage reports about
// its own result, re-verified by CheckAllocation.
type Claim struct {
	// CacheUsed is the claimed cache footprint of the placement.
	CacheUsed int
	// CachedCount is the claimed number of cached IPRs.
	CachedCount int
	// RMax is the claimed maximum retiming value (prologue iterations).
	// Negative means "not claimed" (allocation-only call sites).
	RMax int
}

// CheckAllocation verifies DP/prologue consistency: the placement's
// actual footprint and cached count must match the claim and fit the
// capacity, and — when a retiming r is supplied — the claimed RMax
// must equal max over R (the prologue is R_max x p, §3.2).  Pass
// r == nil and Claim.RMax < 0 to check an allocation alone.
func CheckAllocation(g *dag.Graph, placement []pim.Placement, capacity int, claim Claim, r []int) error {
	if len(placement) != g.NumEdges() {
		return fmt.Errorf("check: placement covers %d/%d edges", len(placement), g.NumEdges())
	}
	used, count := 0, 0
	for i := range g.Edges() {
		switch placement[i] {
		case pim.InCache:
			used += g.Edges()[i].Size
			count++
		case pim.InEDRAM:
			// eDRAM costs no cache capacity.
		default:
			return fmt.Errorf("check: edge %d has invalid placement %v", i, placement[i])
		}
	}
	if used > capacity {
		return fmt.Errorf("check: placement uses %d cache units; capacity is %d", used, capacity)
	}
	if used != claim.CacheUsed {
		return fmt.Errorf("check: placement uses %d cache units; stage claimed %d", used, claim.CacheUsed)
	}
	if count != claim.CachedCount {
		return fmt.Errorf("check: placement caches %d IPRs; stage claimed %d", count, claim.CachedCount)
	}
	if r != nil && claim.RMax >= 0 {
		rmax := 0
		for _, x := range r {
			if x > rmax {
				rmax = x
			}
		}
		if rmax != claim.RMax {
			return fmt.Errorf("check: retiming has R_max %d; stage claimed %d", rmax, claim.RMax)
		}
	}
	return nil
}
