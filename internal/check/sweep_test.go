package check_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/pim"
	"repro/internal/retime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
)

// TestPipelinePropertySweep drives the full Para-CONV pipeline over a
// seeded family of synthetic graphs and re-verifies every stage's
// output through the invariant layer directly: the generated graph is
// a DAG, the plan's retiming is legal and Theorem 3.1-bounded, the
// kernel schedule never oversubscribes a PE or the cache, the
// allocation's bookkeeping matches its placement, and the simulator
// accepts and completes the plan.  The wired-in checks also run
// implicitly (they are always on under `go test`), so a regression in
// any stage fails here twice over.
func TestPipelinePropertySweep(t *testing.T) {
	const seeds = 60 // >= 50 seeded graphs per the correctness-tooling spec
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			t.Parallel()
			vertices := 10 + (s*7)%51 // 10..60
			edges := vertices + (s*13)%(2*vertices) + 1
			pes := []int{4, 8, 16, 32}[s%4]
			g, err := synth.Generate(synth.Params{
				Name:     fmt.Sprintf("sweep%d", s),
				Vertices: vertices,
				Edges:    edges,
				Seed:     int64(1000 + s),
			})
			if err != nil {
				t.Fatalf("synth: %v", err)
			}
			if err := check.CheckDAG(g); err != nil {
				t.Fatalf("generated graph: %v", err)
			}

			cfg := pim.Neurocube(pes)
			plan, err := sched.ParaCONV(g, cfg)
			if err != nil {
				t.Fatalf("para-conv: %v", err)
			}

			kernel := plan.Iter.Graph
			if err := check.CheckDAG(kernel); err != nil {
				t.Errorf("kernel graph: %v", err)
			}
			if err := check.CheckRetiming(kernel, plan.Retiming.R, plan.Retiming.REdge); err != nil {
				t.Errorf("plan retiming: %v", err)
			}

			exec := make([]int, kernel.NumNodes())
			slots := make([]check.Slot, len(plan.Iter.Tasks))
			for i := range plan.Iter.Tasks {
				tk := plan.Iter.Tasks[i]
				exec[i] = kernel.Nodes()[i].Exec
				slots[i] = check.Slot{PE: int(tk.PE), Start: tk.Start, Finish: tk.Finish}
			}
			if err := check.CheckSchedule(plan.Iter.PEs, plan.Iter.Period, exec, slots,
				plan.CacheLoadUnits, cfg.TotalCacheUnits()); err != nil {
				t.Errorf("kernel schedule: %v", err)
			}

			// Solver certification on the real competitor list: the
			// production bitset DP must agree with the rolling-row DP,
			// the branch-and-bound oracle and the full-table reference
			// on this seed's allocation instance — and reconstruct the
			// exact subset the full table would.
			tm := plan.Iter.Timing()
			classes, err := retime.Classify(kernel, tm)
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			items, err := core.BuildItems(kernel, classes, tm)
			if err != nil {
				t.Fatalf("build items: %v", err)
			}
			capacity := cfg.TotalCacheUnits()
			chosen, profit := core.Knapsack(items, capacity)
			if p := core.KnapsackProfit(items, capacity); p != profit {
				t.Errorf("bitset DP profit %d != rolling DP %d", profit, p)
			}
			if p := core.BranchAndBound(items, capacity); p != profit {
				t.Errorf("bitset DP profit %d != branch-and-bound %d", profit, p)
			}
			refChosen, refProfit := core.KnapsackFullTable(items, capacity)
			if refProfit != profit {
				t.Errorf("bitset DP profit %d != full-table %d", profit, refProfit)
			}
			for i := range chosen {
				if chosen[i] != refChosen[i] {
					t.Errorf("item %d: bitset chose %v, full table %v", i, chosen[i], refChosen[i])
				}
			}

			claim := check.Claim{
				CacheUsed:   plan.CacheLoadUnits,
				CachedCount: plan.ConcurrentIterations * plan.CachedIPRs,
				RMax:        plan.RMax,
			}
			if err := check.CheckAllocation(kernel, plan.Iter.Assignment,
				cfg.TotalCacheUnits(), claim, plan.Retiming.R); err != nil {
				t.Errorf("plan allocation: %v", err)
			}

			stats, err := sim.Run(plan, cfg, 25)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if stats.Iterations < 25 {
				t.Errorf("simulated %d iterations; want >= 25", stats.Iterations)
			}
			if stats.PeakCacheLoad > cfg.TotalCacheUnits() {
				t.Errorf("peak cache load %d exceeds capacity %d", stats.PeakCacheLoad, cfg.TotalCacheUnits())
			}
		})
	}
}

// TestSweepCoversSPARTA runs the baseline scheduler through the same
// validators on a smaller seed family: SPARTA never retimes, so its
// plans must pass CheckSchedule with a zero retiming.
func TestSweepCoversSPARTA(t *testing.T) {
	for s := 0; s < 10; s++ {
		g, err := synth.Generate(synth.Params{
			Name:     fmt.Sprintf("sparta%d", s),
			Vertices: 12 + s*4,
			Edges:    20 + s*8,
			Seed:     int64(2000 + s),
		})
		if err != nil {
			t.Fatalf("seed %d: synth: %v", s, err)
		}
		cfg := pim.Neurocube(8)
		plan, err := sched.SPARTA(g, cfg)
		if err != nil {
			t.Fatalf("seed %d: sparta: %v", s, err)
		}
		if plan.RMax != 0 {
			t.Errorf("seed %d: SPARTA plan claims RMax %d", s, plan.RMax)
		}
		kernel := plan.Iter.Graph
		exec := make([]int, kernel.NumNodes())
		slots := make([]check.Slot, len(plan.Iter.Tasks))
		for i := range plan.Iter.Tasks {
			tk := plan.Iter.Tasks[i]
			exec[i] = kernel.Nodes()[i].Exec
			slots[i] = check.Slot{PE: int(tk.PE), Start: tk.Start, Finish: tk.Finish}
		}
		if err := check.CheckSchedule(plan.Iter.PEs, plan.Iter.Period, exec, slots, 0, cfg.TotalCacheUnits()); err != nil {
			t.Errorf("seed %d: schedule: %v", s, err)
		}
		if _, err := sim.Run(plan, cfg, 10); err != nil {
			t.Errorf("seed %d: sim: %v", s, err)
		}
	}
}
