package run

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
)

// graphFPs memoizes graph fingerprints by pointer.  Graphs are treated
// as immutable once built (every mutation path in the module — synth
// generation, Clone, Perturb — produces a fresh *Graph), so a pointer
// identifies its content for the life of the process.  The memo is
// bounded: once it holds maxGraphFPs entries it is cleared wholesale,
// so a long-lived server churning through graphs does not pin every
// one of them (the map key keeps the *Graph alive) — eviction only
// costs a re-hash on the next lookup.
var (
	graphFPMu sync.Mutex
	graphFPs  = make(map[*dag.Graph]string, 64)
)

const maxGraphFPs = 4096

// fpBufPool recycles the binary-encoding scratch GraphFingerprint
// serializes graphs into before hashing.
var fpBufPool = sync.Pool{New: func() any { return new([]byte) }}

// GraphFingerprint returns a content hash of the graph: sha256 over
// the dag binary codec, which covers the name, every node (kind, exec)
// and every edge (endpoints, size, transfer times) — exactly the
// inputs the planners read.  The result is memoized per *Graph.
func GraphFingerprint(g *dag.Graph) string {
	if g == nil {
		return "graph:nil"
	}
	graphFPMu.Lock()
	fp, ok := graphFPs[g]
	graphFPMu.Unlock()
	if ok {
		return fp
	}
	bp := fpBufPool.Get().(*[]byte)
	frame := dag.AppendBinary((*bp)[:0], g)
	sum := sha256.Sum256(frame)
	*bp = frame[:0]
	fpBufPool.Put(bp)
	fp = "graph:" + hex.EncodeToString(sum[:])
	graphFPMu.Lock()
	if len(graphFPs) >= maxGraphFPs {
		clear(graphFPs)
	}
	graphFPs[g] = fp
	graphFPMu.Unlock()
	return fp
}

// planFingerprint flattens a cache key into the module's content
// fingerprint for a complete planning problem: hex sha256 over the
// '|'-joined key fields.  This one string is the durable store's file
// key AND the {fp} of the cluster's GET /v1/plans/{fp} protocol —
// sharing the keyspace is what lets an owner serve a peer's lookup
// straight from the store's payload bytes.
func planFingerprint(key cacheKey) string {
	h := sha256.New()
	io.WriteString(h, key.variant)
	io.WriteString(h, "|")
	io.WriteString(h, key.graph)
	io.WriteString(h, "|")
	io.WriteString(h, key.config)
	io.WriteString(h, "|")
	io.WriteString(h, key.extra)
	return hex.EncodeToString(h.Sum(nil))
}

// PlanFingerprint returns the cluster-wide content fingerprint of one
// planning problem, as routed by the consistent-hash ring and served
// at GET /v1/plans/{fp}.  The empty variant normalizes to the default
// full Para-CONV planner, mirroring the server's dispatch, so clients
// and servers fingerprint identically.
func PlanFingerprint(variant, extra string, g *dag.Graph, cfg pim.Config) string {
	if variant == "" {
		variant = variantParaCONV
	}
	return planFingerprint(cacheKey{
		graph:   GraphFingerprint(g),
		config:  ConfigFingerprint(cfg),
		variant: variant,
		extra:   extra,
	})
}

// ConfigFingerprint returns a content key for a PIM configuration.
// Config is a flat struct of scalars and a name, so the Go-syntax
// representation is a complete, deterministic encoding.
func ConfigFingerprint(cfg pim.Config) string {
	return fmt.Sprintf("cfg:%#v", cfg)
}

// ScheduleFingerprint returns a content hash of a fixed iteration
// schedule, for keying the given-schedule planner variant: the PE
// count, period, every task placement and every IPR assignment, plus
// the underlying graph's fingerprint.
func ScheduleFingerprint(iter sched.IterationSchedule) string {
	h := sha256.New()
	fmt.Fprintf(h, "pes %d period %d\n", iter.PEs, iter.Period)
	for i := range iter.Tasks {
		t := &iter.Tasks[i]
		fmt.Fprintf(h, "t %d %d %d %d\n", t.Node, t.PE, t.Start, t.Finish)
	}
	for _, a := range iter.Assignment {
		fmt.Fprintf(h, "a %d\n", a)
	}
	io.WriteString(h, GraphFingerprint(iter.Graph))
	return "iter:" + hex.EncodeToString(h.Sum(nil))
}
