package run

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wire"
)

// DefaultCacheBound is the plan-cache capacity of a new Session, in
// entries.  A full experiment suite — including the sensitivity
// study's perturbed replans — solves ~500 distinct (graph, config,
// variant) cells, so the default keeps all of them live for one
// benchtab invocation (the closing comparison pass is then pure cache
// hits) while still bounding memory for unbounded sweeps.
const DefaultCacheBound = 1024

// cacheKey identifies one planning problem: what graph, on what
// architecture, under which planner variant (and, for the
// given-schedule variant, which fixed schedule).
type cacheKey struct {
	graph   string
	config  string
	variant string
	extra   string
}

// CacheStats is a snapshot of a Session's plan-cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DedupHits counts misses that avoided a solve by riding another
	// caller's in-flight solve of the same problem (singleflight).
	DedupHits uint64
	// StoreHits counts in-memory misses served from the durable tier
	// (no solve ran); StoreMisses counts misses that consulted the
	// durable tier and still had to solve.  Both stay zero with no
	// store attached.
	StoreHits   uint64
	StoreMisses uint64
	// PeerFills counts misses served by fetching the owning peer's
	// plan over the cluster fill protocol (no local solve ran);
	// PeerFallbacks counts fills that failed and degraded to a local
	// solve.  Both stay zero with no cluster attached.
	PeerFills     uint64
	PeerFallbacks uint64
	// Size is the current entry count; Bound is the capacity
	// (0 means caching is disabled).
	Size  int
	Bound int
}

type cacheEntry struct {
	key  cacheKey
	fp   string // planFingerprint(key), indexed in byFP
	plan *sched.Plan
	// lean is the entry's encoded kernel-free fill frame, built lazily
	// on the first peer fill served from this entry and shared by
	// reference afterwards (fill responses only read it).  Nil for
	// schemes that are not lean-framable.
	lean []byte
}

// planCache is a mutex-guarded LRU map from planning problems to
// solved plans.  Cached *Plan values are shared between callers and
// treated as immutable by every consumer in the module.
type planCache struct {
	mu        sync.Mutex
	bound     int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	byFP      map[string]*list.Element // same entries, keyed by plan fingerprint
	hits      uint64
	misses    uint64
	evictions uint64
	dedupHits uint64

	// store is the optional durable second tier (see store.go); the
	// counters record its consultations.  Set once via AttachStore
	// before traffic, read lock-free afterwards.
	store       BlobStore
	storeHits   uint64
	storeMisses uint64

	// peers is the optional cluster tier consulted after the store
	// (see peer.go).  Atomic because a cluster attaches after the
	// server has already bound its listener — tests and the bench
	// harness attach once the :0 port is known, possibly with
	// requests in flight.
	peers         atomic.Pointer[peerRef]
	peerFills     uint64
	peerFallbacks uint64

	// flights holds the in-progress solves concurrent misses attach
	// to (see singleflight.go).  A separate mutex so waiters never
	// contend with the LRU's get/put fast path.
	flightMu sync.Mutex
	flights  map[cacheKey]*flightCall
}

func newPlanCache(bound int) *planCache {
	if bound < 0 {
		bound = 0
	}
	return &planCache{
		bound:   bound,
		ll:      list.New(),
		items:   make(map[cacheKey]*list.Element),
		byFP:    make(map[string]*list.Element),
		flights: make(map[cacheKey]*flightCall),
	}
}

func (c *planCache) get(key cacheKey) (*sched.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		obs.PlanCacheHits.Inc()
		return el.Value.(*cacheEntry).plan, true
	}
	c.misses++
	obs.PlanCacheMisses.Inc()
	return nil, false
}

// peek is get without the hit/miss accounting, for the double-check a
// flight leader performs after winning leadership: a solve that
// completed between this caller's miss and its flight registration
// has already populated the cache, and re-reading it there keeps
// every caller on one shared *Plan without recounting the lookup.
func (c *planCache) peek(key cacheKey) (*sched.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).plan, true
	}
	return nil, false
}

func (c *planCache) put(key cacheKey, plan *sched.Plan) {
	if c.bound == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A concurrent solver beat us to it; keep the first entry so
		// every caller shares one plan pointer.
		c.ll.MoveToFront(el)
		return
	}
	// The fingerprint (a few µs of hashing, vs. the solve that just
	// ran) doubles as the cluster-protocol index: an owner answers
	// GET /v1/plans/{fp} straight from byFP without reconstructing
	// the cache key.
	el := c.ll.PushFront(&cacheEntry{key: key, fp: planFingerprint(key), plan: plan})
	c.items[key] = el
	c.byFP[el.Value.(*cacheEntry).fp] = el
	for c.ll.Len() > c.bound {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.items, ent.key)
		delete(c.byFP, ent.fp)
		c.evictions++
		obs.PlanCacheEvictions.Inc()
	}
	// The gauges track the most recently updated session's cache —
	// benchtab and paraconv run exactly one, so this is exact there.
	obs.PlanCacheEntries.Set(int64(c.ll.Len()))
	obs.PlanCacheCapacity.Set(int64(c.bound))
}

// getByFingerprint looks an entry up by plan fingerprint — the
// cluster fill path, where a peer's request carries only the content
// hash.  No hit/miss accounting: the counters tell the local miss
// story, and a peer's lookup is not a local miss.
func (c *planCache) getByFingerprint(fp string) (*sched.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byFP[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).plan, true
	}
	return nil, false
}

// leanByFingerprint returns the entry's cached kernel-free fill frame,
// encoding it on first use.  ok=false means no entry, or the entry's
// scheme cannot be lean-framed (the caller serves the full frame).
// The encode runs outside the lock — a fill that loses the publish
// race just wrote identical bytes (plan encodings are deterministic).
func (c *planCache) leanByFingerprint(fp string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.byFP[fp]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.lean != nil {
		lean := ent.lean
		c.mu.Unlock()
		return lean, true
	}
	plan := ent.plan
	c.mu.Unlock()
	if plan.Scheme != wire.SchemeParaCONV {
		return nil, false
	}
	lean := wire.AppendLeanPlan(nil, plan)
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		el.Value.(*cacheEntry).lean = lean
	}
	c.mu.Unlock()
	return lean, true
}

func (c *planCache) recordPeerFill() {
	c.mu.Lock()
	c.peerFills++
	c.mu.Unlock()
}

func (c *planCache) recordPeerFallback() {
	c.mu.Lock()
	c.peerFallbacks++
	c.mu.Unlock()
	obs.ClusterFallbackSolves.Inc()
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		DedupHits:     c.dedupHits,
		StoreHits:     c.storeHits,
		StoreMisses:   c.storeMisses,
		PeerFills:     c.peerFills,
		PeerFallbacks: c.peerFallbacks,
		Size:          c.ll.Len(),
		Bound:         c.bound,
	}
}
