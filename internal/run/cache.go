package run

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/sched"
)

// DefaultCacheBound is the plan-cache capacity of a new Session, in
// entries.  A full experiment suite — including the sensitivity
// study's perturbed replans — solves ~500 distinct (graph, config,
// variant) cells, so the default keeps all of them live for one
// benchtab invocation (the closing comparison pass is then pure cache
// hits) while still bounding memory for unbounded sweeps.
const DefaultCacheBound = 1024

// cacheKey identifies one planning problem: what graph, on what
// architecture, under which planner variant (and, for the
// given-schedule variant, which fixed schedule).
type cacheKey struct {
	graph   string
	config  string
	variant string
	extra   string
}

// CacheStats is a snapshot of a Session's plan-cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DedupHits counts misses that avoided a solve by riding another
	// caller's in-flight solve of the same problem (singleflight).
	DedupHits uint64
	// StoreHits counts in-memory misses served from the durable tier
	// (no solve ran); StoreMisses counts misses that consulted the
	// durable tier and still had to solve.  Both stay zero with no
	// store attached.
	StoreHits   uint64
	StoreMisses uint64
	// Size is the current entry count; Bound is the capacity
	// (0 means caching is disabled).
	Size  int
	Bound int
}

type cacheEntry struct {
	key  cacheKey
	plan *sched.Plan
}

// planCache is a mutex-guarded LRU map from planning problems to
// solved plans.  Cached *Plan values are shared between callers and
// treated as immutable by every consumer in the module.
type planCache struct {
	mu        sync.Mutex
	bound     int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	dedupHits uint64

	// store is the optional durable second tier (see store.go); the
	// counters record its consultations.  Set once via AttachStore
	// before traffic, read lock-free afterwards.
	store       BlobStore
	storeHits   uint64
	storeMisses uint64

	// flights holds the in-progress solves concurrent misses attach
	// to (see singleflight.go).  A separate mutex so waiters never
	// contend with the LRU's get/put fast path.
	flightMu sync.Mutex
	flights  map[cacheKey]*flightCall
}

func newPlanCache(bound int) *planCache {
	if bound < 0 {
		bound = 0
	}
	return &planCache{
		bound:   bound,
		ll:      list.New(),
		items:   make(map[cacheKey]*list.Element),
		flights: make(map[cacheKey]*flightCall),
	}
}

func (c *planCache) get(key cacheKey) (*sched.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		obs.PlanCacheHits.Inc()
		return el.Value.(*cacheEntry).plan, true
	}
	c.misses++
	obs.PlanCacheMisses.Inc()
	return nil, false
}

// peek is get without the hit/miss accounting, for the double-check a
// flight leader performs after winning leadership: a solve that
// completed between this caller's miss and its flight registration
// has already populated the cache, and re-reading it there keeps
// every caller on one shared *Plan without recounting the lookup.
func (c *planCache) peek(key cacheKey) (*sched.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).plan, true
	}
	return nil, false
}

func (c *planCache) put(key cacheKey, plan *sched.Plan) {
	if c.bound == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A concurrent solver beat us to it; keep the first entry so
		// every caller shares one plan pointer.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, plan: plan})
	for c.ll.Len() > c.bound {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
		obs.PlanCacheEvictions.Inc()
	}
	// The gauges track the most recently updated session's cache —
	// benchtab and paraconv run exactly one, so this is exact there.
	obs.PlanCacheEntries.Set(int64(c.ll.Len()))
	obs.PlanCacheCapacity.Set(int64(c.bound))
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		DedupHits:   c.dedupHits,
		StoreHits:   c.storeHits,
		StoreMisses: c.storeMisses,
		Size:        c.ll.Len(),
		Bound:       c.bound,
	}
}
