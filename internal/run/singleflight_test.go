package run

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
)

// waitForWaiters blocks until the flight for key has n attached
// waiters (the leader excluded), so tests can release a blocked solve
// only after every racing goroutine is provably riding it.
func waitForWaiters(t *testing.T, c *planCache, key cacheKey, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.flightMu.Lock()
		call := c.flights[key]
		waiters := 0
		if call != nil {
			waiters = call.waiters
		}
		c.flightMu.Unlock()
		if waiters >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flight never reached %d waiters", n)
}

func TestDoFlightCollapsesRacingSolves(t *testing.T) {
	c := newPlanCache(8)
	key := cacheKey{graph: "g", config: "c", variant: "v"}
	want := &sched.Plan{Scheme: "test"}

	var solves atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	solve := func() (*sched.Plan, error) {
		solves.Add(1)
		close(entered)
		<-release
		return want, nil
	}

	const followers = 15
	results := make(chan *sched.Plan, followers+1)
	errs := make(chan error, followers+1)
	go func() {
		p, err := c.doFlight(context.Background(), key, solve)
		results <- p
		errs <- err
	}()
	<-entered // the leader is inside solve; everyone else must ride it

	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.doFlight(context.Background(), key, func() (*sched.Plan, error) {
				solves.Add(1)
				return want, nil
			})
			results <- p
			errs <- err
		}()
	}
	waitForWaiters(t, c, key, followers)
	close(release)
	wg.Wait()

	for i := 0; i < followers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("doFlight error: %v", err)
		}
		if p := <-results; p != want {
			t.Fatalf("doFlight returned %p, want the shared %p", p, want)
		}
	}
	if n := solves.Load(); n != 1 {
		t.Errorf("solve ran %d times, want 1", n)
	}
	if st := c.stats(); st.DedupHits != followers {
		t.Errorf("DedupHits = %d, want %d", st.DedupHits, followers)
	}
	c.flightMu.Lock()
	leftover := len(c.flights)
	c.flightMu.Unlock()
	if leftover != 0 {
		t.Errorf("%d flights left registered after completion", leftover)
	}
}

func TestDoFlightSharesLeaderError(t *testing.T) {
	c := newPlanCache(8)
	key := cacheKey{graph: "g"}
	boom := errors.New("boom")

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.doFlight(context.Background(), key, func() (*sched.Plan, error) {
			close(entered)
			<-release
			return nil, boom
		})
		leaderErr <- err
	}()
	<-entered

	followerErr := make(chan error, 1)
	go func() {
		_, err := c.doFlight(context.Background(), key, func() (*sched.Plan, error) {
			t.Error("follower ran its own solve despite an in-flight leader")
			return nil, nil
		})
		followerErr <- err
	}()
	waitForWaiters(t, c, key, 1)
	close(release)

	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Errorf("leader error = %v, want boom", err)
	}
	if err := <-followerErr; !errors.Is(err, boom) {
		t.Errorf("follower error = %v, want the leader's boom", err)
	}
	if st := c.stats(); st.DedupHits != 0 {
		t.Errorf("DedupHits = %d after a failed flight, want 0", st.DedupHits)
	}
}

func TestDoFlightFollowerRetriesAfterLeaderCancel(t *testing.T) {
	c := newPlanCache(8)
	key := cacheKey{graph: "g"}
	want := &sched.Plan{Scheme: "retry"}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	entered := make(chan struct{})
	var solves atomic.Int32
	go func() {
		c.doFlight(leaderCtx, key, func() (*sched.Plan, error) {
			solves.Add(1)
			close(entered)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
	}()
	<-entered

	followerDone := make(chan struct{})
	var followerPlan *sched.Plan
	var followerErr error
	go func() {
		defer close(followerDone)
		followerPlan, followerErr = c.doFlight(context.Background(), key, func() (*sched.Plan, error) {
			solves.Add(1)
			return want, nil
		})
	}()
	waitForWaiters(t, c, key, 1)
	cancelLeader()
	<-followerDone

	if followerErr != nil {
		t.Fatalf("follower error = %v, want nil (its own context was live)", followerErr)
	}
	if followerPlan != want {
		t.Fatalf("follower plan = %p, want its own solve's %p", followerPlan, want)
	}
	if n := solves.Load(); n != 2 {
		t.Errorf("solve ran %d times, want 2 (cancelled leader + retrying follower)", n)
	}
}

func TestDoFlightWaiterHonorsOwnContext(t *testing.T) {
	c := newPlanCache(8)
	key := cacheKey{graph: "g"}

	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.doFlight(context.Background(), key, func() (*sched.Plan, error) {
			close(entered)
			<-release
			return &sched.Plan{}, nil
		})
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := c.doFlight(ctx, key, func() (*sched.Plan, error) {
		t.Error("waiter ran a solve")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter error = %v, want DeadlineExceeded", err)
	}
}

// TestPlanLeaderCancelDuringPeerFill races singleflight leadership
// against the cluster tier: a flight leader cancelled while blocked in
// a peer GET must die with its context's error without poisoning the
// cache, and a follower with a live context must retry leadership,
// absorb the peer's refusal as a counted fallback, and solve locally.
func TestPlanLeaderCancelDuringPeerFill(t *testing.T) {
	var fills atomic.Int32
	firstFill := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fills.Add(1) == 1 {
			close(firstFill)
			// Hold the leader's fill open; the test releases it after
			// the race resolves (the cancelled client has long since
			// abandoned the connection by then).
			<-release
			return
		}
		http.Error(w, "not_found", http.StatusNotFound)
	}))
	defer srv.Close()
	defer close(release) // LIFO: unblock the handler before Close waits on it
	peer := srv.Listener.Addr().String()

	cl, err := cluster.New(cluster.Config{
		Self:          "127.0.0.1:1",
		Peers:         []string{"127.0.0.1:1", peer},
		ProbeInterval: time.Hour,
		FillTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	s := New(context.Background())
	s.AttachPeers(cl)
	cfg := pim.Neurocube(16)

	// Find a problem the httptest peer owns, so the flight leader
	// actually issues a fill instead of solving as the owner.
	var g *dag.Graph
	var key cacheKey
	for seed := int64(0); seed < 64; seed++ {
		cand := testGraph(t, fmt.Sprintf("peercancel-%d", seed), 24, 50, 9100+seed)
		k := cacheKey{graph: GraphFingerprint(cand), config: ConfigFingerprint(cfg), variant: variantParaCONV}
		if cl.Owner(planFingerprint(k)) == peer {
			g, key = cand, k
			break
		}
	}
	if g == nil {
		t.Fatal("no candidate graph owned by the peer in 64 tries")
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.WithContext(leaderCtx).Plan(g, cfg)
		leaderErr <- err
	}()
	<-firstFill // the leader is blocked inside the peer GET

	followerDone := make(chan struct{})
	var followerPlan *sched.Plan
	var followerErr error
	go func() {
		defer close(followerDone)
		followerPlan, followerErr = s.Plan(g, cfg)
	}()
	waitForWaiters(t, s.cache, key, 1)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader error = %v, want context.Canceled", err)
	}
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower error = %v, want a local-solve fallback", followerErr)
	}
	if err := followerPlan.Iter.Validate(); err != nil {
		t.Fatalf("follower's fallback plan invalid: %v", err)
	}
	if n := fills.Load(); n < 2 {
		t.Errorf("peer saw %d fill requests, want 2 (cancelled leader + retrying follower)", n)
	}

	st := s.CacheStats()
	if st.PeerFills != 0 {
		t.Errorf("PeerFills = %d, want 0 (no fill completed)", st.PeerFills)
	}
	if st.PeerFallbacks != 1 {
		t.Errorf("PeerFallbacks = %d, want 1 (the follower's refused fill)", st.PeerFallbacks)
	}
	if st.Size != 1 {
		t.Errorf("cache holds %d entries after the race, want the follower's 1", st.Size)
	}
	// The cancelled flight must not have poisoned the cache: a fresh
	// caller gets the follower's cached plan without another flight.
	p, err := s.Plan(g, cfg)
	if err != nil || p != followerPlan {
		t.Fatalf("post-race Plan = (%p, %v), want the follower's cached plan %p", p, err, followerPlan)
	}
}

// TestSessionPlanConcurrentDedup drives the real planner through
// racing goroutines: every caller must end up with the same *Plan and
// the cache counters must account for exactly one solve.
func TestSessionPlanConcurrentDedup(t *testing.T) {
	s := New(context.Background())
	g := testGraph(t, "dedup", 40, 100, 4040)
	cfg := pim.Neurocube(16)

	const callers = 12
	plans := make([]*sched.Plan, callers)
	errs := make([]error, callers)
	var start sync.WaitGroup
	start.Add(1)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			plans[i], errs[i] = s.Plan(g, cfg)
		}(i)
	}
	start.Done()
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatalf("caller %d got a different plan pointer", i)
		}
	}
	st := s.CacheStats()
	if st.Hits+st.Misses != callers {
		t.Errorf("hits %d + misses %d != %d callers", st.Hits, st.Misses, callers)
	}
	// Every miss either rode the flight or led it (and a late leader
	// finds the cache already warm via the double-check), so riders
	// never exceed misses minus the one real solve.
	if st.Misses < 1 || st.DedupHits > st.Misses-1 {
		t.Errorf("inconsistent counters: misses %d, dedup %d", st.Misses, st.DedupHits)
	}
	if st.Size != 1 {
		t.Errorf("cache holds %d entries, want 1", st.Size)
	}
}

func TestWithContextSharesCacheAndScopesCancellation(t *testing.T) {
	s := New(context.Background())
	g := testGraph(t, "withctx", 30, 70, 3030)
	cfg := pim.Neurocube(16)

	if _, err := s.Plan(g, cfg); err != nil {
		t.Fatal(err)
	}

	// A derived session with a live context hits the shared cache.
	derived := s.WithContext(context.Background())
	if _, err := derived.Plan(g, cfg); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits == 0 {
		t.Errorf("derived session missed the shared cache: %+v", st)
	}

	// A derived session with a dead context fails on uncached work
	// while the parent keeps working.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	g2 := testGraph(t, "withctx2", 30, 70, 6060)
	if _, err := s.WithContext(dead).Plan(g2, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("dead derived session error = %v, want Canceled", err)
	}
	if _, err := s.Plan(g2, cfg); err != nil {
		t.Errorf("parent session broken after derived cancellation: %v", err)
	}
}
