package run

import (
	"context"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/wire"
)

// PeerFiller is the cluster tier behind the durable store: on a miss
// of both local tiers, a flight leader asks the fingerprint's owning
// node for its plan before solving.  internal/cluster implements it;
// run depends only on this interface so the cache layer stays free of
// networking.
type PeerFiller interface {
	// Owns reports whether this node is the fingerprint's owner — in
	// which case the local solve IS the cluster-wide solve and no fill
	// is attempted.
	Owns(fp string) bool
	// Fill fetches the encoded plan for fp from its owner.  fill
	// builds the wire peer-fill frame carrying the full problem so
	// the owner can solve on the requester's behalf; it is invoked
	// only when the owner's tiers miss (the warm path ships nothing
	// but the fingerprint), and may be nil for lookup-only probes.
	// The payload is a stored-plan or lean plan frame — callers
	// holding the problem graph decode it with wire.DecodeFillPlan.
	// ok=false means no peer could serve it; the caller falls back to
	// a local solve.
	Fill(ctx context.Context, fp string, fill func() []byte) (payload []byte, ok bool)
}

// peerRef boxes a PeerFiller for planCache's atomic.Pointer (a
// pointer-to-interface, so attaching any concrete type is one atomic
// store).
type peerRef struct {
	filler PeerFiller
}

// AttachPeers installs f as the cluster tier behind this session's
// plan cache: consulted inside the singleflight leader after the
// durable store, before the solver.  Sessions derived with
// WithContext share the attachment.  Unlike AttachStore this is
// attach-any-time: the daemon's cluster comes up after the listener
// binds (the bench harness and tests attach once :0 resolves), so the
// pointer is atomic.  A nil f detaches.
func (s *Session) AttachPeers(f PeerFiller) {
	if f == nil {
		s.cache.peers.Store(nil)
		return
	}
	s.cache.peers.Store(&peerRef{filler: f})
}

// peerFill runs the cluster-tier consultation for a flight leader:
// ask the fingerprint's owner for the plan, decode and re-validate
// it, promote it into both local tiers.  Returns (plan, nil) on a
// successful fill, (nil, ctx error) when the requester's context died
// mid-fill — the leader must die with it so the cache stays
// unpoisoned and a follower retries leadership — and (nil, nil) to
// degrade to a local solve.
func (s *Session) peerFill(f PeerFiller, key cacheKey, g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	fp := planFingerprint(key)
	if f.Owns(fp) {
		return nil, nil
	}
	fillSpan := span.Start(s.ctx, "run.peerfill")
	payload, ok := f.Fill(s.ctx, fp, func() []byte {
		return wire.AppendPeerFill(nil, key.variant, cfg, g)
	})
	fillSpan.End()
	if !ok {
		// Distinguish "peer unavailable" from "my own caller is gone":
		// the former degrades to a local solve, the latter must surface
		// as the context's error so doFlight's follower-retry semantics
		// see a cancelled leader, not a failed solve.
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		s.cache.recordPeerFallback()
		return nil, nil
	}
	p, err := wire.DecodeFillPlan(payload, g, dag.Limits{})
	if err != nil {
		obs.Log().Warn("peer fill payload failed to decode, falling back to solve",
			"variant", key.variant, "graph", key.graph, "err", err)
		s.cache.recordPeerFallback()
		return nil, nil
	}
	if err := p.Iter.Validate(); err != nil {
		obs.Log().Warn("peer fill payload failed schedule validation, falling back to solve",
			"variant", key.variant, "graph", key.graph, "err", err)
		s.cache.recordPeerFallback()
		return nil, nil
	}
	s.cache.recordPeerFill()
	obs.Log().Debug("plan filled from peer", "variant", key.variant, "graph", key.graph)
	s.cache.put(key, p)
	if s.cache.store != nil {
		s.cache.storeWriteThrough(key, p)
	}
	return p, nil
}

// EncodedPlanByFingerprint serves the owner's side of the fill
// protocol: the encoded plan frame for fp from this session's local
// tiers — the in-memory cache's fingerprint index first, then the
// durable store's payload verbatim (the store key IS the
// fingerprint).  ok=false means a full local miss; the server decides
// whether to solve on the requester's behalf.
func (s *Session) EncodedPlanByFingerprint(fp string) ([]byte, bool) {
	if p, ok := s.cache.getByFingerprint(fp); ok {
		return wire.AppendPlan(nil, p), true
	}
	if s.cache.store != nil {
		if payload, ok := s.cache.store.Get(fp); ok {
			return payload, true
		}
	}
	return nil, false
}

// EncodedFillByFingerprint is EncodedPlanByFingerprint for fill
// requests whose sender holds the problem graph: para-conv plans come
// back as kernel-free lean frames — cached per entry on the memory
// tier, byte-spliced out of the store payload on the durable tier —
// and everything else falls back to the full frame.  Serving a fill is
// an owner's hot path under a thundering fleet, so the lean bytes are
// shared, not copied.
func (s *Session) EncodedFillByFingerprint(fp string) ([]byte, bool) {
	if lean, ok := s.cache.leanByFingerprint(fp); ok {
		return lean, true
	}
	if p, ok := s.cache.getByFingerprint(fp); ok {
		return wire.AppendPlan(nil, p), true
	}
	if s.cache.store != nil {
		if payload, ok := s.cache.store.Get(fp); ok {
			if lean, err := wire.PlanFrameToLean(payload); err == nil {
				return lean, true
			}
			return payload, true
		}
	}
	return nil, false
}
