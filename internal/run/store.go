package run

import (
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wire"
)

// BlobStore is the durable tier behind the in-memory plan cache — in
// production a *store.Store over the daemon's -data-dir.  Get reports
// a miss (never an error: corruption is the store's problem to
// quarantine); Put is best-effort write-through.
type BlobStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

// AttachStore installs st as the second cache tier behind this
// session's plan cache: consulted inside the singleflight leader on an
// in-memory miss, written through after every successful solve.
// Sessions derived with WithContext share the attachment.  A nil st
// detaches.  Attach before serving traffic — the field is read without
// synchronization once requests flow.
func (s *Session) AttachStore(st BlobStore) {
	s.cache.store = st
}

// storeKey is the durable tier's keyspace: the plan fingerprint.  The
// same content hash addresses plans in the cluster's /v1/plans/{fp}
// protocol, so a restarted owner serves peer lookups from its store
// files verbatim.
func storeKey(key cacheKey) string {
	return planFingerprint(key)
}

// storeLookup consults the durable tier for key.  A hit must decode
// and re-validate before it is trusted: the frame's CRC catches disk
// rot, but a plan written by a buggy past build is caught here, by the
// same structural checks a fresh solve satisfies by construction.  Any
// failure is a miss — the solver is always a correct fallback.
func (c *planCache) storeLookup(key cacheKey) (*sched.Plan, bool) {
	payload, ok := c.store.Get(storeKey(key))
	if !ok {
		return nil, false
	}
	p, err := wire.DecodePlan(payload, dag.Limits{})
	if err != nil {
		obs.Log().Warn("store entry failed to decode, falling through to solve",
			"variant", key.variant, "graph", key.graph, "err", err)
		return nil, false
	}
	if err := p.Iter.Validate(); err != nil {
		obs.Log().Warn("store entry failed schedule validation, falling through to solve",
			"variant", key.variant, "graph", key.graph, "err", err)
		return nil, false
	}
	return p, true
}

// storeWriteThrough encodes plan and hands it to the durable tier.
// Errors are logged and counted, never propagated: a full disk must
// not fail the solve that just succeeded.
func (c *planCache) storeWriteThrough(key cacheKey, plan *sched.Plan) {
	if err := c.store.Put(storeKey(key), wire.AppendPlan(nil, plan)); err != nil {
		obs.Log().Warn("store write-through failed",
			"variant", key.variant, "graph", key.graph, "err", err)
	}
}

// flightStore runs the durable-tier consultation for a flight leader:
// lookup, counter accounting, promotion into the in-memory cache on a
// hit.  Returns the plan or (nil, false) to proceed to the solver.
func (c *planCache) flightStore(key cacheKey) (*sched.Plan, bool) {
	p, ok := c.storeLookup(key)
	c.mu.Lock()
	if ok {
		c.storeHits++
	} else {
		c.storeMisses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.put(key, p)
	return p, true
}
