package run

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/wire"
)

// stubFiller is a PeerFiller with canned ownership and payload, so the
// run tier's fill logic is testable without a network.
type stubFiller struct {
	owns    bool
	payload []byte
	ok      bool

	calls    atomic.Int32
	mu       sync.Mutex
	lastFP   string
	lastFill []byte
}

func (f *stubFiller) Owns(string) bool { return f.owns }

func (f *stubFiller) Fill(_ context.Context, fp string, fill func() []byte) ([]byte, bool) {
	f.calls.Add(1)
	f.mu.Lock()
	f.lastFP = fp
	f.lastFill = nil
	if fill != nil {
		f.lastFill = append([]byte(nil), fill()...)
	}
	f.mu.Unlock()
	return f.payload, f.ok
}

// memBlobStore is an in-memory BlobStore for write-through assertions.
type memBlobStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemBlobStore() *memBlobStore { return &memBlobStore{m: make(map[string][]byte)} }

func (s *memBlobStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[key]
	return p, ok
}

func (s *memBlobStore) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

// TestPeerFillServesAndPromotes: a successful fill must return the
// peer's plan, count as a fill (not a solve fallback), and promote the
// payload into both local tiers — memory (so EncodedPlanByFingerprint
// serves it) and the durable store.
func TestPeerFillServesAndPromotes(t *testing.T) {
	g := testGraph(t, "peerfill", 24, 50, 9200)
	cfg := pim.Neurocube(16)
	fp := PlanFingerprint("", "", g, cfg)

	// Pre-solve the problem in an isolated session to play the owner.
	owner := New(context.Background())
	want, err := owner.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	filler := &stubFiller{payload: wire.AppendPlan(nil, want), ok: true}
	st := newMemBlobStore()
	s := New(context.Background())
	s.AttachStore(st)
	s.AttachPeers(filler)

	p, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iter.Period != want.Iter.Period {
		t.Fatalf("filled plan period = %d, want the owner's %d", p.Iter.Period, want.Iter.Period)
	}
	if n := filler.calls.Load(); n != 1 {
		t.Fatalf("Fill called %d times, want 1", n)
	}
	filler.mu.Lock()
	gotFP, gotFill := filler.lastFP, filler.lastFill
	filler.mu.Unlock()
	if gotFP != fp {
		t.Errorf("Fill asked for %s, want %s", gotFP, fp)
	}
	// The fill frame must carry the full problem so the owner can solve
	// on the requester's behalf.
	pf, fg, err := wire.DecodePeerFill(gotFill, dag.Limits{})
	if err != nil {
		t.Fatalf("fill frame failed to decode: %v", err)
	}
	if pf.Variant != variantParaCONV || pf.Config != cfg {
		t.Errorf("fill frame carries variant %q config %+v, want %q %+v", pf.Variant, pf.Config, variantParaCONV, cfg)
	}
	if GraphFingerprint(fg) != GraphFingerprint(g) {
		t.Error("fill frame's graph does not match the requested graph")
	}

	cs := s.CacheStats()
	if cs.PeerFills != 1 || cs.PeerFallbacks != 0 {
		t.Errorf("counters = %d fills / %d fallbacks, want 1 / 0", cs.PeerFills, cs.PeerFallbacks)
	}
	// Promoted into the durable tier verbatim-decodable…
	if _, ok := st.Get(fp); !ok {
		t.Error("fill was not written through to the durable store")
	}
	// …and into the memory tier's fingerprint index.
	payload, ok := s.EncodedPlanByFingerprint(fp)
	if !ok {
		t.Fatal("EncodedPlanByFingerprint missed after a fill")
	}
	if rt, err := wire.DecodePlan(payload, dag.Limits{}); err != nil || rt.Iter.Period != want.Iter.Period {
		t.Fatalf("re-encoded filled plan = (%v, err %v), want period %d", rt, err, want.Iter.Period)
	}

	// A second Plan is a plain memory hit: no second fill.
	if _, err := s.Plan(g, cfg); err != nil {
		t.Fatal(err)
	}
	if n := filler.calls.Load(); n != 1 {
		t.Errorf("Fill called %d times after a warm hit, want still 1", n)
	}
}

// TestPeerFillBadPayloadFallsBack: a peer handing back garbage must
// not fail the request — the leader logs, counts a fallback, and
// solves locally.
func TestPeerFillBadPayloadFallsBack(t *testing.T) {
	g := testGraph(t, "peerjunk", 24, 50, 9300)
	cfg := pim.Neurocube(16)

	filler := &stubFiller{payload: []byte("not a plan frame"), ok: true}
	s := New(context.Background())
	s.AttachPeers(filler)

	p, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatalf("Plan failed instead of degrading to a local solve: %v", err)
	}
	if err := p.Iter.Validate(); err != nil {
		t.Fatalf("fallback plan invalid: %v", err)
	}
	cs := s.CacheStats()
	if cs.PeerFills != 0 || cs.PeerFallbacks != 1 {
		t.Errorf("counters = %d fills / %d fallbacks, want 0 / 1", cs.PeerFills, cs.PeerFallbacks)
	}
}

// TestPeerFillOwnerAndOptOut: the fingerprint's owner never fills
// (its local solve IS the cluster-wide solve), and a session derived
// with WithoutPeerFill never consults the cluster even as a non-owner.
func TestPeerFillOwnerAndOptOut(t *testing.T) {
	cfg := pim.Neurocube(16)

	ownerSide := &stubFiller{owns: true, ok: true}
	s1 := New(context.Background())
	s1.AttachPeers(ownerSide)
	if _, err := s1.Plan(testGraph(t, "peerown", 24, 50, 9400), cfg); err != nil {
		t.Fatal(err)
	}
	if n := ownerSide.calls.Load(); n != 0 {
		t.Errorf("owner issued %d fills for its own fingerprint, want 0", n)
	}

	optOut := &stubFiller{ok: true}
	s2 := New(context.Background())
	s2.AttachPeers(optOut)
	if _, err := s2.WithoutPeerFill().Plan(testGraph(t, "peeropt", 24, 50, 9500), cfg); err != nil {
		t.Fatal(err)
	}
	if n := optOut.calls.Load(); n != 0 {
		t.Errorf("WithoutPeerFill session issued %d fills, want 0", n)
	}
	cs := s2.CacheStats()
	if cs.PeerFills != 0 || cs.PeerFallbacks != 0 {
		t.Errorf("counters = %d fills / %d fallbacks for opted-out solves, want 0 / 0", cs.PeerFills, cs.PeerFallbacks)
	}
}

// TestEncodedPlanByFingerprintStoreTier: a restarted owner (fresh
// memory cache, same durable store) must serve peer lookups from the
// store's payload verbatim.
func TestEncodedPlanByFingerprintStoreTier(t *testing.T) {
	g := testGraph(t, "peerstore", 24, 50, 9600)
	cfg := pim.Neurocube(16)
	fp := PlanFingerprint("", "", g, cfg)
	st := newMemBlobStore()

	boot1 := New(context.Background())
	boot1.AttachStore(st)
	want, err := boot1.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	boot2 := New(context.Background())
	boot2.AttachStore(st)
	payload, ok := boot2.EncodedPlanByFingerprint(fp)
	if !ok {
		t.Fatal("restarted owner missed a store-resident fingerprint")
	}
	p, err := wire.DecodePlan(payload, dag.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Iter.Period != want.Iter.Period {
		t.Fatalf("store-served plan period = %d, want %d", p.Iter.Period, want.Iter.Period)
	}
	if _, ok := boot2.EncodedPlanByFingerprint("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"); ok {
		t.Fatal("unknown fingerprint claimed a hit")
	}
}

// TestPeerFillLeanPayload: a lean (kernel-free) fill payload must
// decode against the requester's own graph, serve the plan, and still
// write a self-contained full frame through to the durable store —
// a store payload must never depend on a graph the reader does not
// have.
func TestPeerFillLeanPayload(t *testing.T) {
	g := testGraph(t, "peerlean", 24, 50, 9700)
	cfg := pim.Neurocube(16)
	fp := PlanFingerprint("", "", g, cfg)

	owner := New(context.Background())
	want, err := owner.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Scheme != wire.SchemeParaCONV {
		t.Fatalf("fixture solved as %q, want %s", want.Scheme, wire.SchemeParaCONV)
	}

	filler := &stubFiller{payload: wire.AppendLeanPlan(nil, want), ok: true}
	st := newMemBlobStore()
	s := New(context.Background())
	s.AttachStore(st)
	s.AttachPeers(filler)

	p, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iter.Period != want.Iter.Period {
		t.Fatalf("lean-filled plan period = %d, want %d", p.Iter.Period, want.Iter.Period)
	}
	if err := p.Iter.Validate(); err != nil {
		t.Fatalf("lean-filled plan invalid: %v", err)
	}
	cs := s.CacheStats()
	if cs.PeerFills != 1 || cs.PeerFallbacks != 0 {
		t.Errorf("counters = %d fills / %d fallbacks, want 1 / 0", cs.PeerFills, cs.PeerFallbacks)
	}
	// Write-through must be the full stored-plan frame, decodable with
	// no problem graph in hand.
	payload, ok := st.Get(fp)
	if !ok {
		t.Fatal("lean fill was not written through to the durable store")
	}
	if wire.LeanPlanFrame(payload) {
		t.Fatal("durable store received a lean frame; store payloads must be self-contained")
	}
	if rt, err := wire.DecodePlan(payload, dag.Limits{}); err != nil || rt.Iter.Period != want.Iter.Period {
		t.Fatalf("store payload = (%v, err %v), want a full frame with period %d", rt, err, want.Iter.Period)
	}
}

// TestEncodedFillByFingerprint: fill serving prefers the lean frame on
// both local tiers — entry-cached on the memory tier, byte-spliced
// from the payload on the durable tier — and both hand out identical
// bytes.
func TestEncodedFillByFingerprint(t *testing.T) {
	g := testGraph(t, "peerleansrv", 24, 50, 9800)
	cfg := pim.Neurocube(16)
	fp := PlanFingerprint("", "", g, cfg)
	st := newMemBlobStore()

	boot1 := New(context.Background())
	boot1.AttachStore(st)
	want, err := boot1.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	memLean, ok := boot1.EncodedFillByFingerprint(fp)
	if !ok {
		t.Fatal("memory tier missed its own fingerprint")
	}
	if !wire.LeanPlanFrame(memLean) {
		t.Fatal("memory-tier fill payload is not a lean frame")
	}
	// Second call serves the entry's cached bytes.
	again, ok := boot1.EncodedFillByFingerprint(fp)
	if !ok || &again[0] != &memLean[0] {
		t.Error("second fill encode did not reuse the entry's cached lean frame")
	}

	boot2 := New(context.Background())
	boot2.AttachStore(st)
	storeLean, ok := boot2.EncodedFillByFingerprint(fp)
	if !ok {
		t.Fatal("store tier missed a store-resident fingerprint")
	}
	if string(storeLean) != string(memLean) {
		t.Fatal("store-tier splice differs from the memory tier's lean encode")
	}
	p, err := wire.DecodeLeanPlan(storeLean, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iter.Period != want.Iter.Period {
		t.Fatalf("lean store fill period = %d, want %d", p.Iter.Period, want.Iter.Period)
	}
	if _, ok := boot2.EncodedFillByFingerprint("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"); ok {
		t.Fatal("unknown fingerprint claimed a fill hit")
	}
}
