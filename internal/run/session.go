// Package run is the module's execution layer: a Session scopes a
// batch of planning and simulation work under one context.Context and
// one memoized plan cache.  Every long computation reached through a
// Session — the knapsack DP, the group-count search, list scheduling,
// the simulators, architecture sweeps — checks the session's context
// at iteration boundaries and returns a wrapped context error when
// cancelled, so callers can bound wall-clock time with
// context.WithTimeout or a signal-cancelled context.
//
// The plan cache is keyed by content (graph fingerprint, configuration
// fingerprint, planner variant), so re-planning the same benchmark on
// the same architecture — which the experiment suite does constantly
// across tables and figures — is a map lookup instead of a DP solve.
package run

import (
	"context"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Planner variants used in cache keys.
const (
	variantParaCONV = "para-conv"
	variantSingle   = "para-conv-single"
	variantGiven    = "para-conv-given"
	variantSPARTA   = "sparta"
	variantNaive    = "naive"
)

// Session scopes planning and simulation work: one context governing
// cancellation, one bounded plan cache shared by every call.  A
// Session is safe for concurrent use; the bench worker pool shares one
// across all its workers.
type Session struct {
	// ctx scopes every solve and simulation the Session runs.  This
	// is the module's one sanctioned context-in-struct (enforced by
	// the ctxfield vet pass): a Session is itself a cancellation
	// scope — it exists exactly as long as the run it governs — so
	// the usual "pass ctx as a parameter" rule collapses into it.
	ctx   context.Context
	cache *planCache
	// noPeer suppresses the cluster tier for this handle (see
	// WithoutPeerFill); the shared cache is unaffected.
	noPeer bool
}

// New returns a Session scoped to ctx with the default plan-cache
// bound.  A nil ctx means context.Background().
func New(ctx context.Context) *Session {
	return NewWithCacheBound(ctx, DefaultCacheBound)
}

// NewWithCacheBound returns a Session whose plan cache holds at most
// bound entries; bound <= 0 disables caching entirely (every lookup
// misses, nothing is stored).
func NewWithCacheBound(ctx context.Context, bound int) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	if bound < 0 {
		bound = 0
	}
	return &Session{ctx: ctx, cache: newPlanCache(bound)}
}

// Context returns the context scoping this session.
func (s *Session) Context() context.Context {
	return s.ctx
}

// WithContext returns a Session scoped to ctx that shares this
// session's plan cache (and its in-flight solve dedup).  This is how
// a long-lived owner — the planning daemon — gives each request its
// own deadline while every request still benefits from, and feeds,
// one shared cache.  A nil ctx means context.Background().
func (s *Session) WithContext(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{ctx: ctx, cache: s.cache, noPeer: s.noPeer}
}

// WithoutPeerFill returns a Session sharing this session's cache and
// context that never consults the cluster tier.  This is the owner's
// side of the fill protocol: a solve run on behalf of a peer must
// terminate locally — two nodes with divergent breaker views of ring
// ownership could otherwise bounce one fill between each other until
// both time out.
func (s *Session) WithoutPeerFill() *Session {
	return &Session{ctx: s.ctx, cache: s.cache, noPeer: true}
}

// CacheStats returns a snapshot of the plan cache's counters.
func (s *Session) CacheStats() CacheStats {
	return s.cache.stats()
}

// plan runs one planner variant through the cache: content-keyed
// lookup, solve on miss, store on success.  Failed solves are not
// cached (they are cheap — validation rejects before the DP runs — and
// the error should be re-derived fresh for each caller).
func (s *Session) plan(variant, extra string, g *dag.Graph, cfg pim.Config,
	solve func(context.Context) (*sched.Plan, error)) (*sched.Plan, error) {
	if g == nil {
		// Let the planner produce its own nil-graph error.
		return solve(s.ctx)
	}
	fpSpan := span.Start(s.ctx, "run.fingerprint")
	key := cacheKey{
		graph:   GraphFingerprint(g),
		config:  ConfigFingerprint(cfg),
		variant: variant,
		extra:   extra,
	}
	fpSpan.End()
	lookupSpan := span.Start(s.ctx, "run.cache")
	p, ok := s.cache.get(key)
	lookupSpan.End()
	if ok {
		obs.Log().Debug("plan cache hit", "variant", variant, "graph", key.graph)
		return p, nil
	}
	// Miss: collapse concurrent solves of the same problem into one
	// (singleflight) — under the concurrent server, a burst of
	// identical requests otherwise all reach this point before the
	// first solve can populate the cache.  The span covers leadership
	// and follower waits alike: a trace showing a wide run.singleflight
	// with no solve stages below it is a request that rode someone
	// else's solve.
	flightSpan := span.Start(s.ctx, "run.singleflight")
	defer flightSpan.End()
	return s.cache.doFlight(s.ctx, key, func() (*sched.Plan, error) {
		// Double-check under flight leadership: a solve finishing
		// between our miss and our registration has already stored
		// the plan, and returning it keeps the pointer shared.
		if p, ok := s.cache.peek(key); ok {
			return p, nil
		}
		// Second tier: the durable store (when attached).  A hit skips
		// the solver entirely — this is the warm-restart path — and is
		// promoted into the in-memory cache for the next lookup.
		if s.cache.store != nil {
			storeSpan := span.Start(s.ctx, "run.store")
			p, ok := s.cache.flightStore(key)
			storeSpan.End()
			if ok {
				obs.Log().Debug("plan store hit", "variant", variant, "graph", key.graph)
				return p, nil
			}
		}
		// Third tier: the cluster (when attached).  If another node
		// owns this fingerprint, fetch its plan — shipping the full
		// problem so the owner can solve it — before solving here.
		// Only for problems the peer-fill frame can express: the
		// given-schedule variant's extra (a schedule fingerprint) has
		// no wire form, so it always solves locally.  A (nil, nil)
		// return is the degradation path: fall through to the solver.
		if pr := s.cache.peers.Load(); pr != nil && !s.noPeer && extra == "" {
			p, err := s.peerFill(pr.filler, key, g, cfg)
			if err != nil {
				return nil, err
			}
			if p != nil {
				return p, nil
			}
		}
		stop := obs.PlanSolveTimer(variant).Start()
		p, err := solve(s.ctx)
		stop()
		if err != nil {
			return nil, err
		}
		obs.Log().Debug("plan solved", "variant", variant, "graph", key.graph, "period", p.Iter.Period)
		s.cache.put(key, p)
		if s.cache.store != nil {
			s.cache.storeWriteThrough(key, p)
		}
		return p, nil
	})
}

// Plan runs the full Para-CONV flow (group-count search, retiming,
// knapsack cache allocation, objective schedule) for g on cfg.
func (s *Session) Plan(g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	return s.plan(variantParaCONV, "", g, cfg, func(ctx context.Context) (*sched.Plan, error) {
		return sched.ParaCONVCtx(ctx, g, cfg)
	})
}

// PlanSingle runs Para-CONV pinned to a single group (no parallel
// group packing) — the paper's single-kernel configuration.
func (s *Session) PlanSingle(g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	return s.plan(variantSingle, "", g, cfg, func(ctx context.Context) (*sched.Plan, error) {
		return sched.ParaCONVSingleCtx(ctx, g, cfg)
	})
}

// PlanWithSchedule runs the Para-CONV reallocation on a fixed
// iteration schedule (retiming + cache allocation only).  The cache
// key incorporates a fingerprint of the given schedule.
func (s *Session) PlanWithSchedule(g *dag.Graph, iter sched.IterationSchedule, cfg pim.Config) (*sched.Plan, error) {
	return s.plan(variantGiven, ScheduleFingerprint(iter), g, cfg, func(ctx context.Context) (*sched.Plan, error) {
		return sched.ParaCONVGivenScheduleCtx(ctx, g, iter, cfg)
	})
}

// Baseline runs the SPARTA baseline scheduler.
func (s *Session) Baseline(g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	return s.plan(variantSPARTA, "", g, cfg, func(ctx context.Context) (*sched.Plan, error) {
		return sched.SPARTACtx(ctx, g, cfg)
	})
}

// BaselineNaive runs the round-robin, all-eDRAM floor scheduler.
func (s *Session) BaselineNaive(g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	return s.plan(variantNaive, "", g, cfg, func(ctx context.Context) (*sched.Plan, error) {
		return sched.NaiveCtx(ctx, g, cfg)
	})
}

// Simulate runs the closed-form simulator on a plan under the
// session's context.
func (s *Session) Simulate(plan *sched.Plan, cfg pim.Config, iterations int) (sim.Stats, error) {
	return sim.RunCtx(s.ctx, plan, cfg, iterations)
}

// SimulateTrace runs the event-level simulator on a plan under the
// session's context.
func (s *Session) SimulateTrace(plan *sched.Plan, cfg pim.Config, iterations int) (sim.Stats, *sim.Trace, error) {
	return sim.TraceRunCtx(s.ctx, plan, cfg, iterations)
}

// SelectArch plans g on every candidate architecture and returns the
// best by total time plus the full ranking, under the session's
// context.
func (s *Session) SelectArch(g *dag.Graph, candidates []pim.Config, iterations int) (sched.Candidate, []sched.Candidate, error) {
	return sched.SelectConfigCtx(s.ctx, g, candidates, iterations)
}
