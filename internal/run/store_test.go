package run

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/store"
	"repro/internal/synth"
)

func storeTestGraph(t *testing.T, seed int64) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "runstore", Vertices: 30, Edges: 60, Seed: seed})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return g
}

// TestStoreWarmRestart is the subsystem's reason to exist in
// miniature: a first "boot" solves and writes through, a second boot —
// a fresh Session over the same data dir — serves the same problems
// with zero solves.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := pim.Neurocube(8)
	graphs := []*dag.Graph{storeTestGraph(t, 1), storeTestGraph(t, 2), storeTestGraph(t, 3)}

	st1, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	boot1 := New(context.Background())
	boot1.AttachStore(st1)
	wantPeriods := make([]int, len(graphs))
	for i, g := range graphs {
		p, err := boot1.Plan(g, cfg)
		if err != nil {
			t.Fatalf("boot1 Plan(%d): %v", i, err)
		}
		wantPeriods[i] = p.Iter.Period
	}
	cs := boot1.CacheStats()
	if cs.StoreHits != 0 || cs.StoreMisses != uint64(len(graphs)) {
		t.Fatalf("boot1 store counters = %d hits / %d misses, want 0 / %d", cs.StoreHits, cs.StoreMisses, len(graphs))
	}
	if st1.Stats().Writes != uint64(len(graphs)) {
		t.Fatalf("boot1 wrote %d entries, want %d", st1.Stats().Writes, len(graphs))
	}

	// Second boot: fresh in-memory cache, same dir.  Every plan must
	// come from the durable tier — StoreHits counts exactly the
	// lookups, and the solver (which would bump StoreMisses on its way
	// in) never runs.
	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	boot2 := New(context.Background())
	boot2.AttachStore(st2)
	for i, g := range graphs {
		p, err := boot2.Plan(g, cfg)
		if err != nil {
			t.Fatalf("boot2 Plan(%d): %v", i, err)
		}
		if p.Iter.Period != wantPeriods[i] {
			t.Fatalf("boot2 plan %d period = %d, want %d", i, p.Iter.Period, wantPeriods[i])
		}
		if err := p.Iter.Validate(); err != nil {
			t.Fatalf("boot2 plan %d invalid: %v", i, err)
		}
	}
	cs = boot2.CacheStats()
	if cs.StoreHits != uint64(len(graphs)) || cs.StoreMisses != 0 {
		t.Fatalf("boot2 store counters = %d hits / %d misses, want %d / 0 (zero solves)", cs.StoreHits, cs.StoreMisses, len(graphs))
	}
	// Third lookup of a warm graph stays in memory: the store is not
	// consulted again once an entry is promoted.
	if _, err := boot2.Plan(graphs[0], cfg); err != nil {
		t.Fatal(err)
	}
	if cs2 := boot2.CacheStats(); cs2.StoreHits != cs.StoreHits {
		t.Fatalf("in-memory hit re-consulted the store: %d -> %d", cs.StoreHits, cs2.StoreHits)
	}
}

// TestStoreUndecodableEntryFallsThrough plants a frame that passes the
// store's CRC but is not a plan; run must treat it as a miss and
// solve.
func TestStoreUndecodableEntryFallsThrough(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	g := storeTestGraph(t, 4)
	cfg := pim.Neurocube(8)
	key := storeKey(cacheKey{
		graph:   GraphFingerprint(g),
		config:  ConfigFingerprint(cfg),
		variant: variantParaCONV,
	})
	if err := st.Put(key, []byte("not a plan frame")); err != nil {
		t.Fatal(err)
	}
	sess := New(context.Background())
	sess.AttachStore(st)
	p, err := sess.Plan(g, cfg)
	if err != nil {
		t.Fatalf("Plan with a poisoned store entry: %v", err)
	}
	if p.Iter.Period <= 0 {
		t.Fatalf("Plan returned an empty plan: %+v", p)
	}
	cs := sess.CacheStats()
	if cs.StoreHits != 0 || cs.StoreMisses != 1 {
		t.Fatalf("store counters = %d hits / %d misses, want 0 / 1", cs.StoreHits, cs.StoreMisses)
	}
	// The write-through replaced the junk; a fresh session now hits.
	fresh := New(context.Background())
	fresh.AttachStore(st)
	if _, err := fresh.Plan(g, cfg); err != nil {
		t.Fatal(err)
	}
	if cs := fresh.CacheStats(); cs.StoreHits != 1 {
		t.Fatalf("replaced entry did not serve a fresh session: %+v", cs)
	}
}

// failingStore satisfies BlobStore and refuses every write.
type failingStore struct{}

func (failingStore) Get(string) ([]byte, bool) { return nil, false }
func (failingStore) Put(string, []byte) error  { return errors.New("disk full") }

func TestStoreWriteThroughFailureIsNotFatal(t *testing.T) {
	sess := New(context.Background())
	sess.AttachStore(failingStore{})
	p, err := sess.Plan(storeTestGraph(t, 5), pim.Neurocube(8))
	if err != nil {
		t.Fatalf("Plan failed because write-through failed: %v", err)
	}
	if p == nil || p.Iter.Period <= 0 {
		t.Fatal("Plan returned no usable plan")
	}
}

func TestWithContextSharesStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sess := New(context.Background())
	sess.AttachStore(st)
	derived := sess.WithContext(context.Background())
	if _, err := derived.Plan(storeTestGraph(t, 6), pim.Neurocube(8)); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Writes != 1 {
		t.Fatalf("derived session did not write through: %+v", st.Stats())
	}
}
