package run

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/internal/sched"
)

// flightCall is one in-progress plan solve that concurrent cache
// misses for the same key attach to.
type flightCall struct {
	// done is closed once plan and err are final.
	done chan struct{}
	plan *sched.Plan
	err  error
	// waiters counts the callers riding this solve (excluding the
	// leader).  Guarded by the owning cache's flightMu.
	waiters int
}

// doFlight collapses concurrent solves of one planning problem: the
// first caller for a key (the leader) runs solve; every caller that
// arrives before the leader finishes waits for the shared result
// instead of redoing the DP.  This is the dedup layer the concurrent
// planning service leans on — without it, a burst of identical
// requests would each pay a full solve because they all miss the
// cache before the first solve completes.
//
// Context handling follows each caller's own scope: a waiter whose
// ctx expires stops waiting and returns its ctx error (the leader's
// solve keeps running for the others), and when the *leader* is
// cancelled, surviving waiters re-enter the flight under their own
// still-live contexts rather than inheriting a cancellation that was
// never theirs.
func (c *planCache) doFlight(ctx context.Context, key cacheKey, solve func() (*sched.Plan, error)) (*sched.Plan, error) {
	for {
		c.flightMu.Lock()
		if call, ok := c.flights[key]; ok {
			call.waiters++
			c.flightMu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if call.err != nil {
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					// The leader's scope died, not the problem.  If our
					// own scope is still live, try again (attaching to
					// a newer flight or leading one ourselves).
					if ctx.Err() == nil {
						continue
					}
					return nil, ctx.Err()
				}
				return nil, call.err
			}
			c.recordDedupHit()
			return call.plan, nil
		}
		call := &flightCall{done: make(chan struct{})}
		c.flights[key] = call
		c.flightMu.Unlock()

		call.plan, call.err = solve()

		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(call.done)
		return call.plan, call.err
	}
}

// recordDedupHit counts one solve avoided by riding another caller's
// in-flight solve.
func (c *planCache) recordDedupHit() {
	c.mu.Lock()
	c.dedupHits++
	c.mu.Unlock()
	obs.PlanCacheDedupHits.Inc()
}
