package run

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pim"
	"repro/internal/synth"

	"repro/internal/dag"
)

func testGraph(t *testing.T, name string, vertices, edges int, seed int64) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: name, Vertices: vertices, Edges: edges, Seed: seed})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return g
}

func TestPlanCacheHitSharesPointer(t *testing.T) {
	s := New(context.Background())
	g := testGraph(t, "hit", 46, 121, 1046)
	cfg := pim.Neurocube(16)

	p1, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatalf("first Plan: %v", err)
	}
	p2, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatalf("second Plan: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("cache hit returned a different *Plan: %p vs %p", p1, p2)
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, size 1", st)
	}
}

// TestGraphFingerprintMemoReset floods the pointer memo past its bound
// and checks that fingerprints stay stable across the reset (only the
// cached hash is discarded, never the content key).
func TestGraphFingerprintMemoReset(t *testing.T) {
	g := testGraph(t, "reset", 12, 20, 7)
	want := GraphFingerprint(g)
	base := testGraph(t, "flood", 6, 8, 1)
	for i := 0; i < maxGraphFPs+8; i++ {
		// Clone gives each flood graph a distinct pointer with zero
		// synth cost; content is irrelevant to the memo bound.
		GraphFingerprint(base.Clone())
	}
	if got := GraphFingerprint(g); got != want {
		t.Fatalf("fingerprint changed across memo reset: %s vs %s", got, want)
	}
}

func TestPlanCacheKeysByContent(t *testing.T) {
	s := New(context.Background())
	// Two separately generated graphs with identical parameters have
	// identical content, so the second solve must hit.
	g1 := testGraph(t, "content", 46, 121, 1046)
	g2 := testGraph(t, "content", 46, 121, 1046)
	if GraphFingerprint(g1) != GraphFingerprint(g2) {
		t.Fatalf("identical graphs fingerprint differently")
	}
	g3 := testGraph(t, "content", 46, 121, 99)
	if GraphFingerprint(g1) == GraphFingerprint(g3) {
		t.Fatalf("different graphs share a fingerprint")
	}

	cfg := pim.Neurocube(16)
	if _, err := s.Plan(g1, cfg); err != nil {
		t.Fatalf("Plan g1: %v", err)
	}
	if _, err := s.Plan(g2, cfg); err != nil {
		t.Fatalf("Plan g2: %v", err)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want content-keyed hit across distinct pointers", st)
	}
}

func TestPlanCacheVariantsAndConfigsAreDistinct(t *testing.T) {
	s := New(context.Background())
	g := testGraph(t, "variants", 46, 121, 1046)

	if _, err := s.Plan(g, pim.Neurocube(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlanSingle(g, pim.Neurocube(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Baseline(g, pim.Neurocube(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BaselineNaive(g, pim.Neurocube(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Plan(g, pim.Neurocube(32)); err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits != 0 || st.Misses != 5 || st.Size != 5 {
		t.Fatalf("stats = %+v; want 5 distinct entries, no hits", st)
	}
}

func TestPlanCacheEvictsLRU(t *testing.T) {
	s := NewWithCacheBound(context.Background(), 2)
	g := testGraph(t, "evict", 46, 121, 1046)

	for _, pes := range []int{16, 32, 64} {
		if _, err := s.Plan(g, pim.Neurocube(pes)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, size 2", st)
	}
	// The oldest entry (16 PEs) was evicted; re-planning it misses.
	if _, err := s.Plan(g, pim.Neurocube(16)); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats = %+v; want evicted entry to miss", st)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	s := NewWithCacheBound(context.Background(), 0)
	g := testGraph(t, "nocache", 46, 121, 1046)
	cfg := pim.Neurocube(16)
	p1, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Plan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("disabled cache still shared a plan pointer")
	}
	if st := s.CacheStats(); st.Size != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v; want size 0, 2 misses", st)
	}
}

func TestScheduleFingerprintDistinguishesSchedules(t *testing.T) {
	g := testGraph(t, "schedfp", 46, 121, 1046)
	s := New(context.Background())
	base, err := s.Baseline(g, pim.Neurocube(16))
	if err != nil {
		t.Fatal(err)
	}
	fp1 := ScheduleFingerprint(base.Iter)
	other := base.Iter
	other.Period++
	if fp1 == ScheduleFingerprint(other) {
		t.Fatalf("schedules with different periods share a fingerprint")
	}
	if fp1 != ScheduleFingerprint(base.Iter) {
		t.Fatalf("schedule fingerprint is not deterministic")
	}
}

// countingCtx is a context whose Err() starts returning
// context.Canceled after `limit` calls — a deterministic stand-in for
// mid-computation cancellation that also proves the planners and
// simulators actually poll ctx at iteration boundaries (a code path a
// timing-based test could miss entirely).
type countingCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestPlanReturnsContextCanceled(t *testing.T) {
	before := runtime.NumGoroutine()
	g := testGraph(t, "cancel-plan", 546, 1449, 1546)
	cctx := &countingCtx{Context: context.Background(), limit: 5}
	s := New(cctx)
	_, err := s.Plan(g, pim.Neurocube(64))
	if err == nil {
		t.Fatalf("Plan succeeded despite cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Plan error = %v; want errors.Is(err, context.Canceled)", err)
	}
	if calls := cctx.calls.Load(); calls <= 5 {
		t.Fatalf("ctx.Err polled %d times; cancellation never reached the solver loops", calls)
	}
	// Cancellation must not leak goroutines: the pipeline is
	// synchronous, so the count returns to its starting neighborhood.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d after cancelled Plan", before, after)
	}
}

func TestSimulateTraceReturnsContextCanceled(t *testing.T) {
	g := testGraph(t, "cancel-trace", 546, 1449, 1546)
	plan, err := New(context.Background()).Plan(g, pim.Neurocube(64))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	cctx := &countingCtx{Context: context.Background(), limit: 10}
	s := New(cctx)
	_, _, err = s.SimulateTrace(plan, pim.Neurocube(64), 100)
	if err == nil {
		t.Fatalf("SimulateTrace succeeded despite cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateTrace error = %v; want errors.Is(err, context.Canceled)", err)
	}
}

func TestSimulateReturnsContextCanceled(t *testing.T) {
	g := testGraph(t, "cancel-sim", 546, 1449, 1546)
	plan, err := New(context.Background()).Plan(g, pim.Neurocube(64))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	cctx := &countingCtx{Context: context.Background(), limit: 3}
	s := New(cctx)
	if _, err := s.Simulate(plan, pim.Neurocube(64), 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate error = %v; want errors.Is(err, context.Canceled)", err)
	}
}

func TestSelectArchReturnsContextCanceled(t *testing.T) {
	g := testGraph(t, "cancel-select", 247, 652, 1247)
	cctx := &countingCtx{Context: context.Background(), limit: 2}
	s := New(cctx)
	_, _, err := s.SelectArch(g, []pim.Config{pim.Neurocube(16), pim.Neurocube(32)}, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectArch error = %v; want errors.Is(err, context.Canceled)", err)
	}
}
