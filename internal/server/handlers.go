package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/sched"
	"repro/internal/wire"
)

// solveFunc computes one endpoint's response under a request-scoped
// session.  The graph is already parsed and size-checked.
type solveFunc func(sess *run.Session, req *request, g *dag.Graph) (any, error)

// statusRecorder captures the status written to a ResponseWriter so
// the request counter can label by outcome class, and carries the
// request's trace id (when one was sampled) down to writeError so
// every structured error body names the trace that explains it.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	traceID string
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// solve is the shared request path of the three POST endpoints:
// decode under the body cap, parse and size-check the graph, derive
// the request deadline, admit into the worker pool (or shed), then
// wait for the result or the deadline — whichever comes first.
func (s *Server) solve(w http.ResponseWriter, r *http.Request, endpoint string, fn solveFunc) {
	stop := obs.ServerRequestTimer(endpoint).Start()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

	// When tracing is on, EVERY request carries a trace (starting a
	// span is two atomic ops and a locked append); the sampler decides
	// at the end which finished traces the ring keeps, so a request
	// that only turned out slow is never lost to the 1-in-N counter.
	var tr *span.Trace
	var root span.Span
	sampled := false
	if s.sampler.Tracing() {
		tr = span.New()
		sampled = s.sampler.Sampled()
		sr.traceID = tr.ID().String()
		sr.Header().Set("X-Paraconv-Trace", sr.traceID)
		r = r.WithContext(span.NewContext(r.Context(), tr))
		root = span.Start(r.Context(), "server."+endpoint)
	}
	defer func() {
		stop()
		obs.ServerRequests(endpoint, statusClass(sr.status)).Inc()
		if tr == nil {
			return
		}
		root.End()
		if d := tr.Finish(); s.sampler.Admit(sampled, d) {
			if sampled {
				obs.TraceSampled.Inc()
			} else {
				obs.TraceSlow.Inc()
			}
			s.ring.Add(tr)
		}
	}()

	decodeSpan := span.Start(r.Context(), "server.decode")
	req, g, respBinary, ok := s.decodeRequest(sr, r)
	decodeSpan.End()
	if !ok {
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// The job runs on a pool worker under the request's context; the
	// buffered channel lets a late-finishing job complete after the
	// handler has already answered 504.
	type result struct {
		payload any
		err     error
	}
	done := make(chan result, 1)
	job := func() {
		if err := ctx.Err(); err != nil {
			// Dead on dequeue: the deadline expired while queued.
			done <- result{err: err}
			return
		}
		obs.ServerInflight.Add(1)
		defer obs.ServerInflight.Add(-1)
		payload, err := fn(s.session.WithContext(ctx), req, g)
		done <- result{payload: payload, err: err}
	}
	if !s.pool.trySubmit(job) {
		obs.ServerShed.Inc()
		obs.Log().Warn("request shed", "endpoint", endpoint,
			"queue_depth", s.cfg.QueueDepth, "trace_id", sr.traceID)
		sr.Header().Set("Retry-After", "1")
		writeError(sr, http.StatusTooManyRequests, "shed", "admission queue full (%d deep); retry later", s.cfg.QueueDepth)
		return
	}

	select {
	case res := <-done:
		if res.err != nil {
			writeSolveError(sr, res.err)
			return
		}
		writeResponse(sr, http.StatusOK, res.payload, respBinary)
	case <-ctx.Done():
		// Queued or running past the deadline; the job will observe
		// the same dead context and bail on its own.
		writeSolveError(sr, ctx.Err())
	}
}

// bodyState is the per-request decode scratch recycled by
// bodyStatePool: the body lands in buf in one read, then rd replays it
// to the JSON decoder without another copy.  The decoded request's
// strings are fresh allocations (encoding/json never aliases its
// input), so the buffer is safe to recycle the moment decoding ends.
type bodyState struct {
	buf bytes.Buffer
	rd  bytes.Reader
}

var bodyStatePool = sync.Pool{New: func() any { return new(bodyState) }}

// maxPooledBodyBytes caps what a recycled body buffer may retain, so
// one oversized request does not pin its high-water mark forever.
const maxPooledBodyBytes = 1 << 20

func putBodyState(bs *bodyState) {
	if bs.buf.Cap() > maxPooledBodyBytes {
		return
	}
	bs.rd.Reset(nil)
	bodyStatePool.Put(bs)
}

// decodeRequest negotiates the request codec from Content-Type (415
// for anything that is neither JSON nor the binary wire format), reads
// the body under the size cap, decodes it, parses and size-checks the
// graph, and normalizes defaults.  The returned respBinary is the
// negotiated response codec (Accept header, mirroring the request
// codec when absent); errors themselves are always JSON.
//
//paraconv:hotpath
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (req *request, g *dag.Graph, respBinary, ok bool) {
	reqBinary, supported := requestCodec(r)
	if !supported {
		writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
			"unsupported Content-Type %q (want %s or %s)", r.Header.Get("Content-Type"),
			wire.ContentTypeJSON, wire.ContentTypeBinary)
		return nil, nil, false, false
	}
	respBinary = responseBinary(r, reqBinary)

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	bs := bodyStatePool.Get().(*bodyState)
	defer putBodyState(bs)
	bs.buf.Reset()
	if _, err := bs.buf.ReadFrom(body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				"request body exceeds %d bytes", tooBig.Limit)
			return nil, nil, respBinary, false
		}
		writeError(w, http.StatusBadRequest, "bad_request", "reading request: %v", err)
		return nil, nil, respBinary, false
	}

	req = &request{}
	if reqBinary {
		// wire.DecodeRequest copies every string out of the frame, so
		// the pooled body buffer is free the moment it returns.
		var err error
		g, err = wire.DecodeRequest(bs.buf.Bytes(), req, dag.Limits{MaxNodes: s.cfg.MaxGraphNodes, MaxEdges: s.cfg.MaxGraphEdges})
		if err != nil {
			var lim *dag.LimitError
			var graphErr *wire.GraphError
			switch {
			case errors.As(err, &lim):
				writeError(w, http.StatusBadRequest, "graph_too_large", "%v", lim)
			case errors.Is(err, wire.ErrNoGraph):
				writeError(w, http.StatusBadRequest, "bad_graph", "request has no graph")
			case errors.As(err, &graphErr):
				writeError(w, http.StatusBadRequest, "bad_graph", "%v", err)
			default:
				writeError(w, http.StatusBadRequest, "bad_request", "decoding request: %v", err)
			}
			return nil, nil, respBinary, false
		}
	} else {
		bs.rd.Reset(bs.buf.Bytes())
		dec := json.NewDecoder(&bs.rd)
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "decoding request: %v", err)
			return nil, nil, respBinary, false
		}
		var err error
		g, err = s.parseGraph(req)
		if err != nil {
			var lim *dag.LimitError
			if errors.As(err, &lim) {
				writeError(w, http.StatusBadRequest, "graph_too_large", "%v", lim)
				return nil, nil, respBinary, false
			}
			writeError(w, http.StatusBadRequest, "bad_graph", "%v", err)
			return nil, nil, respBinary, false
		}
	}

	if req.PEs == 0 {
		req.PEs = 16
	}
	if req.Iterations == 0 {
		req.Iterations = 100
	}
	switch {
	case req.PEs < 1 || req.PEs > 4096:
		writeError(w, http.StatusBadRequest, "bad_request", "pes %d out of range [1, 4096]", req.PEs)
		return nil, nil, respBinary, false
	case req.Iterations < 1 || req.Iterations > 1_000_000_000:
		writeError(w, http.StatusBadRequest, "bad_request", "iterations %d out of range [1, 1e9]", req.Iterations)
		return nil, nil, respBinary, false
	case req.TimeoutMS < 0:
		writeError(w, http.StatusBadRequest, "bad_request", "timeout_ms %d is negative", req.TimeoutMS)
		return nil, nil, respBinary, false
	}
	return req, g, respBinary, true
}

// planVariant dispatches a planner variant name through the session.
func planVariant(sess *run.Session, variant string, g *dag.Graph, cfg pim.Config) (*sched.Plan, error) {
	switch variant {
	case "", "para-conv":
		return sess.Plan(g, cfg)
	case "para-conv-single":
		return sess.PlanSingle(g, cfg)
	case "sparta":
		return sess.Baseline(g, cfg)
	case "naive":
		return sess.BaselineNaive(g, cfg)
	default:
		return nil, &badVariantError{variant}
	}
}

// badVariantError distinguishes an unknown variant name (a 400) from
// a planner rejection.
type badVariantError struct{ variant string }

func (e *badVariantError) Error() string {
	return "unknown variant " + e.variant + " (want para-conv, para-conv-single, sparta or naive)"
}

// solvePlan implements POST /v1/plan.
func (s *Server) solvePlan(sess *run.Session, req *request, g *dag.Graph) (any, error) {
	cfg, err := configFor(req.Arch, req.PEs)
	if err != nil {
		return nil, err
	}
	plan, err := planVariant(sess, req.Variant, g, cfg)
	if err != nil {
		return nil, err
	}
	resp := &planResponse{
		Scheme:               plan.Scheme,
		Arch:                 cfg.Name,
		PEs:                  plan.Iter.PEs,
		Period:               plan.Iter.Period,
		ConcurrentIterations: plan.ConcurrentIterations,
		RMax:                 plan.RMax,
		PrologueTime:         plan.PrologueTime(),
		CachedIPRs:           plan.CachedIPRs,
		CacheLoadUnits:       plan.CacheLoadUnits,
		Vertices:             plan.Iter.Graph.NumNodes(),
		Edges:                plan.Iter.Graph.NumEdges(),
		Iterations:           req.Iterations,
		TotalTime:            plan.TotalTime(req.Iterations),
		Throughput:           plan.Throughput(req.Iterations),
	}
	if len(plan.LogicalRetiming.R) > 0 {
		resp.VertexRetiming = append([]int(nil), plan.LogicalRetiming.R...)
	}
	for i, place := range plan.Iter.Assignment {
		if place == pim.InCache {
			resp.CachedEdges = append(resp.CachedEdges, i)
		}
	}
	return resp, nil
}

// solveSimulate implements POST /v1/simulate: plan, then run the
// closed-form simulator over the requested horizon.
func (s *Server) solveSimulate(sess *run.Session, req *request, g *dag.Graph) (any, error) {
	cfg, err := configFor(req.Arch, req.PEs)
	if err != nil {
		return nil, err
	}
	plan, err := planVariant(sess, req.Variant, g, cfg)
	if err != nil {
		return nil, err
	}
	stats, err := sess.Simulate(plan, cfg, req.Iterations)
	if err != nil {
		return nil, err
	}
	return &simulateResponse{
		Scheme:            plan.Scheme,
		Arch:              cfg.Name,
		Iterations:        stats.Iterations,
		Cycles:            stats.Cycles,
		TasksExecuted:     stats.TasksExecuted,
		CacheReads:        stats.CacheReads,
		EDRAMReads:        stats.EDRAMReads,
		CacheBytes:        stats.CacheBytes,
		EDRAMBytes:        stats.EDRAMBytes,
		EnergyPJ:          stats.EnergyPJ,
		Utilization:       stats.Utilization(),
		OffChipFetchRatio: stats.OffChipFetchRatio(),
		PeakCacheLoad:     stats.PeakCacheLoad,
	}, nil
}

// solveSelectArch implements POST /v1/selectarch: plan the graph on
// every candidate architecture and rank by total time.
func (s *Server) solveSelectArch(sess *run.Session, req *request, g *dag.Graph) (any, error) {
	names := req.Archs
	if len(names) == 0 {
		names = []string{"neurocube", "prime", "hmc2", "edge"}
	}
	candidates := make([]pim.Config, 0, len(names))
	for _, name := range names {
		cfg, err := configFor(name, req.PEs)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, cfg)
	}
	best, ranking, err := sess.SelectArch(g, candidates, req.Iterations)
	if err != nil {
		return nil, err
	}
	toResult := func(c sched.Candidate) archResult {
		return archResult{
			Arch:         c.Config.Name,
			PEs:          c.Config.NumPEs,
			Period:       c.Plan.Iter.Period,
			PrologueTime: c.Plan.PrologueTime(),
			TotalTime:    c.TotalTime,
		}
	}
	resp := &selectArchResponse{Best: toResult(best)}
	for _, c := range ranking {
		resp.Ranking = append(resp.Ranking, toResult(c))
	}
	return resp, nil
}
