//go:build race

package server

// raceEnabled reports whether the race detector is compiled in.  Its
// instrumentation allocates on its own, so AllocsPerRun gates are
// skipped under -race.
const raceEnabled = true
