package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testGraphText is a small diamond in the dag text format.
const testGraphText = `graph diamond
node 0 conv 2 a
node 1 conv 3 b
node 2 conv 1 c
node 3 conv 2 d
edge 0 1 1 0 3
edge 0 2 1 0 3
edge 1 3 1 0 3
edge 2 3 1 0 2
`

// newTestServer builds a Server plus an httptest front end and
// registers cleanup for both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON body and returns the response with its decoded
// body bytes.
func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// decodeError asserts an errorResponse body and returns it.
func decodeError(t *testing.T, data []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q is not JSON: %v", data, err)
	}
	if e.Error == "" || e.Kind == "" {
		t.Fatalf("error body %q missing error/kind", data)
	}
	return e
}

func TestPlanHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/plan", map[string]any{
		"graph": testGraphText, "arch": "neurocube", "pes": 4, "iterations": 50,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	var plan planResponse
	if err := json.Unmarshal(data, &plan); err != nil {
		t.Fatalf("decoding plan: %v", err)
	}
	if plan.Scheme != "para-conv" || plan.Period <= 0 || plan.TotalTime <= 0 {
		t.Errorf("implausible plan: %+v", plan)
	}
	// The plan reports the unrolled working graph: input vertices times
	// the concurrent-iteration count.
	if plan.ConcurrentIterations < 1 || plan.Vertices != 4*plan.ConcurrentIterations {
		t.Errorf("plan echoes %d vertices with %d concurrent iterations, want 4x",
			plan.Vertices, plan.ConcurrentIterations)
	}
	if plan.Arch == "" {
		t.Error("plan response missing arch name")
	}
}

func TestPlanVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, variant := range []string{"para-conv", "para-conv-single", "sparta", "naive"} {
		resp, data := post(t, ts, "/v1/plan", map[string]any{
			"graph": testGraphText, "variant": variant, "pes": 4,
		})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("variant %s: status %d, body %s", variant, resp.StatusCode, data)
		}
	}
	resp, data := post(t, ts, "/v1/plan", map[string]any{
		"graph": testGraphText, "variant": "nope",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown variant: status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, data); e.Kind != "bad_request" {
		t.Errorf("unknown variant kind %q, want bad_request", e.Kind)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/simulate", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 20,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	var sim simulateResponse
	if err := json.Unmarshal(data, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Cycles <= 0 || sim.Iterations != 20 || sim.Utilization <= 0 {
		t.Errorf("implausible simulation: %+v", sim)
	}
}

func TestSelectArchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/selectarch", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 20,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	var sel selectArchResponse
	if err := json.Unmarshal(data, &sel); err != nil {
		t.Fatal(err)
	}
	if sel.Best.Arch == "" || len(sel.Ranking) == 0 {
		t.Errorf("implausible selection: %+v", sel)
	}
	if sel.Ranking[0].TotalTime != sel.Best.TotalTime {
		t.Errorf("ranking[0] %+v disagrees with best %+v", sel.Ranking[0], sel.Best)
	}
}

func TestMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/plan", `{"graph": `)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, data); e.Kind != "bad_request" {
		t.Errorf("kind %q, want bad_request", e.Kind)
	}
}

func TestMalformedGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, graph := range map[string]string{
		"empty":     "",
		"bad-text":  "not a graph at all",
		"bad-edge":  "graph g\nnode 0 conv 1 -\nedge 0 7 1 0 2\n",
		"cyclejoke": "graph g\nnode 0 conv 1 -\nedge 0 0 1 0 2\n",
	} {
		resp, data := post(t, ts, "/v1/plan", map[string]any{"graph": graph})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, resp.StatusCode, data)
			continue
		}
		if e := decodeError(t, data); e.Kind != "bad_graph" {
			t.Errorf("%s: kind %q, want bad_graph", name, e.Kind)
		}
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := map[string]any{"graph": strings.Repeat("# padding line\n", 200) + testGraphText}
	resp, data := post(t, ts, "/v1/plan", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "too_large" {
		t.Errorf("kind %q, want too_large", e.Kind)
	}
}

func TestGraphOverVertexCapRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGraphNodes: 2})
	resp, data := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "graph_too_large" {
		t.Errorf("kind %q, want graph_too_large", e.Kind)
	}
}

func TestParamValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]map[string]any{
		"negative-pes":     {"graph": testGraphText, "pes": -1},
		"huge-pes":         {"graph": testGraphText, "pes": 100000},
		"negative-iters":   {"graph": testGraphText, "iterations": -5},
		"negative-timeout": {"graph": testGraphText, "timeout_ms": -1},
		"unknown-field":    {"graph": testGraphText, "bogus": true},
		"unknown-arch":     {"graph": testGraphText, "arch": "tpu"},
	} {
		resp, _ := post(t, ts, "/v1/plan", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
}

func TestMetricsMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, family := range []string{"paraconv_server_queue_capacity", "paraconv_plancache_hits_total"} {
		if !strings.Contains(string(data), family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}

// blockWorkers occupies every pool worker with a job that holds until
// the returned release function is called, then waits until the
// workers have actually dequeued them.
func blockWorkers(t *testing.T, s *Server, workers int) (release func()) {
	t.Helper()
	hold := make(chan struct{})
	for i := 0; i < workers; i++ {
		if !s.pool.trySubmit(func() { <-hold }) {
			t.Fatal("could not submit blocking job")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.queued() > 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("workers never picked up the blocking jobs")
		}
		time.Sleep(time.Millisecond)
	}
	released := false
	return func() {
		if !released {
			released = true
			close(hold)
		}
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := blockWorkers(t, s, 1)
	defer release()

	resp, data := post(t, ts, "/v1/plan", map[string]any{
		"graph": testGraphText, "timeout_ms": 25,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "timeout" {
		t.Errorf("kind %q, want timeout", e.Kind)
	}
}

func TestFullQueueSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := blockWorkers(t, s, 1)
	defer release()
	// Fill the single queue slot so the HTTP request has nowhere to go.
	if !s.pool.trySubmit(func() {}) {
		t.Fatal("could not fill the queue slot")
	}

	resp, data := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if e := decodeError(t, data); e.Kind != "shed" {
		t.Errorf("kind %q, want shed", e.Kind)
	}

	// After releasing the workers the service accepts again.
	release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("service never recovered after release (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentIdenticalRequests exercises the pool and the
// cache/singleflight path under -race: a burst of identical plans
// must all succeed and agree.
func TestConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const burst = 24
	periods := make([]int, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(map[string]any{"graph": testGraphText, "pes": 4})
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var plan planResponse
			if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
				errs[i] = err
				return
			}
			periods[i] = plan.Period
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if periods[i] != periods[0] {
			t.Errorf("request %d period %d != %d", i, periods[i], periods[0])
		}
	}
	st := s.CacheStats()
	if st.Hits+st.Misses < burst {
		t.Errorf("cache saw %d lookups, want >= %d", st.Hits+st.Misses, burst)
	}
	if solved := st.Misses - st.DedupHits; solved < 1 {
		t.Errorf("counters imply %d solves", solved)
	}
}

func TestStartAndDrain(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	running, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + running.Addr()

	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]any{"graph": testGraphText, "pes": 4})
	resp, err := http.Post(url+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatalf("request against Start listener: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}

	if err := running.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after Drain")
	}
}
