package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/wire"
)

// submitPlanJob posts a plan job and returns the accepted body.
func submitPlanJob(t *testing.T, ts *httptest.Server, path string, body any) wire.JobAccepted {
	t.Helper()
	resp, data := post(t, ts, path, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, body %s", resp.StatusCode, data)
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatalf("accepted body %q: %v", data, err)
	}
	if acc.JobID == "" {
		t.Fatalf("accepted body %q has no job id", data)
	}
	return acc
}

// getJob fetches a job's status with an optional wait query.
func getJob(t *testing.T, ts *httptest.Server, id, wait string) (*http.Response, wire.JobStatus, []byte) {
	t.Helper()
	url := ts.URL + "/v1/jobs/" + id
	if wait != "" {
		url += "?wait=" + wait
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var js wire.JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &js); err != nil {
			t.Fatalf("status body %q: %v", data, err)
		}
	}
	return resp, js, data
}

// pollTerminal long-polls until the job is terminal or the deadline.
func pollTerminal(t *testing.T, ts *httptest.Server, id string) wire.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, js, data := getJob(t, ts, id, "1s")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d, body %s", resp.StatusCode, data)
		}
		if jobs.State(js.State).Terminal() {
			return js
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return wire.JobStatus{}
}

func TestJobPlanRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	acc := submitPlanJob(t, ts, "/v1/jobs", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 50,
	})
	if acc.State != string(jobs.StateQueued) {
		t.Errorf("accepted state %q, want queued", acc.State)
	}
	final := pollTerminal(t, ts, acc.JobID)
	if final.State != string(jobs.StateDone) || final.Op != "plan" {
		t.Fatalf("final = %+v, want done/plan", final)
	}
	if final.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", final.ElapsedMS)
	}
	// The embedded result is the same shape the sync endpoint returns.
	resBytes, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	var plan planResponse
	if err := json.Unmarshal(resBytes, &plan); err != nil {
		t.Fatalf("embedded result %s: %v", resBytes, err)
	}
	if plan.Scheme != "para-conv" || plan.Period <= 0 {
		t.Errorf("implausible embedded plan: %+v", plan)
	}
}

func TestJobExplicitOps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, op := range []string{"plan", "simulate", "selectarch"} {
		acc := submitPlanJob(t, ts, "/v1/jobs/"+op, map[string]any{
			"graph": testGraphText, "pes": 4, "iterations": 20,
		})
		final := pollTerminal(t, ts, acc.JobID)
		if final.State != string(jobs.StateDone) || final.Op != op {
			t.Fatalf("%s job final = %+v, want done", op, final)
		}
		if final.Result == nil {
			t.Fatalf("%s job finished with no result", op)
		}
	}
}

func TestJobUnknownOp(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/jobs/frobnicate", map[string]any{"graph": testGraphText})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "not_found" {
		t.Fatalf("kind %q, want not_found", e.Kind)
	}
}

func TestJobBadRequestRejectedAtSubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/jobs", map[string]any{"graph": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	decodeError(t, data)
}

func TestJobFailureCarriesTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	acc := submitPlanJob(t, ts, "/v1/jobs", map[string]any{
		"graph": testGraphText, "variant": "frobnicate",
	})
	final := pollTerminal(t, ts, acc.JobID)
	if final.State != string(jobs.StateFailed) {
		t.Fatalf("final = %+v, want failed", final)
	}
	if final.Kind != "bad_request" || final.Error == "" {
		t.Fatalf("failed job carries kind %q error %q, want bad_request", final.Kind, final.Error)
	}
	if final.Result != nil {
		t.Fatal("failed job carries a result")
	}
}

func TestJobUnknownID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _, data := getJob(t, ts, "deadbeef", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
}

func TestJobBadWait(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	acc := submitPlanJob(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	resp, _, data := getJob(t, ts, acc.JobID, "soon")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
}

// blockWorker occupies one async worker with a job that holds until
// release is closed (or the engine cancels it at Close).  It returns
// once the blocker is running, so the caller knows the worker is
// genuinely occupied — HTTP-submitted solves are too fast to saturate
// the pool deterministically.
func blockWorker(t *testing.T, s *Server, release chan struct{}) {
	t.Helper()
	started := make(chan struct{})
	_, err := s.jobs.Submit("plan", time.Minute, func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocker never started")
	}
}

func TestJobCancel(t *testing.T) {
	// One async worker, occupied by a blocker, keeps the target
	// submission queued long enough to cancel deterministically.
	s, ts := newTestServer(t, Config{JobWorkers: 1})
	release := make(chan struct{})
	defer close(release)
	blockWorker(t, s, release)
	acc := submitPlanJob(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := pollTerminal(t, ts, acc.JobID)
	if final.State != string(jobs.StateCancelled) {
		t.Fatalf("final = %+v, want cancelled", final)
	}
}

func TestJobQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	// The blocker owns the worker, the first HTTP submission owns the
	// single queue slot, so the second must be shed with a 429.
	blockWorker(t, s, release)
	submitPlanJob(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	resp, data := post(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, body %s, want 429", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "shed" {
		t.Fatalf("kind %q, want shed", e.Kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestJobWarmRestartThroughServer drives the whole tentpole: server A
// solves async jobs and writes through to a data dir; server B — a
// fresh process-equivalent over the same dir — serves the same graphs
// from the durable store with zero new solves.
func TestJobWarmRestartThroughServer(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Store: st1})
	acc := submitPlanJob(t, ts1, "/v1/jobs", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 50,
	})
	if final := pollTerminal(t, ts1, acc.JobID); final.State != string(jobs.StateDone) {
		t.Fatalf("boot1 job = %+v", final)
	}
	if cs := s1.CacheStats(); cs.StoreMisses != 1 || cs.StoreHits != 0 {
		t.Fatalf("boot1 store counters = %+v", cs)
	}

	st2, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Store: st2})
	acc = submitPlanJob(t, ts2, "/v1/jobs", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 50,
	})
	if final := pollTerminal(t, ts2, acc.JobID); final.State != string(jobs.StateDone) {
		t.Fatalf("boot2 job = %+v", final)
	}
	cs := s2.CacheStats()
	if cs.StoreHits != 1 || cs.StoreMisses != 0 {
		t.Fatalf("boot2 store counters = %+v, want 1 hit / 0 misses (zero solves)", cs)
	}
	// The sync endpoint shares the same tiered cache: a /v1/plan of the
	// same graph is now an in-memory hit, still no solve.
	resp, data := post(t, ts2, "/v1/plan", map[string]any{
		"graph": testGraphText, "pes": 4, "iterations": 50,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync follow-up status %d, body %s", resp.StatusCode, data)
	}
	if cs := s2.CacheStats(); cs.StoreMisses != 0 {
		t.Fatalf("sync follow-up consulted the solver: %+v", cs)
	}
}

func TestDrainCancelsAsyncJobs(t *testing.T) {
	s := New(Config{JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := make(chan struct{})
	defer close(release)
	// A blocker holds the worker so the HTTP submission is still queued
	// when the server closes; both must land in cancelled.
	blockWorker(t, s, release)
	queued := submitPlanJob(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	s.Close()
	resp, js, data := getJob(t, ts, queued.JobID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if js.State != string(jobs.StateCancelled) {
		t.Fatalf("queued job after Close = %+v, want cancelled", js)
	}
	resp, data = post(t, ts, "/v1/jobs", map[string]any{"graph": testGraphText})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close = %d, body %s", resp.StatusCode, data)
	}
}
