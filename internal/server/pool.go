package server

import (
	"sync"

	"repro/internal/obs"
)

// pool is a bounded worker pool behind an explicit admission queue.
// The queue is the service's load-shedding point: trySubmit never
// blocks, so a full queue turns into an immediate 429 at the HTTP
// layer instead of an unbounded pile of goroutines all running the
// knapsack DP at once.
type pool struct {
	queue chan func()
	wg    sync.WaitGroup

	// mu serializes trySubmit against close so intake can be stopped
	// without racing a send on the closed channel.
	mu     sync.RWMutex
	closed bool
}

// newPool starts workers goroutines draining an admission queue of
// the given depth.
func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan func(), depth)}
	obs.ServerQueueCapacity.Set(int64(depth))
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		obs.ServerQueueDepth.Add(-1)
		job()
	}
}

// trySubmit enqueues job without blocking; false means the queue is
// full (or intake has closed) and the caller must shed the request.
func (p *pool) trySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- job:
		obs.ServerQueueDepth.Add(1)
		return true
	default:
		return false
	}
}

// queued returns the current admission-queue length.
func (p *pool) queued() int { return len(p.queue) }

// close stops intake and waits for every queued and in-flight job to
// finish.  Jobs observe their own request contexts, so the wait is
// bounded by the per-request deadlines.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}
