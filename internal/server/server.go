// Package server is the planning service: Para-CONV's retiming +
// allocation decision (PAPER.md §3) served as a long-running HTTP
// daemon that many accelerator clients query concurrently, in the
// host-planner role Neurocube-style PIM deployments assume.
//
// The service is shaped for sustained load rather than a toy mux:
//
//   - a bounded worker pool behind an admission queue; when the queue
//     is full, requests are shed immediately with 429 + Retry-After
//     instead of queueing unboundedly (counts exported as
//     paraconv_server_* metrics);
//   - per-request deadlines (server default, client-overridable)
//     propagated through run.Session contexts into every DP row and
//     scheduling loop;
//   - concurrent identical requests ride one solve via the plan
//     cache's singleflight, then the shared content-keyed cache;
//   - http.MaxBytesReader input caps and dag.ReadTextLimits graph
//     caps, both mapped to structured JSON client errors;
//   - graceful drain: Running.Drain stops intake, finishes queued
//     work up to a timeout, then releases the port.
//
// Endpoints: POST /v1/plan, POST /v1/simulate, POST /v1/selectarch,
// GET /healthz, GET /readyz, plus the obs debug endpoints (/metrics,
// /metrics.json, /debug/pprof/) mounted on the same listener.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/run"
)

// Config parameterizes a Server.  The zero value is usable: every
// field has a production-shaped default.
type Config struct {
	// Workers is the solve-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth is the admission-queue capacity; requests arriving
	// with the queue full are shed with 429 (default 64).
	QueueDepth int
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout bounds a request's solve when the client does
	// not send timeout_ms (default 30s).  MaxTimeout caps what a
	// client may ask for (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxGraphNodes and MaxGraphEdges cap graphs accepted from the
	// network (defaults 20000 and 200000).
	MaxGraphNodes int
	MaxGraphEdges int
	// CacheBound is the shared plan cache's entry bound (default
	// run.DefaultCacheBound).
	CacheBound int
	// Store, when non-nil, is attached to the shared session as the
	// durable second cache tier (see run.AttachStore): consulted on
	// plan-cache miss, written through on solve.  The daemon passes a
	// *store.Store opened on its -data-dir.
	Store run.BlobStore
	// JobWorkers is the async job pool size (default: Workers);
	// JobQueueDepth bounds jobs waiting for an async worker
	// (default 256) — submissions beyond it are shed with 429.
	JobWorkers    int
	JobQueueDepth int
	// JobTTL is how long a finished async job's result stays
	// retrievable at /v1/jobs/{id} (default 5m).
	JobTTL time.Duration
	// TraceSample turns on request tracing at a 1-in-N sampling rate
	// (1 traces everything, 0 — the default — disables tracing
	// entirely and keeps the serving path's zero-alloc no-op spans).
	TraceSample int
	// TraceSlow, when tracing is on, admits any request at least this
	// slow to the trace ring regardless of the sampling counter, so a
	// tail-latency outlier is never lost to the modulus (default 0:
	// slow lane off).
	TraceSlow time.Duration
	// TraceRingSize caps the completed traces resident at
	// /debug/traces (default 256).
	TraceRingSize int
	// SLOObjectives is the objective set evaluated at /debug/slo
	// (default slo.Standard()).
	SLOObjectives []slo.Objective
	// SLOInterval is the burn-rate evaluator's sampling cadence
	// (default slo.DefaultInterval).
	SLOInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxGraphNodes <= 0 {
		c.MaxGraphNodes = 20000
	}
	if c.MaxGraphEdges <= 0 {
		c.MaxGraphEdges = 200000
	}
	if c.CacheBound == 0 {
		c.CacheBound = run.DefaultCacheBound
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = c.Workers
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 256
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 5 * time.Minute
	}
	if c.TraceSample < 0 {
		c.TraceSample = 0
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 256
	}
	if c.SLOObjectives == nil {
		c.SLOObjectives = slo.Standard()
	}
	return c
}

// Server is the planning service: one shared Session (cache +
// singleflight), one worker pool, one mux.
type Server struct {
	cfg      Config
	session  *run.Session
	pool     *pool
	jobs     *jobs.Engine
	mux      *http.ServeMux
	draining atomic.Bool
	sampler  *span.Sampler
	ring     *span.Ring
	sloEval  *slo.Evaluator
	// cluster is the attached fleet view, when this node runs sharded
	// (see AttachCluster).  Atomic because attachment happens after
	// Start: the daemon needs its bound address to know its own member
	// id when the operator asked for port 0.
	cluster atomic.Pointer[cluster.Cluster]
}

// New builds a Server from cfg.  Close (or Running.Drain) must be
// called to stop the worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		session: run.NewWithCacheBound(context.Background(), cfg.CacheBound),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		jobs: jobs.New(jobs.Options{
			Workers:        cfg.JobWorkers,
			QueueDepth:     cfg.JobQueueDepth,
			TTL:            cfg.JobTTL,
			DefaultTimeout: cfg.DefaultTimeout,
			MaxTimeout:     cfg.MaxTimeout,
		}),
		sampler: &span.Sampler{Every: cfg.TraceSample, Slow: cfg.TraceSlow},
		ring:    span.NewRing(cfg.TraceRingSize),
		sloEval: slo.NewEvaluator(obs.Default(), cfg.SLOObjectives, cfg.SLOInterval),
	}
	if cfg.Store != nil {
		// Attached before the listener exists, so no request can race
		// the unsynchronized store-field write.
		s.session.AttachStore(cfg.Store)
	}
	if s.sampler.Tracing() {
		// The gate is global and one-way here: another live server with
		// tracing off still serves zero-alloc no-op spans for its own
		// requests (they carry no trace), so never flip it back off.
		span.SetEnabled(true)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		s.solve(w, r, "plan", s.solvePlan)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		s.solve(w, r, "simulate", s.solveSimulate)
	})
	mux.HandleFunc("POST /v1/selectarch", func(w http.ResponseWriter, r *http.Request) {
		s.solve(w, r, "selectarch", s.solveSelectArch)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.submitJob(w, r, "plan", s.solvePlan)
	})
	mux.HandleFunc("POST /v1/jobs/{op}", func(w http.ResponseWriter, r *http.Request) {
		op := r.PathValue("op")
		fn, ok := map[string]solveFunc{
			"plan":       s.solvePlan,
			"simulate":   s.solveSimulate,
			"selectarch": s.solveSelectArch,
		}[op]
		if !ok {
			writeError(w, http.StatusNotFound, "not_found",
				"unknown job operation %q (want plan, simulate or selectarch)", op)
			return
		}
		s.submitJob(w, r, op, fn)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.jobCancel)
	// Content-addressed plan lookup + the cluster fill protocol's
	// server side.  Registered unconditionally: without a cluster it
	// is still a useful cache probe, and an owner must answer fills
	// even when its own breaker view disagrees about ownership.
	mux.HandleFunc("GET /v1/plans/{fp}", s.planByFingerprint)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		// A durable store that can no longer write is a readiness
		// failure: every solve would limp through failed write-throughs
		// and a restart would lose the cache.  (Readiness, not health —
		// /healthz stays 200 so the cluster's peers keep probing a node
		// whose disk filled, and pick it back up when space returns.)
		if p, ok := cfg.Store.(storeProber); ok {
			if err := p.Probe(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "store: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ready")
		// Ring degradation is surfaced but never fails readiness:
		// every fill failure falls back to a local solve, so a node
		// alone in its ring still serves correctly.
		if cl := s.cluster.Load(); cl != nil {
			live, total := cl.Health()
			fmt.Fprintf(w, "cluster: %d/%d members live\n", live, total)
		}
	})
	// The obs debug endpoints share the daemon's listener so a
	// deployment scrapes one port.
	debug := obs.DefaultHandler()
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /metrics.json", debug)
	mux.Handle("GET /debug/pprof/", debug)
	traces := span.Handler(s.ring)
	mux.Handle("GET /debug/traces", traces)
	mux.Handle("GET /debug/traces/", traces)
	mux.Handle("GET /debug/slo", slo.Handler(s.sloEval))
	s.mux = mux
	return s
}

// SLOReport evaluates the server's objectives now (what /debug/slo
// serves, for embedding callers and tests).
func (s *Server) SLOReport() slo.Report { return s.sloEval.Report() }

// Handler returns the service's HTTP handler (for tests and embedding).
// Every response names the serving node in X-Paraconv-Node once a
// cluster is attached, so a client of the sharded fleet can see which
// member answered without correlating ports.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cl := s.cluster.Load(); cl != nil {
			w.Header().Set("X-Paraconv-Node", cl.Self())
		}
		s.mux.ServeHTTP(w, r)
	})
}

// storeProber is the optional readiness hook a durable store exposes
// (satisfied by *store.Store).
type storeProber interface{ Probe() error }

// AttachCluster installs cl as this node's fleet view: the shared
// session gains the cluster miss tier, /readyz surfaces ring health,
// and responses carry the node id.  Called after Start (the member id
// must match the bound address when the operator asked for port 0);
// the fields involved are atomic, so requests already in flight
// simply miss the tier.  AttachCluster does not take ownership — the
// caller still closes cl.
func (s *Server) AttachCluster(cl *cluster.Cluster) {
	if cl == nil {
		s.cluster.Store(nil)
		s.session.AttachPeers(nil)
		return
	}
	s.cluster.Store(cl)
	s.session.AttachPeers(cl)
}

// CacheStats exposes the shared plan cache's counters.
func (s *Server) CacheStats() run.CacheStats { return s.session.CacheStats() }

// Close stops the async job engine and the worker pool after draining
// queued work.  It is not needed when Running.Drain is used.
func (s *Server) Close() {
	s.jobs.Close()
	s.pool.close()
}

// Running is a listening planning server.
type Running struct {
	s       *Server
	ln      net.Listener
	srv     *http.Server
	sloStop chan struct{}
	stop    sync.Once
}

// Start listens on addr and serves s until Drain.  Like the obs debug
// server, an address without a host (":8080") binds loopback — the
// service is unauthenticated, so exposing it beyond the machine must
// be an explicit choice ("0.0.0.0:8080").  Port 0 picks a free port;
// Addr reports the bound address.
func (s *Server) Start(addr string) (*Running, error) {
	if addr == "" {
		return nil, errors.New("server: empty listen address")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen address %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Log().Warn("planning server stopped", "err", err)
		}
	}()
	// The burn-rate evaluator samples for as long as the daemon
	// listens; Drain closes sloStop before the pool goes down.
	sloStop := make(chan struct{})
	go s.sloEval.Run(sloStop)
	return &Running{s: s, ln: ln, srv: srv, sloStop: sloStop}, nil
}

// Addr returns the bound address (with the real port when the request
// asked for :0).
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Drain performs the graceful shutdown sequence: flip /readyz to 503,
// stop accepting connections, wait up to timeout for in-flight and
// queued requests to finish, then stop the worker pool.  A nil return
// means every accepted request completed; a non-nil return means the
// timeout expired and remaining connections were cut.
func (r *Running) Drain(timeout time.Duration) error {
	r.s.draining.Store(true)
	r.stop.Do(func() { close(r.sloStop) })
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := r.srv.Shutdown(ctx)
	if err != nil {
		// Shutdown gave up waiting; cut the stragglers so the pool's
		// jobs see their request contexts die and the close below
		// cannot wait on a connection that will never finish.
		r.srv.Close()
	}
	// Async jobs still queued or running are cancelled — their clients
	// poll a different (or restarted) process, and a restarted daemon
	// re-serves finished solves from the durable store anyway.
	r.s.jobs.Close()
	r.s.pool.close()
	return err
}
