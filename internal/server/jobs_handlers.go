package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/wire"
)

// maxJobWait caps the long-poll a client may ask for with
// GET /v1/jobs/{id}?wait=...; longer asks are truncated, not rejected,
// so a client can always pass its own patience and let the server
// bound connection hold time.
const maxJobWait = 30 * time.Second

// submitJob is POST /v1/jobs[/{op}]: decode exactly like the sync
// path, then queue the solve on the async engine and answer 202 with
// the job id immediately.  The solve itself — and its span tree, when
// tracing — runs later on an async worker.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, op string, fn solveFunc) {
	stop := obs.ServerRequestTimer("jobs").Start()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		stop()
		obs.ServerRequests("jobs", statusClass(sr.status)).Inc()
	}()

	// Job traces are per-job, not per-submission-request: the trace is
	// created here so the 202 can carry its id, but every span in it is
	// opened and finished inside the job function on the async worker.
	var tr *span.Trace
	sampled := false
	if s.sampler.Tracing() {
		tr = span.New()
		sampled = s.sampler.Sampled()
		sr.traceID = tr.ID().String()
		sr.Header().Set("X-Paraconv-Trace", sr.traceID)
	}

	req, g, _, ok := s.decodeRequest(sr, r)
	if !ok {
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	job := func(ctx context.Context) (any, error) {
		if tr != nil {
			ctx = span.NewContext(ctx, tr)
			root := span.Start(ctx, "jobs."+op)
			defer func() {
				root.End()
				if d := tr.Finish(); s.sampler.Admit(sampled, d) {
					if sampled {
						obs.TraceSampled.Inc()
					} else {
						obs.TraceSlow.Inc()
					}
					s.ring.Add(tr)
				}
			}()
		}
		return fn(s.session.WithContext(ctx), req, g)
	}

	snap, err := s.jobs.Submit(op, timeout, job)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			obs.ServerShed.Inc()
			obs.Log().Warn("async job shed", "op", op,
				"queue_depth", s.cfg.JobQueueDepth, "trace_id", sr.traceID)
			sr.Header().Set("Retry-After", "1")
			writeError(sr, http.StatusTooManyRequests, "shed",
				"async job queue full (%d deep); retry later", s.cfg.JobQueueDepth)
		case errors.Is(err, jobs.ErrClosed):
			writeError(sr, http.StatusServiceUnavailable, "draining", "server is draining")
		default:
			writeError(sr, http.StatusInternalServerError, "internal", "submitting job: %v", err)
		}
		return
	}
	writeJSON(sr, http.StatusAccepted, &wire.JobAccepted{
		JobID:      snap.ID,
		State:      string(snap.State),
		QueueDepth: s.jobs.QueueDepth(),
	})
}

// jobStatusBody maps an engine snapshot to the wire shape, reusing the
// sync path's error taxonomy for failed/cancelled jobs.
func jobStatusBody(snap jobs.Snapshot) *wire.JobStatus {
	js := &wire.JobStatus{
		JobID: snap.ID,
		Op:    snap.Op,
		State: string(snap.State),
	}
	end := time.Now()
	if snap.State.Terminal() {
		end = snap.Finished
	}
	js.ElapsedMS = float64(end.Sub(snap.Submitted)) / float64(time.Millisecond)
	if snap.Err != nil {
		js.Error = snap.Err.Error()
		js.Kind = solveErrorKind(snap.Err)
	}
	if snap.State == jobs.StateDone {
		js.Result = snap.Result
	}
	return js
}

// jobStatus is GET /v1/jobs/{id}: the job's current state, long-polled
// when ?wait=<duration> is present (bounded by maxJobWait; the
// response is the latest state either way).
func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	stop := obs.ServerRequestTimer("jobs_poll").Start()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		stop()
		obs.ServerRequests("jobs_poll", statusClass(sr.status)).Inc()
	}()

	var wait time.Duration
	if q := r.URL.Query().Get("wait"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d < 0 {
			writeError(sr, http.StatusBadRequest, "bad_request", "wait %q is not a duration", q)
			return
		}
		if d > maxJobWait {
			d = maxJobWait
		}
		wait = d
	}
	id := r.PathValue("id")
	snap, ok := s.jobs.Wait(r.Context(), id, wait)
	if !ok {
		writeError(sr, http.StatusNotFound, "not_found", "no job %q (expired or never submitted)", id)
		return
	}
	writeJSON(sr, http.StatusOK, jobStatusBody(snap))
}

// jobCancel is DELETE /v1/jobs/{id}: queued jobs land in cancelled
// immediately, running jobs when their solve observes the dead
// context; terminal jobs are unchanged.  The response is the job's
// state after the cancel took effect at the engine.
func (s *Server) jobCancel(w http.ResponseWriter, r *http.Request) {
	stop := obs.ServerRequestTimer("jobs_poll").Start()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		stop()
		obs.ServerRequests("jobs_poll", statusClass(sr.status)).Inc()
	}()
	id := r.PathValue("id")
	snap, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(sr, http.StatusNotFound, "not_found", "no job %q (expired or never submitted)", id)
		return
	}
	writeJSON(sr, http.StatusOK, jobStatusBody(snap))
}
