package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/synth"
)

// discardResponseWriter satisfies http.ResponseWriter without touching
// the network, so the alloc gates measure only the decode path.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// resettableBody replays the same bytes as a fresh request body each
// run without allocating a reader per run.
type resettableBody struct{ bytes.Reader }

func (b *resettableBody) Close() error { return nil }

// TestAllocsDecodePath gates the request decode + graph parse path:
// its allocation count must stay O(1) in the graph's EDGE count.  The
// irreducible per-request spend is one string per named node (Node.Name
// must be heap-copied out of the transient scan buffer), the request
// struct with its graph string, the JSON decoder, the MaxBytesReader
// wrapper, and a constant handful of graph arrays (nodes, edges, the
// two adjacency tables and their shared backing, thanks to the
// counts-header bulk load).  Everything else — body buffer, scanner
// state, line tokens, numeric fields, per-vertex adjacency growth —
// is pooled or in-place.  The budget is one alloc per node plus fixed
// headroom; a return to per-line parsing or per-edge adjacency growth
// (~3 allocs per edge here) blows through it immediately.
func TestAllocsDecodePath(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	s := New(Config{})
	defer s.Close()

	g, err := synth.Generate(synth.Params{Name: "alloc", Vertices: 200, Edges: 520, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var gtext strings.Builder
	if err := dag.WriteText(&gtext, g); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(map[string]any{"graph": gtext.String(), "pes": 16})
	if err != nil {
		t.Fatal(err)
	}

	body := &resettableBody{}
	httpReq := httptest.NewRequest("POST", "/v1/plan", nil)
	httpReq.Body = body
	w := &discardResponseWriter{h: make(http.Header)}

	decodeOnce := func() {
		body.Reset(payload)
		req, ok := s.decodeRequest(w, httpReq)
		if !ok {
			t.Fatal("decodeRequest rejected the request")
		}
		if _, err := s.parseGraph(req); err != nil {
			t.Fatal(err)
		}
	}
	decodeOnce() // warm the pools
	budget := float64(g.NumNodes() + 64)
	allocs := testing.AllocsPerRun(30, decodeOnce)
	if allocs > budget {
		t.Errorf("decode+parse allocates %.0f objects per request; budget %.0f", allocs, budget)
	}
	t.Logf("decode+parse: %.1f allocs per request (budget %.0f)", allocs, budget)
}

// TestAllocsWriteJSON gates the response encode path: after warm-up, a
// plan-sized response body costs only the encoder state and the JSON
// bytes' transient scratch, not a buffer per response.
func TestAllocsWriteJSON(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	resp := planResponse{Scheme: "para-conv", Arch: "neurocube", PEs: 16, Period: 42,
		CachedEdges: []int{1, 2, 3, 5, 8, 13}}
	w := &discardResponseWriter{h: make(http.Header)}
	writeJSON(w, http.StatusOK, resp) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		writeJSON(w, http.StatusOK, resp)
	})
	// json.Encoder itself allocates a handful of objects per Encode;
	// the gate just pins that a fresh bytes.Buffer (and its growth
	// chain) is no longer part of the bill.
	if allocs > 12 {
		t.Errorf("writeJSON allocates %.0f objects per response; want <= 12", allocs)
	}
}

var _ io.ReadCloser = (*resettableBody)(nil)
