package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/synth"
	"repro/internal/wire"
)

// discardResponseWriter satisfies http.ResponseWriter without touching
// the network, so the alloc gates measure only the decode path.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// resettableBody replays the same bytes as a fresh request body each
// run without allocating a reader per run.
type resettableBody struct{ bytes.Reader }

func (b *resettableBody) Close() error { return nil }

// TestAllocsDecodePath gates the request decode + graph parse path:
// its allocation count must stay O(1) in the graph's EDGE count.  The
// irreducible per-request spend is one string per named node (Node.Name
// must be heap-copied out of the transient scan buffer), the request
// struct with its graph string, the JSON decoder, the MaxBytesReader
// wrapper, and a constant handful of graph arrays (nodes, edges, the
// two adjacency tables and their shared backing, thanks to the
// counts-header bulk load).  Everything else — body buffer, scanner
// state, line tokens, numeric fields, per-vertex adjacency growth —
// is pooled or in-place.  The budget is one alloc per node plus fixed
// headroom; a return to per-line parsing or per-edge adjacency growth
// (~3 allocs per edge here) blows through it immediately.
func TestAllocsDecodePath(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	s := New(Config{})
	defer s.Close()

	g, err := synth.Generate(synth.Params{Name: "alloc", Vertices: 200, Edges: 520, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var gtext strings.Builder
	if err := dag.WriteText(&gtext, g); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(map[string]any{"graph": gtext.String(), "pes": 16})
	if err != nil {
		t.Fatal(err)
	}

	body := &resettableBody{}
	httpReq := httptest.NewRequest("POST", "/v1/plan", nil)
	httpReq.Body = body
	w := &discardResponseWriter{h: make(http.Header)}

	decodeOnce := func() {
		body.Reset(payload)
		req, gotG, _, ok := s.decodeRequest(w, httpReq)
		if !ok {
			t.Fatal("decodeRequest rejected the request")
		}
		if req == nil || gotG == nil || gotG.NumNodes() != g.NumNodes() {
			t.Fatal("decodeRequest returned an incomplete request")
		}
	}
	decodeOnce() // warm the pools
	budget := float64(g.NumNodes() + 64)
	allocs := testing.AllocsPerRun(30, decodeOnce)
	if allocs > budget {
		t.Errorf("decode+parse allocates %.0f objects per request; budget %.0f", allocs, budget)
	}
	t.Logf("decode+parse: %.1f allocs per request (budget %.0f)", allocs, budget)
}

// TestAllocsDecodePathBinary gates the binary request path: unlike the
// text path (whose per-node name strings dominate), the binary decoder
// backs all node names with one string, so the whole decode — envelope,
// request strings, graph and its storage — must stay within a fixed
// budget independent of graph size.
func TestAllocsDecodePathBinary(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	s := New(Config{})
	defer s.Close()

	g, err := synth.Generate(synth.Params{Name: "alloc-bin", Vertices: 200, Edges: 520, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	payload := wire.AppendRequest(nil, &request{PEs: 16}, g)

	body := &resettableBody{}
	httpReq := httptest.NewRequest("POST", "/v1/plan", nil)
	httpReq.Body = body
	httpReq.Header.Set("Content-Type", wire.ContentTypeBinary)
	w := &discardResponseWriter{h: make(http.Header)}

	decodeOnce := func() {
		body.Reset(payload)
		req, gotG, respBin, ok := s.decodeRequest(w, httpReq)
		if !ok || !respBin {
			t.Fatal("decodeRequest rejected the binary request")
		}
		if req == nil || gotG == nil || gotG.NumNodes() != g.NumNodes() {
			t.Fatal("decodeRequest returned an incomplete request")
		}
	}
	decodeOnce() // warm the pools
	allocs := testing.AllocsPerRun(30, decodeOnce)
	if allocs > 48 {
		t.Errorf("binary decode allocates %.0f objects per request; budget 48", allocs)
	}
	t.Logf("binary decode: %.1f allocs per request (budget 48)", allocs)
}

// TestAllocsWriteJSON gates the response encode path: after warm-up, a
// plan-sized response body costs only the encoder state and the JSON
// bytes' transient scratch, not a buffer per response.
func TestAllocsWriteJSON(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	resp := planResponse{Scheme: "para-conv", Arch: "neurocube", PEs: 16, Period: 42,
		CachedEdges: []int{1, 2, 3, 5, 8, 13}}
	w := &discardResponseWriter{h: make(http.Header)}
	writeJSON(w, http.StatusOK, resp) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		writeJSON(w, http.StatusOK, resp)
	})
	// json.Encoder itself allocates a handful of objects per Encode;
	// the gate just pins that a fresh bytes.Buffer (and its growth
	// chain) is no longer part of the bill.
	if allocs > 12 {
		t.Errorf("writeJSON allocates %.0f objects per response; want <= 12", allocs)
	}
}

// TestAllocsWriteBinary gates the binary encode path: a warm pooled
// buffer plus reflection-free appends means the whole response write
// must be allocation-free.
func TestAllocsWriteBinary(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs without -race")
	}
	resp := &planResponse{Scheme: "para-conv", Arch: "neurocube", PEs: 16, Period: 42,
		VertexRetiming: []int{0, 1, 2}, CachedEdges: []int{1, 2, 3, 5, 8, 13}}
	w := &discardResponseWriter{h: make(http.Header)}
	writeBinary(w, http.StatusOK, resp) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		writeBinary(w, http.StatusOK, resp)
	})
	// Header.Set("Content-Length", ...) allocates its value slice; the
	// frame staging itself must contribute nothing.
	if allocs > 4 {
		t.Errorf("writeBinary allocates %.0f objects per response; want <= 4", allocs)
	}
}

var _ io.ReadCloser = (*resettableBody)(nil)
