package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/synth"
	"repro/internal/wire"
)

// plansGraph generates a graph for the content-addressed endpoint
// tests (synth output, so each seed is a distinct fingerprint).
func plansGraph(t *testing.T, seed int64) *dag.Graph {
	t.Helper()
	g, err := synth.Generate(synth.Params{Name: "plans", Vertices: 24, Edges: 50, Seed: seed})
	if err != nil {
		t.Fatalf("synth.Generate: %v", err)
	}
	return g
}

// getPlans issues GET /v1/plans/{fp}, optionally with a fill body.
func getPlans(t *testing.T, baseURL, fp string, fill []byte) (*http.Response, []byte) {
	t.Helper()
	var body io.Reader
	if fill != nil {
		body = bytes.NewReader(fill)
	}
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/plans/"+fp, body)
	if err != nil {
		t.Fatal(err)
	}
	if fill != nil {
		req.Header.Set("Content-Type", wire.ContentTypeBinary)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestPlansBadFingerprint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, fp := range []string{
		"short",
		strings.Repeat("g", 64), // not hex
		strings.Repeat("A", 64), // uppercase is not canonical
	} {
		resp, data := getPlans(t, ts.URL, fp, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("fp %q: status %d, want 400", fp, resp.StatusCode)
			continue
		}
		if e := decodeError(t, data); e.Kind != "bad_fingerprint" {
			t.Errorf("fp %q: kind %q, want bad_fingerprint", fp, e.Kind)
		}
	}
}

func TestPlansMissWithoutBodyIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := getPlans(t, ts.URL, strings.Repeat("ab", 32), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404; body %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "not_found" {
		t.Errorf("kind %q, want not_found", e.Kind)
	}
}

// TestPlansLookupAfterSolve: a plan solved through /v1/plan is
// retrievable by its content fingerprint as a binary frame.
func TestPlansLookupAfterSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/plan", map[string]any{
		"graph": testGraphText, "arch": "neurocube", "pes": 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve failed: %d %s", resp.StatusCode, data)
	}

	g, err := dag.ReadTextLimits(strings.NewReader(testGraphText), dag.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	fp := run.PlanFingerprint("", "", g, pim.Neurocube(4))
	resp, data = getPlans(t, ts.URL, fp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Errorf("Content-Type %q, want %s", ct, wire.ContentTypeBinary)
	}
	p, err := wire.DecodePlan(data, dag.Limits{})
	if err != nil {
		t.Fatalf("payload failed to decode as a plan frame: %v", err)
	}
	if err := p.Iter.Validate(); err != nil {
		t.Fatalf("served plan invalid: %v", err)
	}
}

// TestPlansFillSolvesOnBehalf: a miss with a fill body makes this node
// solve the carried problem; the result is then cached for bodiless
// lookups.
func TestPlansFillSolvesOnBehalf(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g := plansGraph(t, 71)
	cfg := pim.Neurocube(16)
	fp := run.PlanFingerprint("", "", g, cfg)

	resp, data := getPlans(t, ts.URL, fp, wire.AppendPeerFill(nil, "para-conv", cfg, g))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill status %d, body %s", resp.StatusCode, data)
	}
	p, err := wire.DecodePlan(data, dag.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Iter.Validate(); err != nil {
		t.Fatalf("fill-solved plan invalid: %v", err)
	}

	// The fill's solve went through the shared session: a bodiless
	// lookup now hits.
	resp, _ = getPlans(t, ts.URL, fp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fill lookup status %d, want 200", resp.StatusCode)
	}
	if cs := s.CacheStats(); cs.Misses != 1 {
		t.Errorf("Misses = %d after one fill solve, want 1", cs.Misses)
	}
}

// TestPlansFingerprintMismatch: a fill frame that does not hash to the
// requested fingerprint must be rejected, not solved — it would poison
// the content keyspace.
func TestPlansFingerprintMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfg := pim.Neurocube(16)
	fpA := run.PlanFingerprint("", "", plansGraph(t, 72), cfg)
	fillB := wire.AppendPeerFill(nil, "para-conv", cfg, plansGraph(t, 73))

	resp, data := getPlans(t, ts.URL, fpA, fillB)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "fingerprint_mismatch" {
		t.Errorf("kind %q, want fingerprint_mismatch", e.Kind)
	}
}

func TestPlansBadFillFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := getPlans(t, ts.URL, strings.Repeat("cd", 32), []byte("junk frame"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, data)
	}
}

// probeFailStore is a BlobStore whose readiness probe fails, modelling
// a daemon whose data dir went read-only after boot.
type probeFailStore struct{ err error }

func (p *probeFailStore) Get(string) ([]byte, bool) { return nil, false }
func (p *probeFailStore) Put(string, []byte) error  { return nil }
func (p *probeFailStore) Probe() error              { return p.err }

// TestReadyzProbesStore: /readyz must exercise the durable store's
// write path, not just report process liveness — and /healthz must
// stay 200 so cluster peers keep probing the degraded node.
func TestReadyzProbesStore(t *testing.T) {
	st := &probeFailStore{}
	_, ts := newTestServer(t, Config{Store: st})

	resp, data := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(data, "ready") {
		t.Fatalf("healthy store: /readyz = %d %q, want 200 ready", resp.StatusCode, data)
	}

	st.err = errors.New("read-only filesystem")
	resp, data = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing store: /readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(data, "read-only filesystem") {
		t.Errorf("/readyz body %q does not surface the probe error", data)
	}
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d with a failing store, want 200 (health != readiness)", resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestTwoNodeClusterFill is the tentpole in miniature: two servers,
// one ring, the same problem posted to both — exactly one local solve
// cluster-wide, with the non-owner served by a peer fill.
func TestTwoNodeClusterFill(t *testing.T) {
	sA, tsA := newTestServer(t, Config{})
	sB, tsB := newTestServer(t, Config{})
	addrA := tsA.Listener.Addr().String()
	addrB := tsB.Listener.Addr().String()
	members := []string{addrA, addrB}

	clA, err := cluster.New(cluster.Config{Self: addrA, Peers: members, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	clB, err := cluster.New(cluster.Config{Self: addrB, Peers: members, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	sA.AttachCluster(clA)
	sB.AttachCluster(clB)

	g, err := dag.ReadTextLimits(strings.NewReader(testGraphText), dag.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	fp := run.PlanFingerprint("", "", g, pim.Neurocube(4))

	// Both rings are built from the same member list, so they agree on
	// the owner; sort out which server plays which role.
	owner, nonOwner := sA, sB
	ownerTS, nonOwnerTS := tsA, tsB
	ownerAddr := addrA
	if clA.Owner(fp) == addrB {
		owner, nonOwner = sB, sA
		ownerTS, nonOwnerTS = tsB, tsA
		ownerAddr = addrB
	}

	body := map[string]any{"graph": testGraphText, "arch": "neurocube", "pes": 4}
	resp, data := post(t, nonOwnerTS, "/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner solve: %d %s", resp.StatusCode, data)
	}
	if node := resp.Header.Get("X-Paraconv-Node"); node == ownerAddr {
		t.Errorf("non-owner's response claims the owner node %s answered", node)
	}
	resp, data = post(t, ownerTS, "/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: %d %s", resp.StatusCode, data)
	}

	ocs, ncs := owner.CacheStats(), nonOwner.CacheStats()
	if ncs.PeerFills != 1 || ncs.PeerFallbacks != 0 {
		t.Errorf("non-owner counters = %d fills / %d fallbacks, want 1 / 0", ncs.PeerFills, ncs.PeerFallbacks)
	}
	// The owner solved once — for the fill — and served its own POST
	// from that cached plan.  The non-owner's miss was filled, never
	// solved: one solve cluster-wide.
	if ocs.Misses != 1 || ocs.Hits != 1 {
		t.Errorf("owner counters = %d misses / %d hits, want 1 / 1", ocs.Misses, ocs.Hits)
	}
	if ocs.PeerFills != 0 {
		t.Errorf("owner issued %d peer fills for its own key, want 0", ocs.PeerFills)
	}
}

// TestPlansLeanServing: a fill request advertising X-Paraconv-Rebuild
// gets the kernel-free lean frame; a plain lookup still gets the
// self-contained stored-plan frame.
func TestPlansLeanServing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g := plansGraph(t, 81)
	cfg := pim.Neurocube(16)
	fp := run.PlanFingerprint("", "", g, cfg)

	// Solve on behalf via a fill with the rebuild advertisement: the
	// response is already lean.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/plans/"+fp,
		bytes.NewReader(wire.AppendPeerFill(nil, "para-conv", cfg, g)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	req.Header.Set("X-Paraconv-Rebuild", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill status %d, body %s", resp.StatusCode, data)
	}
	if !wire.LeanPlanFrame(data) {
		t.Fatal("rebuild-capable fill was not answered with a lean frame")
	}
	p, err := wire.DecodeLeanPlan(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Iter.Validate(); err != nil {
		t.Fatalf("lean fill-solved plan invalid: %v", err)
	}

	// Warm lean lookup serves the entry's cached lean frame.
	req, err = http.NewRequest(http.MethodGet, ts.URL+"/v1/plans/"+fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Paraconv-Rebuild", "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !wire.LeanPlanFrame(warm) {
		t.Fatalf("warm lean lookup = status %d, lean %v; want 200 lean", resp.StatusCode, wire.LeanPlanFrame(warm))
	}

	// A plain lookup (no advertisement) must stay self-contained.
	resp, full := getPlans(t, ts.URL, fp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain lookup status %d", resp.StatusCode)
	}
	if wire.LeanPlanFrame(full) {
		t.Fatal("plain lookup was answered with a lean frame")
	}
	if _, err := wire.DecodePlan(full, dag.Limits{}); err != nil {
		t.Fatalf("plain lookup payload: %v", err)
	}
}
