package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/wire"
)

// testGraphBinary parses testGraphText and re-encodes it as a dag
// binary frame.
func testGraphBinary(t *testing.T) (*dag.Graph, []byte) {
	t.Helper()
	g, err := dag.ReadText(strings.NewReader(testGraphText))
	if err != nil {
		t.Fatal(err)
	}
	return g, dag.AppendBinary(nil, g)
}

// postRaw sends body with explicit Content-Type and Accept headers.
func postRaw(t *testing.T, ts *httptest.Server, path, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func binaryPlanRequest(t *testing.T, pes int) []byte {
	t.Helper()
	g, _ := testGraphBinary(t)
	return wire.AppendRequest(nil, &request{PEs: pes}, g)
}

// TestBinaryRequestBinaryResponse drives the all-binary path: binary
// request in, binary plan frame out, equal in content to the JSON
// answer for the same solve.
func TestBinaryRequestBinaryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeBinary, "", binaryPlanRequest(t, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("Content-Type %q, want %q", ct, wire.ContentTypeBinary)
	}
	var plan planResponse
	if err := wire.DecodePlanResponse(data, &plan); err != nil {
		t.Fatalf("decoding binary plan: %v", err)
	}
	if plan.Scheme != "para-conv" || plan.Period <= 0 || plan.Vertices != 4*plan.ConcurrentIterations {
		t.Errorf("implausible binary plan: %+v", plan)
	}

	// The same solve over JSON must produce the same payload.
	jsonResp, jsonData := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText, "pes": 4})
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("JSON status %d", jsonResp.StatusCode)
	}
	var jsonPlan planResponse
	if err := json.Unmarshal(jsonData, &jsonPlan); err != nil {
		t.Fatal(err)
	}
	if jsonPlan.Period != plan.Period || jsonPlan.TotalTime != plan.TotalTime ||
		jsonPlan.RMax != plan.RMax || jsonPlan.CachedIPRs != plan.CachedIPRs ||
		!reflect.DeepEqual(jsonPlan.CachedEdges, plan.CachedEdges) {
		t.Errorf("codecs disagree:\nbinary %+v\njson   %+v", plan, jsonPlan)
	}
}

// TestBinaryRequestJSONAccept: a binary request whose Accept prefers
// JSON gets a JSON body back.
func TestBinaryRequestJSONAccept(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeBinary, wire.ContentTypeJSON, binaryPlanRequest(t, 4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wire.ContentTypeJSON) {
		t.Fatalf("Content-Type %q, want JSON", ct)
	}
	var plan planResponse
	if err := json.Unmarshal(data, &plan); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, data)
	}
	if plan.Scheme != "para-conv" {
		t.Errorf("plan: %+v", plan)
	}
}

// TestJSONRequestBinaryAccept: a JSON request asking for the binary
// response codec gets a frame back.
func TestJSONRequestBinaryAccept(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, err := json.Marshal(map[string]any{"graph": testGraphText, "pes": 4})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeJSON, wire.ContentTypeBinary, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("Content-Type %q, want %q", ct, wire.ContentTypeBinary)
	}
	var plan planResponse
	if err := wire.DecodePlanResponse(data, &plan); err != nil {
		t.Fatalf("decoding binary plan: %v", err)
	}
}

// TestUnknownContentType415: anything that is neither JSON nor the
// wire format is rejected up front with a structured JSON error.
func TestUnknownContentType415(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, ct := range []string{"text/plain", "application/xml", "application/x-paraconv-bin2"} {
		resp, data := postRaw(t, ts, "/v1/plan", ct, "", []byte("{}"))
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
		if e := decodeError(t, data); e.Kind != "unsupported_media_type" {
			t.Errorf("Content-Type %q: kind %q, want unsupported_media_type", ct, e.Kind)
		}
	}
}

// TestContentTypeParameterIgnored: charset parameters do not change
// the negotiated codec.
func TestContentTypeParameterIgnored(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{"graph": testGraphText})
	resp, data := postRaw(t, ts, "/v1/plan", "application/json; charset=utf-8", "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
}

// TestBinaryErrorsAreJSON: failures on the binary path still answer
// with the structured JSON error body.
func TestBinaryErrorsAreJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tests := []struct {
		name       string
		body       []byte
		wantStatus int
		wantKind   string
	}{
		{"truncated frame", binaryPlanRequest(t, 4)[:9], http.StatusBadRequest, "bad_request"},
		{"garbage", []byte("this is not a frame"), http.StatusBadRequest, "bad_request"},
		{"no graph", wire.AppendRequest(nil, &request{PEs: 4}, nil), http.StatusBadRequest, "bad_graph"},
		{"bad pes", func() []byte {
			g, _ := testGraphBinary(t)
			return wire.AppendRequest(nil, &request{PEs: 99999}, g)
		}(), http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeBinary, wire.ContentTypeBinary, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("error Content-Type %q, want JSON", ct)
			}
			if e := decodeError(t, data); e.Kind != tc.wantKind {
				t.Errorf("kind %q, want %q", e.Kind, tc.wantKind)
			}
		})
	}
}

// TestBinaryGraphOverCapRejected: the graph size caps apply to the
// embedded binary graph exactly as to text graphs.
func TestBinaryGraphOverCapRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGraphNodes: 2})
	resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeBinary, "", binaryPlanRequest(t, 4))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "graph_too_large" {
		t.Errorf("kind %q, want graph_too_large", e.Kind)
	}
}

// TestBinaryOversizedBodyRejected: the body cap answers 413 before the
// frame is even inspected.
func TestBinaryOversizedBodyRejected(t *testing.T) {
	body := binaryPlanRequest(t, 4)
	_, ts := newTestServer(t, Config{MaxBodyBytes: int64(len(body)) - 1})
	resp, data := postRaw(t, ts, "/v1/plan", wire.ContentTypeBinary, "", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Kind != "too_large" {
		t.Errorf("kind %q, want too_large", e.Kind)
	}
}

// TestBinarySimulateAndSelectArch round-trips the two other endpoints
// over the binary codec.
func TestBinarySimulateAndSelectArch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	g, _ := testGraphBinary(t)

	simBody := wire.AppendRequest(nil, &request{PEs: 4, Iterations: 50}, g)
	resp, data := postRaw(t, ts, "/v1/simulate", wire.ContentTypeBinary, "", simBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d, body %s", resp.StatusCode, data)
	}
	var sim simulateResponse
	if err := wire.DecodeSimulateResponse(data, &sim); err != nil {
		t.Fatalf("decoding simulate frame: %v", err)
	}
	// The simulator rounds the horizon up to a whole unroll group, so
	// Iterations may exceed the requested 50.
	if sim.Iterations < 50 || sim.Cycles <= 0 {
		t.Errorf("implausible simulate: %+v", sim)
	}

	selBody := wire.AppendRequest(nil, &request{PEs: 4, Archs: []string{"neurocube", "edge"}}, g)
	resp, data = postRaw(t, ts, "/v1/selectarch", wire.ContentTypeBinary, "", selBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selectarch status %d, body %s", resp.StatusCode, data)
	}
	var sel selectArchResponse
	if err := wire.DecodeSelectArchResponse(data, &sel); err != nil {
		t.Fatalf("decoding selectarch frame: %v", err)
	}
	if len(sel.Ranking) != 2 || sel.Best.Arch == "" {
		t.Errorf("implausible selectarch: %+v", sel)
	}
}

// TestWriteBinaryPinCap: a binary response that balloons past the
// pooled-buffer cap is still delivered intact; the buffer is just not
// recycled (the cap protects the pool, not the client).
func TestWriteBinaryPinCap(t *testing.T) {
	big := &planResponse{Scheme: "para-conv", Arch: "neurocube"}
	// > 1 MiB of varint payload: 600k entries at >= 2 bytes each.
	big.VertexRetiming = make([]int, 600_000)
	for i := range big.VertexRetiming {
		big.VertexRetiming[i] = 300 + i%100
	}
	frame := wire.AppendPlanResponse(nil, big)
	if len(frame) <= maxPooledBodyBytes {
		t.Fatalf("test payload is %d bytes; needs > %d to exercise the pin cap", len(frame), maxPooledBodyBytes)
	}
	rec := httptest.NewRecorder()
	writeBinary(rec, http.StatusOK, big)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var got planResponse
	if err := wire.DecodePlanResponse(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding oversized frame: %v", err)
	}
	if len(got.VertexRetiming) != len(big.VertexRetiming) {
		t.Errorf("oversized response truncated: %d of %d entries", len(got.VertexRetiming), len(big.VertexRetiming))
	}
}
