package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/wire"
)

// planByFingerprint implements GET /v1/plans/{fp}: the owner's side of
// the cluster fill protocol, and a plain content-addressed plan lookup
// for anyone else.  The fingerprint is looked up in the local tiers
// (in-memory cache, then durable store); on a full miss, a request
// body — a wire peer-fill frame carrying the complete planning problem
// — lets this node solve on the requester's behalf, through the same
// worker pool and admission queue as every other solve (a 429 shed
// degrades the requester to its own local solve).  A bodiless miss is
// a 404.  The response body is the binary stored-plan frame — or, when
// the request carries X-Paraconv-Rebuild (the sender holds the problem
// graph and can derive a para-conv kernel itself), the kernel-free
// lean frame, which skips both the owner's graph encode and the
// requester's graph decode on the cluster's warm path.
//
// Fills are served whatever this node's own ring view says about
// ownership: the requester routed here off its view, and answering is
// correct even when the views disagree (the solve itself never
// re-enters the cluster tier, so divergent views cannot loop).
func (s *Server) planByFingerprint(w http.ResponseWriter, r *http.Request) {
	stop := obs.ServerRequestTimer("plans").Start()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		stop()
		obs.ServerRequests("plans", statusClass(sr.status)).Inc()
	}()
	obs.ClusterForwards.Inc()

	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		// The fingerprint doubles as the durable store's file key, so
		// nothing but the canonical hex form may reach a lookup.
		writeError(sr, http.StatusBadRequest, "bad_fingerprint",
			"fingerprint must be 64 lowercase hex characters")
		return
	}

	lean := r.Header.Get("X-Paraconv-Rebuild") != ""
	if lean {
		if payload, ok := s.session.EncodedFillByFingerprint(fp); ok {
			writePlanFrame(sr, payload)
			return
		}
	} else if payload, ok := s.session.EncodedPlanByFingerprint(fp); ok {
		writePlanFrame(sr, payload)
		return
	}

	body := http.MaxBytesReader(sr, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(sr, http.StatusRequestEntityTooLarge, "too_large",
				"fill body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(sr, http.StatusBadRequest, "bad_request", "reading fill body: %v", err)
		return
	}
	if len(data) == 0 {
		writeError(sr, http.StatusNotFound, "not_found", "no plan stored for %s", fp)
		return
	}

	pf, g, err := wire.DecodePeerFill(data, dag.Limits{MaxNodes: s.cfg.MaxGraphNodes, MaxEdges: s.cfg.MaxGraphEdges})
	if err != nil {
		var lim *dag.LimitError
		var graphErr *wire.GraphError
		switch {
		case errors.As(err, &lim):
			writeError(sr, http.StatusBadRequest, "graph_too_large", "%v", lim)
		case errors.Is(err, wire.ErrNoGraph):
			writeError(sr, http.StatusBadRequest, "bad_graph", "fill frame has no graph")
		case errors.As(err, &graphErr):
			writeError(sr, http.StatusBadRequest, "bad_graph", "%v", err)
		default:
			writeError(sr, http.StatusBadRequest, "bad_request", "decoding fill frame: %v", err)
		}
		return
	}
	if run.PlanFingerprint(pf.Variant, "", g, pf.Config) != fp {
		// A mismatch means the requester and this node disagree on what
		// the problem hashes to — solving would poison the keyspace
		// under the requested fingerprint's name.
		writeError(sr, http.StatusBadRequest, "fingerprint_mismatch",
			"fill frame does not hash to %s", fp)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	type result struct {
		payload []byte
		err     error
	}
	done := make(chan result, 1)
	job := func() {
		if err := ctx.Err(); err != nil {
			done <- result{err: err}
			return
		}
		obs.ServerInflight.Add(1)
		defer obs.ServerInflight.Add(-1)
		p, err := planVariant(s.session.WithContext(ctx).WithoutPeerFill(), pf.Variant, g, pf.Config)
		if err != nil {
			done <- result{err: err}
			return
		}
		if lean && p.Scheme == wire.SchemeParaCONV {
			done <- result{payload: wire.AppendLeanPlan(nil, p)}
			return
		}
		done <- result{payload: wire.AppendPlan(nil, p)}
	}
	if !s.pool.trySubmit(job) {
		obs.ServerShed.Inc()
		obs.Log().Warn("fill solve shed", "fp", fp, "queue_depth", s.cfg.QueueDepth)
		sr.Header().Set("Retry-After", "1")
		writeError(sr, http.StatusTooManyRequests, "shed", "admission queue full (%d deep); retry later", s.cfg.QueueDepth)
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			writeSolveError(sr, res.err)
			return
		}
		writePlanFrame(sr, res.payload)
	case <-ctx.Done():
		writeSolveError(sr, ctx.Err())
	}
}

// writePlanFrame writes a binary stored-plan payload.  Content-Length
// is explicit because the cluster's lean client refuses chunked
// responses.
func writePlanFrame(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// validFingerprint reports whether fp is a canonical plan fingerprint:
// exactly the hex sha256 form run.PlanFingerprint produces.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
