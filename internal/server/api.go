package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/wire"
)

// The exchange types live in internal/wire so the client tooling
// (cmd/paraconvload, the bench harness) shares one schema and both
// codecs with the server; the aliases keep this package's call sites
// unchanged.
type (
	request            = wire.Request
	planResponse       = wire.PlanResponse
	simulateResponse   = wire.SimulateResponse
	archResult         = wire.ArchResult
	selectArchResponse = wire.SelectArchResponse
	errorResponse      = wire.ErrorResponse
)

// statusClientClosed is the nginx-convention status for "client went
// away before we could answer" — there is no registered HTTP code for
// it, but the access metrics need the case distinguished from 5xx.
const statusClientClosed = 499

// respBufPool recycles the response-encoding buffers writeJSON stages
// bodies in; buffers that ballooned past maxPooledBodyBytes are
// dropped rather than pinned.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v as the response body with the given status.  The
// body is staged in a pooled buffer and written in one call, so an
// encoding failure can still become a 500 (nothing has been sent yet)
// and the connection sees a single write with a Content-Length instead
// of the chunked drip of an encoder bound to the wire.
//
//paraconv:hotpath
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		obs.Log().Debug("server: encoding response", "err", err)
		http.Error(w, `{"error":"encoding response","kind":"internal"}`, http.StatusInternalServerError)
		respBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		obs.Log().Debug("server: writing response", "err", err)
	}
	if buf.Cap() <= maxPooledBodyBytes {
		respBufPool.Put(buf)
	}
}

// writeBinary encodes v as a binary wire frame with the given status,
// staged in the same pooled buffers as writeJSON and under the same
// pin cap (a response that ballooned past maxPooledBodyBytes is
// dropped, not recycled).
//
//paraconv:hotpath
func writeBinary(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	var frame []byte
	switch p := v.(type) {
	case *planResponse:
		frame = wire.AppendPlanResponse(buf.AvailableBuffer(), p)
	case *simulateResponse:
		frame = wire.AppendSimulateResponse(buf.AvailableBuffer(), p)
	case *selectArchResponse:
		frame = wire.AppendSelectArchResponse(buf.AvailableBuffer(), p)
	default:
		obs.Log().Debug("server: no binary frame for payload", "type", fmt.Sprintf("%T", v))
		http.Error(w, `{"error":"encoding response","kind":"internal"}`, http.StatusInternalServerError)
		respBufPool.Put(buf)
		return
	}
	buf.Write(frame)
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		obs.Log().Debug("server: writing response", "err", err)
	}
	if buf.Cap() <= maxPooledBodyBytes {
		respBufPool.Put(buf)
	}
}

// writeResponse dispatches a success payload through the negotiated
// response codec.  Errors never come here: they are always JSON (see
// writeError), whatever codec the payloads use.
func writeResponse(w http.ResponseWriter, status int, v any, binary bool) {
	if binary {
		writeBinary(w, status, v)
		return
	}
	writeJSON(w, status, v)
}

// writeError sends a structured JSON error.  When the writer is the
// request's statusRecorder and a trace was sampled, the body carries
// the trace id so the client can name the exact request when filing
// the failure.
func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...), Kind: kind}
	if sr, ok := w.(*statusRecorder); ok {
		resp.TraceID = sr.traceID
	}
	writeJSON(w, status, resp)
}

// requestCodec classifies the request body's media type: JSON (the
// default when no Content-Type is sent), the binary wire format, or
// unsupported.  Parameters after ';' (charset and friends) are
// ignored.
func requestCodec(r *http.Request) (binary, ok bool) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)
	switch {
	case ct == "" || strings.EqualFold(ct, wire.ContentTypeJSON):
		return false, true
	case strings.EqualFold(ct, wire.ContentTypeBinary):
		return true, true
	default:
		return false, false
	}
}

// responseBinary decides the response codec from the Accept header:
// an explicit application/x-paraconv-bin selects binary; no Accept (or
// the wildcard */*) mirrors the request codec; any other preference
// falls back to JSON.
func responseBinary(r *http.Request, reqBinary bool) bool {
	accept := r.Header.Get("Accept")
	if accept == "" || accept == "*/*" {
		return reqBinary
	}
	return strings.Contains(accept, wire.ContentTypeBinary)
}

// solveErrorKind classifies a solve failure into the error taxonomy
// shared by the sync endpoints' writeSolveError and the async job
// status body: context errors are the deadline or the client giving
// out, a bad variant is a request error, everything else is the
// planner rejecting the input.
func solveErrorKind(err error) string {
	var badVariant *badVariantError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.As(err, &badVariant):
		return "bad_request"
	default:
		return "unplannable"
	}
}

// writeSolveError maps a solve failure to a response: context errors
// become 504/499 (the deadline or the client gave out, not the
// server), everything else is the planner rejecting the input — the
// graph validated, so the problem is still the client's data.
func writeSolveError(w http.ResponseWriter, err error) {
	switch solveErrorKind(err) {
	case "timeout":
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired: %v", err)
	case "canceled":
		writeError(w, statusClientClosed, "canceled", "request canceled: %v", err)
	case "bad_request":
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "unplannable", "%v", err)
	}
}

// statusClass buckets a status code into the fixed label set of the
// request counter.
func statusClass(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "429"
	case status == statusClientClosed:
		return "499"
	case status == http.StatusGatewayTimeout:
		return "504"
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// configFor resolves an architecture preset name.
func configFor(arch string, pes int) (pim.Config, error) {
	switch arch {
	case "", "neurocube":
		return pim.Neurocube(pes), nil
	case "prime":
		return pim.PRIME(pes), nil
	case "hmc2":
		return pim.HMCGen2(pes), nil
	case "edge":
		return pim.EdgeDevice(pes), nil
	default:
		return pim.Config{}, fmt.Errorf("unknown architecture %q (want neurocube, prime, hmc2 or edge)", arch)
	}
}

// graphReaderPool recycles the strings.Reader parseGraph wraps the
// request's graph text in; readers are reset to the empty string
// before pooling so they do not pin request bodies.
var graphReaderPool = sync.Pool{New: func() any { return new(strings.Reader) }}

// parseGraph reads the request's graph text under the server's size
// caps.
func (s *Server) parseGraph(req *request) (*dag.Graph, error) {
	if strings.TrimSpace(req.Graph) == "" {
		return nil, errors.New("request has no graph")
	}
	rd := graphReaderPool.Get().(*strings.Reader)
	rd.Reset(req.Graph)
	g, err := dag.ReadTextLimits(rd,
		dag.Limits{MaxNodes: s.cfg.MaxGraphNodes, MaxEdges: s.cfg.MaxGraphEdges})
	rd.Reset("")
	graphReaderPool.Put(rd)
	return g, err
}
