package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/pim"
)

// request is the JSON body shared by the three solve endpoints.  Every
// field except Graph is optional.
type request struct {
	// Graph is the task graph in the dag text format.
	Graph string `json:"graph"`
	// Arch names an architecture preset: neurocube (default), prime,
	// hmc2 or edge.  Selectarch ignores it in favour of Archs.
	Arch string `json:"arch"`
	// Archs is the candidate list for /v1/selectarch; empty means
	// every preset.
	Archs []string `json:"archs"`
	// PEs is the processing-engine count (default 16).
	PEs int `json:"pes"`
	// Iterations sizes the predicted totals and the simulation
	// horizon (default 100).
	Iterations int `json:"iterations"`
	// Variant picks the planner: para-conv (default),
	// para-conv-single, sparta or naive.
	Variant string `json:"variant"`
	// TimeoutMS caps this request's solve time; 0 uses the server's
	// default request timeout.
	TimeoutMS int `json:"timeout_ms"`
}

// planResponse is the /v1/plan result: the Para-CONV decision plus
// its predicted cost over the requested iteration count.
type planResponse struct {
	Scheme               string  `json:"scheme"`
	Arch                 string  `json:"arch"`
	PEs                  int     `json:"pes"`
	Period               int     `json:"period"`
	ConcurrentIterations int     `json:"concurrent_iterations"`
	RMax                 int     `json:"r_max"`
	PrologueTime         int     `json:"prologue_time"`
	CachedIPRs           int     `json:"cached_iprs"`
	CacheLoadUnits       int     `json:"cache_load_units"`
	Vertices             int     `json:"vertices"`
	Edges                int     `json:"edges"`
	Iterations           int     `json:"iterations"`
	TotalTime            int     `json:"total_time"`
	Throughput           float64 `json:"throughput"`
	VertexRetiming       []int   `json:"vertex_retiming,omitempty"`
	CachedEdges          []int   `json:"cached_edges,omitempty"`
}

// simulateResponse is the /v1/simulate result: the closed-form
// simulator's statistics for the planned schedule.
type simulateResponse struct {
	Scheme            string  `json:"scheme"`
	Arch              string  `json:"arch"`
	Iterations        int     `json:"iterations"`
	Cycles            int     `json:"cycles"`
	TasksExecuted     int     `json:"tasks_executed"`
	CacheReads        int     `json:"cache_reads"`
	EDRAMReads        int     `json:"edram_reads"`
	CacheBytes        int64   `json:"cache_bytes"`
	EDRAMBytes        int64   `json:"edram_bytes"`
	EnergyPJ          float64 `json:"energy_pj"`
	Utilization       float64 `json:"utilization"`
	OffChipFetchRatio float64 `json:"offchip_fetch_ratio"`
	PeakCacheLoad     int     `json:"peak_cache_load"`
}

// archResult is one /v1/selectarch ranking entry.
type archResult struct {
	Arch         string `json:"arch"`
	PEs          int    `json:"pes"`
	Period       int    `json:"period"`
	PrologueTime int    `json:"prologue_time"`
	TotalTime    int    `json:"total_time"`
}

// selectArchResponse is the /v1/selectarch result: the best candidate
// and the full ranking, best first.
type selectArchResponse struct {
	Best    archResult   `json:"best"`
	Ranking []archResult `json:"ranking"`
}

// errorResponse is the structured error body every non-2xx response
// carries.
type errorResponse struct {
	Error string `json:"error"`
	// Kind is machine-checkable: bad_request, bad_graph,
	// graph_too_large, too_large, unplannable, timeout, canceled,
	// shed or internal.
	Kind string `json:"kind"`
}

// statusClientClosed is the nginx-convention status for "client went
// away before we could answer" — there is no registered HTTP code for
// it, but the access metrics need the case distinguished from 5xx.
const statusClientClosed = 499

// respBufPool recycles the response-encoding buffers writeJSON stages
// bodies in; buffers that ballooned past maxPooledBodyBytes are
// dropped rather than pinned.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON encodes v as the response body with the given status.  The
// body is staged in a pooled buffer and written in one call, so an
// encoding failure can still become a 500 (nothing has been sent yet)
// and the connection sees a single write with a Content-Length instead
// of the chunked drip of an encoder bound to the wire.
//
//paraconv:hotpath
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		obs.Log().Debug("server: encoding response", "err", err)
		http.Error(w, `{"error":"encoding response","kind":"internal"}`, http.StatusInternalServerError)
		respBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		obs.Log().Debug("server: writing response", "err", err)
	}
	if buf.Cap() <= maxPooledBodyBytes {
		respBufPool.Put(buf)
	}
}

// writeError sends a structured JSON error.
func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Kind: kind})
}

// writeSolveError maps a solve failure to a response: context errors
// become 504/499 (the deadline or the client gave out, not the
// server), everything else is the planner rejecting the input — the
// graph validated, so the problem is still the client's data.
func writeSolveError(w http.ResponseWriter, err error) {
	var badVariant *badVariantError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosed, "canceled", "request canceled: %v", err)
	case errors.As(err, &badVariant):
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "unplannable", "%v", err)
	}
}

// statusClass buckets a status code into the fixed label set of the
// request counter.
func statusClass(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "429"
	case status == statusClientClosed:
		return "499"
	case status == http.StatusGatewayTimeout:
		return "504"
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// configFor resolves an architecture preset name.
func configFor(arch string, pes int) (pim.Config, error) {
	switch arch {
	case "", "neurocube":
		return pim.Neurocube(pes), nil
	case "prime":
		return pim.PRIME(pes), nil
	case "hmc2":
		return pim.HMCGen2(pes), nil
	case "edge":
		return pim.EdgeDevice(pes), nil
	default:
		return pim.Config{}, fmt.Errorf("unknown architecture %q (want neurocube, prime, hmc2 or edge)", arch)
	}
}

// graphReaderPool recycles the strings.Reader parseGraph wraps the
// request's graph text in; readers are reset to the empty string
// before pooling so they do not pin request bodies.
var graphReaderPool = sync.Pool{New: func() any { return new(strings.Reader) }}

// parseGraph reads the request's graph text under the server's size
// caps.
func (s *Server) parseGraph(req *request) (*dag.Graph, error) {
	if strings.TrimSpace(req.Graph) == "" {
		return nil, errors.New("request has no graph")
	}
	rd := graphReaderPool.Get().(*strings.Reader)
	rd.Reset(req.Graph)
	g, err := dag.ReadTextLimits(rd,
		dag.Limits{MaxNodes: s.cfg.MaxGraphNodes, MaxEdges: s.cfg.MaxGraphEdges})
	rd.Reset("")
	graphReaderPool.Put(rd)
	return g, err
}
