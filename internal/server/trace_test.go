package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/obs/span"
)

// get fetches a path from the test server and returns status + body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestTracedRequestRoundTrips is the end-to-end trace gate: a real
// /v1/simulate request (a cache miss, so every pipeline stage runs)
// must produce a ring-resident trace whose span names cover the
// server, cache, singleflight, retime, knapsack and sim stages, and
// that trace must round-trip through the Chrome exporter.
func TestTracedRequestRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1})

	resp, _ := post(t, ts, "/v1/simulate", map[string]any{"graph": testGraphText, "pes": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Paraconv-Trace")
	if len(id) != 32 {
		t.Fatalf("X-Paraconv-Trace = %q, want 32 hex chars", id)
	}

	code, body := get(t, ts.URL+"/debug/traces/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET trace %s: status %d, body %s", id, code, body)
	}
	var detail span.TraceDetail
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatalf("trace detail does not decode: %v", err)
	}
	joined := ""
	for _, sp := range detail.Spans {
		joined += sp.Name + "\n"
		if sp.End < sp.Start {
			t.Errorf("span %q ends before it starts", sp.Name)
		}
	}
	for _, stage := range []string{"server", "cache", "singleflight", "retime", "knapsack", "sim"} {
		if !strings.Contains(joined, stage) {
			t.Errorf("trace is missing a %q stage span; got:\n%s", stage, joined)
		}
	}
	if len(detail.Spans) < 6 {
		t.Fatalf("trace has %d spans, want >= 6:\n%s", len(detail.Spans), joined)
	}
	if detail.Spans[0].Name != "server.simulate" || detail.Spans[0].Parent != -1 {
		t.Errorf("root span = %+v, want server.simulate with parent -1", detail.Spans[0])
	}

	// The same trace as a Chrome trace-event document.
	code, body = get(t, ts.URL+"/debug/traces/"+id+"/chrome")
	if code != http.StatusOK {
		t.Fatalf("GET chrome export: status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int    `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export does not decode: %v", err)
	}
	if len(doc.TraceEvents) != len(detail.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(detail.Spans))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 1 {
			t.Errorf("event %+v: want ph X and dur >= 1", ev)
		}
	}

	// The listing names the spans so a consumer can pick its trace.
	code, body = get(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	var list []span.TraceSummary
	if err := json.Unmarshal(body, &list); err != nil || len(list) == 0 {
		t.Fatalf("trace listing invalid (err %v, %d entries)", err, len(list))
	}
}

// TestTraceIDInErrorBody: a failed request's structured error carries
// the trace id that explains it.
func TestTraceIDInErrorBody(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1})
	resp, data := post(t, ts, "/v1/plan", map[string]any{
		"graph": testGraphText, "pes": 4, "variant": "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	e := decodeError(t, data)
	if e.TraceID == "" || e.TraceID != resp.Header.Get("X-Paraconv-Trace") {
		t.Fatalf("error trace_id %q does not match header %q", e.TraceID, resp.Header.Get("X-Paraconv-Trace"))
	}
}

// TestUntracedServerSendsNoTraceHeader: with sampling off (the
// default), no header, no trace ring entries, no error trace ids.
func TestUntracedServerSendsNoTraceHeader(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText, "pes": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Paraconv-Trace"); h != "" {
		t.Fatalf("untraced server sent X-Paraconv-Trace %q", h)
	}
	if n := s.ring.Len(); n != 0 {
		t.Fatalf("untraced server admitted %d traces", n)
	}
	code, body := get(t, ts.URL+"/debug/traces")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("GET /debug/traces = %d %q, want empty list", code, body)
	}
}

// TestSLOEndpointHealthyUnderLightLoad drives a few successful
// requests and expects /debug/slo to report every objective ok.
func TestSLOEndpointHealthyUnderLightLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		resp, _ := post(t, ts, "/v1/plan", map[string]any{"graph": testGraphText, "pes": 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: status %d", i, resp.StatusCode)
		}
	}
	code, body := get(t, ts.URL+"/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/slo: status %d, body %s", code, body)
	}
	var rep slo.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("slo report does not decode: %v", err)
	}
	if len(rep.Objectives) != len(slo.Standard()) {
		t.Fatalf("report has %d objectives, want %d", len(rep.Objectives), len(slo.Standard()))
	}
	for _, o := range rep.Objectives {
		if o.Breached {
			t.Errorf("objective %s breached under healthy load: %+v", o.Name, o)
		}
	}
}

// TestSLOEvaluatorStopsOnDrain: the sampling goroutine started by
// Start must exit when Drain runs (goroutine-leak hygiene; the -race
// runs catch a loop that outlives its server).
func TestSLOEvaluatorStopsOnDrain(t *testing.T) {
	s := New(Config{SLOInterval: time.Millisecond})
	running, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the loop tick
	if err := running.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain twice is harmless (stopOnce guards the channel close).
	if err := running.Drain(time.Second); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
