// Package pim models the 3D-stacked processing-in-memory architecture
// Para-CONV targets (paper §2.1, Figure 1): a Neurocube-style extension
// of Micron's Hybrid Memory Cube where a logic tier of processing
// engines (PEs) sits under multiple tiers of DRAM/eDRAM, connected by
// through-silicon vias (TSVs) and a crossbar.
//
// Each PE integrates a PE FIFO (pFIFO), an ALU datapath, a register
// file and a small data cache for intermediate CNN processing results;
// input/output FIFOs (iFIFO/oFIFO) carry inter-PE traffic.  Fetching
// an intermediate result from a DRAM vault costs 2x-10x more time and
// energy than hitting the on-chip cache (paper §2.2) — that asymmetry
// is the entire reason Para-CONV's allocation problem exists, and this
// package is where it is quantified.
package pim

import (
	"errors"
	"fmt"
)

// Placement says where an intermediate processing result lives.
type Placement uint8

const (
	// InCache places the IPR in the on-chip data cache of the PE array
	// (the scarce, fast option; profit P_α).
	InCache Placement = iota
	// InEDRAM places the IPR in the stacked eDRAM/DRAM vault (the
	// abundant, slow option; profit P_β, with P_α >> P_β).
	InEDRAM
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case InCache:
		return "cache"
	case InEDRAM:
		return "edram"
	default:
		return fmt.Sprintf("placement(%d)", uint8(p))
	}
}

// Config describes one PIM instance.  All latencies are in the same
// abstract "cycles" unit; the schedule-level time unit used by the
// dag/sched packages corresponds to CyclesPerTimeUnit cycles.
type Config struct {
	// Name labels the configuration in reports ("neurocube-16" etc.).
	Name string

	// NumPEs is the number of processing engines on the logic tier.
	// The paper evaluates 16, 32 and 64.
	NumPEs int

	// CacheUnitsPerPE is the data-cache capacity of one PE, in the
	// abstract capacity units that dag.Edge.Size is expressed in.
	// The paper's motivational example uses 1 (each PE cache holds a
	// single intermediate processing result).
	CacheUnitsPerPE int

	// CacheBytesPerUnit converts capacity units to bytes; with the
	// Neurocube preset the whole PE array lands in the paper's
	// 100-300 KB range.
	CacheBytesPerUnit int

	// NumVaults is the number of DRAM vaults reachable through TSVs.
	NumVaults int

	// RegFileEntries, PFIFODepth, IFIFODepth and OFIFODepth size the
	// per-PE microarchitectural buffers; the simulator uses the FIFO
	// depths for back-pressure modelling.
	RegFileEntries int
	PFIFODepth     int
	IFIFODepth     int
	OFIFODepth     int

	// CacheAccessCycles is the latency to read one IPR from a PE data
	// cache; EDRAMAccessCycles is the latency to fetch it from a
	// stacked eDRAM vault over TSVs.  Validity requires
	// EDRAMAccessCycles in [2x, 10x] of CacheAccessCycles, the span
	// the paper cites from [7,14].
	CacheAccessCycles int
	EDRAMAccessCycles int

	// HopCycles is the per-hop latency of the PE crossbar for
	// inter-PE traffic through iFIFO/oFIFO.
	HopCycles int

	// CacheEnergyPJPerByte and EDRAMEnergyPJPerByte quantify the
	// energy asymmetry for data movement accounting.
	CacheEnergyPJPerByte float64
	EDRAMEnergyPJPerByte float64

	// CyclesPerTimeUnit maps one schedule time unit (the unit of
	// dag.Node.Exec) to cycles.
	CyclesPerTimeUnit int
}

// Neurocube returns the Neurocube-derived configuration used in the
// paper's evaluation (§4.1), parameterized by the PE count (the paper
// sweeps 16, 32, 64; any positive count is accepted).
//
// The per-PE cache is four capacity units of 1 KB, putting the whole
// array at 64-256 KB for 16-64 PEs — inside the 100-300 KB envelope
// the paper quotes for "current advanced PIM architecture" at the
// upper configurations.  eDRAM access is 4x cache access latency and
// ~6x energy, the middle of the published 2x-10x band.
func Neurocube(numPEs int) Config {
	return Config{
		Name:                 fmt.Sprintf("neurocube-%d", numPEs),
		NumPEs:               numPEs,
		CacheUnitsPerPE:      4,
		CacheBytesPerUnit:    1024,
		NumVaults:            16,
		RegFileEntries:       32,
		PFIFODepth:           8,
		IFIFODepth:           16,
		OFIFODepth:           16,
		CacheAccessCycles:    4,
		EDRAMAccessCycles:    16,
		HopCycles:            2,
		CacheEnergyPJPerByte: 1.0,
		EDRAMEnergyPJPerByte: 6.0,
		CyclesPerTimeUnit:    16,
	}
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(c.NumPEs >= 1, "NumPEs = %d; want >= 1", c.NumPEs)
	check(c.CacheUnitsPerPE >= 1, "CacheUnitsPerPE = %d; want >= 1", c.CacheUnitsPerPE)
	check(c.CacheBytesPerUnit >= 1, "CacheBytesPerUnit = %d; want >= 1", c.CacheBytesPerUnit)
	check(c.NumVaults >= 1, "NumVaults = %d; want >= 1", c.NumVaults)
	check(c.PFIFODepth >= 1, "PFIFODepth = %d; want >= 1", c.PFIFODepth)
	check(c.IFIFODepth >= 1, "IFIFODepth = %d; want >= 1", c.IFIFODepth)
	check(c.OFIFODepth >= 1, "OFIFODepth = %d; want >= 1", c.OFIFODepth)
	check(c.CacheAccessCycles >= 1, "CacheAccessCycles = %d; want >= 1", c.CacheAccessCycles)
	check(c.CyclesPerTimeUnit >= 1, "CyclesPerTimeUnit = %d; want >= 1", c.CyclesPerTimeUnit)
	if c.CacheAccessCycles >= 1 {
		ratio := float64(c.EDRAMAccessCycles) / float64(c.CacheAccessCycles)
		check(ratio >= 2 && ratio <= 10,
			"EDRAMAccessCycles/CacheAccessCycles = %.2f; want within the published 2x-10x band", ratio)
	}
	check(c.EDRAMEnergyPJPerByte >= c.CacheEnergyPJPerByte,
		"EDRAM energy %.2f pJ/B below cache energy %.2f pJ/B", c.EDRAMEnergyPJPerByte, c.CacheEnergyPJPerByte)
	check(c.HopCycles >= 0, "HopCycles = %d; want >= 0", c.HopCycles)
	return errors.Join(errs...)
}

// TotalCacheUnits returns the aggregate on-chip cache capacity of the
// PE array, the S that bounds the dynamic program in internal/core.
func (c Config) TotalCacheUnits() int { return c.NumPEs * c.CacheUnitsPerPE }

// TotalCacheBytes returns the aggregate PE-array cache size in bytes.
func (c Config) TotalCacheBytes() int { return c.TotalCacheUnits() * c.CacheBytesPerUnit }

// FetchRatio returns how many times slower an eDRAM fetch is than a
// cache access.
func (c Config) FetchRatio() float64 {
	return float64(c.EDRAMAccessCycles) / float64(c.CacheAccessCycles)
}

// AccessCycles returns the access latency for the given placement.
func (c Config) AccessCycles(p Placement) int {
	if p == InCache {
		return c.CacheAccessCycles
	}
	return c.EDRAMAccessCycles
}

// TransferTimeUnits converts the access latency for placement p into
// whole schedule time units (rounding up, minimum 0).  Schedulers use
// this to derive dag.Edge.{Cache,EDRAM}Time defaults when a graph
// generator has not set them explicitly.
func (c Config) TransferTimeUnits(p Placement) int {
	cyc := c.AccessCycles(p)
	return (cyc + c.CyclesPerTimeUnit - 1) / c.CyclesPerTimeUnit
}

// MoveEnergyPJ returns the energy in picojoules to move n bytes
// to/from the given placement.
func (c Config) MoveEnergyPJ(p Placement, bytes int64) float64 {
	if p == InCache {
		return c.CacheEnergyPJPerByte * float64(bytes)
	}
	return c.EDRAMEnergyPJPerByte * float64(bytes)
}
