package pim

import (
	"fmt"
	"math"
)

// The paper sources its latency/energy asymmetry from DESTINY [14], a
// modelling tool for emerging 3D NVM and eDRAM caches.  This file
// provides a miniature, self-contained analogue: first-order latency
// and energy scaling laws for SRAM-class caches and stacked eDRAM, so
// configurations with non-default cache sizes derive consistent
// timing parameters instead of hand-picked constants.
//
// The scaling laws are the standard first-order ones (wire-dominated
// access latency grows with the square root of capacity; per-byte
// access energy grows slowly, capacity^0.1); absolute anchors are
// chosen so the default Neurocube preset is a fixed point.

// CacheModel derives access parameters for an on-PE SRAM-class data
// cache of the given size.
type CacheModel struct {
	Bytes int
	// AccessCycles and EnergyPJPerByte are the derived parameters.
	AccessCycles    int
	EnergyPJPerByte float64
}

// EDRAMModel derives access parameters for a stacked eDRAM vault
// partition of the given size.
type EDRAMModel struct {
	Bytes           int
	AccessCycles    int
	EnergyPJPerByte float64
}

// anchor points: the Neurocube preset's 4 KB PE cache at 4 cycles,
// 1.0 pJ/B; its vault partition (16 MB class) at 16 cycles, 6.0 pJ/B.
const (
	anchorCacheBytes  = 4096
	anchorCacheCycles = 4.0
	anchorCacheEnergy = 1.0
	anchorEDRAMBytes  = 16 << 20
	anchorEDRAMCycles = 16.0
	anchorEDRAMEnergy = 6.0
	// Wire-delay-dominated access latency grows with the square root
	// of capacity; per-byte access energy grows slowly (longer
	// bitlines and deeper decode), modelled as capacity^0.1.
	latencyExponent       = 0.5
	perByteEnergyExponent = 0.1
)

// DeriveCache returns the cache model for the given size (>= 256 B).
func DeriveCache(bytes int) (CacheModel, error) {
	if bytes < 256 {
		return CacheModel{}, fmt.Errorf("pim: cache of %d B below the 256 B model floor", bytes)
	}
	scale := float64(bytes) / anchorCacheBytes
	cycles := int(math.Max(1, math.Round(anchorCacheCycles*math.Pow(scale, latencyExponent))))
	return CacheModel{
		Bytes:           bytes,
		AccessCycles:    cycles,
		EnergyPJPerByte: anchorCacheEnergy * math.Pow(scale, perByteEnergyExponent),
	}, nil
}

// DeriveEDRAM returns the eDRAM model for the given partition size
// (>= 1 MB).
func DeriveEDRAM(bytes int) (EDRAMModel, error) {
	if bytes < 1<<20 {
		return EDRAMModel{}, fmt.Errorf("pim: eDRAM partition of %d B below the 1 MB model floor", bytes)
	}
	scale := float64(bytes) / anchorEDRAMBytes
	cycles := int(math.Max(1, math.Round(anchorEDRAMCycles*math.Pow(scale, latencyExponent))))
	return EDRAMModel{
		Bytes:           bytes,
		AccessCycles:    cycles,
		EnergyPJPerByte: anchorEDRAMEnergy * math.Pow(scale, perByteEnergyExponent),
	}, nil
}

// DerivedConfig builds a full configuration from first principles:
// per-PE cache size and the vault partition size, with every latency
// and energy parameter coming from the DESTINY-style models.  The
// result is validated, including the published 2x-10x fetch band; a
// combination outside the band is rejected rather than silently
// clamped.
func DerivedConfig(name string, numPEs, cacheBytesPerPE, vaultPartitionBytes int) (Config, error) {
	cm, err := DeriveCache(cacheBytesPerPE)
	if err != nil {
		return Config{}, err
	}
	em, err := DeriveEDRAM(vaultPartitionBytes)
	if err != nil {
		return Config{}, err
	}
	base := Neurocube(numPEs)
	cfg := base
	cfg.Name = name
	cfg.CacheBytesPerUnit = cacheBytesPerPE / base.CacheUnitsPerPE
	cfg.CacheAccessCycles = cm.AccessCycles
	cfg.CacheEnergyPJPerByte = cm.EnergyPJPerByte
	cfg.EDRAMAccessCycles = em.AccessCycles
	cfg.EDRAMEnergyPJPerByte = em.EnergyPJPerByte
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("pim: derived config %q invalid: %w", name, err)
	}
	return cfg, nil
}
