package pim

import "fmt"

// The paper's future work (§5) plans "to investigate the use of our
// approach on other emerging PIM architectures and propose a general
// model that can be adaptively applied to different system
// architectures".  These presets provide that generality: alternative
// published PIM instances expressed in the same Config vocabulary, so
// the whole Para-CONV pipeline runs unchanged on each.

// PRIME returns a configuration modelled on the ReRAM-based PRIME
// architecture [4]: computation happens inside resistive crossbar
// arrays, so the "cache" tier (full-function subarray buffers) is
// modest but the penalty for going to the far memory bank is steeper
// than an HMC vault, and data movement energy is lower overall (no
// TSV crossings).
func PRIME(numPEs int) Config {
	return Config{
		Name:                 fmt.Sprintf("prime-%d", numPEs),
		NumPEs:               numPEs,
		CacheUnitsPerPE:      2,
		CacheBytesPerUnit:    1024,
		NumVaults:            8,
		RegFileEntries:       16,
		PFIFODepth:           4,
		IFIFODepth:           8,
		OFIFODepth:           8,
		CacheAccessCycles:    3,
		EDRAMAccessCycles:    24, // 8x: bank activation dominates
		HopCycles:            1,
		CacheEnergyPJPerByte: 0.5,
		EDRAMEnergyPJPerByte: 4.0,
		CyclesPerTimeUnit:    12,
	}
}

// HMCGen2 returns a Hybrid-Memory-Cube generation-2 style instance:
// more vaults and faster TSV signalling than the Neurocube baseline,
// so the fetch penalty is milder (3x) but the per-PE cache is smaller
// — a bandwidth-rich, capacity-poor design point.
func HMCGen2(numPEs int) Config {
	return Config{
		Name:                 fmt.Sprintf("hmc2-%d", numPEs),
		NumPEs:               numPEs,
		CacheUnitsPerPE:      2,
		CacheBytesPerUnit:    2048,
		NumVaults:            32,
		RegFileEntries:       32,
		PFIFODepth:           8,
		IFIFODepth:           16,
		OFIFODepth:           16,
		CacheAccessCycles:    4,
		EDRAMAccessCycles:    12,
		HopCycles:            1,
		CacheEnergyPJPerByte: 1.0,
		EDRAMEnergyPJPerByte: 4.5,
		CyclesPerTimeUnit:    16,
	}
}

// EdgeDevice returns a small embedded PIM instance: few PEs, generous
// per-PE cache (capacity is cheap at small scale), slow and expensive
// DRAM — the regime where Para-CONV's allocation matters most per
// byte.
func EdgeDevice(numPEs int) Config {
	return Config{
		Name:                 fmt.Sprintf("edge-%d", numPEs),
		NumPEs:               numPEs,
		CacheUnitsPerPE:      8,
		CacheBytesPerUnit:    2048,
		NumVaults:            4,
		RegFileEntries:       16,
		PFIFODepth:           4,
		IFIFODepth:           8,
		OFIFODepth:           8,
		CacheAccessCycles:    2,
		EDRAMAccessCycles:    20, // 10x: LPDDR-class penalty
		HopCycles:            2,
		CacheEnergyPJPerByte: 0.8,
		EDRAMEnergyPJPerByte: 8.0,
		CyclesPerTimeUnit:    8,
	}
}

// Presets returns every built-in architecture at the given PE count,
// Neurocube first.
func Presets(numPEs int) []Config {
	return []Config{Neurocube(numPEs), PRIME(numPEs), HMCGen2(numPEs), EdgeDevice(numPEs)}
}
