package pim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeriveCacheAnchored(t *testing.T) {
	m, err := DeriveCache(4096)
	if err != nil {
		t.Fatal(err)
	}
	if m.AccessCycles != 4 {
		t.Errorf("anchor cache cycles = %d, want 4", m.AccessCycles)
	}
	if m.EnergyPJPerByte != 1.0 {
		t.Errorf("anchor cache energy = %g, want 1.0", m.EnergyPJPerByte)
	}
}

func TestDeriveEDRAMAnchored(t *testing.T) {
	m, err := DeriveEDRAM(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.AccessCycles != 16 {
		t.Errorf("anchor eDRAM cycles = %d, want 16", m.AccessCycles)
	}
	if m.EnergyPJPerByte != 6.0 {
		t.Errorf("anchor eDRAM energy = %g, want 6.0", m.EnergyPJPerByte)
	}
}

func TestDeriveScalingMonotone(t *testing.T) {
	prevCycles, prevEnergy := 0, 0.0
	for _, bytes := range []int{512, 1024, 4096, 16384, 65536} {
		m, err := DeriveCache(bytes)
		if err != nil {
			t.Fatal(err)
		}
		if m.AccessCycles < prevCycles {
			t.Errorf("cache cycles fell at %d B: %d < %d", bytes, m.AccessCycles, prevCycles)
		}
		if m.EnergyPJPerByte < prevEnergy {
			t.Errorf("cache energy fell at %d B", bytes)
		}
		prevCycles, prevEnergy = m.AccessCycles, m.EnergyPJPerByte
	}
}

func TestDeriveFloors(t *testing.T) {
	if _, err := DeriveCache(100); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("tiny cache accepted: %v", err)
	}
	if _, err := DeriveEDRAM(1000); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("tiny eDRAM accepted: %v", err)
	}
}

func TestDerivedConfig(t *testing.T) {
	cfg, err := DerivedConfig("derived-16", 16, 4096, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Anchored inputs reproduce the Neurocube latencies.
	base := Neurocube(16)
	if cfg.CacheAccessCycles != base.CacheAccessCycles ||
		cfg.EDRAMAccessCycles != base.EDRAMAccessCycles {
		t.Errorf("derived (%d, %d) != neurocube (%d, %d)",
			cfg.CacheAccessCycles, cfg.EDRAMAccessCycles,
			base.CacheAccessCycles, base.EDRAMAccessCycles)
	}
	if cfg.Name != "derived-16" {
		t.Errorf("name = %q", cfg.Name)
	}
}

func TestDerivedConfigRejectsOutOfBand(t *testing.T) {
	// A giant PE cache with a small eDRAM partition pushes the fetch
	// ratio below 2x, which Validate rejects.
	if _, err := DerivedConfig("bad", 16, 1<<20, 1<<20); err == nil {
		t.Error("out-of-band configuration accepted")
	}
}

// Property: derived ratios stay positive and latency grows weakly
// with size.
func TestDeriveProperty(t *testing.T) {
	f := func(raw uint16) bool {
		bytes := 256 + int(raw)*16
		m, err := DeriveCache(bytes)
		if err != nil {
			return false
		}
		bigger, err := DeriveCache(bytes * 4)
		if err != nil {
			return false
		}
		return m.AccessCycles >= 1 && bigger.AccessCycles >= m.AccessCycles &&
			bigger.EnergyPJPerByte >= m.EnergyPJPerByte
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
