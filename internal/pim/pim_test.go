package pim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNeurocubePresetsValid(t *testing.T) {
	for _, n := range []int{1, 4, 16, 32, 64, 100} {
		cfg := Neurocube(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Neurocube(%d).Validate: %v", n, err)
		}
		if cfg.NumPEs != n {
			t.Errorf("Neurocube(%d).NumPEs = %d", n, cfg.NumPEs)
		}
	}
}

func TestNeurocubeCacheEnvelope(t *testing.T) {
	// The paper says current PIM provides 100-300KB cache for the
	// entire PE array; our 32- and 64-PE presets must land inside it.
	for _, n := range []int{32, 64} {
		b := Neurocube(n).TotalCacheBytes()
		if b < 100*1024 || b > 300*1024 {
			t.Errorf("Neurocube(%d) total cache = %d B; want within [100KB,300KB]", n, b)
		}
	}
}

func TestFetchRatioWithinBand(t *testing.T) {
	cfg := Neurocube(16)
	r := cfg.FetchRatio()
	if r < 2 || r > 10 {
		t.Errorf("FetchRatio = %.2f; want within [2,10]", r)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Neurocube(16)
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero PEs", func(c *Config) { c.NumPEs = 0 }, "NumPEs"},
		{"zero cache", func(c *Config) { c.CacheUnitsPerPE = 0 }, "CacheUnitsPerPE"},
		{"zero vaults", func(c *Config) { c.NumVaults = 0 }, "NumVaults"},
		{"fetch too cheap", func(c *Config) { c.EDRAMAccessCycles = c.CacheAccessCycles }, "2x-10x"},
		{"fetch too dear", func(c *Config) { c.EDRAMAccessCycles = 100 * c.CacheAccessCycles }, "2x-10x"},
		{"energy inverted", func(c *Config) { c.EDRAMEnergyPJPerByte = 0.1 }, "energy"},
		{"zero pfifo", func(c *Config) { c.PFIFODepth = 0 }, "PFIFODepth"},
		{"negative hops", func(c *Config) { c.HopCycles = -1 }, "HopCycles"},
		{"zero cycles per unit", func(c *Config) { c.CyclesPerTimeUnit = 0 }, "CyclesPerTimeUnit"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := base
			m.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate returned nil, want error")
			}
			if !strings.Contains(err.Error(), m.want) {
				t.Errorf("error %q does not mention %q", err, m.want)
			}
		})
	}
}

func TestPlacementString(t *testing.T) {
	if InCache.String() != "cache" || InEDRAM.String() != "edram" {
		t.Errorf("Placement strings: %q, %q", InCache, InEDRAM)
	}
	if got := Placement(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown placement string = %q", got)
	}
}

func TestAccessAndTransfer(t *testing.T) {
	cfg := Neurocube(16)
	if cfg.AccessCycles(InCache) != cfg.CacheAccessCycles {
		t.Error("AccessCycles(InCache) mismatch")
	}
	if cfg.AccessCycles(InEDRAM) != cfg.EDRAMAccessCycles {
		t.Error("AccessCycles(InEDRAM) mismatch")
	}
	if got := cfg.TransferTimeUnits(InCache); got != 1 {
		t.Errorf("cache transfer units = %d, want 1 (4 cycles / 16 per unit, rounded up)", got)
	}
	if got := cfg.TransferTimeUnits(InEDRAM); got != 1 {
		t.Errorf("edram transfer units = %d, want 1 (16 cycles / 16 per unit)", got)
	}
}

func TestMoveEnergyAsymmetry(t *testing.T) {
	cfg := Neurocube(16)
	c := cfg.MoveEnergyPJ(InCache, 1024)
	e := cfg.MoveEnergyPJ(InEDRAM, 1024)
	if e <= c {
		t.Errorf("eDRAM move energy %.1f <= cache %.1f; paper requires 2x-10x more", e, c)
	}
	if ratio := e / c; ratio < 2 || ratio > 10 {
		t.Errorf("energy ratio %.2f outside [2,10]", ratio)
	}
}

func TestTopologyGrid(t *testing.T) {
	top, err := NewTopology(Neurocube(16))
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	cols, rows := top.Dims()
	if cols*rows != 16 || cols < rows {
		t.Errorf("Dims = (%d,%d)", cols, rows)
	}
	if cols != 4 || rows != 4 {
		t.Errorf("16 PEs should form a 4x4 grid, got %dx%d", cols, rows)
	}
	x, y := top.Coord(5)
	if x != 1 || y != 1 {
		t.Errorf("Coord(5) = (%d,%d), want (1,1)", x, y)
	}
	if d := top.Distance(0, 15); d != 6 {
		t.Errorf("Distance(0,15) = %d, want 6", d)
	}
	if d := top.Distance(3, 3); d != 0 {
		t.Errorf("Distance(v,v) = %d, want 0", d)
	}
}

func TestTopologyRejectsInvalidConfig(t *testing.T) {
	cfg := Neurocube(16)
	cfg.NumPEs = 0
	if _, err := NewTopology(cfg); err == nil {
		t.Fatal("NewTopology accepted an invalid config")
	}
}

func TestInterPEAndVaultLatency(t *testing.T) {
	top, err := NewTopology(Neurocube(32))
	if err != nil {
		t.Fatal(err)
	}
	if l := top.InterPELatency(3, 3); l != 0 {
		t.Errorf("same-PE latency = %d, want 0", l)
	}
	if l := top.InterPELatency(3, 4); l != top.Config().HopCycles {
		t.Errorf("cross-PE latency = %d, want %d", l, top.Config().HopCycles)
	}
	pe := PEID(5)
	home := top.HomeVault(pe)
	if l := top.VaultLatency(pe, home); l != top.Config().EDRAMAccessCycles {
		t.Errorf("home vault latency = %d", l)
	}
	other := VaultID((int(home) + 1) % top.Config().NumVaults)
	if l := top.VaultLatency(pe, other); l != top.Config().EDRAMAccessCycles+top.Config().HopCycles {
		t.Errorf("remote vault latency = %d", l)
	}
}

// Property: the grid always covers exactly NumPEs cells and distance is
// a metric (symmetric, zero iff equal, triangle inequality).
func TestTopologyDistanceMetricProperty(t *testing.T) {
	f := func(nRaw, aRaw, bRaw, cRaw uint8) bool {
		n := int(nRaw%63) + 2
		cfg := Neurocube(n)
		top, err := NewTopology(cfg)
		if err != nil {
			return false
		}
		cols, rows := top.Dims()
		if cols*rows != n {
			return false
		}
		a := PEID(int(aRaw) % n)
		b := PEID(int(bRaw) % n)
		c := PEID(int(cRaw) % n)
		dab, dba := top.Distance(a, b), top.Distance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return top.Distance(a, c) <= dab+top.Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
