package pim

import "fmt"

// PEID identifies one processing engine, 0..NumPEs-1.
type PEID int

// VaultID identifies one DRAM vault, 0..NumVaults-1.
type VaultID int

// Topology captures the physical arrangement of the logic tier: PEs on
// a square-ish grid joined by a crossbar, each PE column sharing a TSV
// bundle with a home vault.  The evaluation uses a full crossbar
// ("cross-bar interconnection", §4.1), so routing distance matters for
// latency only via a single hop plus optional locality bonus; we still
// model grid coordinates so inter-PE distance is well defined and a
// mesh variant can reuse the type.
type Topology struct {
	cfg  Config
	cols int
	rows int
}

// NewTopology derives grid dimensions for the configured PE count:
// the most square factorization with cols >= rows.
func NewTopology(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pim: invalid config: %w", err)
	}
	rows := 1
	for r := 1; r*r <= cfg.NumPEs; r++ {
		if cfg.NumPEs%r == 0 {
			rows = r
		}
	}
	return &Topology{cfg: cfg, cols: cfg.NumPEs / rows, rows: rows}, nil
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// Dims returns the grid dimensions (cols, rows), cols >= rows.
func (t *Topology) Dims() (cols, rows int) { return t.cols, t.rows }

// Coord returns the grid coordinates of a PE.
func (t *Topology) Coord(pe PEID) (x, y int) {
	return int(pe) % t.cols, int(pe) / t.cols
}

// Distance returns the Manhattan distance between two PEs on the grid.
// Under the crossbar this does not add latency beyond one hop, but the
// simulator reports it as a locality statistic.
func (t *Topology) Distance(a, b PEID) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// HomeVault returns the vault a PE reaches with the shortest TSV path;
// PEs are distributed round-robin over vaults.
func (t *Topology) HomeVault(pe PEID) VaultID {
	return VaultID(int(pe) % t.cfg.NumVaults)
}

// InterPELatency returns the cycles to move data between two PEs
// through the crossbar via oFIFO/iFIFO: zero when a == b, one hop
// otherwise.
func (t *Topology) InterPELatency(a, b PEID) int {
	if a == b {
		return 0
	}
	return t.cfg.HopCycles
}

// VaultLatency returns the cycles for a PE to fetch from the given
// vault: the eDRAM access cost, plus a crossbar hop when the vault is
// not the PE's home vault.
func (t *Topology) VaultLatency(pe PEID, v VaultID) int {
	lat := t.cfg.EDRAMAccessCycles
	if t.HomeVault(pe) != v {
		lat += t.cfg.HopCycles
	}
	return lat
}
