package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/pim"
)

// LatencyRow exposes the latency/throughput trade-off the paper leaves
// implicit: Para-CONV's software pipeline delivers one result per
// period but an individual inference traverses R_max + 1 pipeline
// stages, while SPARTA completes each inference in one makespan with
// nothing in flight behind it.  For batch workloads throughput wins;
// for a single latency-critical request the baseline can be
// preferable — the study quantifies where.
type LatencyRow struct {
	Benchmark Benchmark
	// ParaLatency is the steady-state arrival-to-completion time of
	// one iteration under Para-CONV: (R_max + 1) periods.
	ParaLatency int
	// ParaThroughput is iterations per time unit in steady state.
	ParaThroughput float64
	// SpartaLatency is the baseline's single-iteration makespan.
	SpartaLatency int
	// SpartaThroughput is the baseline's iterations per time unit.
	SpartaThroughput float64
}

// BreakEvenIterations returns the smallest batch size at which
// Para-CONV's total time (prologue + pipeline) undercuts the
// baseline's, i.e. where throughput starts paying for latency.
func (r LatencyRow) BreakEvenIterations() int {
	for n := 1; n <= 1<<20; n++ {
		para := float64(r.ParaLatency) + float64(n-1)/r.ParaThroughput
		sparta := float64(n) * float64(r.SpartaLatency)
		if para < sparta {
			return n
		}
	}
	return -1
}

// Latency computes the study on the default runner.
func Latency(pes int) ([]LatencyRow, error) { return DefaultRunner().Latency(pes) }

// Latency computes the study at the given PE count.  One benchmark is
// one pool job; the solves are shared with Table 1 through the plan
// cache.
func (r *Runner) Latency(pes int) ([]LatencyRow, error) {
	cfg := pim.Neurocube(pes)
	rows := make([]LatencyRow, len(Suite))
	err := r.runJobs(len(Suite), func(i int) error {
		b := Suite[i]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		pc, err := r.planCell(g, cfg, planParaCONV)
		if err != nil {
			return fmt.Errorf("bench: latency %s: %w", b.Name, err)
		}
		sp, err := r.planCell(g, cfg, planSPARTA)
		if err != nil {
			return fmt.Errorf("bench: latency %s: %w", b.Name, err)
		}
		rows[i] = LatencyRow{
			Benchmark:        b,
			ParaLatency:      (pc.RMax + 1) * pc.Iter.Period,
			ParaThroughput:   float64(pc.ConcurrentIterations) / float64(pc.Iter.Period),
			SpartaLatency:    sp.Iter.Period,
			SpartaThroughput: 1 / float64(sp.Iter.Period),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatLatency renders the study.
func FormatLatency(rows []LatencyRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tPara lat\tPara tput\tSPARTA lat\tSPARTA tput\tbreak-even batch")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%d\t%.4f\t%d\n",
			r.Benchmark.Name, r.ParaLatency, r.ParaThroughput,
			r.SpartaLatency, r.SpartaThroughput, r.BreakEvenIterations())
	}
	w.Flush()
	return b.String()
}
