package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// FormatTable1 renders Table 1 in the paper's layout: per benchmark,
// SPARTA and Para-CONV total execution times at each PE count with the
// IMP column (Para-CONV's time as a percentage of SPARTA's, the
// quantity the paper's IMP numbers correspond to).
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark\t|V|\t|E|")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\tSPARTA-%d\tPara-%d\tIMP%%", pes, pes)
	}
	fmt.Fprintln(w)
	sums := make([]float64, len(PECounts))
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d", r.Benchmark.Name, r.Benchmark.Vertices, r.Benchmark.Edges)
		for i := range PECounts {
			fmt.Fprintf(w, "\t%d\t%d\t%.2f", r.Sparta[i], r.ParaCONV[i], 100*r.Ratio(i))
			sums[i] += r.Ratio(i)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "average\t\t")
	for i := range PECounts {
		fmt.Fprintf(w, "\t\t\t%.2f", 100*sums[i]/float64(len(rows)))
	}
	fmt.Fprintln(w)
	w.Flush()
	return b.String()
}

// FormatTable2 renders Table 2: the maximum retiming value at each PE
// count and the per-benchmark average.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\t%d-core", pes)
	}
	fmt.Fprintln(w, "\taverage")
	for _, r := range rows {
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for _, v := range r.RMax {
			fmt.Fprintf(w, "\t%d", v)
		}
		fmt.Fprintf(w, "\t%.1f\n", r.Average())
	}
	w.Flush()
	return b.String()
}

// FormatFig5 renders Figure 5's series as a table: per-iteration
// execution time normalized to the baseline on 64 PEs.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\t%d PEs", pes)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for _, v := range r.Normalized {
			fmt.Fprintf(w, "\t%.3f", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// FormatFig6 renders Figure 6's series as a table: IPRs allocated to
// on-chip cache at each PE count.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\t%d PEs", pes)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for _, v := range r.Cached {
			fmt.Fprintf(w, "\t%d", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// FormatMovement renders the data-movement study.
func FormatMovement(rows []MovementRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tPEs\tSPARTA eDRAM B\tPara eDRAM B\teDRAM ratio\tSPARTA pJ\tPara pJ")
	for _, r := range rows {
		ratio := 0.0
		if r.SpartaEDRAM > 0 {
			ratio = float64(r.ParaEDRAM) / float64(r.SpartaEDRAM)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3f\t%.0f\t%.0f\n",
			r.Benchmark.Name, r.PEs, r.SpartaEDRAM, r.ParaEDRAM, ratio, r.SpartaEnergyPJ, r.ParaEnergyPJ)
	}
	w.Flush()
	return b.String()
}

// CSVTable1 writes Table 1 as CSV.
func CSVTable1(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "vertices", "edges"}
	for _, pes := range PECounts {
		header = append(header,
			fmt.Sprintf("sparta_%d", pes),
			fmt.Sprintf("paraconv_%d", pes),
			fmt.Sprintf("imp_%d", pes))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark.Name, strconv.Itoa(r.Benchmark.Vertices), strconv.Itoa(r.Benchmark.Edges)}
		for i := range PECounts {
			rec = append(rec,
				strconv.Itoa(r.Sparta[i]),
				strconv.Itoa(r.ParaCONV[i]),
				strconv.FormatFloat(100*r.Ratio(i), 'f', 2, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVTable2 writes Table 2 as CSV.
func CSVTable2(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark"}
	for _, pes := range PECounts {
		header = append(header, fmt.Sprintf("rmax_%d", pes))
	}
	header = append(header, "average")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark.Name}
		for _, v := range r.RMax {
			rec = append(rec, strconv.Itoa(v))
		}
		rec = append(rec, strconv.FormatFloat(r.Average(), 'f', 1, 64))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVFig5 writes Figure 5's series as CSV.
func CSVFig5(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark"}
	for _, pes := range PECounts {
		header = append(header, fmt.Sprintf("norm_%d", pes))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark.Name}
		for _, v := range r.Normalized {
			rec = append(rec, strconv.FormatFloat(v, 'f', 4, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVFig6 writes Figure 6's series as CSV.
func CSVFig6(w io.Writer, rows []Fig6Row) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark"}
	for _, pes := range PECounts {
		header = append(header, fmt.Sprintf("cached_%d", pes))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Benchmark.Name}
		for _, v := range r.Cached {
			rec = append(rec, strconv.Itoa(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
