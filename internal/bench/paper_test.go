package bench

import (
	"strings"
	"testing"
)

func TestPaperDataCoversSuite(t *testing.T) {
	for _, b := range Suite {
		if _, ok := PaperTable1[b.Name]; !ok {
			t.Errorf("PaperTable1 missing %q", b.Name)
		}
		if _, ok := PaperTable2[b.Name]; !ok {
			t.Errorf("PaperTable2 missing %q", b.Name)
		}
	}
	if len(PaperTable1) != len(Suite) || len(PaperTable2) != len(Suite) {
		t.Error("paper data has extra rows")
	}
}

func TestPaperDataInternallyConsistent(t *testing.T) {
	// The paper's own trends: Para < SPARTA everywhere, and Table 2
	// rows non-increasing with PEs.
	for name, row := range PaperTable1 {
		for i := 0; i < 3; i++ {
			if row.Para[i] >= row.Sparta[i] {
				t.Errorf("paper %s: Para %v >= SPARTA %v at index %d", name, row.Para[i], row.Sparta[i], i)
			}
		}
	}
	for name, row := range PaperTable2 {
		if row[1] > row[0] || row[2] > row[1] {
			t.Errorf("paper %s: R_max row %v not non-increasing", name, row)
		}
	}
}

func TestCheckTrendsAllHold(t *testing.T) {
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	trends := CheckTrends(t1, t2, f5, f6)
	if len(trends) != 6 {
		t.Fatalf("%d trend checks, want 6", len(trends))
	}
	for _, tr := range trends {
		if !tr.Held {
			t.Errorf("trend %q did not hold", tr.Name)
		}
	}
	out := FormatTrends(trends)
	if strings.Contains(out, "FAIL") {
		t.Errorf("trend report contains failures:\n%s", out)
	}
	if !strings.Contains(out, "[ok  ]") {
		t.Errorf("trend report malformed:\n%s", out)
	}
}

func TestCheckTrendsDetectsViolations(t *testing.T) {
	// Fabricate data violating each trend and confirm detection.
	t1 := []Table1Row{{
		Benchmark: Benchmark{Name: "x"},
		Sparta:    []int{10, 10, 10},
		ParaCONV:  []int{20, 5, 5}, // loses at 16 PEs
	}}
	t2 := []Table2Row{
		{Benchmark: Benchmark{Name: "small"}, RMax: []int{5, 6, 7}}, // rises
		{Benchmark: Benchmark{Name: "big"}, RMax: []int{2, 2, 2}},   // smaller than "small"
	}
	f5 := []Fig5Row{{Benchmark: Benchmark{Name: "x"}, Normalized: []float64{0.2, 0.5, 0.9}}}
	f6 := []Fig6Row{{Benchmark: Benchmark{Name: "x"}, Cached: []int{9, 5, 5}}}
	trends := CheckTrends(t1, t2, f5, f6)
	heldCount := 0
	for _, tr := range trends {
		if tr.Held {
			heldCount++
		}
	}
	// Only the fig6 saturation check can hold on this data (5 == 5).
	if heldCount > 1 {
		t.Errorf("%d trends held on fabricated bad data:\n%s", heldCount, FormatTrends(trends))
	}
}

func TestCompareTables(t *testing.T) {
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := CompareTable1(t1)
	for _, want := range []string{"paper@16", "ours@64", "protein"} {
		if !strings.Contains(out, want) {
			t.Errorf("CompareTable1 missing %q", want)
		}
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out2 := CompareTable2(t2)
	if !strings.Contains(out2, "paper@32") {
		t.Errorf("CompareTable2 malformed:\n%s", out2)
	}
}
