package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/pim"
	"repro/internal/synth"
)

// ScalabilityRow is one synthetic graph size in the scalability sweep
// (the paper evaluates synthetic task graphs "with over 500
// convolutions"; this sweep continues well past that).
type ScalabilityRow struct {
	Vertices int
	Edges    int
	// Ratio is Para-CONV/SPARTA total time at the sweep's PE count.
	Ratio float64
	// RMax and Period describe the Para-CONV plan.
	RMax   int
	Period int
	// Competitors is how many IPRs competed for cache.
	CachedIPRs int
}

// Scalability sweeps synthetic graph sizes on the default runner.
func Scalability(pes int, sizes []int) ([]ScalabilityRow, error) {
	return DefaultRunner().Scalability(pes, sizes)
}

// Scalability sweeps synthetic graph sizes at the given PE count,
// showing that the advantage and the planner's outputs behave
// smoothly beyond the paper's largest benchmark.  One graph size is
// one pool job (the biggest sizes dominate, so finer cells would not
// help wall clock).
func (r *Runner) Scalability(pes int, sizes []int) ([]ScalabilityRow, error) {
	if len(sizes) == 0 {
		sizes = []int{128, 256, 512, 1024, 2048}
	}
	cfg := pim.Neurocube(pes)
	rows := make([]ScalabilityRow, len(sizes))
	err := r.runJobs(len(sizes), func(i int) error {
		v := sizes[i]
		e := v * 26 / 10 // the suite's |E|/|V| is about 2.6
		g, err := synth.Generate(synth.Params{
			Name:     fmt.Sprintf("scale-%d", v),
			Vertices: v,
			Edges:    e,
			Seed:     int64(9000 + v),
		})
		if err != nil {
			return fmt.Errorf("bench: scalability %d: %w", v, err)
		}
		pc, err := r.planCell(g, cfg, planParaCONV)
		if err != nil {
			return fmt.Errorf("bench: scalability %d para-conv: %w", v, err)
		}
		sp, err := r.planCell(g, cfg, planSPARTA)
		if err != nil {
			return fmt.Errorf("bench: scalability %d sparta: %w", v, err)
		}
		rows[i] = ScalabilityRow{
			Vertices:   v,
			Edges:      e,
			Ratio:      float64(pc.TotalTime(Iterations)) / float64(sp.TotalTime(Iterations)),
			RMax:       pc.RMax,
			Period:     pc.Iter.Period,
			CachedIPRs: pc.CachedIPRs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatScalability renders the sweep.
func FormatScalability(rows []ScalabilityRow, pes int) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "|V|\t|E|\tPara/SPARTA\tR_max\tperiod\tcached (at %d PEs)\n", pes)
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%d\t%d\t%d\n",
			r.Vertices, r.Edges, r.Ratio, r.RMax, r.Period, r.CachedIPRs)
	}
	w.Flush()
	return b.String()
}
