package bench

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/synth"
)

// benchmarkPlanAndSim exercises the full instrumented path — cache
// lookup, DP solve, retiming, makespan recording, simulation — with a
// zero-bound session so every iteration re-solves instead of hitting
// the cache.
func benchmarkPlanAndSim(b *testing.B) {
	b.Helper()
	g, err := synth.Generate(synth.Params{Vertices: 40, Edges: 90, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pim.Neurocube(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner(run.NewWithCacheBound(context.Background(), 0), 1)
		if _, _, err := r.simCell(g, cfg, planParaCONV, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineObsOn / BenchmarkPipelineObsOff bound the cost of
// the observability layer on the end-to-end plan+simulate path; the
// acceptance bar is On within 5% of Off.
func BenchmarkPipelineObsOn(b *testing.B) { benchmarkPlanAndSim(b) }

func BenchmarkPipelineObsOff(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	benchmarkPlanAndSim(b)
}
