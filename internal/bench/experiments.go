package bench

import (
	"fmt"

	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Table1Row is one benchmark's row of Table 1: total execution time of
// SPARTA and Para-CONV at each PE count, plus the improvement.
type Table1Row struct {
	Benchmark Benchmark
	// Sparta[i] and ParaCONV[i] are total execution times (time
	// units for Iterations iterations) at PECounts[i].
	Sparta   []int
	ParaCONV []int
}

// Ratio returns Para-CONV's execution time as a fraction of SPARTA's
// at PE index i (the paper's IMP column prints this x100).
func (r Table1Row) Ratio(i int) float64 {
	return float64(r.ParaCONV[i]) / float64(r.Sparta[i])
}

// Reduction returns the relative execution-time reduction at PE
// index i.
func (r Table1Row) Reduction(i int) float64 { return 1 - r.Ratio(i) }

// Table1 regenerates Table 1: total execution time of SPARTA and
// Para-CONV on 16, 32 and 64 PEs for every benchmark.
func Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(Suite))
	for _, b := range Suite {
		g, err := b.Graph()
		if err != nil {
			return nil, err
		}
		row := Table1Row{Benchmark: b}
		for _, pes := range PECounts {
			cfg := pim.Neurocube(pes)
			sp, err := sched.SPARTA(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %s sparta %d PEs: %w", b.Name, pes, err)
			}
			pc, err := sched.ParaCONV(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: table1 %s para-conv %d PEs: %w", b.Name, pes, err)
			}
			row.Sparta = append(row.Sparta, sp.TotalTime(Iterations))
			row.ParaCONV = append(row.ParaCONV, pc.TotalTime(Iterations))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Row is one benchmark's row of Table 2: the maximum retiming
// value at each PE count and their average.
type Table2Row struct {
	Benchmark Benchmark
	RMax      []int
}

// Average returns the mean RMax across the PE sweep.
func (r Table2Row) Average() float64 {
	sum := 0
	for _, v := range r.RMax {
		sum += v
	}
	return float64(sum) / float64(len(r.RMax))
}

// Table2 regenerates Table 2: the maximum retiming value of Para-CONV
// on 16, 32 and 64 PEs.  Following §3.3.3, the objective schedule is a
// property of the application, fixed a-priori (we compact it once, on
// the smallest array of the sweep); the PE count then enters the
// optimization through the aggregate cache capacity, so R_max falls as
// the array grows.
func Table2() ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(Suite))
	for _, b := range Suite {
		g, err := b.Graph()
		if err != nil {
			return nil, err
		}
		base, err := sched.Objective(g, PECounts[0])
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s objective: %w", b.Name, err)
		}
		row := Table2Row{Benchmark: b}
		for _, pes := range PECounts {
			plan, err := sched.ParaCONVGivenSchedule(g, base, pim.Neurocube(pes))
			if err != nil {
				return nil, fmt.Errorf("bench: table2 %s %d PEs: %w", b.Name, pes, err)
			}
			row.RMax = append(row.RMax, plan.RMax)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Row is one benchmark's series of Figure 5: the steady-state
// execution time per iteration, normalized to the baseline scheme on
// 64 PEs.
type Fig5Row struct {
	Benchmark Benchmark
	// Normalized[i] is Para-CONV's per-iteration time at PECounts[i]
	// divided by SPARTA's per-iteration time on 64 PEs.
	Normalized []float64
}

// Fig5 regenerates Figure 5: Para-CONV's per-iteration execution time
// on 16, 32 and 64 PEs, normalized to SPARTA on 64 PEs.
func Fig5() ([]Fig5Row, error) {
	rows := make([]Fig5Row, 0, len(Suite))
	for _, b := range Suite {
		g, err := b.Graph()
		if err != nil {
			return nil, err
		}
		sp64, err := sched.SPARTA(g, pim.Neurocube(PECounts[len(PECounts)-1]))
		if err != nil {
			return nil, fmt.Errorf("bench: fig5 %s baseline: %w", b.Name, err)
		}
		base := sp64.IterationTime()
		row := Fig5Row{Benchmark: b}
		for _, pes := range PECounts {
			pc, err := sched.ParaCONV(g, pim.Neurocube(pes))
			if err != nil {
				return nil, fmt.Errorf("bench: fig5 %s %d PEs: %w", b.Name, pes, err)
			}
			row.Normalized = append(row.Normalized, pc.IterationTime()/base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Row is one benchmark's series of Figure 6: the number of
// intermediate processing results allocated to on-chip cache.
type Fig6Row struct {
	Benchmark Benchmark
	Cached    []int
}

// Fig6 regenerates Figure 6: the number of IPRs Para-CONV allocates to
// on-chip cache on 16, 32 and 64 PEs.  Like Table 2 it evaluates the
// a-priori objective schedule under the growing array, so the counts
// rise with capacity and saturate once every IPR that exists fits —
// the paper's observation that 32 PEs already exhaust most benchmarks'
// concurrency.
func Fig6() ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(Suite))
	for _, b := range Suite {
		g, err := b.Graph()
		if err != nil {
			return nil, err
		}
		base, err := sched.Objective(g, PECounts[0])
		if err != nil {
			return nil, fmt.Errorf("bench: fig6 %s objective: %w", b.Name, err)
		}
		row := Fig6Row{Benchmark: b}
		for _, pes := range PECounts {
			plan, err := sched.ParaCONVGivenSchedule(g, base, pim.Neurocube(pes))
			if err != nil {
				return nil, fmt.Errorf("bench: fig6 %s %d PEs: %w", b.Name, pes, err)
			}
			row.Cached = append(row.Cached, plan.CachedIPRs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MovementRow reports the simulator's data-movement measurements for
// one benchmark — the off-chip fetching penalty the paper's
// motivation (§1) targets.  Both schemes run the full array with one
// iteration in flight so the cache comparison is apples-to-apples.
type MovementRow struct {
	Benchmark      Benchmark
	PEs            int
	SpartaEDRAM    int64   // bytes fetched from eDRAM per run
	ParaEDRAM      int64   // same for Para-CONV (single-kernel)
	SpartaEnergyPJ float64 // total data-movement energy
	ParaEnergyPJ   float64
}

// Movement measures per-benchmark data movement at the given PE count.
func Movement(pes int) ([]MovementRow, error) {
	cfg := pim.Neurocube(pes)
	rows := make([]MovementRow, 0, len(Suite))
	for _, b := range Suite {
		g, err := b.Graph()
		if err != nil {
			return nil, err
		}
		sp, err := sched.SPARTA(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: movement %s sparta: %w", b.Name, err)
		}
		pc, err := sched.ParaCONVSingle(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: movement %s para-conv: %w", b.Name, err)
		}
		spStats, err := sim.Run(sp, cfg, Iterations)
		if err != nil {
			return nil, fmt.Errorf("bench: movement %s sparta sim: %w", b.Name, err)
		}
		pcStats, err := sim.Run(pc, cfg, Iterations)
		if err != nil {
			return nil, fmt.Errorf("bench: movement %s para-conv sim: %w", b.Name, err)
		}
		rows = append(rows, MovementRow{
			Benchmark:      b,
			PEs:            pes,
			SpartaEDRAM:    spStats.EDRAMBytes,
			ParaEDRAM:      pcStats.EDRAMBytes,
			SpartaEnergyPJ: spStats.EnergyPJ,
			ParaEnergyPJ:   pcStats.EnergyPJ,
		})
	}
	return rows, nil
}
