package bench

import (
	"fmt"

	"repro/internal/pim"
	"repro/internal/sched"
)

// Table1Row is one benchmark's row of Table 1: total execution time of
// SPARTA and Para-CONV at each PE count, plus the improvement.
type Table1Row struct {
	Benchmark Benchmark
	// Sparta[i] and ParaCONV[i] are total execution times (time
	// units for Iterations iterations) at PECounts[i].
	Sparta   []int
	ParaCONV []int
}

// Ratio returns Para-CONV's execution time as a fraction of SPARTA's
// at PE index i (the paper's IMP column prints this x100).
func (r Table1Row) Ratio(i int) float64 {
	return float64(r.ParaCONV[i]) / float64(r.Sparta[i])
}

// Reduction returns the relative execution-time reduction at PE
// index i.
func (r Table1Row) Reduction(i int) float64 { return 1 - r.Ratio(i) }

// Table1 regenerates Table 1 on the default runner.
func Table1() ([]Table1Row, error) { return DefaultRunner().Table1() }

// Table1 regenerates Table 1: total execution time of SPARTA and
// Para-CONV on 16, 32 and 64 PEs for every benchmark.  Each
// (benchmark, PE count, planner) cell is one pool job.
func (r *Runner) Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, len(Suite))
	for i, b := range Suite {
		rows[i] = Table1Row{
			Benchmark: b,
			Sparta:    make([]int, len(PECounts)),
			ParaCONV:  make([]int, len(PECounts)),
		}
	}
	kinds := []planKind{planSPARTA, planParaCONV}
	n := len(Suite) * len(PECounts) * len(kinds)
	err := r.runJobs(n, func(i int) error {
		bi := i / (len(PECounts) * len(kinds))
		pi := i / len(kinds) % len(PECounts)
		kind := kinds[i%len(kinds)]
		b := Suite[bi]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		plan, err := r.planCell(g, pim.Neurocube(PECounts[pi]), kind)
		if err != nil {
			return fmt.Errorf("bench: table1 %s %s %d PEs: %w", b.Name, kind, PECounts[pi], err)
		}
		if kind == planSPARTA {
			rows[bi].Sparta[pi] = plan.TotalTime(Iterations)
		} else {
			rows[bi].ParaCONV[pi] = plan.TotalTime(Iterations)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Row is one benchmark's row of Table 2: the maximum retiming
// value at each PE count and their average.
type Table2Row struct {
	Benchmark Benchmark
	RMax      []int
}

// Average returns the mean RMax across the PE sweep.
func (r Table2Row) Average() float64 {
	sum := 0
	for _, v := range r.RMax {
		sum += v
	}
	return float64(sum) / float64(len(r.RMax))
}

// Table2 regenerates Table 2 on the default runner.
func Table2() ([]Table2Row, error) { return DefaultRunner().Table2() }

// Table2 regenerates Table 2: the maximum retiming value of Para-CONV
// on 16, 32 and 64 PEs.  Following §3.3.3, the objective schedule is a
// property of the application, fixed a-priori (we compact it once, on
// the smallest array of the sweep); the PE count then enters the
// optimization through the aggregate cache capacity, so R_max falls as
// the array grows.  One benchmark is one pool job (its PE sweep reuses
// the benchmark's objective schedule).
func (r *Runner) Table2() ([]Table2Row, error) {
	rows := make([]Table2Row, len(Suite))
	err := r.runJobs(len(Suite), func(i int) error {
		b := Suite[i]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		base, err := sched.Objective(g, PECounts[0])
		if err != nil {
			return fmt.Errorf("bench: table2 %s objective: %w", b.Name, err)
		}
		row := Table2Row{Benchmark: b, RMax: make([]int, len(PECounts))}
		for pi, pes := range PECounts {
			plan, err := r.Session.PlanWithSchedule(g, base, pim.Neurocube(pes))
			if err != nil {
				return fmt.Errorf("bench: table2 %s %d PEs: %w", b.Name, pes, err)
			}
			row.RMax[pi] = plan.RMax
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig5Row is one benchmark's series of Figure 5: the steady-state
// execution time per iteration, normalized to the baseline scheme on
// 64 PEs.
type Fig5Row struct {
	Benchmark Benchmark
	// Normalized[i] is Para-CONV's per-iteration time at PECounts[i]
	// divided by SPARTA's per-iteration time on 64 PEs.
	Normalized []float64
}

// Fig5 regenerates Figure 5 on the default runner.
func Fig5() ([]Fig5Row, error) { return DefaultRunner().Fig5() }

// Fig5 regenerates Figure 5: Para-CONV's per-iteration execution time
// on 16, 32 and 64 PEs, normalized to SPARTA on 64 PEs.  One benchmark
// is one pool job; the solves themselves are shared with Table 1
// through the session's plan cache.
func (r *Runner) Fig5() ([]Fig5Row, error) {
	rows := make([]Fig5Row, len(Suite))
	err := r.runJobs(len(Suite), func(i int) error {
		b := Suite[i]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		sp64, err := r.planCell(g, pim.Neurocube(PECounts[len(PECounts)-1]), planSPARTA)
		if err != nil {
			return fmt.Errorf("bench: fig5 %s baseline: %w", b.Name, err)
		}
		base := sp64.IterationTime()
		row := Fig5Row{Benchmark: b, Normalized: make([]float64, len(PECounts))}
		for pi, pes := range PECounts {
			pc, err := r.planCell(g, pim.Neurocube(pes), planParaCONV)
			if err != nil {
				return fmt.Errorf("bench: fig5 %s %d PEs: %w", b.Name, pes, err)
			}
			row.Normalized[pi] = pc.IterationTime() / base
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6Row is one benchmark's series of Figure 6: the number of
// intermediate processing results allocated to on-chip cache.
type Fig6Row struct {
	Benchmark Benchmark
	Cached    []int
}

// Fig6 regenerates Figure 6 on the default runner.
func Fig6() ([]Fig6Row, error) { return DefaultRunner().Fig6() }

// Fig6 regenerates Figure 6: the number of IPRs Para-CONV allocates to
// on-chip cache on 16, 32 and 64 PEs.  Like Table 2 it evaluates the
// a-priori objective schedule under the growing array, so the counts
// rise with capacity and saturate once every IPR that exists fits —
// the paper's observation that 32 PEs already exhaust most benchmarks'
// concurrency.  One benchmark is one pool job; the given-schedule
// solves are shared with Table 2 through the plan cache.
func (r *Runner) Fig6() ([]Fig6Row, error) {
	rows := make([]Fig6Row, len(Suite))
	err := r.runJobs(len(Suite), func(i int) error {
		b := Suite[i]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		base, err := sched.Objective(g, PECounts[0])
		if err != nil {
			return fmt.Errorf("bench: fig6 %s objective: %w", b.Name, err)
		}
		row := Fig6Row{Benchmark: b, Cached: make([]int, len(PECounts))}
		for pi, pes := range PECounts {
			plan, err := r.Session.PlanWithSchedule(g, base, pim.Neurocube(pes))
			if err != nil {
				return fmt.Errorf("bench: fig6 %s %d PEs: %w", b.Name, pes, err)
			}
			row.Cached[pi] = plan.CachedIPRs
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// MovementRow reports the simulator's data-movement measurements for
// one benchmark — the off-chip fetching penalty the paper's
// motivation (§1) targets.  Both schemes run the full array with one
// iteration in flight so the cache comparison is apples-to-apples.
type MovementRow struct {
	Benchmark      Benchmark
	PEs            int
	SpartaEDRAM    int64   // bytes fetched from eDRAM per run
	ParaEDRAM      int64   // same for Para-CONV (single-kernel)
	SpartaEnergyPJ float64 // total data-movement energy
	ParaEnergyPJ   float64
}

// Movement measures data movement on the default runner.
func Movement(pes int) ([]MovementRow, error) { return DefaultRunner().Movement(pes) }

// Movement measures per-benchmark data movement at the given PE count.
// Each (benchmark, planner) cell is one pool job; the two cells of a
// row write disjoint fields.
func (r *Runner) Movement(pes int) ([]MovementRow, error) {
	cfg := pim.Neurocube(pes)
	rows := make([]MovementRow, len(Suite))
	for i, b := range Suite {
		rows[i] = MovementRow{Benchmark: b, PEs: pes}
	}
	kinds := []planKind{planSPARTA, planParaSingle}
	err := r.runJobs(len(Suite)*len(kinds), func(i int) error {
		bi := i / len(kinds)
		kind := kinds[i%len(kinds)]
		b := Suite[bi]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		_, stats, err := r.simCell(g, cfg, kind, Iterations)
		if err != nil {
			return fmt.Errorf("bench: movement %s %s: %w", b.Name, kind, err)
		}
		if kind == planSPARTA {
			rows[bi].SpartaEDRAM = stats.EDRAMBytes
			rows[bi].SpartaEnergyPJ = stats.EnergyPJ
		} else {
			rows[bi].ParaEDRAM = stats.EDRAMBytes
			rows[bi].ParaEnergyPJ = stats.EnergyPJ
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
