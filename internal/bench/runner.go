package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Runner executes the experiment suite over a shared run.Session: one
// context governs cancellation for every solve, one plan cache is
// shared by every cell, and a bounded worker pool fans the independent
// cells out.  Results are always written into index-addressed slots,
// so the output of a parallel run is byte-identical to a serial one.
type Runner struct {
	// Session supplies the context and the plan cache.  Must be
	// non-nil; use NewRunner.
	Session *run.Session
	// Parallel is the worker count for the job pool; values <= 1 run
	// every job serially on the calling goroutine.
	Parallel int
}

// NewRunner returns a Runner over the given session.  A nil session
// gets a fresh background session with the default cache bound.
func NewRunner(s *run.Session, parallel int) *Runner {
	if s == nil {
		s = run.New(context.Background())
	}
	return &Runner{Session: s, Parallel: parallel}
}

var (
	defaultOnce   sync.Once
	defaultRunner *Runner
)

// DefaultRunner returns the shared serial runner behind the package's
// free experiment functions.  Sharing one runner (hence one session)
// across calls is what lets Table1 solves be reused by the comparison,
// figure and latency experiments.
func DefaultRunner() *Runner {
	defaultOnce.Do(func() {
		defaultRunner = NewRunner(run.New(context.Background()), 1)
	})
	return defaultRunner
}

// runJobs executes jobs 0..n-1 on the runner's worker pool.  Jobs must
// write their results into index-addressed slots (never append) so
// completion order cannot influence output.  With one worker the jobs
// run in order on the calling goroutine and the first error aborts the
// loop immediately; with more workers, dispatch stops at the first
// failure, in-flight jobs drain, and the lowest-index error is
// returned — the same error a serial run would have surfaced.
func (r *Runner) runJobs(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			obs.RunnerJobsStarted.Inc()
			if err := job(i); err != nil {
				obs.RunnerJobsFailed.Inc()
				obs.Log().Warn("benchmark job failed", "job", i, "err", err)
				return err
			}
			obs.RunnerJobsFinished.Inc()
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		failed bool
	)
	errs := make([]error, n)
	type dispatch struct {
		i  int
		at time.Time
	}
	idx := make(chan dispatch)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			mu.Lock()
			stop := failed
			mu.Unlock()
			if stop {
				return
			}
			idx <- dispatch{i: i, at: time.Now()}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range idx {
				// Queue wait: how long the dispatch sat in the
				// unbuffered channel before a worker freed up.
				obs.RunnerQueueWait.Observe(time.Since(d.at))
				obs.RunnerJobsStarted.Inc()
				if err := job(d.i); err != nil {
					obs.RunnerJobsFailed.Inc()
					obs.Log().Warn("benchmark job failed", "job", d.i, "err", err)
					mu.Lock()
					errs[d.i] = err
					failed = true
					mu.Unlock()
				} else {
					obs.RunnerJobsFinished.Inc()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// planKind selects which planner evaluates an experiment cell.
type planKind int

const (
	planSPARTA planKind = iota
	planParaCONV
	planParaSingle
	planNaive
)

// String implements fmt.Stringer for error messages.
func (k planKind) String() string {
	switch k {
	case planSPARTA:
		return "sparta"
	case planParaCONV:
		return "para-conv"
	case planParaSingle:
		return "para-conv-single"
	case planNaive:
		return "naive"
	default:
		return fmt.Sprintf("planKind(%d)", int(k))
	}
}

// planCell solves one (graph, architecture, planner) cell through the
// session's plan cache — the shared evaluation step behind every
// Table-1-shaped experiment (Table 1, movement, energy, latency,
// scalability, sensitivity and the real-graph table).
func (r *Runner) planCell(g *dag.Graph, cfg pim.Config, kind planKind) (*sched.Plan, error) {
	switch kind {
	case planSPARTA:
		return r.Session.Baseline(g, cfg)
	case planParaCONV:
		return r.Session.Plan(g, cfg)
	case planParaSingle:
		return r.Session.PlanSingle(g, cfg)
	case planNaive:
		return r.Session.BaselineNaive(g, cfg)
	default:
		return nil, fmt.Errorf("bench: unknown plan kind %d", int(kind))
	}
}

// simCell plans one cell and runs the closed-form simulator on it.
func (r *Runner) simCell(g *dag.Graph, cfg pim.Config, kind planKind, iterations int) (*sched.Plan, sim.Stats, error) {
	plan, err := r.planCell(g, cfg, kind)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	stats, err := r.Session.Simulate(plan, cfg, iterations)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return plan, stats, nil
}

// pairRatio is the headline metric of the reproduction for one cell:
// Para-CONV's total time over SPARTA's on the same graph and
// architecture.
func (r *Runner) pairRatio(g *dag.Graph, cfg pim.Config) (float64, error) {
	pc, err := r.planCell(g, cfg, planParaCONV)
	if err != nil {
		return 0, err
	}
	sp, err := r.planCell(g, cfg, planSPARTA)
	if err != nil {
		return 0, err
	}
	return float64(pc.TotalTime(Iterations)) / float64(sp.TotalTime(Iterations)), nil
}
