package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/run"
)

// TestParallelMatchesSerial is the determinism contract of the worker
// pool: the full report (every experiment, every formatted table)
// rendered by an 8-worker runner must be byte-identical to the serial
// one.  Run with -race this also stresses the pool, the plan cache
// and the graph memoization under concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	serial := NewRunner(run.New(context.Background()), 1)
	parallel := NewRunner(run.New(context.Background()), 8)

	var want, got bytes.Buffer
	if err := serial.WriteReport(&want); err != nil {
		t.Fatalf("serial report: %v", err)
	}
	if err := parallel.WriteReport(&got); err != nil {
		t.Fatalf("parallel report: %v", err)
	}
	if want.String() != got.String() {
		t.Fatalf("parallel report differs from serial (serial %d bytes, parallel %d bytes)",
			want.Len(), got.Len())
	}
	// The parallel run's session must have reused solves across
	// experiments — the whole point of sharing one cache.
	if st := parallel.Session.CacheStats(); st.Hits == 0 {
		t.Errorf("parallel run recorded no cache hits: %+v", st)
	}
}

// TestGraphMemoized asserts Benchmark.Graph generates each graph once:
// concurrent callers share one pointer and the generation counter
// moves exactly once per distinct benchmark value.
func TestGraphMemoized(t *testing.T) {
	b := Benchmark{Name: "memo-regression", Vertices: 46, Edges: 121, Seed: 424242}
	before := GraphGenerations()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		graphs = make(map[interface{}]bool)
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := b.Graph()
			if err != nil {
				t.Errorf("Graph: %v", err)
				return
			}
			mu.Lock()
			graphs[g] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(graphs) != 1 {
		t.Fatalf("16 concurrent Graph() calls produced %d distinct pointers; want 1", len(graphs))
	}
	if delta := GraphGenerations() - before; delta != 1 {
		t.Fatalf("generation counter moved by %d for one new benchmark; want 1", delta)
	}
	// Repeated calls stay free.
	if _, err := b.Graph(); err != nil {
		t.Fatal(err)
	}
	if delta := GraphGenerations() - before; delta != 1 {
		t.Fatalf("re-request regenerated the graph (delta %d)", delta)
	}
}

// TestRunJobsLowestIndexError pins the pool's error determinism: when
// several jobs fail, the error a caller sees is the lowest-index one —
// the same failure a serial sweep would have hit first.
func TestRunJobsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		r := NewRunner(run.New(context.Background()), workers)
		err := r.runJobs(100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v; want job 3's error", workers, err)
		}
	}
}

// TestRunJobsCancellation: a cancelled session context surfaces as
// context.Canceled from the experiment, not a partial result.
func TestRunJobsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(run.New(ctx), 4)
	_, err := r.Table1()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Table1 under cancelled ctx = %v; want context.Canceled", err)
	}
}
