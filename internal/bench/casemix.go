package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/retime"
	"repro/internal/sched"
)

// CaseMixRow is one benchmark's distribution over the six Figure-4
// cases at the objective schedule — how many IPRs are placement-
// indifferent (1, 4, 6) versus cache-profitable (2, 3, 5).
type CaseMixRow struct {
	Benchmark Benchmark
	Counts    map[retime.Case]int
}

// Profitable returns the number of IPRs whose placement changes their
// relative retiming value (cases 2, 3 and 5).
func (r CaseMixRow) Profitable() int {
	return r.Counts[retime.Case2] + r.Counts[retime.Case3] + r.Counts[retime.Case5]
}

// CaseMix runs the classification on the default runner.
func CaseMix(pes int) ([]CaseMixRow, error) { return DefaultRunner().CaseMix(pes) }

// CaseMix classifies every benchmark's IPRs against the a-priori
// objective schedule (Figure 4's six cases, §3.2).  One benchmark is
// one pool job.
func (r *Runner) CaseMix(pes int) ([]CaseMixRow, error) {
	rows := make([]CaseMixRow, len(Suite))
	err := r.runJobs(len(Suite), func(i int) error {
		b := Suite[i]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		iter, err := sched.Objective(g, pes)
		if err != nil {
			return fmt.Errorf("bench: case mix %s: %w", b.Name, err)
		}
		classes, err := retime.Classify(g, iter.Timing())
		if err != nil {
			return fmt.Errorf("bench: case mix %s: %w", b.Name, err)
		}
		rows[i] = CaseMixRow{Benchmark: b, Counts: retime.CaseHistogram(classes)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCaseMix renders the distribution.
func FormatCaseMix(rows []CaseMixRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tcase1\tcase2\tcase3\tcase4\tcase5\tcase6\tprofitable")
	order := []retime.Case{retime.Case1, retime.Case2, retime.Case3, retime.Case4, retime.Case5, retime.Case6}
	for _, r := range rows {
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for _, c := range order {
			fmt.Fprintf(w, "\t%d", r.Counts[c])
		}
		fmt.Fprintf(w, "\t%d\n", r.Profitable())
	}
	w.Flush()
	return b.String()
}
