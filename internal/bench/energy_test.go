package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pim"
)

func TestEnergyStudy(t *testing.T) {
	rows, err := Energy(16)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(pim.Presets(16)) * len(Suite)
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	var paraSum, spartaSum float64
	for _, r := range rows {
		if r.ParaPJ <= 0 || r.SpartaPJ <= 0 {
			t.Errorf("%s/%s: non-positive energy", r.Arch, r.Benchmark.Name)
		}
		paraSum += r.ParaPJ
		spartaSum += r.SpartaPJ
	}
	// Aggregate claim: Para-CONV's allocation never costs more energy
	// overall (it fills the same cache, competitors first).
	if paraSum > spartaSum*1.01 {
		t.Errorf("Para-CONV aggregate energy %.0f exceeds SPARTA %.0f", paraSum, spartaSum)
	}
	out := FormatEnergy(rows)
	for _, want := range []string{"neurocube-16", "prime-16", "edge-16", "saving"} {
		if !strings.Contains(out, want) {
			t.Errorf("energy table missing %q", want)
		}
	}
	var buf bytes.Buffer
	if err := CSVEnergy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != wantRows+1 {
		t.Errorf("csv lines = %d", lines)
	}
}

func TestRealGraphs(t *testing.T) {
	g, err := RealGraph("flower")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 10 {
		t.Errorf("flower graph has only %d vertices", g.NumNodes())
	}
	if _, err := RealGraph("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTable1RealShapes(t *testing.T) {
	rows, err := Table1Real()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		for i := range PECounts {
			if r.ParaCONV[i] >= r.Sparta[i] {
				t.Errorf("%s @%d PEs: Para-CONV %d >= SPARTA %d (real graphs)",
					r.Name, PECounts[i], r.ParaCONV[i], r.Sparta[i])
			}
		}
	}
	out := FormatTable1Real(rows)
	if !strings.Contains(out, "protein") {
		t.Error("formatted real table missing protein")
	}
}
