package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestSuiteMatchesPaperCounts(t *testing.T) {
	want := map[string][2]int{
		"cat": {9, 21}, "car": {13, 28}, "flower": {21, 51},
		"character-1": {46, 121}, "character-2": {52, 130},
		"image-compress": {70, 178}, "stock-predict": {83, 218},
		"string-matching": {102, 267}, "shortest-path": {191, 506},
		"speech-1": {247, 652}, "speech-2": {369, 981}, "protein": {546, 1449},
	}
	if len(Suite) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(Suite), len(want))
	}
	for _, b := range Suite {
		w, ok := want[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.Vertices != w[0] || b.Edges != w[1] {
			t.Errorf("%s: declared %d/%d, paper says %d/%d", b.Name, b.Vertices, b.Edges, w[0], w[1])
		}
		g, err := b.Graph()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if g.NumNodes() != w[0] || g.NumEdges() != w[1] {
			t.Errorf("%s: generated %d/%d, want %d/%d", b.Name, g.NumNodes(), g.NumEdges(), w[0], w[1])
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("protein")
	if err != nil {
		t.Fatal(err)
	}
	if b.Vertices != 546 {
		t.Errorf("protein vertices = %d", b.Vertices)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "valid names") {
		t.Errorf("ByName(nope) err = %v", err)
	}
}

func TestGraphsAreDeterministic(t *testing.T) {
	b := Suite[3]
	g1, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Edges() {
		if g1.Edges()[i] != g2.Edges()[i] {
			t.Fatalf("edge %d differs between regenerations", i)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite) {
		t.Fatalf("%d rows, want %d", len(rows), len(Suite))
	}
	for _, r := range rows {
		for i := range PECounts {
			// Headline claim: Para-CONV beats SPARTA everywhere.
			if r.ParaCONV[i] >= r.Sparta[i] {
				t.Errorf("%s @%d PEs: Para-CONV %d >= SPARTA %d",
					r.Benchmark.Name, PECounts[i], r.ParaCONV[i], r.Sparta[i])
			}
		}
		// Para-CONV's time decreases with more PEs.
		for i := 1; i < len(PECounts); i++ {
			if r.ParaCONV[i] > r.ParaCONV[i-1] {
				t.Errorf("%s: Para-CONV time rose from %d to %d at %d PEs",
					r.Benchmark.Name, r.ParaCONV[i-1], r.ParaCONV[i], PECounts[i])
			}
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"cat", "protein", "average", "IMP%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// R_max is non-increasing in the PE count for every benchmark.
	for _, r := range rows {
		for i := 1; i < len(r.RMax); i++ {
			if r.RMax[i] > r.RMax[i-1] {
				t.Errorf("%s: RMax rose from %d to %d at %d PEs",
					r.Benchmark.Name, r.RMax[i-1], r.RMax[i], PECounts[i])
			}
		}
	}
	// Larger applications need more retiming: the largest benchmark's
	// average exceeds the smallest's.
	if rows[len(rows)-1].Average() <= rows[0].Average() {
		t.Errorf("protein average RMax %.1f <= cat average %.1f",
			rows[len(rows)-1].Average(), rows[0].Average())
	}
	// At least one large benchmark shows a strict decrease (the
	// paper's capacity trend).
	strict := false
	for _, r := range rows[6:] {
		if r.RMax[len(r.RMax)-1] < r.RMax[0] {
			strict = true
		}
	}
	if !strict {
		t.Error("no large benchmark shows RMax strictly decreasing with PEs")
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "average") || !strings.Contains(out, "16-core") {
		t.Errorf("formatted table 2 malformed:\n%s", out)
	}
}

func TestFig5Shapes(t *testing.T) {
	rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Per-iteration time decreases (weakly) with more PEs.
		for i := 1; i < len(r.Normalized); i++ {
			if r.Normalized[i] > r.Normalized[i-1]+1e-9 {
				t.Errorf("%s: normalized time rose from %.3f to %.3f at %d PEs",
					r.Benchmark.Name, r.Normalized[i-1], r.Normalized[i], PECounts[i])
			}
		}
		// Para-CONV on 64 PEs beats the baseline on 64 PEs.
		if last := r.Normalized[len(r.Normalized)-1]; last >= 1 {
			t.Errorf("%s: Para-CONV@64 normalized %.3f >= baseline", r.Benchmark.Name, last)
		}
	}
	if out := FormatFig5(rows); !strings.Contains(out, "64 PEs") {
		t.Errorf("formatted fig5 malformed:\n%s", out)
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Cached counts never decrease with more capacity, and never
		// exceed the edge count.
		for i := 1; i < len(r.Cached); i++ {
			if r.Cached[i] < r.Cached[i-1] {
				t.Errorf("%s: cached fell from %d to %d at %d PEs",
					r.Benchmark.Name, r.Cached[i-1], r.Cached[i], PECounts[i])
			}
		}
		for _, c := range r.Cached {
			if c > r.Benchmark.Edges {
				t.Errorf("%s: cached %d exceeds |E| %d", r.Benchmark.Name, c, r.Benchmark.Edges)
			}
		}
	}
	// The paper's saturation observation: for several benchmarks the
	// 32-PE and 64-PE counts coincide while 16->32 grew.
	saturated := 0
	for _, r := range rows {
		if r.Cached[2] == r.Cached[1] && r.Cached[1] >= r.Cached[0] {
			saturated++
		}
	}
	if saturated < 3 {
		t.Errorf("only %d benchmarks saturate at 32 PEs; the paper observes this for most", saturated)
	}
	if out := FormatFig6(rows); !strings.Contains(out, "32 PEs") {
		t.Errorf("formatted fig6 malformed:\n%s", out)
	}
}

func TestMovement(t *testing.T) {
	rows, err := Movement(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpartaEDRAM < 0 || r.ParaEDRAM < 0 {
			t.Errorf("%s: negative traffic", r.Benchmark.Name)
		}
		if r.ParaEnergyPJ <= 0 || r.SpartaEnergyPJ <= 0 {
			t.Errorf("%s: zero energy", r.Benchmark.Name)
		}
	}
	if out := FormatMovement(rows); !strings.Contains(out, "eDRAM ratio") {
		t.Error("movement table malformed")
	}
}

func TestCSVWriters(t *testing.T) {
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CSVTable1(&buf, t1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(Suite)+1 {
		t.Errorf("table1 csv has %d lines", lines)
	}

	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CSVTable2(&buf, t2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "benchmark,rmax_16") {
		t.Errorf("table2 csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	f5, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CSVFig5(&buf, f5); err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CSVFig6(&buf, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cached_64") {
		t.Error("fig6 csv missing header")
	}
}

func TestScalability(t *testing.T) {
	rows, err := Scalability(32, []int{128, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio >= 1 {
			t.Errorf("|V|=%d: Para-CONV ratio %.3f >= 1", r.Vertices, r.Ratio)
		}
		if r.RMax <= 0 || r.Period <= 0 {
			t.Errorf("|V|=%d: degenerate plan (RMax=%d period=%d)", r.Vertices, r.RMax, r.Period)
		}
	}
	// R_max keeps growing with scale.
	if rows[2].RMax <= rows[0].RMax {
		t.Errorf("RMax did not grow with size: %d -> %d", rows[0].RMax, rows[2].RMax)
	}
	out := FormatScalability(rows, 32)
	if !strings.Contains(out, "Para/SPARTA") {
		t.Error("scalability table malformed")
	}
}

func TestScalabilityDefaultSizes(t *testing.T) {
	rows, err := Scalability(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[4].Vertices != 2048 {
		t.Errorf("default sizes wrong: %+v", rows)
	}
}

func TestCaseMix(t *testing.T) {
	rows, err := CaseMix(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		total := 0
		for _, c := range r.Counts {
			total += c
		}
		if total != r.Benchmark.Edges {
			t.Errorf("%s: %d classified, |E| = %d", r.Benchmark.Name, total, r.Benchmark.Edges)
		}
		// Tiny graphs spread across 16 PEs leave every transfer a
		// comfortable window (all case 1/4); from character-1 up the
		// kernel is contended and the DP has real work.
		if r.Benchmark.Vertices >= 46 && r.Profitable() == 0 {
			t.Errorf("%s: no profitable IPRs; the DP would be vacuous", r.Benchmark.Name)
		}
	}
	out := FormatCaseMix(rows)
	if !strings.Contains(out, "profitable") || !strings.Contains(out, "case5") {
		t.Error("case-mix table malformed")
	}
}

// TestGoldenDeterminism locks headline outputs: the suite is seeded,
// so any change to these values signals an intentional model change
// (update the goldens deliberately) or an accidental regression.
func TestGoldenDeterminism(t *testing.T) {
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	goldenRMax := map[string][3]int{
		"cat":     {3, 3, 3},
		"protein": {16, 16, 14},
	}
	for _, r := range t2 {
		want, ok := goldenRMax[r.Benchmark.Name]
		if !ok {
			continue
		}
		for i := range want {
			if r.RMax[i] != want[i] {
				t.Errorf("golden drift: %s RMax[%d] = %d, want %d",
					r.Benchmark.Name, i, r.RMax[i], want[i])
			}
		}
	}
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t1 {
		if r.Benchmark.Name == "cat" {
			if got := [3]int{r.Sparta[0], r.Sparta[1], r.Sparta[2]}; got != [3]int{1500, 1500, 1500} {
				t.Errorf("golden drift: cat SPARTA = %v", got)
			}
		}
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Para-CONV reproduction report",
		"## Table 1", "## Table 2", "## Figure 5", "## Figure 6",
		"trend checklist", "case mix", "Scalability", "Sensitivity", "Energy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Error("report contains a failed trend")
	}
	// Determinism: a second run produces the identical report.
	var buf2 bytes.Buffer
	if err := WriteReport(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("report is not deterministic")
	}
}

func TestLatencyStudy(t *testing.T) {
	rows, err := Latency(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The structural trade-off: Para-CONV's throughput beats the
		// baseline's everywhere...
		if r.ParaThroughput <= r.SpartaThroughput {
			t.Errorf("%s: Para throughput %.4f <= SPARTA %.4f",
				r.Benchmark.Name, r.ParaThroughput, r.SpartaThroughput)
		}
		// ...and a break-even batch size exists and is finite.
		be := r.BreakEvenIterations()
		if be < 1 {
			t.Errorf("%s: no break-even batch (%d)", r.Benchmark.Name, be)
		}
		if r.ParaLatency <= 0 || r.SpartaLatency <= 0 {
			t.Errorf("%s: degenerate latencies", r.Benchmark.Name)
		}
	}
	out := FormatLatency(rows)
	if !strings.Contains(out, "break-even") {
		t.Error("latency table malformed")
	}
}

func TestCharts(t *testing.T) {
	f5, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	out := ChartFig5(f5)
	if !strings.Contains(out, "█") || !strings.Contains(out, "64 PEs") {
		t.Error("fig5 chart malformed")
	}
	if lines := strings.Count(out, "\n"); lines != len(Suite)*len(PECounts) {
		t.Errorf("fig5 chart has %d lines, want %d", lines, len(Suite)*len(PECounts))
	}
	f6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	out6 := ChartFig6(f6)
	if !strings.Contains(out6, "protein") {
		t.Error("fig6 chart malformed")
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	// All-zero values must not divide by zero; tiny positives get at
	// least one block.
	out := barChart([]string{"a"}, [][]float64{{0, 0.0001}}, []string{"x", "y"}, 5, func(v float64) string { return "v" })
	if !strings.Contains(out, "█") {
		t.Error("tiny positive value lost its bar")
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("chart lines = %d", strings.Count(out, "\n"))
	}
}
