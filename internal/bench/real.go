package bench

import (
	"fmt"

	"repro/internal/cnn"
	"repro/internal/dag"
	"repro/internal/pim"
	"repro/internal/sched"
)

// The quantitative reproduction uses synthetic graphs with the paper's
// exact |V|/|E| (see suite.go).  This file provides the complementary
// "real-life" mode: the same experiments over task graphs lowered from
// actual CNN layer models of each application class (internal/cnn's
// BenchmarkNetwork), which exercises the full front end and shows that
// the headline result is not an artifact of the generator.

// RealGraph lowers the named application's layer model to a task
// graph under the Neurocube latency model.
func RealGraph(name string) (*dag.Graph, error) {
	net, err := cnn.BenchmarkNetwork(name)
	if err != nil {
		return nil, err
	}
	g, err := cnn.ToTaskGraph(net, cnn.LowerOptions{Arch: pim.Neurocube(PECounts[0])})
	if err != nil {
		return nil, fmt.Errorf("bench: lowering %q: %w", name, err)
	}
	return g, nil
}

// RealTable1Row mirrors Table1Row for the CNN-derived graphs.
type RealTable1Row struct {
	Name     string
	Vertices int
	Edges    int
	Sparta   []int
	ParaCONV []int
}

// Ratio returns Para-CONV's time as a fraction of SPARTA's at PE
// index i.
func (r RealTable1Row) Ratio(i int) float64 {
	return float64(r.ParaCONV[i]) / float64(r.Sparta[i])
}

// Table1Real runs the Table 1 experiment over the CNN-derived
// application graphs instead of the exact-size synthetic suite.
func Table1Real() ([]RealTable1Row, error) {
	var rows []RealTable1Row
	for _, name := range cnn.BenchmarkNetworkNames() {
		g, err := RealGraph(name)
		if err != nil {
			return nil, err
		}
		row := RealTable1Row{Name: name, Vertices: g.NumNodes(), Edges: g.NumEdges()}
		for _, pes := range PECounts {
			cfg := pim.Neurocube(pes)
			sp, err := sched.SPARTA(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: real table1 %s sparta %d PEs: %w", name, pes, err)
			}
			pc, err := sched.ParaCONV(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: real table1 %s para-conv %d PEs: %w", name, pes, err)
			}
			row.Sparta = append(row.Sparta, sp.TotalTime(Iterations))
			row.ParaCONV = append(row.ParaCONV, pc.TotalTime(Iterations))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1Real renders the real-application Table 1.
func FormatTable1Real(rows []RealTable1Row) string {
	t1 := make([]Table1Row, len(rows))
	for i, r := range rows {
		t1[i] = Table1Row{
			Benchmark: Benchmark{Name: r.Name, Vertices: r.Vertices, Edges: r.Edges},
			Sparta:    r.Sparta,
			ParaCONV:  r.ParaCONV,
		}
	}
	return FormatTable1(t1)
}
