package bench

import (
	"fmt"
	"sync"

	"repro/internal/cnn"
	"repro/internal/dag"
	"repro/internal/pim"
)

// The quantitative reproduction uses synthetic graphs with the paper's
// exact |V|/|E| (see suite.go).  This file provides the complementary
// "real-life" mode: the same experiments over task graphs lowered from
// actual CNN layer models of each application class (internal/cnn's
// BenchmarkNetwork), which exercises the full front end and shows that
// the headline result is not an artifact of the generator.

// realGraphMemo memoizes CNN lowering per application name, mirroring
// Benchmark.Graph's memoization: one lowering per process, one shared
// *dag.Graph pointer for every experiment that asks.
var realGraphMemo sync.Map // string -> *graphOnce

// RealGraph lowers the named application's layer model to a task
// graph under the Neurocube latency model.  The result is memoized
// per name.
func RealGraph(name string) (*dag.Graph, error) {
	v, _ := realGraphMemo.LoadOrStore(name, &graphOnce{})
	m := v.(*graphOnce)
	m.once.Do(func() {
		net, err := cnn.BenchmarkNetwork(name)
		if err != nil {
			m.err = err
			return
		}
		g, err := cnn.ToTaskGraph(net, cnn.LowerOptions{Arch: pim.Neurocube(PECounts[0])})
		if err != nil {
			m.err = fmt.Errorf("bench: lowering %q: %w", name, err)
			return
		}
		m.g = g
	})
	return m.g, m.err
}

// RealTable1Row mirrors Table1Row for the CNN-derived graphs.
type RealTable1Row struct {
	Name     string
	Vertices int
	Edges    int
	Sparta   []int
	ParaCONV []int
}

// Ratio returns Para-CONV's time as a fraction of SPARTA's at PE
// index i.
func (r RealTable1Row) Ratio(i int) float64 {
	return float64(r.ParaCONV[i]) / float64(r.Sparta[i])
}

// Table1Real runs the real-graph Table 1 on the default runner.
func Table1Real() ([]RealTable1Row, error) { return DefaultRunner().Table1Real() }

// Table1Real runs the Table 1 experiment over the CNN-derived
// application graphs instead of the exact-size synthetic suite.  One
// application is one pool job (its first job also pays the memoized
// lowering).
func (r *Runner) Table1Real() ([]RealTable1Row, error) {
	names := cnn.BenchmarkNetworkNames()
	rows := make([]RealTable1Row, len(names))
	err := r.runJobs(len(names), func(i int) error {
		name := names[i]
		g, err := RealGraph(name)
		if err != nil {
			return err
		}
		row := RealTable1Row{
			Name:     name,
			Vertices: g.NumNodes(),
			Edges:    g.NumEdges(),
			Sparta:   make([]int, len(PECounts)),
			ParaCONV: make([]int, len(PECounts)),
		}
		for pi, pes := range PECounts {
			cfg := pim.Neurocube(pes)
			sp, err := r.planCell(g, cfg, planSPARTA)
			if err != nil {
				return fmt.Errorf("bench: real table1 %s sparta %d PEs: %w", name, pes, err)
			}
			pc, err := r.planCell(g, cfg, planParaCONV)
			if err != nil {
				return fmt.Errorf("bench: real table1 %s para-conv %d PEs: %w", name, pes, err)
			}
			row.Sparta[pi] = sp.TotalTime(Iterations)
			row.ParaCONV[pi] = pc.TotalTime(Iterations)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1Real renders the real-application Table 1.
func FormatTable1Real(rows []RealTable1Row) string {
	t1 := make([]Table1Row, len(rows))
	for i, r := range rows {
		t1[i] = Table1Row{
			Benchmark: Benchmark{Name: r.Name, Vertices: r.Vertices, Edges: r.Edges},
			Sparta:    r.Sparta,
			ParaCONV:  r.ParaCONV,
		}
	}
	return FormatTable1(t1)
}
