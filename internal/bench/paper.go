package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// The paper's published numbers (DAC'17, Tables 1 and 2), kept as data
// so the harness can print measured results side by side with the
// original and tests can assert that the *trends* agree even though
// absolute units differ (the paper's time unit is unpublished).

// PaperTable1 maps benchmark name to the paper's Table 1 row:
// SPARTA and Para-CONV total execution times at 16/32/64 PEs.
var PaperTable1 = map[string]struct {
	Sparta [3]float64
	Para   [3]float64
}{
	"cat":             {Sparta: [3]float64{4.7, 3.3, 1.2}, Para: [3]float64{4.0, 1.5, 0.6}},
	"car":             {Sparta: [3]float64{15.0, 7.5, 3.8}, Para: [3]float64{5.4, 3.3, 0.6}},
	"flower":          {Sparta: [3]float64{18.7, 9.4, 4.7}, Para: [3]float64{9.9, 4.5, 3.3}},
	"character-1":     {Sparta: [3]float64{35.1, 17.6, 8.8}, Para: [3]float64{17.7, 8.7, 3.6}},
	"character-2":     {Sparta: [3]float64{45.2, 22.6, 11.3}, Para: [3]float64{22.2, 12.3, 6.3}},
	"image-compress":  {Sparta: [3]float64{56.9, 28.5, 14.2}, Para: [3]float64{27.0, 13.2, 5.1}},
	"stock-predict":   {Sparta: [3]float64{64.5, 32.3, 16.1}, Para: [3]float64{31.6, 18.0, 7.5}},
	"string-matching": {Sparta: [3]float64{79.0, 39.5, 19.8}, Para: [3]float64{42.4, 21.4, 12.3}},
	"shortest-path":   {Sparta: [3]float64{140.3, 70.2, 35.1}, Para: [3]float64{81.6, 43.4, 21.4}},
	"speech-1":        {Sparta: [3]float64{187.2, 93.6, 46.8}, Para: [3]float64{108.6, 54.0, 29.9}},
	"speech-2":        {Sparta: [3]float64{274.8, 137.4, 68.7}, Para: [3]float64{164.5, 87.1, 42.1}},
	"protein":         {Sparta: [3]float64{427.8, 213.9, 107.0}, Para: [3]float64{243.5, 126.6, 63.3}},
}

// PaperTable2 maps benchmark name to the paper's Table 2 row: the
// maximum retiming value at 16/32/64 PEs.
var PaperTable2 = map[string][3]int{
	"cat":             {3, 3, 1},
	"car":             {2, 2, 1},
	"flower":          {3, 2, 2},
	"character-1":     {6, 3, 2},
	"character-2":     {7, 5, 3},
	"image-compress":  {9, 6, 3},
	"stock-predict":   {11, 9, 3},
	"string-matching": {14, 8, 5},
	"shortest-path":   {24, 13, 8},
	"speech-1":        {34, 17, 9},
	"speech-2":        {49, 27, 16},
	"protein":         {69, 29, 15},
}

// CompareTable1 renders the measured Table 1 next to the paper's, as
// Para/SPARTA ratios (the unit-free quantity), per PE count.
func CompareTable1(rows []Table1Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\tpaper@%d\tours@%d", pes, pes)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		p, ok := PaperTable1[r.Benchmark.Name]
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for i := range PECounts {
			if ok {
				fmt.Fprintf(w, "\t%.2f", p.Para[i]/p.Sparta[i])
			} else {
				fmt.Fprint(w, "\t-")
			}
			fmt.Fprintf(w, "\t%.2f", r.Ratio(i))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// CompareTable2 renders measured R_max next to the paper's.
func CompareTable2(rows []Table2Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "benchmark")
	for _, pes := range PECounts {
		fmt.Fprintf(w, "\tpaper@%d\tours@%d", pes, pes)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		p, ok := PaperTable2[r.Benchmark.Name]
		fmt.Fprintf(w, "%s", r.Benchmark.Name)
		for i := range PECounts {
			if ok {
				fmt.Fprintf(w, "\t%d", p[i])
			} else {
				fmt.Fprint(w, "\t-")
			}
			fmt.Fprintf(w, "\t%d", r.RMax[i])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// TrendAgreement summarizes, per experiment, which qualitative trends
// of the paper the measured data reproduces.  Each check is a named
// boolean so tests and the CLI can report them.
type TrendAgreement struct {
	Name string
	Held bool
	Note string
}

// CheckTrends evaluates the headline qualitative claims against
// measured data.
func CheckTrends(t1 []Table1Row, t2 []Table2Row, f5 []Fig5Row, f6 []Fig6Row) []TrendAgreement {
	var out []TrendAgreement
	add := func(name string, held bool, note string) {
		out = append(out, TrendAgreement{Name: name, Held: held, Note: note})
	}

	// 1. Para-CONV beats SPARTA everywhere (Table 1).
	wins := true
	for _, r := range t1 {
		for i := range PECounts {
			if r.ParaCONV[i] >= r.Sparta[i] {
				wins = false
			}
		}
	}
	add("table1: Para-CONV wins every cell", wins,
		"paper: 53.42% average reduction across all benchmarks and PE counts")

	// 2. R_max grows with application size (Table 2), matching the
	// paper's ordering between the smallest and largest benchmark.
	grow := len(t2) > 1 && t2[len(t2)-1].Average() > t2[0].Average()
	add("table2: R_max grows with application scale", grow,
		"paper: averages rise 2.3 (cat) to 37.7 (protein)")

	// 3. R_max non-increasing in PE count (Table 2).
	nonInc := true
	for _, r := range t2 {
		for i := 1; i < len(r.RMax); i++ {
			if r.RMax[i] > r.RMax[i-1] {
				nonInc = false
			}
		}
	}
	add("table2: R_max non-increasing with PEs", nonInc,
		"paper: every row decreases 16 -> 64")

	// 4. Per-iteration time decreases with PEs (Figure 5).
	dec := true
	for _, r := range f5 {
		for i := 1; i < len(r.Normalized); i++ {
			if r.Normalized[i] > r.Normalized[i-1]+1e-9 {
				dec = false
			}
		}
	}
	add("fig5: per-iteration time falls with PEs", dec,
		"paper: bars shrink with the PE count for every benchmark")

	// 5. Cached IPRs rise then saturate (Figure 6): monotone
	// non-decreasing, with at least a quarter of the suite flat from
	// 32 to 64 PEs (the small benchmarks, whose IPR demand is already
	// met).
	mono, flat := true, 0
	for _, r := range f6 {
		for i := 1; i < len(r.Cached); i++ {
			if r.Cached[i] < r.Cached[i-1] {
				mono = false
			}
		}
		if len(r.Cached) == 3 && r.Cached[2] == r.Cached[1] {
			flat++
		}
	}
	add("fig6: cached IPRs rise with capacity", mono,
		"paper: counts rise 16 -> 32 PEs")
	add("fig6: saturation at 32 PEs for part of the suite", flat*4 >= len(f6),
		"paper: results for 32 PEs are quite the same as for 64")
	return out
}

// FormatTrends renders the agreement checklist.
func FormatTrends(trends []TrendAgreement) string {
	var b strings.Builder
	for _, tr := range trends {
		mark := "ok  "
		if !tr.Held {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s — %s\n", mark, tr.Name, tr.Note)
	}
	return b.String()
}
