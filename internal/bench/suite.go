// Package bench defines the paper's benchmark suite and the experiment
// runners that regenerate every table and figure of the evaluation
// (§4): Table 1 (total execution time vs SPARTA), Table 2 (maximum
// retiming value), Figure 5 (per-iteration execution time) and
// Figure 6 (IPRs allocated to on-chip cache).
//
// The paper evaluates twelve applications whose task graphs were
// extracted from real deep-learning workloads (several from GoogLeNet
// ConvNet [16]) plus synthetic graphs with over 500 convolutions.
// Those traces were never published; what Table 1 does publish is each
// graph's exact vertex and edge count.  The suite below regenerates a
// deterministic layered task graph with exactly those counts for every
// benchmark (see internal/synth), seeded per benchmark so every run of
// the harness sees identical graphs.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/synth"
)

// Benchmark is one row of the paper's benchmark table.
type Benchmark struct {
	// Name is the paper's benchmark name.
	Name string
	// Vertices and Edges are the counts from Table 1.
	Vertices int
	Edges    int
	// Seed makes the regenerated graph deterministic.
	Seed int64
}

// Suite is the paper's twelve-benchmark suite with the exact vertex
// and edge counts of Table 1.
var Suite = []Benchmark{
	{Name: "cat", Vertices: 9, Edges: 21, Seed: 1009},
	{Name: "car", Vertices: 13, Edges: 28, Seed: 1013},
	{Name: "flower", Vertices: 21, Edges: 51, Seed: 1021},
	{Name: "character-1", Vertices: 46, Edges: 121, Seed: 1046},
	{Name: "character-2", Vertices: 52, Edges: 130, Seed: 1052},
	{Name: "image-compress", Vertices: 70, Edges: 178, Seed: 1070},
	{Name: "stock-predict", Vertices: 83, Edges: 218, Seed: 1083},
	{Name: "string-matching", Vertices: 102, Edges: 267, Seed: 1102},
	{Name: "shortest-path", Vertices: 191, Edges: 506, Seed: 1191},
	{Name: "speech-1", Vertices: 247, Edges: 652, Seed: 1247},
	{Name: "speech-2", Vertices: 369, Edges: 981, Seed: 1369},
	{Name: "protein", Vertices: 546, Edges: 1449, Seed: 1546},
}

// ByName returns the benchmark with the given name, or an error
// listing the valid names.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(Suite))
	for i, b := range Suite {
		names[i] = b.Name
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q; valid names: %v", name, names)
}

// graphMemo holds one sync.Once-guarded generation per distinct
// Benchmark value, so every experiment shares a single *dag.Graph per
// benchmark (the generator is deterministic, so callers observed the
// same content before; now they also share the pointer, which lets the
// plan cache memoize fingerprints and the given-schedule planner keep
// its pointer-identity check).  Graphs are immutable after generation;
// perturbation studies Clone first.
var graphMemo sync.Map // Benchmark -> *graphOnce

type graphOnce struct {
	once sync.Once
	g    *dag.Graph
	err  error
}

// graphGenerations counts actual generator invocations — a regression
// guard that memoization is working (see GraphGenerations).
var graphGenerations atomic.Int64

// GraphGenerations returns how many times a benchmark graph has been
// synthesized since process start.  With memoization this is bounded
// by the number of distinct Benchmark values ever asked for, no matter
// how many experiments run.
func GraphGenerations() int64 { return graphGenerations.Load() }

// Graph returns the benchmark's task graph, generating it on first
// use and returning the same memoized *dag.Graph on every later call.
func (b Benchmark) Graph() (*dag.Graph, error) {
	v, _ := graphMemo.LoadOrStore(b, &graphOnce{})
	m := v.(*graphOnce)
	m.once.Do(func() {
		graphGenerations.Add(1)
		g, err := synth.Generate(synth.Params{
			Name:     b.Name,
			Vertices: b.Vertices,
			Edges:    b.Edges,
			Seed:     b.Seed,
		})
		if err != nil {
			m.err = fmt.Errorf("bench: regenerating %q: %w", b.Name, err)
			return
		}
		m.g = g
	})
	return m.g, m.err
}

// PECounts is the PE sweep of the paper's evaluation.
var PECounts = []int{16, 32, 64}

// Iterations is the steady-state run length used when reporting total
// execution times (the paper does not publish its value; 100 keeps
// prologue visible without letting it vanish in the noise).
const Iterations = 100
