package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/pim"
	"repro/internal/sched"
	"repro/internal/sim"
)

// EnergyRow is one benchmark's data-movement energy on one
// architecture — the paper's future-work study (§5: "study energy
// issue for PIM architecture with CNN applications").
type EnergyRow struct {
	Benchmark Benchmark
	Arch      string
	// ParaPJ and SpartaPJ are total data-movement energies over
	// Iterations iterations (picojoules); Para-CONV runs the
	// single-kernel configuration so both schemes devote the full
	// array cache to one iteration.
	ParaPJ   float64
	SpartaPJ float64
}

// Saving returns the relative energy saving of Para-CONV.
func (r EnergyRow) Saving() float64 {
	if r.SpartaPJ <= 0 { // energies are sums of non-negative terms
		return 0
	}
	return 1 - r.ParaPJ/r.SpartaPJ
}

// Energy measures data-movement energy for every benchmark on every
// built-in architecture preset at the given PE count.
func Energy(pes int) ([]EnergyRow, error) {
	var rows []EnergyRow
	for _, cfg := range pim.Presets(pes) {
		for _, b := range Suite {
			g, err := b.Graph()
			if err != nil {
				return nil, err
			}
			pc, err := sched.ParaCONVSingle(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: energy %s on %s: %w", b.Name, cfg.Name, err)
			}
			sp, err := sched.SPARTA(g, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: energy %s on %s: %w", b.Name, cfg.Name, err)
			}
			pcStats, err := sim.Run(pc, cfg, Iterations)
			if err != nil {
				return nil, fmt.Errorf("bench: energy %s on %s: %w", b.Name, cfg.Name, err)
			}
			spStats, err := sim.Run(sp, cfg, Iterations)
			if err != nil {
				return nil, fmt.Errorf("bench: energy %s on %s: %w", b.Name, cfg.Name, err)
			}
			rows = append(rows, EnergyRow{
				Benchmark: b,
				Arch:      cfg.Name,
				ParaPJ:    pcStats.EnergyPJ,
				SpartaPJ:  spStats.EnergyPJ,
			})
		}
	}
	return rows, nil
}

// FormatEnergy renders the energy study grouped by architecture.
func FormatEnergy(rows []EnergyRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "arch\tbenchmark\tSPARTA nJ\tPara nJ\tsaving")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f%%\n",
			r.Arch, r.Benchmark.Name, r.SpartaPJ/1000, r.ParaPJ/1000, 100*r.Saving())
	}
	w.Flush()
	return b.String()
}

// CSVEnergy writes the energy study as CSV.
func CSVEnergy(w io.Writer, rows []EnergyRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arch", "benchmark", "sparta_pj", "para_pj", "saving"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Arch, r.Benchmark.Name,
			strconv.FormatFloat(r.SpartaPJ, 'f', 1, 64),
			strconv.FormatFloat(r.ParaPJ, 'f', 1, 64),
			strconv.FormatFloat(r.Saving(), 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
