package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/pim"
)

// EnergyRow is one benchmark's data-movement energy on one
// architecture — the paper's future-work study (§5: "study energy
// issue for PIM architecture with CNN applications").
type EnergyRow struct {
	Benchmark Benchmark
	Arch      string
	// ParaPJ and SpartaPJ are total data-movement energies over
	// Iterations iterations (picojoules); Para-CONV runs the
	// single-kernel configuration so both schemes devote the full
	// array cache to one iteration.
	ParaPJ   float64
	SpartaPJ float64
}

// Saving returns the relative energy saving of Para-CONV.
func (r EnergyRow) Saving() float64 {
	if r.SpartaPJ <= 0 { // energies are sums of non-negative terms
		return 0
	}
	return 1 - r.ParaPJ/r.SpartaPJ
}

// Energy measures data-movement energy on the default runner.
func Energy(pes int) ([]EnergyRow, error) { return DefaultRunner().Energy(pes) }

// Energy measures data-movement energy for every benchmark on every
// built-in architecture preset at the given PE count.  Each
// (architecture, benchmark, planner) cell is one pool job; the two
// cells of a row write disjoint fields.
func (r *Runner) Energy(pes int) ([]EnergyRow, error) {
	presets := pim.Presets(pes)
	rows := make([]EnergyRow, len(presets)*len(Suite))
	for ai, cfg := range presets {
		for bi, b := range Suite {
			rows[ai*len(Suite)+bi] = EnergyRow{Benchmark: b, Arch: cfg.Name}
		}
	}
	kinds := []planKind{planParaSingle, planSPARTA}
	err := r.runJobs(len(rows)*len(kinds), func(i int) error {
		ri := i / len(kinds)
		kind := kinds[i%len(kinds)]
		cfg := presets[ri/len(Suite)]
		b := Suite[ri%len(Suite)]
		g, err := b.Graph()
		if err != nil {
			return err
		}
		_, stats, err := r.simCell(g, cfg, kind, Iterations)
		if err != nil {
			return fmt.Errorf("bench: energy %s on %s: %w", b.Name, cfg.Name, err)
		}
		if kind == planParaSingle {
			rows[ri].ParaPJ = stats.EnergyPJ
		} else {
			rows[ri].SpartaPJ = stats.EnergyPJ
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatEnergy renders the energy study grouped by architecture.
func FormatEnergy(rows []EnergyRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "arch\tbenchmark\tSPARTA nJ\tPara nJ\tsaving")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f%%\n",
			r.Arch, r.Benchmark.Name, r.SpartaPJ/1000, r.ParaPJ/1000, 100*r.Saving())
	}
	w.Flush()
	return b.String()
}

// CSVEnergy writes the energy study as CSV.
func CSVEnergy(w io.Writer, rows []EnergyRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arch", "benchmark", "sparta_pj", "para_pj", "saving"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Arch, r.Benchmark.Name,
			strconv.FormatFloat(r.SpartaPJ, 'f', 1, 64),
			strconv.FormatFloat(r.ParaPJ, 'f', 1, 64),
			strconv.FormatFloat(r.Saving(), 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
