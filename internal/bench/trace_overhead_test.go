package bench

import (
	"context"
	"testing"

	"repro/internal/obs/span"
	"repro/internal/pim"
	"repro/internal/run"
	"repro/internal/synth"
)

// benchmarkTracedPlanAndSim is benchmarkPlanAndSim with a per-iteration
// trace on the context, so every pipeline span (fingerprint, cache,
// singleflight, objective, retime, knapsack, sim) records.
func benchmarkTracedPlanAndSim(b *testing.B) {
	b.Helper()
	g, err := synth.Generate(synth.Params{Vertices: 40, Edges: 90, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	cfg := pim.Neurocube(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := span.NewContext(context.Background(), span.New())
		r := NewRunner(run.NewWithCacheBound(ctx, 0), 1)
		if _, _, err := r.simCell(g, cfg, planParaCONV, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTraceOn / BenchmarkPipelineTraceOff bound the cost
// of full span coverage on the end-to-end plan+simulate path; the
// acceptance bar is On within 5% of Off.  Off restores the untraced
// lane (gate off, no trace on the context), the state every request
// is in when -trace-sample is 0.
func BenchmarkPipelineTraceOn(b *testing.B) {
	span.SetEnabled(true)
	defer span.SetEnabled(false)
	benchmarkTracedPlanAndSim(b)
}

func BenchmarkPipelineTraceOff(b *testing.B) {
	span.SetEnabled(false)
	benchmarkPlanAndSim(b)
}

// TestUntracedPipelineDoesNotAlloc pins the disabled lane's cost to
// literally nothing: with the gate off, span.Start on a span-free
// context must not allocate.  (The span package's own tests pin the
// gate-off fast path; this covers the bench fixture's composed path.)
func TestUntracedPipelineDoesNotAlloc(t *testing.T) {
	span.SetEnabled(false)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := span.Start(ctx, "bench.noop")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span.Start allocates %.1f objects per op, want 0", allocs)
	}
}
