package bench

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSensitivity(t *testing.T) {
	rows, err := Sensitivity(32, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MinRatio > r.BaseRatio || r.MaxRatio < r.BaseRatio {
			t.Errorf("%s: base %.3f outside [%.3f, %.3f]",
				r.Benchmark.Name, r.BaseRatio, r.MinRatio, r.MaxRatio)
		}
		// Robustness claim: Para-CONV keeps winning under ±25% noise.
		if r.MaxRatio >= 1 {
			t.Errorf("%s: perturbed ratio %.3f reaches 1 (Para-CONV loses)", r.Benchmark.Name, r.MaxRatio)
		}
		if r.RMaxSpread < 0 {
			t.Errorf("%s: negative spread", r.Benchmark.Name)
		}
	}
	out := FormatSensitivity(rows, 0.25)
	if !strings.Contains(out, "R_max spread") {
		t.Error("sensitivity table malformed")
	}
}

func TestSensitivityErrors(t *testing.T) {
	if _, err := Sensitivity(16, 0, 3); err == nil {
		t.Error("zero noise accepted")
	}
	if _, err := Sensitivity(16, 1.5, 3); err == nil {
		t.Error("noise > 1 accepted")
	}
	if _, err := Sensitivity(16, 0.2, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestPerturbPreservesInvariants(t *testing.T) {
	b := Suite[5]
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pg := Perturb(g, 0.4, rng)
		if err := pg.Validate(); err != nil {
			t.Fatalf("trial %d: perturbed graph invalid: %v", trial, err)
		}
		if pg.NumNodes() != g.NumNodes() || pg.NumEdges() != g.NumEdges() {
			t.Fatal("perturbation changed structure")
		}
	}
	// Original untouched.
	g2, _ := b.Graph()
	for i := range g.Nodes() {
		if g.Nodes()[i].Exec != g2.Nodes()[i].Exec {
			t.Fatal("Perturb mutated its input")
		}
	}
}
